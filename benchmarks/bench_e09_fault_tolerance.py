"""Benchmark E9: Section 1 motivation — redundancy survives dominator failures.

Regenerates the E9 table of EXPERIMENTS.md and asserts the paper's
claim checks.  See repro/experiments/ for the implementation.
"""

from benchmarks.conftest import run_and_check


def test_e9(benchmark):
    run_and_check(benchmark, "e9")
