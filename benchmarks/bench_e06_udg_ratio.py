"""Benchmark E6: Theorem 5.7 — O(1) approximation, O(k) leaders per disk.

Regenerates the E6 table of EXPERIMENTS.md and asserts the paper's
claim checks.  See repro/experiments/ for the implementation.
"""

from benchmarks.conftest import run_and_check


def test_e6(benchmark):
    run_and_check(benchmark, "e6")
