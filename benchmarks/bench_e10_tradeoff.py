"""Benchmark E10: Time/approximation trade-off vs the [13] lower bound.

Regenerates the E10 table of EXPERIMENTS.md and asserts the paper's
claim checks.  See repro/experiments/ for the implementation.
"""

from benchmarks.conftest import run_and_check


def test_e10(benchmark):
    run_and_check(benchmark, "e10")
