"""Benchmark E17: Section 1 motivation — robustness under message loss.

Regenerates the E17 table of EXPERIMENTS.md and asserts the claim
checks.  See repro/experiments/ for the implementation.
"""

from benchmarks.conftest import run_and_check


def test_e17(benchmark):
    run_and_check(benchmark, "e17")
