"""Shared scaffolding for the standalone benchmark scripts.

Every performance benchmark in this directory reports a before/after
ratio the same way:

- **best-of-N timing** (:func:`timed_best`) — wall-clock noise on a
  shared CI runner is one-sided, so the minimum over repeats is the
  honest estimate of the code's cost;
- **the ``--before`` worktree methodology**
  (:func:`run_before_scenario`) — the *true* baseline is the pre-change
  tree, not an in-tree compatibility flag (flags share the current
  tree's unrelated improvements and understate the win).  The scenario
  is rendered as a small self-contained script that uses only the old
  tree's public entry points and runs under ``PYTHONPATH=<before>/src``
  in a subprocess, so the two trees never share an import universe.
  Point ``--before`` at e.g. ``git worktree add .bench-before <base>``;
- **a JSON report** (:func:`write_report`) with recorded acceptance
  checks (:func:`record_check`) so CI can fail fast on regressions and
  archive the numbers as artifacts.

Extracted from ``bench_kernels`` / ``bench_transport``, which had grown
identical copies of this plumbing; ``bench_batch`` reuses it wholesale.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from typing import Any, Callable, Dict, Tuple


def timed_best(fn: Callable[[], Any], repeats: int) -> Tuple[float, Any]:
    """Best-of-``repeats`` wall time of ``fn()`` plus its (last) result.

    The result of every call must be identical (the benchmarks assert
    bit-equality separately); only the fastest timing is kept.
    """
    best = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def run_before_scenario(before_src: str, script_template: str,
                        **fmt: Any) -> Dict[str, Any]:
    """Time a scenario under another tree in a subprocess.

    ``script_template`` is a ``str.format`` template of a standalone
    script that prints one JSON line (its measurements) as its final
    stdout line; ``fmt`` fills the scenario parameters.  The script runs
    under ``PYTHONPATH=before_src`` so it imports the *other* tree's
    modules — its own import universe, no contamination from the
    current tree.  Returns the parsed JSON measurements.
    """
    script = script_template.format(**fmt)
    env = dict(os.environ, PYTHONPATH=before_src)
    out = subprocess.run([sys.executable, "-c", script],
                         capture_output=True, text=True, env=env)
    if out.returncode != 0:
        raise RuntimeError(f"--before run failed:\n{out.stderr}")
    return json.loads(out.stdout.strip().splitlines()[-1])


def write_report(report: Dict[str, Any], out_path: str) -> None:
    """Write the benchmark's JSON report and say where it went."""
    with open(out_path, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {out_path}")


def record_check(report: Dict[str, Any], *, title: str, key: str,
                 passed_key: str, speedup: float, threshold: float,
                 vs: str) -> bool:
    """Record one speedup acceptance check in ``report["acceptance"]``,
    print its PASS/FAIL line, and return whether it passed."""
    ok = speedup >= threshold
    report["acceptance"][key] = speedup
    report["acceptance"][passed_key] = ok
    print(f"{title}: {'PASS' if ok else 'FAIL'} "
          f"({speedup:.2f}x vs >={threshold}x {vs})")
    return ok
