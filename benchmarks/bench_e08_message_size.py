"""Benchmark E8: Section 3 — O(log n)-bit messages.

Regenerates the E8 table of EXPERIMENTS.md and asserts the paper's
claim checks.  See repro/experiments/ for the implementation.
"""

from benchmarks.conftest import run_and_check


def test_e8(benchmark):
    run_and_check(benchmark, "e8")
