"""Benchmark E15: Section 4 remark — unknown-Delta (2-hop local estimates).

Regenerates the E15 table of EXPERIMENTS.md and asserts the claim
checks.  See repro/experiments/ for the implementation.
"""

from benchmarks.conftest import run_and_check


def test_e15(benchmark):
    run_and_check(benchmark, "e15")
