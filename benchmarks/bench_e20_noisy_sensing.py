"""Benchmark E20: imperfect distance sensing — the Section 3 assumption
relaxed.

Regenerates the E20 table of EXPERIMENTS.md and asserts the claim
checks.  See repro/experiments/ for the implementation.
"""

from benchmarks.conftest import run_and_check


def test_e20(benchmark):
    run_and_check(benchmark, "e20")
