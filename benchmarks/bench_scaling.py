"""Scaling benchmark: the self-healing loop at 10^3..10^5 nodes.

Compares two executions of the same crash-churn maintenance workload:

- **baseline** — the rebuild-per-epoch loop (``incremental=False``,
  unsharded): every epoch re-derives coverage with the pure-Python
  verify loop over the live subgraph view, exactly the pre-scaling
  behavior;
- **fast** — incremental :class:`~repro.engine.artifacts.GraphArtifacts`
  delta-patched per churn event, vectorized CSR-matvec deficit
  detection, and sharded repair over independent damage units.

Both runs use ``selection_policy="by-id"`` so their repair decisions
are deterministic and the final memberships must be *identical* — the
benchmark asserts it, so a speedup number from a diverged run can never
be reported.  Churn intensity (expected crashes per epoch) is equal in
both runs by construction: they share the deployment, the initial
structure, and the crash stream seed.

Run standalone (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_scaling.py --scale smoke \
        --out BENCH_scaling.json

``--scale full`` sweeps to n=10^5 (the baseline is capped at n=5*10^4,
where the acceptance threshold — fast >= 10x baseline — is checked).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional

from repro.dynamics import LocalPatchRepair, MaintenanceLoop, Scenario
from repro.dynamics.events import PoissonJoins, RandomCrashes
from repro.graphs.udg import random_udg

try:
    from benchmarks.bench_common import write_report
except ImportError:  # run standalone: benchmarks/ itself is on sys.path
    from bench_common import write_report

SCALES = {
    # sizes swept; epochs per run; largest n the baseline still runs at.
    "smoke": {"sizes": (500, 2000), "epochs": 5, "baseline_cap": 2000},
    "full": {"sizes": (1_000, 10_000, 50_000, 100_000), "epochs": 10,
             "baseline_cap": 50_000},
}
#: The acceptance threshold is checked at this n (full scale only).
ACCEPTANCE_N = 50_000
ACCEPTANCE_SPEEDUP = 10.0


def build_scenario(udg, members, *, k: int, epochs: int,
                   kill_fraction: float, seed: int) -> Scenario:
    """A fresh scenario per run (streams hold RNG state) with shared
    deployment + initial structure, so churn is identical across runs.

    Mixed churn — dominator crashes plus Poisson joins at the same
    per-epoch rate (network size stays roughly stable).  Joins are the
    events the rebuild-per-epoch baseline pays full geometric rebuilds
    for; the incremental state absorbs them as O(1)-expected spatial-
    hash patches.
    """
    scenario = Scenario(udg, k=k, epochs=epochs, seed=seed,
                        initial_members=set(members), name="bench-churn")
    per_epoch = kill_fraction * len(members) / max(1, epochs)
    side = float(udg.points.max()) if len(udg.points) else 1.0
    scenario.streams = [
        RandomCrashes(per_epoch, target="dominators", seed=seed + 1),
        PoissonJoins(per_epoch, side, seed=seed + 2),
    ]
    return scenario


def timed_run(loop: MaintenanceLoop):
    t0 = time.perf_counter()
    result = loop.run()
    return time.perf_counter() - t0, result


def measure(n: int, *, k: int, epochs: int, kill_fraction: float,
            shards: int, workers: int, seed: int,
            run_baseline: bool) -> dict:
    udg = random_udg(n, density=10.0, seed=seed)
    members = Scenario(udg, k=k, epochs=0, seed=seed).build_members()

    def scenario():
        return build_scenario(udg, members, k=k, epochs=epochs,
                              kill_fraction=kill_fraction, seed=seed)

    fast_secs, fast = timed_run(MaintenanceLoop(
        scenario(), LocalPatchRepair("by-id"),
        shards=shards, workers=workers, incremental=True))
    patches = fast.summary["delta_patches_total"]
    rebuilds = fast.summary["full_rebuilds_total"]
    row = {
        "n": n,
        "epochs": epochs,
        "initial_members": len(members),
        "fast": {
            "seconds": round(fast_secs, 4),
            "epochs_per_sec": round(epochs / fast_secs, 3),
            "shards": shards,
            "workers": workers,
            "delta_patches": patches,
            "full_rebuilds": rebuilds,
            "patch_vs_rebuild_ratio": (round(patches / rebuilds, 2)
                                       if rebuilds else float(patches)),
            "fully_covered_fraction":
                fast.summary["fully_covered_fraction"],
        },
        "baseline": None,
        "speedup": None,
    }
    if run_baseline:
        base_secs, base = timed_run(MaintenanceLoop(
            scenario(), LocalPatchRepair("by-id"), incremental=False))
        if base.final_members != fast.final_members:
            raise AssertionError(
                f"n={n}: fast and baseline runs diverged — speedup "
                "numbers would be meaningless")
        row["baseline"] = {
            "seconds": round(base_secs, 4),
            "epochs_per_sec": round(epochs / base_secs, 3),
            "full_rebuilds": base.summary["full_rebuilds_total"],
        }
        row["speedup"] = round(base_secs / fast_secs, 2)
    return row


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=sorted(SCALES), default="smoke")
    parser.add_argument("--k", type=int, default=3)
    parser.add_argument("--kill", type=float, default=0.2,
                        help="fraction of initial dominators killed "
                             "over the run")
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="BENCH_scaling.json")
    args = parser.parse_args(argv)

    cfg = SCALES[args.scale]
    results = []
    for n in cfg["sizes"]:
        print(f"n={n}: solving + running "
              f"({cfg['epochs']} epochs)...", flush=True)
        row = measure(n, k=args.k, epochs=cfg["epochs"],
                      kill_fraction=args.kill, shards=args.shards,
                      workers=args.workers, seed=args.seed,
                      run_baseline=n <= cfg["baseline_cap"])
        results.append(row)
        fast, base = row["fast"], row["baseline"]
        line = (f"  fast: {fast['seconds']:.2f}s "
                f"({fast['epochs_per_sec']:.1f} ep/s, "
                f"{fast['delta_patches']} patches / "
                f"{fast['full_rebuilds']} rebuilds)")
        if base is not None:
            line += (f" | baseline: {base['seconds']:.2f}s "
                     f"-> speedup {row['speedup']:.1f}x")
        print(line, flush=True)

    payload = {
        "benchmark": "bench_scaling",
        "scale": args.scale,
        "config": {"k": args.k, "kill_fraction": args.kill,
                   "shards": args.shards, "workers": args.workers,
                   "seed": args.seed},
        "results": results,
    }
    write_report(payload, args.out)

    failures = 0
    for row in results:
        if row["n"] >= ACCEPTANCE_N and row["speedup"] is not None \
                and row["speedup"] < ACCEPTANCE_SPEEDUP:
            print(f"!! n={row['n']}: speedup {row['speedup']}x below the "
                  f"{ACCEPTANCE_SPEEDUP}x acceptance threshold",
                  file=sys.stderr)
            failures += 1
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
