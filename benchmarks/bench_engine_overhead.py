"""Engine-layer overhead: the per-graph artifact cache.

Every engine entry point starts by materializing
:class:`repro.engine.artifacts.GraphArtifacts` (stable neighbor orders,
degree vector, closed-adjacency CSR).  The artifacts are cached per
graph object, so repeated calls on the same graph — sweeps over ``t``,
``k``, policies, or modes, which is what every experiment does — skip
the whole rebuild.  These benchmarks quantify that: ``cold``
invalidates the cache before every call, ``cached`` reuses it, and the
solver benchmarks show the end-to-end effect on Algorithm 1.

Acceptance: the cached artifact path and the delta patcher must beat
their from-scratch counterparts by a wide margin — those ratios *are*
the engine-layer design, so CI fails fast when either collapses.

Run standalone (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_engine_overhead.py \
        --scale smoke --out BENCH_engine_overhead.json
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.core.fractional import fractional_kmds
from repro.engine import cache_stats, graph_artifacts, invalidate
from repro.graphs.generators import gnp_graph
from repro.graphs.properties import feasible_coverage

try:
    from benchmarks.bench_common import record_check, timed_best, write_report
except ImportError:  # run standalone: benchmarks/ itself is on sys.path
    from bench_common import record_check, timed_best, write_report

SCALES = {
    "smoke": {"n": 500, "p": 0.02, "repeats": 5},
    "full": {"n": 2_000, "p": 0.005, "repeats": 10},
}
#: Cached artifact access must beat the cold rebuild by this much.
CACHED_SPEEDUP = 10.0
#: One delta patch cycle must beat one cold rebuild by this much.
PATCH_SPEEDUP = 3.0


def bench_artifacts(g, repeats: int) -> dict:
    def cold():
        invalidate(g)
        a = graph_artifacts(g)
        a.closed_adjacency()
        return a

    cold_secs, _ = timed_best(cold, repeats)

    graph_artifacts(g).closed_adjacency()  # warm the cache
    before = cache_stats()["hits"]
    cached_secs, _ = timed_best(
        lambda: graph_artifacts(g).closed_adjacency(), repeats)
    assert cache_stats()["hits"] > before
    print(f"  artifacts: cold {cold_secs * 1e3:.3f} ms, "
          f"cached {cached_secs * 1e6:.1f} us", flush=True)
    return {"cold_seconds": round(cold_secs, 6),
            "cached_seconds": round(cached_secs, 9)}


def bench_delta_patch(g, repeats: int) -> dict:
    """Patching one node in/out beats a from-scratch rebuild."""
    art = graph_artifacts(g)
    victim = art.nodes[0]
    neighbors = list(art.sorted_neighbors[0])
    delta = art.delta_patcher()

    def patch():
        delta.remove_node(victim)
        delta.add_node(victim, neighbors)

    before = cache_stats()
    secs, _ = timed_best(patch, repeats)
    after = cache_stats()
    assert after["delta_patches"] > before["delta_patches"]
    # The whole benchmark loop never paid a single rebuild.
    assert after["full_rebuilds"] == before["full_rebuilds"]
    print(f"  delta patch cycle: {secs * 1e6:.1f} us", flush=True)
    return {"seconds": round(secs, 9)}


def bench_algorithm1(g, cov, repeats: int) -> dict:
    def cold():
        invalidate(g)
        return fractional_kmds(g, coverage=cov, t=2, compute_duals=False)

    cold_secs, _ = timed_best(cold, repeats)
    graph_artifacts(g)  # warm the cache
    cached_secs, _ = timed_best(
        lambda: fractional_kmds(g, coverage=cov, t=2,
                                compute_duals=False), repeats)
    print(f"  algorithm 1: cold {cold_secs * 1e3:.2f} ms, "
          f"cached {cached_secs * 1e3:.2f} ms", flush=True)
    return {"cold_seconds": round(cold_secs, 6),
            "cached_seconds": round(cached_secs, 6)}


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=sorted(SCALES), default="smoke")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out", default="BENCH_engine_overhead.json")
    args = parser.parse_args(argv)

    cfg = SCALES[args.scale]
    print(f"G(n={cfg['n']}, p={cfg['p']}): artifact-cache overhead...",
          flush=True)
    g = gnp_graph(cfg["n"], cfg["p"], seed=args.seed)
    cov = feasible_coverage(g, 2)
    artifacts = bench_artifacts(g, cfg["repeats"])
    patch = bench_delta_patch(g, cfg["repeats"])
    algo1 = bench_algorithm1(g, cov, cfg["repeats"])

    report = {
        "benchmark": "bench_engine_overhead",
        "scale": args.scale,
        "config": {"n": cfg["n"], "p": cfg["p"],
                   "repeats": cfg["repeats"], "seed": args.seed},
        "artifacts": artifacts,
        "delta_patch": patch,
        "algorithm1": algo1,
        "acceptance": {},
    }
    ok = record_check(
        report, title="cached artifacts vs cold rebuild",
        key="cached_vs_cold", passed_key="cached_vs_cold_passed",
        speedup=artifacts["cold_seconds"]
        / max(artifacts["cached_seconds"], 1e-9),
        threshold=CACHED_SPEEDUP, vs="cold rebuild")
    ok &= record_check(
        report, title="delta patch cycle vs cold rebuild",
        key="patch_vs_rebuild", passed_key="patch_vs_rebuild_passed",
        speedup=artifacts["cold_seconds"]
        / max(patch["seconds"], 1e-9),
        threshold=PATCH_SPEEDUP, vs="cold rebuild")
    write_report(report, args.out)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
