"""Engine-layer overhead: the per-graph artifact cache.

Every engine entry point starts by materializing
:class:`repro.engine.artifacts.GraphArtifacts` (stable neighbor orders,
degree vector, closed-adjacency CSR).  The artifacts are cached per graph
object, so repeated calls on the same graph — sweeps over ``t``, ``k``,
policies, or modes, which is what every experiment does — skip the whole
rebuild.  These benchmarks quantify that: ``cold`` invalidates the cache
before every call, ``cached`` reuses it, and the solver benchmarks show
the end-to-end effect on Algorithm 1.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_engine_overhead.py --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.core.fractional import fractional_kmds
from repro.engine import cache_stats, graph_artifacts, invalidate
from repro.graphs.generators import gnp_graph
from repro.graphs.properties import feasible_coverage


@pytest.fixture(scope="module")
def gnp500():
    g = gnp_graph(500, 0.02, seed=7)
    return g, feasible_coverage(g, 2)


def test_artifacts_cold(benchmark, gnp500):
    g, _ = gnp500

    def build():
        invalidate(g)
        a = graph_artifacts(g)
        a.closed_adjacency()
        return a

    benchmark(build)


def test_artifacts_cached(benchmark, gnp500):
    g, _ = gnp500
    graph_artifacts(g).closed_adjacency()  # warm the cache
    before = cache_stats()["hits"]
    benchmark(lambda: graph_artifacts(g).closed_adjacency())
    assert cache_stats()["hits"] > before


def test_artifacts_delta_patch(benchmark, gnp500):
    """Patching one node in/out beats a from-scratch rebuild."""
    g, _ = gnp500
    art = graph_artifacts(g)
    victim = art.nodes[0]
    neighbors = list(art.sorted_neighbors[0])
    delta = art.delta_patcher()

    def patch():
        delta.remove_node(victim)
        delta.add_node(victim, neighbors)

    before = cache_stats()
    benchmark(patch)
    after = cache_stats()
    assert after["delta_patches"] > before["delta_patches"]
    # The whole benchmark loop never paid a single rebuild.
    assert after["full_rebuilds"] == before["full_rebuilds"]


def test_algorithm1_cold_artifacts(benchmark, gnp500):
    g, cov = gnp500

    def run():
        invalidate(g)
        return fractional_kmds(g, coverage=cov, t=2, compute_duals=False)

    benchmark(run)


def test_algorithm1_cached_artifacts(benchmark, gnp500):
    g, cov = gnp500
    graph_artifacts(g)  # warm the cache
    benchmark(fractional_kmds, g, coverage=cov, t=2, compute_duals=False)
