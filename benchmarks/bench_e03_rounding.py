"""Benchmark E3: Theorem 4.6 — randomized rounding blow-up and feasibility.

Regenerates the E3 table of EXPERIMENTS.md and asserts the paper's
claim checks.  See repro/experiments/ for the implementation.
"""

from benchmarks.conftest import run_and_check


def test_e3(benchmark):
    run_and_check(benchmark, "e3")
