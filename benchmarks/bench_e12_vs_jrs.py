"""Benchmark E12: Related work — pipeline vs Jia-Rajaraman-Suel LRG.

Regenerates the E12 table of EXPERIMENTS.md and asserts the paper's
claim checks.  See repro/experiments/ for the implementation.
"""

from benchmarks.conftest import run_and_check


def test_e12(benchmark):
    run_and_check(benchmark, "e12")
