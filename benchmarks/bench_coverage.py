"""Coverage-plane benchmark: the native coverage matvec vs scipy.

The coverage plane — ``member_counts`` / ``member_counts_batch`` /
``deficit_vector`` / ``scatter_cover`` — is the per-epoch cost every
resident consumer pays: the maintenance loop's verify step, the service
snapshot capture, the demotion prefilter.  This PR ports it to the
compiled runtime behind the kernel provider registry
(:mod:`repro.engine.dispatch`); this benchmark times the same counts
three ways on one deployment:

- **numpy** — ``REPRO_KERNEL_BACKEND=numpy``: the scipy CSR matvec
  reference path, in-tree.
- **native** — ``REPRO_KERNEL_BACKEND=native``: the C kernel.  The
  batch shape is where the win lives: R replicas are laid out
  lane-interleaved ((n, R) uint8), so one gathered row index serves all
  R lanes through 16-wide uint16 accumulators.
- **numba** — only when numba is importable (the container does not
  ship it; the best-effort CI leg does).

Every row is asserted **bit-identical** across all measured providers
and across thread counts (1 vs 4) before any ratio is reported: 0/1
indicators make row sums exact small integers in any accumulation
order, so provider selection can only ever change speed.

The acceptance criterion — native >= 2x numpy on the replica-batched
row (R=16) at n=10^5 — is an in-tree check (both providers run from
this tree), recorded in ``BENCH_coverage.json`` and failed fast by CI.
Pass ``--before PATH/src`` pointing at a pre-registry checkout (e.g.
``git worktree add .bench-before <base>``) to additionally measure the
true before/after ratio of the public ``member_counts_batch`` entry
point in a subprocess.

The native runtime being unavailable is a hard **failure** here (exit
1), not a skip: this benchmark exists to certify the compiled plane.

Run standalone (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_coverage.py --scale smoke \
        --out BENCH_coverage.json

``--scale full`` runs the acceptance cell (n=10^5, R=16).
"""

from __future__ import annotations

import argparse
import os
import sys
from contextlib import contextmanager
from typing import Optional

import numpy as np

from repro import _native
from repro.engine import kernels
from repro.engine.artifacts import graph_artifacts
from repro.graphs.udg import random_udg

try:
    from benchmarks.bench_common import (record_check, run_before_scenario,
                                         timed_best, write_report)
except ImportError:  # run standalone: benchmarks/ itself is on sys.path
    from bench_common import (record_check, run_before_scenario, timed_best,
                              write_report)

SCALES = {
    # (n, replicas) cells; the guard is checked on the last cell.
    "smoke": {"cells": ((20_000, 16),), "guard": 1.5},
    "full": {"cells": ((20_000, 16), (100_000, 16)), "guard": 2.0},
}
#: The acceptance row: native vs numpy, in-tree, batch shape.
ACCEPTANCE_N = 100_000
ACCEPTANCE_REPLICAS = 16
ACCEPTANCE_SPEEDUP = 2.0

DENSITY = 10.0
MEMBER_FRACTION = 0.25

#: The scenario under a pre-registry tree: its public
#: ``member_counts_batch`` takes float indicators into the scipy
#: mat-mat (bool routing did not exist), so this times the true
#: before-path and cross-checks the counts it produces.
_SUBPROCESS_SCRIPT = r'''
import json, time
import numpy as np
from repro.engine import kernels
from repro.engine.artifacts import graph_artifacts
from repro.graphs.udg import random_udg
udg = random_udg({n}, density={density}, seed={seed})
art = graph_artifacts(udg)
rng = np.random.default_rng({mask_seed})
masks = rng.random(({replicas}, art.n)) < {fraction}
x = masks.astype(float)
counts = kernels.member_counts_batch(art, indicators=x)
times = []
for _ in range({repeats}):
    t0 = time.perf_counter()
    counts = kernels.member_counts_batch(art, indicators=x)
    times.append(time.perf_counter() - t0)
print(json.dumps({{"seconds": min(times),
                   "counts_sum": int(counts.sum()),
                   "counts_max": int(counts.max())}}))
'''


@contextmanager
def forced_backend(name: Optional[str]):
    """Run a block under one pinned REPRO_KERNEL_BACKEND value."""
    prev = os.environ.get("REPRO_KERNEL_BACKEND")
    try:
        if name is None:
            os.environ.pop("REPRO_KERNEL_BACKEND", None)
        else:
            os.environ["REPRO_KERNEL_BACKEND"] = name
        yield
    finally:
        if prev is None:
            os.environ.pop("REPRO_KERNEL_BACKEND", None)
        else:
            os.environ["REPRO_KERNEL_BACKEND"] = prev


def _providers() -> list:
    from repro.engine import dispatch
    names = ["numpy", "native"]
    if dispatch._numba_module() is not None:
        names.append("numba")
    return names


def measure(n: int, replicas: int, *, seed: int, repeats: int,
            before_src: Optional[str]) -> dict:
    udg = random_udg(n, density=DENSITY, seed=seed)
    art = graph_artifacts(udg)
    rng = np.random.default_rng(seed + 1)
    masks = rng.random((replicas, art.n)) < MEMBER_FRACTION

    results = {}
    times = {}
    for name in _providers():
        with forced_backend(name):
            kernels.member_counts_batch(art, indicators=masks)  # warm
            t_batch, counts = timed_best(
                lambda: kernels.member_counts_batch(art, indicators=masks),
                repeats)
            t_single, single = timed_best(
                lambda: kernels.member_counts(art, indicator=masks[0]),
                repeats)
        results[name] = (counts, single)
        times[name] = (t_batch, t_single)

    ref_counts, ref_single = results["numpy"]
    for name, (counts, single) in results.items():
        if not np.array_equal(counts, ref_counts):
            raise AssertionError(f"{name} batch counts diverged from numpy")
        if not np.array_equal(single, ref_single):
            raise AssertionError(f"{name} single counts diverged from numpy")

    # Thread-count invariance: rows are the slab axis, every output
    # entry is written by exactly one thread, so any partition must
    # produce the same plane bit for bit.
    prev_threads = os.environ.get("REPRO_NATIVE_THREADS")
    try:
        with forced_backend("native"):
            for t in ("1", "4"):
                os.environ["REPRO_NATIVE_THREADS"] = t
                got = kernels.member_counts_batch(art, indicators=masks)
                if not np.array_equal(got, ref_counts):
                    raise AssertionError(
                        f"native counts diverged at {t} threads")
    finally:
        if prev_threads is None:
            os.environ.pop("REPRO_NATIVE_THREADS", None)
        else:
            os.environ["REPRO_NATIVE_THREADS"] = prev_threads

    numpy_batch, numpy_single = times["numpy"]
    native_batch, native_single = times["native"]
    row = {
        "n": art.n,
        "replicas": replicas,
        "edges": art.m,
        "numpy_batch_seconds": numpy_batch,
        "native_batch_seconds": native_batch,
        "batch_speedup": numpy_batch / native_batch
        if native_batch > 0 else None,
        "numpy_single_seconds": numpy_single,
        "native_single_seconds": native_single,
        "single_speedup": numpy_single / native_single
        if native_single > 0 else None,
        "before_seconds": None,
        "speedup_vs_before": None,
    }
    if "numba" in times:
        row["numba_batch_seconds"] = times["numba"][0]
    if before_src is not None:
        before = run_before_scenario(
            before_src, _SUBPROCESS_SCRIPT, n=n, density=DENSITY,
            seed=seed, mask_seed=seed + 1, fraction=MEMBER_FRACTION,
            replicas=replicas, repeats=repeats)
        if before["counts_sum"] != int(ref_counts.sum()) \
                or before["counts_max"] != int(ref_counts.max()):
            raise AssertionError("counts diverged from the pre-registry "
                                 "tree")
        row["before_seconds"] = before["seconds"]
        row["speedup_vs_before"] = (before["seconds"] / native_batch
                                    if native_batch > 0 else None)
    return row


def main(argv: Optional[list] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--scale", choices=sorted(SCALES), default="smoke")
    ap.add_argument("--out", default=None, help="write JSON results here")
    ap.add_argument("--repeats", type=int, default=5,
                    help="timing repeats per provider (best-of)")
    ap.add_argument("--seed", type=int, default=1)
    ap.add_argument("--before", default=None, metavar="SRC",
                    help="src/ directory of a pre-registry checkout; adds "
                         "the true before/after ratio")
    args = ap.parse_args(argv)

    if not _native.available():
        print("FAIL: the compiled kernels are unavailable — this benchmark "
              "certifies the native coverage plane and cannot run without "
              "it", file=sys.stderr)
        return 1

    cfg = SCALES[args.scale]
    rows = []
    for n, replicas in cfg["cells"]:
        row = measure(n, replicas, seed=args.seed, repeats=args.repeats,
                      before_src=args.before)
        rows.append(row)
        before = (f"{row['speedup_vs_before']:.2f}x"
                  if row["speedup_vs_before"] else "n/a")
        print(f"n={row['n']:>7} R={replicas:>3}  "
              f"native batch {row['native_batch_seconds'] * 1e3:8.2f}ms  "
              f"vs numpy: {row['batch_speedup']:.2f}x batch / "
              f"{row['single_speedup']:.2f}x single  "
              f"vs before tree: {before}")

    report = {
        "benchmark": "coverage",
        "scale": args.scale,
        "scenario": {"density": DENSITY, "member_fraction": MEMBER_FRACTION,
                     "seed": args.seed},
        "native_digest": _native.build_digest(),
        "native_threads": _native.thread_count(),
        "acceptance": {
            "n": ACCEPTANCE_N,
            "replicas": ACCEPTANCE_REPLICAS,
            "threshold": ACCEPTANCE_SPEEDUP,
            "guard": cfg["guard"],
        },
        "rows": rows,
    }
    failed = False
    for row in rows:
        if (row["n"], row["replicas"]) == (ACCEPTANCE_N,
                                           ACCEPTANCE_REPLICAS):
            failed |= not record_check(
                report,
                title=f"acceptance at n={ACCEPTANCE_N} "
                      f"R={ACCEPTANCE_REPLICAS}",
                key="batch_speedup", passed_key="passed",
                speedup=row["batch_speedup"],
                threshold=ACCEPTANCE_SPEEDUP, vs="numpy")
    # The guard runs on the last (largest) cell of the scale, so the
    # smoke leg still fails fast when the native plane decays.
    last = rows[-1]
    failed |= not record_check(
        report,
        title=f"in-tree guard at n={last['n']} R={last['replicas']}",
        key="guard_speedup", passed_key="guard_passed",
        speedup=last["batch_speedup"], threshold=cfg["guard"],
        vs="numpy")
    if args.out:
        write_report(report, args.out)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
