"""Replica-batch benchmark: ``execute_batch`` vs the sequential
per-seed solve loop (and vs the pre-batch tree).

A seed-replication sweep — the same Algorithm 3 instance solved under R
independent seeds — used to be R full engine invocations: R artifact
revalidations, R stream pools, R Python round loops.  The replica-batched
direct backend (:func:`repro.engine.backends.execute_batch`, surfaced
for UDG instances as :func:`repro.core.udg.solve_kmds_udg_batch`) lays
the replicas out as a ``(R, n)`` lane plane over the *shared* CSR and
runs the whole sweep as one kernel pass per round.  This benchmark times
the same 30-seed sweep two ways:

- **sequential** — the per-seed ``solve_kmds_udg`` loop, exactly what
  the E-series experiments and ``analysis.sweep`` did before the batch
  path existed, running in-tree.  Asserted bit-identical to the batch
  run (per-replica members and ``RunStats``) before any speedup is
  reported.
- **batch** — one ``solve_kmds_udg_batch`` call over all seeds.

The in-tree ratio *understates* the end-to-end win because the
sequential loop shares this tree's other improvements (native draw /
election kernels, cheap generator materialization).  Pass ``--before
PATH/src`` pointing at a checkout of the pre-batch tree (e.g. ``git
worktree add .bench-before <base>``) to measure the true before/after
ratio in a subprocess; the acceptance threshold — batch >= 5x the
pre-batch tree on the 30-seed sweep at n=10^4 — is checked only then.
Without ``--before``, the in-tree ratio is held to a regression guard
(per scale, see ``SCALES``) so CI fails fast if the batch path decays.

Run standalone (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_batch.py --scale smoke \
        --out BENCH_batch.json

``--scale full`` runs the acceptance cell (n=10^4, 30 replicas).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.core.udg import solve_kmds_udg, solve_kmds_udg_batch
from repro.graphs.udg import random_udg

try:
    from benchmarks.bench_common import (record_check, run_before_scenario,
                                         timed_best, write_report)
except ImportError:  # run standalone: benchmarks/ itself is on sys.path
    from bench_common import (record_check, run_before_scenario, timed_best,
                              write_report)

SCALES = {
    # (n, replicas) cells; the in-tree guard is checked on the last cell.
    "smoke": {"cells": ((2000, 8),), "guard": 2.0},
    "full": {"cells": ((2000, 8), (10_000, 30)), "guard": 3.0},
}
#: The --before acceptance threshold, checked at this cell when present.
ACCEPTANCE_N = 10_000
ACCEPTANCE_REPLICAS = 30
ACCEPTANCE_SPEEDUP = 5.0      # vs the pre-batch tree (--before)

DENSITY = 10.0
K = 3

#: The scenario, as a standalone script: also run under the pre-batch
#: tree's PYTHONPATH (which predates ``solve_kmds_udg_batch``), so it
#: uses only the original per-seed public entry point.
_SUBPROCESS_SCRIPT = r'''
import json, time
from repro.core.udg import solve_kmds_udg
from repro.graphs.udg import random_udg
udg = random_udg({n}, density={density}, seed={seed})
seeds = list(range({base}, {base} + {replicas}))
sols = [solve_kmds_udg(udg, k={k}, mode="direct", seed=s) for s in seeds]
times = []
for _ in range({repeats}):
    t0 = time.perf_counter()
    sols = [solve_kmds_udg(udg, k={k}, mode="direct", seed=s) for s in seeds]
    times.append(time.perf_counter() - t0)
print(json.dumps({{"seconds": min(times),
                   "members_len": [len(s.members) for s in sols],
                   "members_sum": [sum(s.members) for s in sols],
                   "rounds": [s.stats.rounds for s in sols],
                   "messages": [s.stats.messages_sent for s in sols]}}))
'''


def assert_equivalent(seq_sols, batch_sols) -> None:
    """Every replica's members and RunStats must match exactly."""
    if len(seq_sols) != len(batch_sols):
        raise AssertionError("replica count diverged")
    for i, (seq, bat) in enumerate(zip(seq_sols, batch_sols)):
        if seq.members != bat.members:
            raise AssertionError(
                f"replica {i}: batch members diverged from sequential")
        if seq.stats != bat.stats:
            raise AssertionError(
                f"replica {i}: RunStats diverged: sequential={seq.stats} "
                f"batch={bat.stats}")


def run_before(before_src: str, *, n: int, replicas: int, seed: int,
               repeats: int) -> dict:
    """Time the same sweep under the pre-batch tree in a subprocess
    (its own import universe)."""
    return run_before_scenario(before_src, _SUBPROCESS_SCRIPT, n=n,
                               density=DENSITY, seed=seed, k=K, base=0,
                               replicas=replicas, repeats=repeats)


def measure(n: int, replicas: int, *, seed: int, repeats: int,
            before_src: Optional[str]) -> dict:
    udg = random_udg(n, density=DENSITY, seed=seed)
    seeds = list(range(replicas))
    # Warm once (distance CSR, artifact caches, native kernel build)
    # before timing either path.
    solve_kmds_udg_batch(udg, seeds, k=K)
    batch_time, batch_sols = timed_best(
        lambda: solve_kmds_udg_batch(udg, seeds, k=K), repeats)
    seq_time, seq_sols = timed_best(
        lambda: [solve_kmds_udg(udg, k=K, mode="direct", seed=s)
                 for s in seeds],
        repeats)
    assert_equivalent(seq_sols, batch_sols)
    row = {
        "n": n,
        "replicas": replicas,
        "k": K,
        "members_mean": sum(len(s.members) for s in batch_sols) / replicas,
        "rounds_max": max(s.stats.rounds for s in batch_sols),
        "batch_seconds": batch_time,
        "sequential_seconds": seq_time,
        "intree_speedup": seq_time / batch_time if batch_time > 0 else None,
        "before_seconds": None,
        "speedup_vs_before": None,
    }
    if before_src is not None:
        before = run_before(before_src, n=n, replicas=replicas, seed=seed,
                            repeats=repeats)
        expected = {
            "members_len": [len(s.members) for s in batch_sols],
            "members_sum": [sum(s.members) for s in batch_sols],
            "rounds": [s.stats.rounds for s in batch_sols],
            "messages": [s.stats.messages_sent for s in batch_sols],
        }
        for key, want in expected.items():
            if before[key] != want:
                raise AssertionError(
                    f"batch {key} diverged from pre-batch tree")
        row["before_seconds"] = before["seconds"]
        row["speedup_vs_before"] = (before["seconds"] / batch_time
                                    if batch_time > 0 else None)
    return row


def main(argv: Optional[list] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--scale", choices=sorted(SCALES), default="smoke")
    ap.add_argument("--out", default=None, help="write JSON results here")
    ap.add_argument("--repeats", type=int, default=3,
                    help="timing repeats per configuration (best-of)")
    ap.add_argument("--seed", type=int, default=1,
                    help="deployment seed (algorithm seeds are 0..R-1)")
    ap.add_argument("--before", default=None, metavar="SRC",
                    help="src/ directory of a pre-batch checkout; "
                         "enables the 5x acceptance check")
    args = ap.parse_args(argv)

    cfg = SCALES[args.scale]
    guard = cfg["guard"]
    rows = []
    for n, replicas in cfg["cells"]:
        row = measure(n, replicas, seed=args.seed, repeats=args.repeats,
                      before_src=args.before)
        rows.append(row)
        before = (f"{row['speedup_vs_before']:.2f}x"
                  if row["speedup_vs_before"] else "n/a")
        print(f"n={n:>6} R={replicas:>3}  batch {row['batch_seconds']:.4f}s"
              f"  vs sequential loop: {row['intree_speedup']:.2f}x  "
              f"vs pre-batch tree: {before}  "
              f"({row['members_mean']:.1f} mean members / "
              f"{row['rounds_max']} max rounds)")

    report = {
        "benchmark": "batch",
        "scale": args.scale,
        "scenario": {"density": DENSITY, "k": K, "seed": args.seed},
        "acceptance": {
            "n": ACCEPTANCE_N,
            "replicas": ACCEPTANCE_REPLICAS,
            "threshold_vs_before": ACCEPTANCE_SPEEDUP,
            "intree_guard": guard,
        },
        "rows": rows,
    }
    failed = False
    for row in rows:
        if args.before is not None and (
                (row["n"], row["replicas"])
                == (ACCEPTANCE_N, ACCEPTANCE_REPLICAS)):
            failed |= not record_check(
                report,
                title=f"acceptance at n={ACCEPTANCE_N} "
                      f"R={ACCEPTANCE_REPLICAS}",
                key="speedup_vs_before", passed_key="passed",
                speedup=row["speedup_vs_before"],
                threshold=ACCEPTANCE_SPEEDUP, vs="pre-batch")
    # The in-tree guard runs on the last (largest) cell of the scale.
    last = rows[-1]
    failed |= not record_check(
        report,
        title=f"in-tree guard at n={last['n']} R={last['replicas']}",
        key="intree_speedup", passed_key="guard_passed",
        speedup=last["intree_speedup"], threshold=guard,
        vs="sequential loop")
    if args.out:
        write_report(report, args.out)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
