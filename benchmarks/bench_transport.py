"""Transport benchmark: columnar broadcast-native delivery vs the
legacy per-edge outbox.

Runs Algorithm 1 (``FractionalProgram``, ``mode="message"``) on random
unit-disk graphs and times the same execution two ways:

- **legacy flag** — ``execute(..., legacy_transport=True)``: the
  original per-edge data plane (one tuple per edge per round, one
  ``Instrumentation.payload()`` call per delivered copy), running
  in-tree.  Asserted bit-identical to the columnar run (same ``x``,
  same ``RunStats``) before any speedup is reported.
- **columnar** — the default broadcast-native path: one record per
  ``broadcast()`` call, lazy fan-out over cached neighbor order, the
  full-broadcast gather fast path, and per-class bit accounting.

The in-tree flag ratio *understates* the end-to-end win because the
legacy flag path shares this tree's other optimizations (interned
message sizes, the rewritten protocol hot loop).  Pass ``--before
PATH/src`` pointing at a checkout of the pre-columnar tree (e.g. ``git
worktree add .bench-before <base>``) to measure the true before/after
ratio in a subprocess; the acceptance threshold — columnar >= 5x the
pre-columnar tree at n=2000 — is checked only then.  Without
``--before``, the in-tree flag ratio is held to a softer regression
guard (>= 2x at n=2000).

Run standalone (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_transport.py --scale smoke \
        --out BENCH_transport.json

``--scale full`` sweeps n in {500, 2000, 10000} (the legacy flag path
is skipped above ``legacy_cap`` and its ratio reported as ``null``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.core.fractional import FractionalProgram, _resolve_instance
from repro.engine import execute
from repro.graphs import feasible_coverage
from repro.graphs.udg import random_udg

try:
    from benchmarks.bench_common import (record_check, run_before_scenario,
                                         timed_best, write_report)
except ImportError:  # run standalone: benchmarks/ itself is on sys.path
    from bench_common import (record_check, run_before_scenario, timed_best,
                              write_report)

SCALES = {
    # sizes swept; legacy flag path skipped above the cap (too slow).
    "smoke": {"sizes": (500, 2000), "legacy_cap": 2000},
    "full": {"sizes": (500, 2000, 10_000), "legacy_cap": 10_000},
}
#: Acceptance thresholds, checked at this n when present in the sweep.
ACCEPTANCE_N = 2000
ACCEPTANCE_SPEEDUP = 5.0      # vs the pre-columnar tree (--before)
INTREE_GUARD_SPEEDUP = 2.0    # vs the in-tree legacy flag (always)

#: UDG radius per size — chosen so the instance is connected enough to
#: be interesting but the legacy path stays runnable.
RADIUS = {500: 0.11, 2000: 0.05, 10_000: 0.022}

#: The scenario, as a standalone script: also run under the pre-columnar
#: tree's PYTHONPATH (which predates the legacy_transport flag), so it
#: uses only the original execute() signature.
_SUBPROCESS_SCRIPT = r'''
import json, time
from repro.core.fractional import FractionalProgram, _resolve_instance
from repro.engine import execute
from repro.graphs import feasible_coverage
from repro.graphs.udg import random_udg
udg = random_udg({n}, radius={radius}, seed={seed})
cov = feasible_coverage(udg, 2)
lp = _resolve_instance(udg, None, cov)
prog = FractionalProgram(lp, t={t}, compute_duals=False)
sol = execute(prog, "message", seed=0)
times = []
for _ in range({repeats}):
    t0 = time.perf_counter()
    sol = execute(prog, "message", seed=0)
    times.append(time.perf_counter() - t0)
print(json.dumps({{"seconds": min(times), "x_checksum": sum(sol.x.values()),
                   "messages": sol.stats.messages_sent,
                   "rounds": sol.stats.rounds,
                   "bits": sol.stats.bits_sent}}))
'''


def build_program(n: int, *, t: int, seed: int) -> FractionalProgram:
    udg = random_udg(n, radius=RADIUS.get(n, 0.05), seed=seed)
    cov = feasible_coverage(udg, 2)
    lp = _resolve_instance(udg, None, cov)
    return FractionalProgram(lp, t=t, compute_duals=False)


def timed_execute(program, *, seed: int, legacy: bool, repeats: int):
    """Best-of-``repeats`` wall time plus the (identical) result."""
    return timed_best(
        lambda: execute(program, "message", seed=seed,
                        legacy_transport=legacy),
        repeats)


def assert_equivalent(legacy_sol, columnar_sol) -> None:
    """Solutions and RunStats must match exactly — bit-identical floats
    and identical rounds/messages/bits."""
    if legacy_sol.x != columnar_sol.x:
        raise AssertionError("columnar x diverged from legacy x")
    ls, cs = legacy_sol.stats, columnar_sol.stats
    for field in ("rounds", "messages_sent", "bits_sent", "max_message_bits"):
        lv, cv = getattr(ls, field), getattr(cs, field)
        if lv != cv:
            raise AssertionError(
                f"RunStats.{field} diverged: legacy={lv} columnar={cv}")


def run_before(before_src: str, *, n: int, t: int, seed: int,
               repeats: int) -> dict:
    """Time the same scenario under the pre-columnar tree in a
    subprocess (its own import universe)."""
    return run_before_scenario(before_src, _SUBPROCESS_SCRIPT, n=n,
                               radius=RADIUS.get(n, 0.05), seed=seed, t=t,
                               repeats=repeats)


def measure(n: int, *, t: int, seed: int, repeats: int, run_legacy: bool,
            before_src: Optional[str]) -> dict:
    program = build_program(n, t=t, seed=seed)
    # Warm once (artifact caches, class-bit interning) before timing.
    execute(program, "message", seed=seed)
    col_time, col_sol = timed_execute(program, seed=seed, legacy=False,
                                      repeats=repeats)
    row = {
        "n": n,
        "t": t,
        "rounds": col_sol.stats.rounds,
        "messages": col_sol.stats.messages_sent,
        "total_bits": col_sol.stats.bits_sent,
        "columnar_seconds": col_time,
        "legacy_flag_seconds": None,
        "flag_speedup": None,
        "before_seconds": None,
        "speedup_vs_before": None,
    }
    if run_legacy:
        leg_time, leg_sol = timed_execute(program, seed=seed, legacy=True,
                                          repeats=repeats)
        assert_equivalent(leg_sol, col_sol)
        row["legacy_flag_seconds"] = leg_time
        row["flag_speedup"] = leg_time / col_time if col_time > 0 else None
    if before_src is not None:
        before = run_before(before_src, n=n, t=t, seed=seed, repeats=repeats)
        if before["x_checksum"] != sum(col_sol.x.values()):
            raise AssertionError("columnar x diverged from pre-columnar tree")
        if (before["messages"], before["rounds"], before["bits"]) != (
                col_sol.stats.messages_sent, col_sol.stats.rounds,
                col_sol.stats.bits_sent):
            raise AssertionError(
                "RunStats diverged from pre-columnar tree")
        row["before_seconds"] = before["seconds"]
        row["speedup_vs_before"] = (before["seconds"] / col_time
                                    if col_time > 0 else None)
    return row


def main(argv: Optional[list] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--scale", choices=sorted(SCALES), default="smoke")
    ap.add_argument("--out", default=None, help="write JSON results here")
    ap.add_argument("--repeats", type=int, default=3,
                    help="timing repeats per configuration (best-of)")
    ap.add_argument("--t", type=int, default=3)
    ap.add_argument("--seed", type=int, default=1)
    ap.add_argument("--before", default=None, metavar="SRC",
                    help="src/ directory of a pre-columnar checkout; "
                         "enables the 5x acceptance check")
    args = ap.parse_args(argv)

    cfg = SCALES[args.scale]
    rows = []
    for n in cfg["sizes"]:
        row = measure(n, t=args.t, seed=args.seed, repeats=args.repeats,
                      run_legacy=n <= cfg["legacy_cap"],
                      before_src=args.before)
        rows.append(row)
        flag = (f"{row['flag_speedup']:.2f}x" if row["flag_speedup"]
                else "skipped")
        before = (f"{row['speedup_vs_before']:.2f}x"
                  if row["speedup_vs_before"] else "n/a")
        print(f"n={n:>6}  columnar {row['columnar_seconds']:.3f}s  "
              f"vs legacy flag: {flag}  vs pre-columnar tree: {before}  "
              f"({row['messages']} msgs / {row['rounds']} rounds)")

    report = {
        "benchmark": "transport",
        "scale": args.scale,
        "acceptance": {
            "n": ACCEPTANCE_N,
            "threshold_vs_before": ACCEPTANCE_SPEEDUP,
            "intree_guard": INTREE_GUARD_SPEEDUP,
        },
        "rows": rows,
    }
    failed = False
    for row in rows:
        if row["n"] != ACCEPTANCE_N:
            continue
        if row["speedup_vs_before"] is not None:
            failed |= not record_check(
                report, title=f"acceptance at n={ACCEPTANCE_N}",
                key="speedup_vs_before", passed_key="passed",
                speedup=row["speedup_vs_before"],
                threshold=ACCEPTANCE_SPEEDUP, vs="pre-columnar")
        elif row["flag_speedup"] is not None:
            failed |= not record_check(
                report, title=f"in-tree guard at n={ACCEPTANCE_N}",
                key="flag_speedup", passed_key="guard_passed",
                speedup=row["flag_speedup"],
                threshold=INTREE_GUARD_SPEEDUP, vs="legacy flag")
    if args.out:
        write_report(report, args.out)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
