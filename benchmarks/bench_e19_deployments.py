"""Benchmark E19: non-uniform deployments — per-disk guarantee stress test.

Regenerates the E19 table of EXPERIMENTS.md and asserts the claim
checks.  See repro/experiments/ for the implementation.
"""

from benchmarks.conftest import run_and_check


def test_e19(benchmark):
    run_and_check(benchmark, "e19")
