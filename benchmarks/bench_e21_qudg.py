"""Benchmark E21: quasi unit disk graphs — no clear-cut disks (Section 1).

Regenerates the E21 table of EXPERIMENTS.md and asserts the claim
checks.  See repro/experiments/ for the implementation.
"""

from benchmarks.conftest import run_and_check


def test_e21(benchmark):
    run_and_check(benchmark, "e21")
