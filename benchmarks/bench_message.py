"""Message-mode protocol benchmark: columnar stepping plane vs the
per-node generator loop.

Runs Algorithm 1 (``FractionalProgram``, ``mode="message"``) on random
unit-disk graphs and times the same execution two ways:

- **reference flag** — ``execute(..., reference_protocols=True)``: the
  original per-node path (one ``ProtocolNode.step`` generator
  resumption per node per round, a Python inbox loop per receiver),
  running in-tree.  This is the bit-identity oracle: its ``x`` and
  ``RunStats`` are asserted identical to the batched run before any
  speedup is reported.
- **batched** — the default columnar protocol plane
  (``repro.simulation.columnar`` + ``.steppers``): one
  ``ColumnarStepper.advance`` per round over lane-major state arrays,
  inbox reductions as CSR segment-reductions through
  ``repro.engine.dispatch`` (native C, threaded).

Unlike the transport benchmark, the in-tree flag here *is* the honest
baseline — the per-node path is retained verbatim, so the flag ratio
measures exactly what the stepping plane replaced.  ``--before
PATH/src`` (e.g. ``git worktree add .bench-before <base>``) additionally
times the pre-stepper tree in a subprocess for an end-to-end
cross-check; its stats are asserted identical too.

Acceptance: batched >= 5x the per-node reference at n=10000 (the
``--scale full`` sweep); CI's perf-smoke holds the n=2000 cell to a
fail-fast >= 3x guard.

Run standalone (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_message.py --scale smoke \
        --out BENCH_message.json
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.core.fractional import FractionalProgram, _resolve_instance
from repro.engine import execute
from repro.graphs import feasible_coverage
from repro.graphs.udg import random_udg

try:
    from benchmarks.bench_common import (record_check, run_before_scenario,
                                         timed_best, write_report)
except ImportError:  # run standalone: benchmarks/ itself is on sys.path
    from bench_common import (record_check, run_before_scenario, timed_best,
                              write_report)

SCALES = {
    # sizes swept; the per-node reference is timed at every size (it is
    # slow but runnable even at n=10000 on the columnar transport).
    "smoke": {"sizes": (500, 2000)},
    "full": {"sizes": (500, 2000, 10_000)},
}
#: Acceptance thresholds, checked at these n when present in the sweep.
ACCEPTANCE_N = 10_000
ACCEPTANCE_SPEEDUP = 5.0      # vs the in-tree per-node reference
GUARD_N = 2000
GUARD_SPEEDUP = 3.0           # CI perf-smoke fail-fast guard

#: UDG radius per size — same instances as the transport benchmark.
RADIUS = {500: 0.11, 2000: 0.05, 10_000: 0.022}

#: The scenario as a standalone script, run under the pre-stepper
#: tree's PYTHONPATH (which predates the reference_protocols flag, so
#: its default message path *is* the per-node loop).
_SUBPROCESS_SCRIPT = r'''
import json, time
from repro.core.fractional import FractionalProgram, _resolve_instance
from repro.engine import execute
from repro.graphs import feasible_coverage
from repro.graphs.udg import random_udg
udg = random_udg({n}, radius={radius}, seed={seed})
cov = feasible_coverage(udg, 2)
lp = _resolve_instance(udg, None, cov)
prog = FractionalProgram(lp, t={t}, compute_duals=False)
sol = execute(prog, "message", seed=0)
times = []
for _ in range({repeats}):
    t0 = time.perf_counter()
    sol = execute(prog, "message", seed=0)
    times.append(time.perf_counter() - t0)
print(json.dumps({{"seconds": min(times), "x_checksum": sum(sol.x.values()),
                   "messages": sol.stats.messages_sent,
                   "rounds": sol.stats.rounds,
                   "bits": sol.stats.bits_sent}}))
'''


def build_program(n: int, *, t: int, seed: int) -> FractionalProgram:
    udg = random_udg(n, radius=RADIUS.get(n, 0.05), seed=seed)
    cov = feasible_coverage(udg, 2)
    lp = _resolve_instance(udg, None, cov)
    return FractionalProgram(lp, t=t, compute_duals=False)


def check_stepper_engaged(*, t: int, seed: int) -> None:
    """Fail loudly if the stepping plane would not actually resolve for
    this scenario — a silent per-node fallback would time the reference
    against itself and report a meaningless 1x."""
    from repro.simulation.columnar import resolve_stepper
    from repro.simulation.network import SynchronousNetwork

    program = build_program(200, t=t, seed=seed)
    net = SynchronousNetwork(program.network_graph, program.processes(),
                             seed=seed, **program.network_kwargs)
    if resolve_stepper(net, []) is None:
        raise RuntimeError("no columnar stepper resolved for the stock "
                           "FractionalProgram scenario")


def timed_execute(program, *, seed: int, reference: bool, repeats: int):
    """Best-of-``repeats`` wall time plus the (identical) result."""
    return timed_best(
        lambda: execute(program, "message", seed=seed,
                        reference_protocols=reference),
        repeats)


def assert_equivalent(reference_sol, batched_sol) -> None:
    """Solutions and RunStats must match exactly — bit-identical floats
    and identical rounds/messages/bits."""
    if reference_sol.x != batched_sol.x:
        raise AssertionError("batched x diverged from per-node reference")
    rs, bs = reference_sol.stats, batched_sol.stats
    for field in ("rounds", "messages_sent", "bits_sent", "max_message_bits"):
        rv, bv = getattr(rs, field), getattr(bs, field)
        if rv != bv:
            raise AssertionError(
                f"RunStats.{field} diverged: reference={rv} batched={bv}")


def run_before(before_src: str, *, n: int, t: int, seed: int,
               repeats: int) -> dict:
    """Time the same scenario under the pre-stepper tree in a
    subprocess (its own import universe)."""
    return run_before_scenario(before_src, _SUBPROCESS_SCRIPT, n=n,
                               radius=RADIUS.get(n, 0.05), seed=seed, t=t,
                               repeats=repeats)


def measure(n: int, *, t: int, seed: int, repeats: int,
            before_src: Optional[str]) -> dict:
    program = build_program(n, t=t, seed=seed)
    # Warm once (artifact caches, kernel dispatch, bit interning).
    execute(program, "message", seed=seed)
    bat_time, bat_sol = timed_execute(program, seed=seed, reference=False,
                                      repeats=repeats)
    ref_time, ref_sol = timed_execute(program, seed=seed, reference=True,
                                      repeats=repeats)
    assert_equivalent(ref_sol, bat_sol)
    row = {
        "n": n,
        "t": t,
        "rounds": bat_sol.stats.rounds,
        "messages": bat_sol.stats.messages_sent,
        "total_bits": bat_sol.stats.bits_sent,
        "batched_seconds": bat_time,
        "reference_seconds": ref_time,
        "reference_speedup": ref_time / bat_time if bat_time > 0 else None,
        "before_seconds": None,
        "speedup_vs_before": None,
    }
    if before_src is not None:
        before = run_before(before_src, n=n, t=t, seed=seed, repeats=repeats)
        if before["x_checksum"] != sum(bat_sol.x.values()):
            raise AssertionError("batched x diverged from pre-stepper tree")
        if (before["messages"], before["rounds"], before["bits"]) != (
                bat_sol.stats.messages_sent, bat_sol.stats.rounds,
                bat_sol.stats.bits_sent):
            raise AssertionError("RunStats diverged from pre-stepper tree")
        row["before_seconds"] = before["seconds"]
        row["speedup_vs_before"] = (before["seconds"] / bat_time
                                    if bat_time > 0 else None)
    return row


def main(argv: Optional[list] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--scale", choices=sorted(SCALES), default="smoke")
    ap.add_argument("--out", default=None, help="write JSON results here")
    ap.add_argument("--repeats", type=int, default=3,
                    help="timing repeats per configuration (best-of)")
    ap.add_argument("--t", type=int, default=3)
    ap.add_argument("--seed", type=int, default=1)
    ap.add_argument("--before", default=None, metavar="SRC",
                    help="src/ directory of a pre-stepper checkout; "
                         "adds the end-to-end cross-check column")
    args = ap.parse_args(argv)

    check_stepper_engaged(t=args.t, seed=args.seed)
    rows = []
    for n in SCALES[args.scale]["sizes"]:
        row = measure(n, t=args.t, seed=args.seed, repeats=args.repeats,
                      before_src=args.before)
        rows.append(row)
        before = (f"{row['speedup_vs_before']:.2f}x"
                  if row["speedup_vs_before"] else "n/a")
        print(f"n={n:>6}  batched {row['batched_seconds']:.3f}s  "
              f"vs per-node reference: {row['reference_speedup']:.2f}x  "
              f"vs pre-stepper tree: {before}  "
              f"({row['messages']} msgs / {row['rounds']} rounds)")

    report = {
        "benchmark": "message",
        "scale": args.scale,
        "acceptance": {
            "n": ACCEPTANCE_N,
            "threshold_vs_reference": ACCEPTANCE_SPEEDUP,
            "guard_n": GUARD_N,
            "guard_threshold": GUARD_SPEEDUP,
        },
        "rows": rows,
    }
    failed = False
    for row in rows:
        if row["reference_speedup"] is None:
            continue
        if row["n"] == ACCEPTANCE_N:
            failed |= not record_check(
                report, title=f"acceptance at n={ACCEPTANCE_N}",
                key="reference_speedup", passed_key="passed",
                speedup=row["reference_speedup"],
                threshold=ACCEPTANCE_SPEEDUP, vs="per-node reference")
        elif row["n"] == GUARD_N:
            failed |= not record_check(
                report, title=f"perf-smoke guard at n={GUARD_N}",
                key="guard_speedup", passed_key="guard_passed",
                speedup=row["reference_speedup"],
                threshold=GUARD_SPEEDUP, vs="per-node reference")
    if args.out:
        write_report(report, args.out)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
