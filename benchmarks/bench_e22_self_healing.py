"""Benchmark E22: self-healing maintenance under dominator churn.

Regenerates the E22 table of EXPERIMENTS.md and asserts the claim
checks.  See repro/experiments/ for the implementation.
"""

from benchmarks.conftest import run_and_check


def test_e22(benchmark):
    run_and_check(benchmark, "e22")
