"""Throughput benchmarks for the repro.dynamics maintenance subsystem.

Times repair-epoch throughput (epochs/second) of the maintenance loop
under the crash workload for each repair policy, plus the two substrate
costs that dominate an epoch: damage detection (the verify oracle on the
live view) and the crash-churn graph-cache path.  A regression here
slows every dynamics experiment and the CLI.

Acceptance: the local patch policy must not fall behind the
recompute-from-scratch baseline — locality is the paper's entire
Part II argument, so ``local < recompute`` throughput is a bug.

Run standalone (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_dynamics.py --scale smoke \
        --out BENCH_dynamics.json
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.core.verify import coverage_deficit
from repro.dynamics import (
    CrashEvent,
    LazyRepair,
    LocalPatchRepair,
    MaintenanceLoop,
    NetworkState,
    RecomputeRepair,
    crash_scenario,
)
from repro.graphs.udg import random_udg

try:
    from benchmarks.bench_common import record_check, timed_best, write_report
except ImportError:  # run standalone: benchmarks/ itself is on sys.path
    from bench_common import record_check, timed_best, write_report

SCALES = {
    "smoke": {"n": 500, "epochs": 10, "repeats": 3},
    "full": {"n": 2_000, "epochs": 25, "repeats": 5},
}
POLICIES = {
    "local": LocalPatchRepair,
    "recompute": RecomputeRepair,
    "lazy": LazyRepair,
}


def _scenario(n: int, epochs: int, *, k: int = 3, seed: int = 0):
    return crash_scenario(n, k=k, epochs=epochs, kill_fraction=0.2,
                          target="dominators", seed=seed)


def bench_policies(n: int, epochs: int, repeats: int, seed: int) -> dict:
    """Full maintenance run per policy: epochs/second."""
    out = {}
    for name, policy_cls in POLICIES.items():
        def run():
            # A fresh scenario per run — churn streams hold RNG state.
            loop = MaintenanceLoop(_scenario(n, epochs, seed=seed),
                                   policy_cls())
            return loop.run()

        secs, result = timed_best(run, repeats)
        assert len(result.timeline.records) == epochs
        out[name] = {"seconds": round(secs, 4),
                     "epochs_per_sec": round(epochs / secs, 2)}
        print(f"  policy={name}: {secs:.3f}s "
              f"({epochs / secs:.1f} epochs/s)", flush=True)
    return out


def bench_damage_detection(n: int, repeats: int, seed: int) -> dict:
    """The per-epoch verify-oracle call on the live topology."""
    scenario = _scenario(n, 1, seed=seed)
    state = NetworkState.from_udg(scenario.initial,
                                  members=scenario.build_members())
    graph = state.graph()
    secs, _ = timed_best(
        lambda: coverage_deficit(graph, state.members, 3,
                                 convention="open"), repeats)
    print(f"  damage detection: {secs * 1e3:.2f} ms", flush=True)
    return {"seconds": round(secs, 5)}


def bench_crash_churn(n: int, repeats: int, seed: int) -> dict:
    """Crash + live-view refresh, the hot state transition (must stay
    cheap: no geometric rebuild on crash-only churn)."""
    udg = random_udg(n, density=10.0, seed=seed)
    crashes = min(50, n // 10)

    def churn():
        state = NetworkState.from_udg(udg)
        state.graph()                       # build the base cache once
        for v in range(crashes):
            state.apply(CrashEvent(v))
            state.graph()                   # refresh the live view
        return state

    secs, state = timed_best(churn, repeats)
    assert state.n_live == n - crashes
    print(f"  crash churn ({crashes} crashes): {secs * 1e3:.2f} ms",
          flush=True)
    return {"crashes": crashes, "seconds": round(secs, 5)}


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=sorted(SCALES), default="smoke")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="BENCH_dynamics.json")
    args = parser.parse_args(argv)

    cfg = SCALES[args.scale]
    n, epochs, repeats = cfg["n"], cfg["epochs"], cfg["repeats"]
    print(f"n={n}: {epochs}-epoch maintenance runs x{repeats}...",
          flush=True)
    policies = bench_policies(n, epochs, repeats, args.seed)
    detection = bench_damage_detection(n, repeats, args.seed)
    churn = bench_crash_churn(n, repeats, args.seed)

    report = {
        "benchmark": "bench_dynamics",
        "scale": args.scale,
        "config": {"n": n, "epochs": epochs, "repeats": repeats,
                   "seed": args.seed},
        "policies": policies,
        "damage_detection": detection,
        "crash_churn": churn,
        "acceptance": {},
    }
    ok = record_check(
        report, title="local patch vs recompute",
        key="local_vs_recompute", passed_key="local_vs_recompute_passed",
        speedup=policies["recompute"]["seconds"]
        / policies["local"]["seconds"],
        threshold=1.0, vs="recompute-from-scratch")
    write_report(report, args.out)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
