"""Throughput benchmarks for the repro.dynamics maintenance subsystem.

Times repair-epoch throughput (epochs/second) of the maintenance loop at
n=500 under the E22 crash workload, for each repair policy, plus the two
substrate costs that dominate an epoch: damage detection (the verify
oracle on the live view) and the crash-churn graph-cache path.  A
regression here slows every dynamics experiment and the CLI.
"""

from __future__ import annotations

import pytest

from repro.core.verify import coverage_deficit
from repro.dynamics import (
    CrashEvent,
    LazyRepair,
    LocalPatchRepair,
    MaintenanceLoop,
    NetworkState,
    RecomputeRepair,
    crash_scenario,
)
from repro.graphs.udg import random_udg

N = 500
EPOCHS = 25


def _scenario(k=3, seed=0):
    return crash_scenario(N, k=k, epochs=EPOCHS, kill_fraction=0.2,
                          target="dominators", seed=seed)


@pytest.mark.parametrize("policy_cls", [LocalPatchRepair, RecomputeRepair,
                                        LazyRepair])
def test_epoch_throughput(benchmark, policy_cls):
    """Full maintenance run; benchmark reports seconds for EPOCHS epochs
    (epochs/sec = EPOCHS / mean)."""

    def run():
        return MaintenanceLoop(_scenario(), policy_cls()).run()

    result = benchmark(run)
    assert len(result.timeline.records) == EPOCHS


def test_damage_detection(benchmark):
    """The per-epoch verify-oracle call on the live topology."""
    scenario = _scenario()
    state = NetworkState.from_udg(scenario.initial,
                                  members=scenario.build_members())
    graph = state.graph()
    benchmark(coverage_deficit, graph, state.members, 3,
              convention="open")


def test_crash_churn_graph_cache(benchmark):
    """Crash + live-view refresh, the hot state transition (must stay
    cheap: no geometric rebuild on crash-only churn)."""
    udg = random_udg(N, density=10.0, seed=0)

    def churn():
        state = NetworkState.from_udg(udg)
        state.graph()                       # build the base cache once
        for v in range(50):
            state.apply(CrashEvent(v))
            state.graph()                   # refresh the live view
        return state

    state = benchmark(churn)
    assert state.n_live == N - 50
