"""Benchmark E5: Lemma 5.1 + Part II — Algorithm 3 correctness.

Regenerates the E5 table of EXPERIMENTS.md and asserts the paper's
claim checks.  See repro/experiments/ for the implementation.
"""

from benchmarks.conftest import run_and_check


def test_e5(benchmark):
    run_and_check(benchmark, "e5")
