"""Benchmark E11: Figure 1 / Lemma 5.3 — hexagonal covering geometry.

Regenerates the E11 table of EXPERIMENTS.md and asserts the paper's
claim checks.  See repro/experiments/ for the implementation.
"""

from benchmarks.conftest import run_and_check


def test_e11(benchmark):
    run_and_check(benchmark, "e11")
