"""Service benchmark: query throughput against the live daemon.

Stands up the full ``repro.service`` stack — a
:class:`~repro.service.server.CoverageDaemon` stepping real churn epochs
through a :class:`~repro.dynamics.loop.MaintenanceLoop` — and drives it
with the stock :class:`~repro.service.server.LoadGenerator` until the
writer exhausts its epoch budget.  The number that matters is sustained
**batched point queries per second while churn runs**: the whole point
of snapshot publication is that serving never waits on repair.

Acceptance (``--scale full``): >= 10^6 point queries/sec at n=10^5.
The smoke scale keeps CI honest with a conservative floor at n=2000.

Run standalone (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_service.py --scale smoke \
        --out BENCH_service.json
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.dynamics import LocalPatchRepair, MaintenanceLoop, crash_scenario
from repro.service import CoverageDaemon, CoverageService, LoadGenerator

try:
    from benchmarks.bench_common import record_check, write_report
except ImportError:  # run standalone: benchmarks/ itself is on sys.path
    from bench_common import record_check, write_report

SCALES = {
    # Deployment size, writer epoch budget, traffic shape, and the
    # fail-fast throughput floor checked at that size.
    "smoke": {"n": 2_000, "epochs": 4, "batch": 2048, "clients": 2,
              "qps_floor": 1e5},
    "full": {"n": 100_000, "epochs": 10, "batch": 8192, "clients": 4,
             "qps_floor": 1e6},
}

#: The vectorized kinds; ``route`` is per-pair and benchmarked apart.
POINT_KINDS = ("covered", "k_deficit", "dominator_of", "who_covers")


def measure(*, n: int, epochs: int, batch: int, clients: int, k: int,
            kill_fraction: float, shards: Optional[int], workers: int,
            executor: str, seed: int) -> dict:
    scenario = crash_scenario(n=n, k=k, epochs=epochs,
                              kill_fraction=kill_fraction, seed=seed)
    loop = MaintenanceLoop(scenario, LocalPatchRepair(), shards=shards,
                           workers=workers, executor=executor)
    daemon = CoverageDaemon(CoverageService(loop), max_epochs=epochs)
    daemon.start()
    generator = LoadGenerator(daemon, batch=batch, clients=clients,
                              kinds=POINT_KINDS, seed=seed)
    generator.start()
    daemon.wait_for_writer()
    submitted = generator.stop()
    report = daemon.drain()
    final = daemon.service.current()
    return {
        "n": n,
        "epochs": epochs,
        "batch": batch,
        "clients": clients,
        "submitted": submitted,
        "final_epoch_covered": final.fully_covered,
        "metrics": report,
    }


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=sorted(SCALES), default="smoke")
    parser.add_argument("--k", type=int, default=3)
    parser.add_argument("--kill", type=float, default=0.2,
                        help="fraction of initial dominators killed "
                             "over the run")
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--executor", choices=("thread", "process"),
                        default="process",
                        help="shard-dispatch engine; 'process' keeps "
                             "repair off the serving process's GIL")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="BENCH_service.json")
    args = parser.parse_args(argv)

    cfg = SCALES[args.scale]
    print(f"n={cfg['n']}: serving {cfg['epochs']} churn epochs under "
          f"{cfg['clients']} clients x batch {cfg['batch']}...", flush=True)
    row = measure(n=cfg["n"], epochs=cfg["epochs"], batch=cfg["batch"],
                  clients=cfg["clients"], k=args.k,
                  kill_fraction=args.kill, shards=args.shards,
                  workers=args.workers, executor=args.executor,
                  seed=args.seed)
    m = row["metrics"]
    print(f"  {m['queries']:,} queries in {m['duration_s']:.2f}s "
          f"-> {m['qps']:,.0f} q/s "
          f"(p50 {m['p50_batch_ms']:.3f} ms, p99 {m['p99_batch_ms']:.3f} ms, "
          f"epoch lag <= {m['max_epoch_lag']})", flush=True)

    report = {
        "benchmark": "bench_service",
        "scale": args.scale,
        "config": {"k": args.k, "kill_fraction": args.kill,
                   "shards": args.shards, "workers": args.workers,
                   "executor": args.executor, "seed": args.seed,
                   "kinds": list(POINT_KINDS)},
        "result": row,
        "acceptance": {},
    }
    ok = record_check(
        report, title=f"service throughput @ n={cfg['n']}",
        key="qps_over_floor", passed_key="qps_floor_passed",
        speedup=m["qps"] / cfg["qps_floor"], threshold=1.0,
        vs=f"{cfg['qps_floor']:,.0f} q/s floor")
    if not row["final_epoch_covered"]:
        print("!! final epoch not fully covered — serving raced a "
              "broken repair", file=sys.stderr)
        ok = False
    write_report(report, args.out)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
