"""Benchmark E7: Theorem 5.7 time — O(log log n) rounds.

Regenerates the E7 table of EXPERIMENTS.md and asserts the paper's
claim checks.  See repro/experiments/ for the implementation.
"""

from benchmarks.conftest import run_and_check


def test_e7(benchmark):
    run_and_check(benchmark, "e7")
