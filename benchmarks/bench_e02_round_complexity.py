"""Benchmark E2: Theorem 4.5 time — Algorithm 1 uses exactly 2t^2 rounds.

Regenerates the E2 table of EXPERIMENTS.md and asserts the paper's
claim checks.  See repro/experiments/ for the implementation.
"""

from benchmarks.conftest import run_and_check


def test_e2(benchmark):
    run_and_check(benchmark, "e2")
