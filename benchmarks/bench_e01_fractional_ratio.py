"""Benchmark E1: Theorem 4.5 approximation — Algorithm 1 fractional ratio vs t.

Regenerates the E1 table of EXPERIMENTS.md and asserts the paper's
claim checks.  See repro/experiments/ for the implementation.
"""

from benchmarks.conftest import run_and_check


def test_e1(benchmark):
    run_and_check(benchmark, "e1")
