"""Kernel benchmark: the vectorized direct backend of Algorithm 3 vs
the per-node reference loop (and vs the pre-kernel tree).

Runs ``solve_kmds_udg(mode="direct")`` — Part I election + Part II
adoption on the CSR kernel layer (:mod:`repro.engine.kernels`) with
batched PCG64 node streams (:mod:`repro.simulation.vecrng`) — on random
unit-disk graphs, and times the same computation two ways:

- **reference flag** — ``execute(..., reference_direct=True)``: the
  per-node loops kept verbatim-faithful to the paper (the bit-exactness
  oracle), running in-tree.  Asserted bit-identical to the kernel run
  (same members, same ``RunStats``) before any speedup is reported.
- **kernel** — the default direct path: scatter-max election over the
  flattened distance CSR, matvec coverage, incremental deficient
  frontier, and vectorized Lemire draws over all active node streams
  at once.

The in-tree flag ratio *understates* the end-to-end win because the
reference flag path shares this tree's other fixes (the incremental
frontier in Part II).  Pass ``--before PATH/src`` pointing at a
checkout of the pre-kernel tree (e.g. ``git worktree add .bench-before
<base>``) to measure the true before/after ratio in a subprocess; the
acceptance threshold — kernel >= 10x the pre-kernel tree at n=10^4 —
is checked only then.  Without ``--before``, the in-tree flag ratio is
held to a regression guard (>= 5x at n=10^4) so CI fails fast if the
kernel path decays.

The largest size (n=10^5) is part of the *smoke* scale on purpose: the
run completing at all — and bit-identically across two invocations —
is an acceptance criterion of its own.

Run standalone (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_kernels.py --scale smoke \
        --out BENCH_kernels.json

``--scale full`` adds n=500 and raises the timing repeats.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional

from repro.core.udg import UDGProgram, solve_kmds_udg
from repro.engine import execute
from repro.graphs.udg import random_udg

try:
    from benchmarks.bench_common import (record_check, run_before_scenario,
                                         timed_best, write_report)
except ImportError:  # run standalone: benchmarks/ itself is on sys.path
    from bench_common import (record_check, run_before_scenario, timed_best,
                              write_report)

SCALES = {
    # sizes swept; the per-node reference path is skipped above the cap
    # (its per-node spawn alone costs seconds there).
    "smoke": {"sizes": (2000, 10_000, 100_000), "reference_cap": 10_000},
    "full": {"sizes": (500, 2000, 10_000, 100_000),
             "reference_cap": 10_000},
}
#: Acceptance thresholds, checked at this n when present in the sweep.
ACCEPTANCE_N = 10_000
ACCEPTANCE_SPEEDUP = 10.0     # vs the pre-kernel tree (--before)
INTREE_GUARD_SPEEDUP = 5.0    # vs the in-tree reference flag (always)

DENSITY = 10.0
K = 3

#: The scenario, as a standalone script: also run under the pre-kernel
#: tree's PYTHONPATH, so it uses only the original public entry point.
_SUBPROCESS_SCRIPT = r'''
import json, time
from repro.core.udg import solve_kmds_udg
from repro.graphs.udg import random_udg
udg = random_udg({n}, density={density}, seed={seed})
sol = solve_kmds_udg(udg, k={k}, mode="direct", seed={seed})
times = []
for _ in range({repeats}):
    t0 = time.perf_counter()
    sol = solve_kmds_udg(udg, k={k}, mode="direct", seed={seed})
    times.append(time.perf_counter() - t0)
print(json.dumps({{"seconds": min(times), "members_len": len(sol.members),
                   "members_sum": sum(sol.members),
                   "rounds": sol.stats.rounds,
                   "messages": sol.stats.messages_sent,
                   "bits": sol.stats.bits_sent}}))
'''


def timed_solve(udg, *, seed: int, repeats: int):
    """Best-of-``repeats`` wall time of the kernel path plus the result."""
    return timed_best(
        lambda: solve_kmds_udg(udg, k=K, mode="direct", seed=seed), repeats)


def timed_reference(udg, *, seed: int, repeats: int):
    """Best-of-``repeats`` wall time of the per-node reference loops."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        program = UDGProgram(udg, K, "random", seed)
        t0 = time.perf_counter()
        result = execute(program, "direct", seed=seed,
                         reference_direct=True)
        best = min(best, time.perf_counter() - t0)
    return best, result


def assert_equivalent(reference_sol, kernel_sol) -> None:
    """Members and RunStats must match exactly."""
    if reference_sol.members != kernel_sol.members:
        raise AssertionError("kernel members diverged from reference")
    if reference_sol.stats != kernel_sol.stats:
        raise AssertionError(
            f"RunStats diverged: reference={reference_sol.stats} "
            f"kernel={kernel_sol.stats}")


def run_before(before_src: str, *, n: int, seed: int, repeats: int) -> dict:
    """Time the same scenario under the pre-kernel tree in a subprocess
    (its own import universe)."""
    return run_before_scenario(before_src, _SUBPROCESS_SCRIPT, n=n,
                               density=DENSITY, seed=seed, k=K,
                               repeats=repeats)


def measure(n: int, *, seed: int, repeats: int, run_reference: bool,
            before_src: Optional[str]) -> dict:
    udg = random_udg(n, density=DENSITY, seed=seed)
    # Warm once (distance CSR, artifact caches) before timing.
    solve_kmds_udg(udg, k=K, mode="direct", seed=seed)
    reps = repeats if n < 50_000 else 1
    kern_time, kern_sol = timed_solve(udg, seed=seed, repeats=reps)
    row = {
        "n": n,
        "k": K,
        "members": len(kern_sol.members),
        "rounds": kern_sol.stats.rounds,
        "messages": kern_sol.stats.messages_sent,
        "kernel_seconds": kern_time,
        "reference_seconds": None,
        "flag_speedup": None,
        "before_seconds": None,
        "speedup_vs_before": None,
    }
    if run_reference:
        ref_time, ref_sol = timed_reference(udg, seed=seed, repeats=reps)
        assert_equivalent(ref_sol, kern_sol)
        row["reference_seconds"] = ref_time
        row["flag_speedup"] = (ref_time / kern_time if kern_time > 0
                               else None)
    else:
        # No oracle at this size: at least pin determinism (two kernel
        # runs must agree bit-for-bit).
        again = solve_kmds_udg(udg, k=K, mode="direct", seed=seed)
        assert_equivalent(again, kern_sol)
    if before_src is not None and n <= ACCEPTANCE_N:
        before = run_before(before_src, n=n, seed=seed, repeats=reps)
        if (before["members_len"], before["members_sum"]) != (
                len(kern_sol.members), sum(kern_sol.members)):
            raise AssertionError("kernel members diverged from "
                                 "pre-kernel tree")
        if (before["rounds"], before["messages"], before["bits"]) != (
                kern_sol.stats.rounds, kern_sol.stats.messages_sent,
                kern_sol.stats.bits_sent):
            raise AssertionError("RunStats diverged from pre-kernel tree")
        row["before_seconds"] = before["seconds"]
        row["speedup_vs_before"] = (before["seconds"] / kern_time
                                    if kern_time > 0 else None)
    return row


def main(argv: Optional[list] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--scale", choices=sorted(SCALES), default="smoke")
    ap.add_argument("--out", default=None, help="write JSON results here")
    ap.add_argument("--repeats", type=int, default=3,
                    help="timing repeats per configuration (best-of)")
    ap.add_argument("--seed", type=int, default=1)
    ap.add_argument("--before", default=None, metavar="SRC",
                    help="src/ directory of a pre-kernel checkout; "
                         "enables the 10x acceptance check")
    args = ap.parse_args(argv)

    cfg = SCALES[args.scale]
    rows = []
    for n in cfg["sizes"]:
        row = measure(n, seed=args.seed, repeats=args.repeats,
                      run_reference=n <= cfg["reference_cap"],
                      before_src=args.before)
        rows.append(row)
        flag = (f"{row['flag_speedup']:.2f}x" if row["flag_speedup"]
                else "skipped")
        before = (f"{row['speedup_vs_before']:.2f}x"
                  if row["speedup_vs_before"] else "n/a")
        print(f"n={n:>7}  kernel {row['kernel_seconds']:.4f}s  "
              f"vs reference flag: {flag}  vs pre-kernel tree: {before}  "
              f"({row['members']} members / {row['rounds']} rounds)")

    report = {
        "benchmark": "kernels",
        "scale": args.scale,
        "scenario": {"density": DENSITY, "k": K, "seed": args.seed},
        "acceptance": {
            "n": ACCEPTANCE_N,
            "threshold_vs_before": ACCEPTANCE_SPEEDUP,
            "intree_guard": INTREE_GUARD_SPEEDUP,
        },
        "rows": rows,
    }
    failed = False
    for row in rows:
        if row["n"] != ACCEPTANCE_N:
            continue
        if row["speedup_vs_before"] is not None:
            failed |= not record_check(
                report, title=f"acceptance at n={ACCEPTANCE_N}",
                key="speedup_vs_before", passed_key="passed",
                speedup=row["speedup_vs_before"],
                threshold=ACCEPTANCE_SPEEDUP, vs="pre-kernel")
        if row["flag_speedup"] is not None:
            failed |= not record_check(
                report, title=f"in-tree guard at n={ACCEPTANCE_N}",
                key="flag_speedup", passed_key="guard_passed",
                speedup=row["flag_speedup"],
                threshold=INTREE_GUARD_SPEEDUP, vs="reference flag")
    if args.out:
        write_report(report, args.out)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
