"""Benchmark E16: Awerbuch [2] — asynchronous execution, alpha synchronizer.

Regenerates the E16 table of EXPERIMENTS.md and asserts the claim
checks.  See repro/experiments/ for the implementation.
"""

from benchmarks.conftest import run_and_check


def test_e16(benchmark):
    run_and_check(benchmark, "e16")
