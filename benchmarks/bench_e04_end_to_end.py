"""Benchmark E4: End-to-end k-MDS vs greedy/degree/exact baselines.

Regenerates the E4 table of EXPERIMENTS.md and asserts the paper's
claim checks.  See repro/experiments/ for the implementation.
"""

from benchmarks.conftest import run_and_check


def test_e4(benchmark):
    run_and_check(benchmark, "e4")
