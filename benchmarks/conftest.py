"""Shared helpers for the benchmark suite.

Every ``bench_eNN_*.py`` module wraps one experiment from
:mod:`repro.experiments`: pytest-benchmark times the full experiment run
(single round — these are table-regeneration harnesses, not
micro-benchmarks), asserts the paper-claim checks, and prints the
regenerated table so EXPERIMENTS.md rows can be refreshed from the
benchmark log.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import run_experiment
from repro.experiments.base import SCALES

#: Scale for benchmark runs; override with REPRO_BENCH_SCALE=full.
BENCH_SCALE = os.environ.get("REPRO_BENCH_SCALE", "quick")
if BENCH_SCALE not in SCALES:
    # Fail at collection time, not after minutes of benchmarking.
    raise SystemExit(
        f"REPRO_BENCH_SCALE={BENCH_SCALE!r} is not a valid scale; "
        f"expected one of {SCALES}"
    )


def run_and_check(benchmark, experiment_id: str, seed: int = 0):
    """Benchmark one experiment run and assert its claim checks."""
    report = benchmark.pedantic(
        run_experiment,
        args=(experiment_id,),
        kwargs={"scale": BENCH_SCALE, "seed": seed},
        rounds=1,
        iterations=1,
    )
    print()
    print(report.render())
    assert report.rows, f"{experiment_id} produced no rows"
    assert report.passed, (
        f"{experiment_id} failed claim checks: {report.failed_checks()}"
    )
    return report
