"""Micro-benchmarks of the library's core primitives.

Unlike the E-series modules (which regenerate experiment tables), these
time the building blocks themselves so performance regressions in the
substrate show up directly: UDG construction, Algorithm 1 direct mode,
Algorithm 3 direct mode, the message-passing simulator, greedy, and the
LP solve.
"""

from __future__ import annotations

import pytest

from repro.baselines.greedy import greedy_kmds
from repro.baselines.lp_opt import lp_optimum
from repro.core.fractional import fractional_kmds
from repro.core.udg import solve_kmds_udg
from repro.graphs.generators import gnp_graph
from repro.graphs.properties import feasible_coverage
from repro.graphs.udg import random_udg


@pytest.fixture(scope="module")
def gnp300():
    g = gnp_graph(300, 0.03, seed=1)
    return g, feasible_coverage(g, 2)


@pytest.fixture(scope="module")
def udg1000():
    return random_udg(1000, density=10.0, seed=1)


def test_udg_construction_1000(benchmark):
    benchmark(random_udg, 1000, density=10.0, seed=2)


def test_udg_neighbors_within(benchmark, udg1000):
    def probe():
        for v in range(0, 1000, 10):
            udg1000.neighbors_within(v, 0.3)

    benchmark(probe)


def test_algorithm1_direct_t3(benchmark, gnp300):
    g, cov = gnp300
    benchmark(fractional_kmds, g, coverage=cov, t=3, compute_duals=False)


def test_algorithm1_direct_with_duals(benchmark, gnp300):
    g, cov = gnp300
    benchmark(fractional_kmds, g, coverage=cov, t=3, compute_duals=True)


def test_algorithm1_message_mode(benchmark):
    g = gnp_graph(80, 0.08, seed=3)
    cov = feasible_coverage(g, 2)
    benchmark(fractional_kmds, g, coverage=cov, t=2, mode="message",
              compute_duals=False, seed=0)


def test_algorithm3_direct_1000(benchmark, udg1000):
    benchmark(solve_kmds_udg, udg1000, k=3, seed=0)


def test_algorithm3_message_200(benchmark):
    udg = random_udg(200, density=10.0, seed=4)
    benchmark(solve_kmds_udg, udg, k=2, mode="message", seed=0)


def test_greedy_baseline(benchmark, gnp300):
    g, cov = gnp300
    benchmark(greedy_kmds, g, cov, convention="closed")


def test_lp_optimum_solve(benchmark, gnp300):
    g, cov = gnp300
    benchmark(lp_optimum, g, cov, convention="closed")


def test_backbone_construction(benchmark, udg1000):
    from repro.apps.backbone import build_backbone

    heads = solve_kmds_udg(udg1000, k=1, seed=0).members
    benchmark(build_backbone, udg1000, heads)


def test_tdma_scheduling(benchmark, udg1000):
    from repro.apps.scheduling import assign_slots

    heads = solve_kmds_udg(udg1000, k=2, seed=0).members
    benchmark(assign_slots, udg1000, heads)


def test_alpha_synchronizer(benchmark):
    from repro.core.fractional import FractionalNode
    from repro.graphs.properties import max_degree
    from repro.simulation.asynchrony import run_protocol_async
    from repro.simulation.network import SynchronousNetwork

    g = gnp_graph(60, 0.1, seed=5)
    cov = feasible_coverage(g, 1)
    delta = max_degree(g)

    def run():
        procs = [FractionalNode(v, cov[v], delta, 2, False) for v in g.nodes]
        net = SynchronousNetwork(g, procs, seed=0)
        run_protocol_async(net, delay_seed=0)

    benchmark(run)


def test_beta_synchronizer(benchmark):
    from repro.core.fractional import FractionalNode
    from repro.graphs.properties import max_degree
    from repro.simulation.beta import run_protocol_beta
    from repro.simulation.network import SynchronousNetwork

    g = gnp_graph(60, 0.1, seed=5)
    cov = feasible_coverage(g, 1)
    delta = max_degree(g)

    def run():
        procs = [FractionalNode(v, cov[v], delta, 2, False) for v in g.nodes]
        net = SynchronousNetwork(g, procs, seed=0)
        run_protocol_beta(net, delay_seed=0)

    benchmark(run)


def test_weighted_pipeline(benchmark, gnp300):
    import numpy as np

    from repro.weighted import solve_weighted_kmds

    g, cov = gnp300
    rng = np.random.default_rng(0)
    weights = {v: float(rng.uniform(1, 10)) for v in g.nodes}
    benchmark(solve_weighted_kmds, g, weights, coverage=cov, t=2, seed=0)


def test_leaders_per_disk_probe(benchmark, udg1000):
    from repro.graphs.hexcover import leaders_per_disk

    heads = sorted(solve_kmds_udg(udg1000, k=1, seed=0).members)
    benchmark(leaders_per_disk, udg1000.points, heads,
              disk_radius=0.5, grid_step=0.5)


def test_exact_solver_small(benchmark):
    from repro.baselines.exact import exact_kmds

    g = gnp_graph(25, 0.2, seed=6)
    benchmark(exact_kmds, g, 2, convention="open")
