"""Benchmark E14: Section 4.1 remark — weighted k-MDS extension.

Regenerates the E14 table of EXPERIMENTS.md and asserts the claim
checks.  See repro/experiments/ for the implementation.
"""

from benchmarks.conftest import run_and_check


def test_e14(benchmark):
    run_and_check(benchmark, "e14")
