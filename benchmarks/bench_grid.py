"""Grid-batch benchmark: ``execute_grid`` vs the per-point
``execute_batch`` double loop (and vs the pre-grid tree).

A parameter study — G topologies x k in {1,2,3} x R seeds of
Algorithm 3 — used to be G*K replica-batched calls: G*K artifact
builds, G*K Part I election passes, G*K stream pools.  The grid
dispatch (:func:`repro.engine.backends.execute_grid`, surfaced for UDG
instances as :func:`repro.core.udg.solve_kmds_udg_grid`) stacks the
topologies into one block-diagonal CSR, fuses the k axis over a single
shared Part I (elections are k-independent), and widens the vecrng pool
to one lane per (replica, graph, node).  This benchmark times the same
grid two ways:

- **per-point** — the ``solve_kmds_udg_batch(g, seeds, k=k)`` double
  loop, exactly what ``analysis.sweep`` and the E-series grids did
  before the grid path existed, running in-tree.  Asserted bit-identical
  to the grid run (per-cell members and ``RunStats``) before any
  speedup is reported.
- **grid** — one ``solve_kmds_udg_grid(graphs, seeds, ks)`` call.

The in-tree ratio *understates* the end-to-end win because the
per-point loop shares this tree's other improvements (the fused native
adoption kernel, slab threading, cheap generator materialization).
Pass ``--before PATH/src`` pointing at a checkout of the pre-grid tree
(e.g. ``git worktree add .bench-before <base>``) to measure the true
before/after ratio in a subprocess; the acceptance threshold — grid
>= 3x the pre-grid tree on the 10x3x10 grid at n=10^4 — is checked
only then.  Without ``--before``, the in-tree ratio is held to a
regression guard (per scale, see ``SCALES``) so CI fails fast if the
grid path decays.

Run standalone (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_grid.py --scale smoke \
        --out BENCH_grid.json

``--scale full`` runs the acceptance cell (10 graphs, n=10^4, 10
seeds).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.core.udg import solve_kmds_udg_batch, solve_kmds_udg_grid
from repro.graphs.udg import random_udg

try:
    from benchmarks.bench_common import (record_check, run_before_scenario,
                                         timed_best, write_report)
except ImportError:  # run standalone: benchmarks/ itself is on sys.path
    from bench_common import (record_check, run_before_scenario, timed_best,
                              write_report)

SCALES = {
    # (graphs, n, replicas) cells; the in-tree guard is checked on the
    # last cell.
    "smoke": {"cells": ((3, 2000, 4),), "guard": 1.3},
    "full": {"cells": ((3, 2000, 4), (10, 10_000, 10)), "guard": 1.5},
}
#: The --before acceptance threshold, checked at this cell when present.
ACCEPTANCE_GRAPHS = 10
ACCEPTANCE_N = 10_000
ACCEPTANCE_REPLICAS = 10
ACCEPTANCE_SPEEDUP = 3.0      # vs the pre-grid tree (--before)

DENSITY = 10.0
KS = (1, 2, 3)

#: The scenario, as a standalone script: also run under the pre-grid
#: tree's PYTHONPATH (which predates ``solve_kmds_udg_grid``), so it
#: uses only the replica-batched entry point it already has.  Results
#: come back flattened in (graph, k, replica) order for the
#: bit-identity cross-check.
_SUBPROCESS_SCRIPT = r'''
import json, time
from repro.core.udg import solve_kmds_udg_batch
from repro.graphs.udg import random_udg
graphs = [random_udg({n}, density={density}, seed={seed} + g)
          for g in range({n_graphs})]
seeds = list(range({replicas}))
ks = {ks}
def sweep():
    return [sol for g in graphs for k in ks
            for sol in solve_kmds_udg_batch(g, seeds, k=k)]
sols = sweep()
times = []
for _ in range({repeats}):
    t0 = time.perf_counter()
    sols = sweep()
    times.append(time.perf_counter() - t0)
print(json.dumps({{"seconds": min(times),
                   "members_len": [len(s.members) for s in sols],
                   "members_sum": [sum(s.members) for s in sols],
                   "rounds": [s.stats.rounds for s in sols],
                   "messages": [s.stats.messages_sent for s in sols]}}))
'''


def flatten(grid_sols) -> list:
    """``results[graph][k][seed]`` -> flat (graph, k, replica) order."""
    return [sol for per_graph in grid_sols for per_k in per_graph
            for sol in per_k]


def assert_equivalent(point_sols, grid_sols) -> None:
    """Every cell's members and RunStats must match exactly."""
    if len(point_sols) != len(grid_sols):
        raise AssertionError("grid cell count diverged")
    for i, (pt, gr) in enumerate(zip(point_sols, grid_sols)):
        if pt.members != gr.members:
            raise AssertionError(
                f"cell {i}: grid members diverged from per-point")
        if pt.stats != gr.stats:
            raise AssertionError(
                f"cell {i}: RunStats diverged: per-point={pt.stats} "
                f"grid={gr.stats}")


def run_before(before_src: str, *, n_graphs: int, n: int, replicas: int,
               seed: int, repeats: int) -> dict:
    """Time the same grid under the pre-grid tree in a subprocess
    (its own import universe)."""
    return run_before_scenario(before_src, _SUBPROCESS_SCRIPT,
                               n_graphs=n_graphs, n=n, density=DENSITY,
                               seed=seed, ks=tuple(KS), replicas=replicas,
                               repeats=repeats)


def measure(n_graphs: int, n: int, replicas: int, *, seed: int,
            repeats: int, before_src: Optional[str]) -> dict:
    graphs = [random_udg(n, density=DENSITY, seed=seed + g)
              for g in range(n_graphs)]
    seeds = list(range(replicas))
    # Warm once (distance CSRs, stacked artifacts, native kernel build)
    # before timing either path.
    solve_kmds_udg_grid(graphs, seeds, KS)
    # The before subprocess runs *first*: its own graph build dominates
    # its wall clock, so timing the in-tree paths immediately after it
    # returns keeps both measurements inside the same machine phase
    # (shared-runner throughput drifts over multi-minute spans).
    before = None
    if before_src is not None:
        before = run_before(before_src, n_graphs=n_graphs, n=n,
                            replicas=replicas, seed=seed, repeats=repeats)
    timing: dict = {}
    grid_time, grid_sols = timed_best(
        lambda: solve_kmds_udg_grid(graphs, seeds, KS, timing=timing),
        repeats)
    point_time, point_sols = timed_best(
        lambda: [sol for g in graphs for k in KS
                 for sol in solve_kmds_udg_batch(g, seeds, k=k)],
        repeats)
    grid_flat = flatten(grid_sols)
    assert_equivalent(point_sols, grid_flat)
    row = {
        "graphs": n_graphs,
        "n": n,
        "replicas": replicas,
        "ks": list(KS),
        "members_mean": (sum(len(s.members) for s in grid_flat)
                         / len(grid_flat)),
        "rounds_max": max(s.stats.rounds for s in grid_flat),
        "dispatch": timing,
        "grid_seconds": grid_time,
        "per_point_seconds": point_time,
        "intree_speedup": point_time / grid_time if grid_time > 0 else None,
        "before_seconds": None,
        "speedup_vs_before": None,
    }
    if before is not None:
        expected = {
            "members_len": [len(s.members) for s in grid_flat],
            "members_sum": [sum(s.members) for s in grid_flat],
            "rounds": [s.stats.rounds for s in grid_flat],
            "messages": [s.stats.messages_sent for s in grid_flat],
        }
        for key, want in expected.items():
            if before[key] != want:
                raise AssertionError(
                    f"grid {key} diverged from pre-grid tree")
        row["before_seconds"] = before["seconds"]
        row["speedup_vs_before"] = (before["seconds"] / grid_time
                                    if grid_time > 0 else None)
    return row


def main(argv: Optional[list] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--scale", choices=sorted(SCALES), default="smoke")
    ap.add_argument("--out", default=None, help="write JSON results here")
    ap.add_argument("--repeats", type=int, default=3,
                    help="timing repeats per configuration (best-of)")
    ap.add_argument("--seed", type=int, default=100,
                    help="deployment seed base (graph g uses seed+g; "
                         "algorithm seeds are 0..R-1)")
    ap.add_argument("--before", default=None, metavar="SRC",
                    help="src/ directory of a pre-grid checkout; "
                         "enables the 3x acceptance check")
    args = ap.parse_args(argv)

    cfg = SCALES[args.scale]
    guard = cfg["guard"]
    rows = []
    for n_graphs, n, replicas in cfg["cells"]:
        row = measure(n_graphs, n, replicas, seed=args.seed,
                      repeats=args.repeats, before_src=args.before)
        rows.append(row)
        before = (f"{row['speedup_vs_before']:.2f}x"
                  if row["speedup_vs_before"] else "n/a")
        print(f"G={n_graphs:>2} n={n:>6} R={replicas:>3}  "
              f"grid {row['grid_seconds']:.4f}s"
              f"  vs per-point loop: {row['intree_speedup']:.2f}x  "
              f"vs pre-grid tree: {before}  "
              f"({row['members_mean']:.1f} mean members / "
              f"{row['rounds_max']} max rounds)")

    report = {
        "benchmark": "grid",
        "scale": args.scale,
        "scenario": {"density": DENSITY, "ks": list(KS), "seed": args.seed},
        "acceptance": {
            "graphs": ACCEPTANCE_GRAPHS,
            "n": ACCEPTANCE_N,
            "replicas": ACCEPTANCE_REPLICAS,
            "threshold_vs_before": ACCEPTANCE_SPEEDUP,
            "intree_guard": guard,
        },
        "rows": rows,
    }
    failed = False
    for row in rows:
        if args.before is not None and (
                (row["graphs"], row["n"], row["replicas"])
                == (ACCEPTANCE_GRAPHS, ACCEPTANCE_N, ACCEPTANCE_REPLICAS)):
            failed |= not record_check(
                report,
                title=f"acceptance at G={ACCEPTANCE_GRAPHS} "
                      f"n={ACCEPTANCE_N} R={ACCEPTANCE_REPLICAS}",
                key="speedup_vs_before", passed_key="passed",
                speedup=row["speedup_vs_before"],
                threshold=ACCEPTANCE_SPEEDUP, vs="pre-grid")
    # The in-tree guard runs on the last (largest) cell of the scale.
    last = rows[-1]
    failed |= not record_check(
        report,
        title=f"in-tree guard at G={last['graphs']} n={last['n']} "
              f"R={last['replicas']}",
        key="intree_speedup", passed_key="guard_passed",
        speedup=last["intree_speedup"], threshold=guard,
        vs="per-point loop")
    if args.out:
        write_report(report, args.out)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
