"""Benchmark suite: one module per paper claim (E1-E13) plus
micro-benchmarks of the core primitives.  Run with
``pytest benchmarks/ --benchmark-only``."""
