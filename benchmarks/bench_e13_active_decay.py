"""Benchmark E13: Lemmas 5.2/5.5 — active-node decay and leader density.

Regenerates the E13 table of EXPERIMENTS.md and asserts the paper's
claim checks.  See repro/experiments/ for the implementation.
"""

from benchmarks.conftest import run_and_check


def test_e13(benchmark):
    run_and_check(benchmark, "e13")
