"""Benchmark E18: Section 1 application claims — backbone, routing, data
collection.

Regenerates the E18 table of EXPERIMENTS.md and asserts the claim
checks.  See repro/experiments/ for the implementation.
"""

from benchmarks.conftest import run_and_check


def test_e18(benchmark):
    run_and_check(benchmark, "e18")
