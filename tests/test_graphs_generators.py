"""Unit tests for the general-graph generators."""

import networkx as nx
import pytest

from repro.errors import GraphError
from repro.graphs.generators import (
    caterpillar_graph,
    complete_graph,
    gnp_graph,
    graph_suite,
    grid_graph,
    path_graph,
    powerlaw_graph,
    random_regular_graph,
    star_graph,
)


class TestGenerators:
    def test_gnp_sizes(self):
        g = gnp_graph(50, 0.1, seed=0)
        assert g.number_of_nodes() == 50

    def test_gnp_determinism(self):
        a = gnp_graph(40, 0.2, seed=7)
        b = gnp_graph(40, 0.2, seed=7)
        assert set(a.edges) == set(b.edges)

    def test_gnp_bad_probability(self):
        with pytest.raises(GraphError):
            gnp_graph(10, 1.5)

    def test_integer_labels(self):
        for name, g in graph_suite("tiny"):
            assert set(g.nodes) == set(range(g.number_of_nodes())), name

    def test_no_self_loops(self):
        for name, g in graph_suite("tiny"):
            assert nx.number_of_selfloops(g) == 0, name

    def test_regular_degrees(self):
        g = random_regular_graph(20, 4, seed=1)
        assert all(d == 4 for _, d in g.degree)

    def test_regular_invalid(self):
        with pytest.raises(GraphError):
            random_regular_graph(5, 5)
        with pytest.raises(GraphError):
            random_regular_graph(5, 3)  # n*d odd

    def test_powerlaw_heavy_tail(self):
        g = powerlaw_graph(300, 2, seed=3)
        degs = sorted((d for _, d in g.degree), reverse=True)
        assert degs[0] >= 4 * degs[len(degs) // 2]

    def test_powerlaw_invalid(self):
        with pytest.raises(GraphError):
            powerlaw_graph(3, 5)

    def test_grid_structure(self):
        g = grid_graph(4, 6)
        assert g.number_of_nodes() == 24
        assert g.number_of_edges() == 4 * 5 + 6 * 3

    def test_grid_invalid(self):
        with pytest.raises(GraphError):
            grid_graph(0, 5)

    def test_path(self):
        g = path_graph(5)
        assert g.number_of_edges() == 4

    def test_star(self):
        g = star_graph(7)
        degs = sorted(d for _, d in g.degree)
        assert degs == [1] * 7 + [7]

    def test_star_invalid(self):
        with pytest.raises(GraphError):
            star_graph(-1)

    def test_complete(self):
        g = complete_graph(6)
        assert g.number_of_edges() == 15

    def test_caterpillar_structure(self):
        g = caterpillar_graph(5, 3)
        assert g.number_of_nodes() == 5 + 15
        leaves = [v for v, d in g.degree if d == 1]
        assert len(leaves) == 15  # the legs; spine ends carry legs too

    def test_caterpillar_no_legs(self):
        g = caterpillar_graph(4, 0)
        assert g.number_of_nodes() == 4

    def test_caterpillar_invalid(self):
        with pytest.raises(GraphError):
            caterpillar_graph(0)
        with pytest.raises(GraphError):
            caterpillar_graph(3, -1)


class TestSuite:
    def test_scales(self):
        for scale in ("tiny", "small", "medium"):
            names = [name for name, _ in graph_suite(scale)]
            assert len(names) == 6
            assert len(set(names)) == 6

    def test_unknown_scale(self):
        with pytest.raises(GraphError, match="unknown scale"):
            list(graph_suite("huge"))

    def test_deterministic(self):
        a = {name: set(g.edges) for name, g in graph_suite("tiny", seed=4)}
        b = {name: set(g.edges) for name, g in graph_suite("tiny", seed=4)}
        assert a == b
