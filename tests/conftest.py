"""Shared fixtures for the test suite."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.graphs.generators import gnp_graph, grid_graph, star_graph
from repro.graphs.udg import random_udg


@pytest.fixture
def small_gnp():
    """A modest connected-ish random graph (n=40)."""
    return gnp_graph(40, 0.15, seed=11)


@pytest.fixture
def tiny_gnp():
    """A tiny random graph for exact-solver comparisons (n=16)."""
    return gnp_graph(16, 0.3, seed=5)


@pytest.fixture
def grid5():
    """5x5 grid."""
    return grid_graph(5, 5)


@pytest.fixture
def star10():
    """Star with 10 leaves."""
    return star_graph(10)


@pytest.fixture
def udg200():
    """A random unit disk graph with 200 nodes at density 10."""
    return random_udg(200, density=10.0, seed=42)


@pytest.fixture
def udg_tiny():
    """A random unit disk graph with 30 nodes (exact-solver friendly)."""
    return random_udg(30, density=8.0, seed=7)


@pytest.fixture
def triangle():
    """K3 as a plain networkx graph."""
    g = nx.Graph()
    g.add_edges_from([(0, 1), (1, 2), (0, 2)])
    return g


@pytest.fixture
def path4():
    """Path 0-1-2-3."""
    g = nx.path_graph(4)
    return g
