"""Unit tests for the LP-optimum and exact branch-and-bound baselines."""

import networkx as nx
import pytest

from repro.baselines.exact import exact_kmds
from repro.baselines.greedy import greedy_kmds
from repro.baselines.lp_opt import lp_optimum
from repro.core.verify import is_k_dominating_set
from repro.errors import BudgetExceededError, GraphError, InfeasibleInstanceError
from repro.graphs.generators import gnp_graph, grid_graph
from repro.graphs.properties import feasible_coverage


class TestLPOptimum:
    def test_triangle_k1(self, triangle):
        # Closed convention: sum over N[v] (all 3 nodes) >= 1 -> 1/3 each.
        res = lp_optimum(triangle, 1, convention="closed")
        assert res.objective == pytest.approx(1.0, abs=1e-6)

    def test_lp_lower_bounds_ilp(self, tiny_gnp):
        for k in (1, 2):
            cov = feasible_coverage(tiny_gnp, k)
            lp = lp_optimum(tiny_gnp, cov, convention="closed")
            ilp = exact_kmds(tiny_gnp, cov, convention="closed")
            assert lp.objective <= len(ilp) + 1e-6

    def test_open_le_closed(self, tiny_gnp):
        cov = feasible_coverage(tiny_gnp, 2)
        open_lp = lp_optimum(tiny_gnp, cov, convention="open")
        closed_lp = lp_optimum(tiny_gnp, cov, convention="closed")
        assert open_lp.objective <= closed_lp.objective + 1e-6

    def test_x_within_box(self, tiny_gnp):
        res = lp_optimum(tiny_gnp, 1)
        assert all(-1e-9 <= x <= 1 + 1e-9 for x in res.x.values())

    def test_empty_graph(self):
        res = lp_optimum(nx.Graph(), 1)
        assert res.objective == 0.0

    def test_k0_zero(self, triangle):
        assert lp_optimum(triangle, 0).objective == pytest.approx(0.0)

    def test_unknown_convention(self, triangle):
        with pytest.raises(GraphError):
            lp_optimum(triangle, 1, convention="diag")

    def test_scales_with_k(self, tiny_gnp):
        cov1 = feasible_coverage(tiny_gnp, 1)
        cov3 = feasible_coverage(tiny_gnp, 3)
        assert lp_optimum(tiny_gnp, cov3).objective >= \
            lp_optimum(tiny_gnp, cov1).objective


class TestExact:
    def test_grid_6x6_known_optimum(self):
        g = grid_graph(6, 6)
        assert len(exact_kmds(g, 1, convention="open")) == 10

    def test_path_known_optimum(self):
        # Domination number of P_n is ceil(n/3).
        for n in (3, 4, 6, 7, 9):
            g = nx.path_graph(n)
            assert len(exact_kmds(g, 1, convention="open")) == -(-n // 3)

    def test_cycle_known_optimum(self):
        for n in (3, 5, 6, 9):
            g = nx.cycle_graph(n)
            assert len(exact_kmds(g, 1, convention="open")) == -(-n // 3)

    def test_star_optimum(self, star10):
        assert len(exact_kmds(star10, 1, convention="open")) == 1

    def test_never_beaten_by_greedy(self, tiny_gnp):
        for k in (1, 2):
            for conv in ("open", "closed"):
                cov = feasible_coverage(tiny_gnp, k)
                opt = exact_kmds(tiny_gnp, cov, convention=conv)
                greedy = greedy_kmds(tiny_gnp, cov, convention=conv)
                assert len(opt) <= len(greedy)
                assert is_k_dominating_set(tiny_gnp, opt.members, cov,
                                           convention=conv)

    def test_k2_at_least_two(self, tiny_gnp):
        cov = feasible_coverage(tiny_gnp, 2)
        assert len(exact_kmds(tiny_gnp, cov, convention="closed")) >= 2

    def test_closed_infeasible(self, path4):
        with pytest.raises(InfeasibleInstanceError):
            exact_kmds(path4, 3, convention="closed")

    def test_budget_exceeded_carries_incumbent(self):
        g = gnp_graph(40, 0.15, seed=2)
        with pytest.raises(BudgetExceededError) as exc:
            exact_kmds(g, 2, node_budget=1)
        assert exc.value.incumbent is not None
        assert is_k_dominating_set(g, exc.value.incumbent, 2)

    def test_empty_graph(self):
        assert exact_kmds(nx.Graph(), 1).members == set()

    def test_details(self, tiny_gnp):
        res = exact_kmds(tiny_gnp, 1)
        assert res.details["bnb_nodes"] >= 1
        assert res.details["lp_solves"] >= 0

    def test_unknown_convention(self, triangle):
        with pytest.raises(GraphError):
            exact_kmds(triangle, 1, convention="mystery")

    def test_matches_bruteforce(self):
        """Cross-check against exhaustive search on very small graphs."""
        import itertools

        for seed in range(4):
            g = gnp_graph(9, 0.3, seed=seed)
            for k in (1, 2):
                best = None
                nodes = list(g.nodes)
                for r in range(len(nodes) + 1):
                    for combo in itertools.combinations(nodes, r):
                        if is_k_dominating_set(g, set(combo), k,
                                               convention="open"):
                            best = r
                            break
                    if best is not None:
                        break
                res = exact_kmds(g, k, convention="open")
                assert len(res) == best, (seed, k)
