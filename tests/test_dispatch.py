"""The kernel provider registry (repro.engine.dispatch).

Three planes of coverage:

- the degradation matrix: every REPRO_KERNEL_BACKEND value resolves (or
  fails) exactly as documented — unknown names raise, forcing an
  unavailable provider raises instead of silently falling back, auto
  walks native -> numba -> numpy with per-entry size gates;
- provider equality: the coverage-plane kernels produce bit-identical
  results under every available provider and thread count, pinned at
  2^16 lanes (the acceptance shape's structure at test-sized n);
- the introspection surfaces: provider_status(), ``repro kernels``, and
  the ExperimentReport.timing stamp.

The numba legs skip cleanly when numba is absent (the container ships
without it; the best-effort CI leg installs it when the index allows).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import _native
from repro.cli import main
from repro.engine import dispatch, kernels
from repro.engine.artifacts import graph_artifacts, stacked_graphs
from repro.engine.dispatch import (BACKENDS, ENTRY_POINTS, MIN_SIZE,
                                   provider, provider_status)
from repro.errors import KernelBackendError
from repro.graphs.generators import gnp_graph

HAS_NATIVE = _native.available()
HAS_NUMBA = dispatch._numba_module() is not None

needs_native = pytest.mark.skipif(not HAS_NATIVE,
                                  reason="compiled kernels unavailable")
needs_numba = pytest.mark.skipif(not HAS_NUMBA,
                                 reason="numba not installed")


@pytest.fixture
def auto(monkeypatch):
    monkeypatch.delenv("REPRO_KERNEL_BACKEND", raising=False)


# ----------------------------------------------------------------------
# Backend selection: the degradation matrix
# ----------------------------------------------------------------------

class TestBackendSelection:
    def test_default_is_auto(self, auto):
        assert dispatch.backend() == "auto"

    @pytest.mark.parametrize("name", BACKENDS)
    def test_known_names_parse(self, monkeypatch, name):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", name)
        assert dispatch.backend() == name

    def test_whitespace_and_case_normalize(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "  NumPy ")
        assert dispatch.backend() == "numpy"

    def test_unknown_name_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "cuda")
        with pytest.raises(KernelBackendError, match="cuda"):
            dispatch.backend()

    def test_unknown_entry_raises(self, auto):
        with pytest.raises(KernelBackendError, match="entry point"):
            provider("matmul")

    def test_numpy_forced_serves_reference_everywhere(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "numpy")
        for entry in ENTRY_POINTS:
            assert provider(entry) == ("numpy", None)

    def test_native_forced_unavailable_raises(self, monkeypatch):
        # Forcing never falls back silently: with the compiled runtime
        # disabled, REPRO_KERNEL_BACKEND=native is an explicit failure.
        monkeypatch.setattr(_native, "_lib", None)
        monkeypatch.setattr(_native, "_tried", False)
        monkeypatch.setenv("REPRO_NATIVE", "0")
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "native")
        with pytest.raises(KernelBackendError, match="native"):
            provider("member_counts")

    @needs_native
    def test_native_forced_bypasses_size_gate(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "native")
        name, impl = provider("member_counts", size=1)
        assert name == "native" and impl is not None

    def test_numba_forced_absent_raises(self, monkeypatch):
        if HAS_NUMBA:
            pytest.skip("numba installed; absence leg not testable")
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "numba")
        with pytest.raises(KernelBackendError, match="numba"):
            provider("member_counts")

    @needs_numba
    def test_numba_forced_serves_coverage_plane(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "numba")
        name, impl = provider("member_counts")
        assert name == "numba" and impl is not None

    @needs_numba
    def test_numba_forced_outside_surface_is_numpy(self, monkeypatch):
        # The RNG limb kernels have no numba implementation; under a
        # forced numba backend they run their numpy reference (the only
        # other bit-exact implementation), not an error.
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "numba")
        assert provider("seed_lanes") == ("numpy", None)

    def test_auto_size_gate(self, auto):
        for entry in ENTRY_POINTS:
            if MIN_SIZE[entry] > 1:
                assert provider(entry, size=MIN_SIZE[entry] - 1) \
                    == ("numpy", None)

    @needs_native
    def test_auto_prefers_native(self, auto):
        name, impl = provider("member_counts", size=1 << 20)
        assert name == "native" and impl is not None

    def test_auto_chain_order_without_native(self, auto, monkeypatch):
        monkeypatch.setattr(_native, "_lib", None)
        monkeypatch.setattr(_native, "_tried", False)
        monkeypatch.setenv("REPRO_NATIVE", "0")
        name, impl = provider("member_counts", size=1 << 20)
        if HAS_NUMBA:
            assert name == "numba" and impl is not None
        else:
            assert (name, impl) == ("numpy", None)
        # Entries outside the numba surface drop straight to numpy.
        assert provider("seed_lanes", size=1 << 20) == ("numpy", None)


# ----------------------------------------------------------------------
# Provider equality at 2^16 lanes
# ----------------------------------------------------------------------

N = 4096      # nodes
R = 16        # replicas -> R * N = 2^16 lanes


@pytest.fixture(scope="module")
def plane():
    art = graph_artifacts(gnp_graph(N, 0.002, seed=7))
    rng = np.random.default_rng(11)
    masks = rng.random((R, N)) < 0.25
    return art, masks


def _backends():
    avail = ["numpy"]
    if HAS_NATIVE:
        avail.append("native")
    if HAS_NUMBA:
        avail.append("numba")
    return avail


class TestProviderEquality:
    """Every provider computes the same exact integers: 0/1 indicators
    make row sums exact small counts in any accumulation order, so
    equality here is bit-for-bit, not approximate."""

    @pytest.mark.parametrize("convention", ["open", "closed"])
    def test_member_counts_batch(self, plane, monkeypatch, convention):
        art, masks = plane
        results = {}
        for b in _backends():
            monkeypatch.setenv("REPRO_KERNEL_BACKEND", b)
            results[b] = kernels.member_counts_batch(
                art, indicators=masks, convention=convention)
        ref = results.pop("numpy")
        assert ref.dtype == np.int64
        for b, got in results.items():
            assert got.dtype == np.int64, b
            assert np.array_equal(got, ref), b

    def test_member_counts_single(self, plane, monkeypatch):
        art, masks = plane
        results = {}
        for b in _backends():
            monkeypatch.setenv("REPRO_KERNEL_BACKEND", b)
            results[b] = kernels.member_counts(art, indicator=masks[0])
        ref = results.pop("numpy")
        for b, got in results.items():
            assert np.array_equal(got, ref), b

    def test_member_counts_stacked(self, monkeypatch):
        graphs = [gnp_graph(512, 0.01, seed=s) for s in range(3)]
        stack = stacked_graphs(graphs)
        rng = np.random.default_rng(3)
        masks = rng.random((R, stack.total)) < 0.3
        results = {}
        for b in _backends():
            monkeypatch.setenv("REPRO_KERNEL_BACKEND", b)
            results[b] = kernels.member_counts_stacked(
                stack, indicators=masks, convention="closed")
        ref = results.pop("numpy")
        for b, got in results.items():
            assert np.array_equal(got, ref), b

    def test_deficit_vector(self, plane, monkeypatch):
        art, masks = plane
        counts = kernels.member_counts(art, indicator=masks[0])
        req_vec = np.full(art.n, 3, dtype=np.int64)
        results = {}
        for b in _backends():
            monkeypatch.setenv("REPRO_KERNEL_BACKEND", b)
            results[b] = (
                kernels.deficit_vector(art, counts, 3, member_idx=masks[0]),
                kernels.deficit_vector(art, counts, req_vec),
            )
        ref = results.pop("numpy")
        for b, got in results.items():
            assert np.array_equal(got[0], ref[0]), b
            assert np.array_equal(got[1], ref[1]), b

    def test_scatter_cover(self, plane, monkeypatch):
        art, masks = plane
        base = kernels.member_counts(art, indicator=masks[0])
        promoted = np.nonzero(masks[1])[0][:200]
        results = {}
        for b in _backends():
            monkeypatch.setenv("REPRO_KERNEL_BACKEND", b)
            cov = base.copy()
            touched = kernels.scatter_cover(cov, art, promoted)
            results[b] = (cov, touched)
        ref = results.pop("numpy")
        for b, (cov, touched) in results.items():
            # The touched list order is part of the contract (callers
            # zip it against per-promotion metadata).
            assert np.array_equal(touched, ref[1]), b
            assert np.array_equal(cov, ref[0]), b

    @needs_native
    def test_thread_count_invariance(self, plane, monkeypatch):
        # Rows are the slab axis: each output entry is written by
        # exactly one thread, so any REPRO_NATIVE_THREADS partition
        # yields the same plane.
        art, masks = plane
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "native")
        planes = []
        for t in ("1", "4"):
            monkeypatch.setenv("REPRO_NATIVE_THREADS", t)
            planes.append(kernels.member_counts_batch(
                art, indicators=masks, convention="open"))
        assert np.array_equal(planes[0], planes[1])

    @needs_native
    def test_delta_bound_guard(self, monkeypatch):
        # A star graph's hub exceeds nothing at this size, but the
        # uint16-accumulator bound is a call-site applicability guard:
        # fake a Delta past 2^16 - 1 and the batch call must take the
        # scipy path even under a forced native backend (same result).
        art = graph_artifacts(gnp_graph(256, 0.05, seed=1))
        rng = np.random.default_rng(0)
        masks = rng.random((4, art.n)) < 0.5
        ref = kernels.member_counts_batch(art, indicators=masks)
        monkeypatch.setattr(art, "delta_max", 1 << 16)
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "native")
        assert np.array_equal(
            kernels.member_counts_batch(art, indicators=masks), ref)


# ----------------------------------------------------------------------
# Introspection: provider_status, the CLI, and report stamping
# ----------------------------------------------------------------------

class TestIntrospection:
    def test_status_shape(self, auto):
        status = provider_status()
        assert status["backend"] == "auto" and status["forced"] is False
        assert set(status["entry_points"]) == set(ENTRY_POINTS)
        assert status["native"]["available"] == HAS_NATIVE
        if HAS_NATIVE:
            assert len(status["native"]["digest"]) == 16
            assert status["native"]["threads"] >= 1
        for entry, info in status["entry_points"].items():
            assert info["provider"] in ("native", "numba", "numpy")
            assert info["min_size"] == MIN_SIZE[entry]
        assert json.dumps(status)  # JSON-ready, no numpy scalars

    def test_status_reports_forced_unavailable(self, monkeypatch):
        # The diagnosis surface must not raise where the failure needs
        # diagnosing: a forced-but-unavailable backend is reported per
        # entry with the error text.
        monkeypatch.setattr(_native, "_lib", None)
        monkeypatch.setattr(_native, "_tried", False)
        monkeypatch.setenv("REPRO_NATIVE", "0")
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "native")
        status = provider_status()
        info = status["entry_points"]["member_counts"]
        assert info["provider"] == "unavailable"
        assert "native" in info["error"]

    def test_cli_kernels(self, capsys, auto):
        assert main(["kernels"]) == 0
        out = capsys.readouterr().out
        assert "backend: auto" in out
        for entry in ENTRY_POINTS:
            assert entry in out

    def test_cli_kernels_json(self, tmp_path, capsys, auto):
        path = tmp_path / "kernels.json"
        assert main(["kernels", "--json", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert set(payload["entry_points"]) == set(ENTRY_POINTS)

    def test_cli_kernels_bad_backend(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "cuda")
        assert main(["kernels"]) == 2
        assert "cuda" in capsys.readouterr().err

    def test_experiment_report_stamped(self, auto):
        from repro.experiments import run_experiment
        report = run_experiment("e2", scale="quick", seed=0)
        stamp = report.timing["kernels"]
        assert set(stamp["entry_points"]) == set(ENTRY_POINTS)
        assert stamp["backend"] == "auto"

    def test_numba_probe_reset(self, auto):
        # reset() drops the cached probe so availability flips are
        # observable (the best-effort CI leg relies on a fresh probe).
        dispatch.reset()
        assert dispatch._numba_checked is False
        assert (dispatch._numba_module() is not None) == HAS_NUMBA


# ----------------------------------------------------------------------
# The build-lock hardening rides along with the registry
# ----------------------------------------------------------------------

class TestBuildLock:
    def test_build_digest_is_stable(self):
        d1, d2 = _native.build_digest(), _native.build_digest()
        assert d1 == d2
        assert d1 is None or (len(d1) == 16
                              and all(c in "0123456789abcdef" for c in d1))

    def test_lock_is_exclusive(self, tmp_path):
        import fcntl
        with _native._build_lock(tmp_path):
            probe = open(tmp_path / ".build.lock", "w")
            with pytest.raises(OSError):
                fcntl.flock(probe, fcntl.LOCK_EX | fcntl.LOCK_NB)
            probe.close()

    def test_lock_releases(self, tmp_path):
        import fcntl
        with _native._build_lock(tmp_path):
            pass
        with open(tmp_path / ".build.lock", "w") as probe:
            fcntl.flock(probe, fcntl.LOCK_EX | fcntl.LOCK_NB)
            fcntl.flock(probe, fcntl.LOCK_UN)
