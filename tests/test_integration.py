"""Integration tests: full pipelines across modules, including fault
injection on the real simulator and the public package API."""

import networkx as nx
import pytest

import repro
from repro.baselines.exact import exact_kmds
from repro.baselines.greedy import greedy_kmds
from repro.baselines.lp_opt import lp_optimum
from repro.core.fractional import FractionalNode, fractional_kmds
from repro.core.general import solve_kmds_general
from repro.core.udg import solve_kmds_udg
from repro.core.verify import is_k_dominating_set
from repro.graphs.generators import gnp_graph
from repro.graphs.properties import feasible_coverage, max_degree
from repro.graphs.udg import random_udg
from repro.simulation.faults import CrashFaultInjector, MessageLossInjector
from repro.simulation.network import SynchronousNetwork
from repro.simulation.runner import run_protocol


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_quickstart_from_docstring(self):
        udg = repro.random_udg(200, seed=1)
        ds = repro.solve_kmds_udg(udg, k=3, seed=7)
        assert repro.is_k_dominating_set(udg, ds.members, 3)

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_general_api(self):
        g = repro.gnp_graph(50, 0.15, seed=2)
        cov = repro.feasible_coverage(g, 2)
        res = repro.solve_kmds_general(g, coverage=cov, t=3, seed=0)
        assert repro.is_k_dominating_set(g, res.members, cov,
                                         convention="closed")


class TestOptimalityChain:
    """LP_OPT <= ILP_OPT <= every algorithm's solution size."""

    @pytest.mark.parametrize("k", [1, 2])
    def test_chain_general(self, tiny_gnp, k):
        cov = feasible_coverage(tiny_gnp, k)
        lp = lp_optimum(tiny_gnp, cov, convention="closed").objective
        ilp = len(exact_kmds(tiny_gnp, cov, convention="closed"))
        greedy = len(greedy_kmds(tiny_gnp, cov, convention="closed"))
        pipeline = solve_kmds_general(tiny_gnp, coverage=cov, t=3,
                                      seed=0).size
        assert lp <= ilp + 1e-6
        assert ilp <= greedy
        assert ilp <= pipeline

    def test_chain_udg(self, udg_tiny):
        ilp = len(exact_kmds(udg_tiny.nx, 1, convention="open"))
        alg3 = len(solve_kmds_udg(udg_tiny, k=1, seed=0))
        assert ilp <= alg3

    def test_fractional_below_integral(self, tiny_gnp):
        cov = feasible_coverage(tiny_gnp, 1)
        frac = fractional_kmds(tiny_gnp, coverage=cov, t=6)
        lp = lp_optimum(tiny_gnp, cov, convention="closed").objective
        # Algorithm 1 approximates the LP from above.
        assert frac.objective >= lp - 1e-6


class TestFaultInjectionIntegration:
    def test_algorithm1_survives_message_loss(self):
        """Under light message loss the fractional x may be degraded but
        the protocol must still terminate without crashing."""
        g = gnp_graph(20, 0.3, seed=1)
        cov = feasible_coverage(g, 1)
        delta = max_degree(g)
        procs = [FractionalNode(v, cov[v], delta, 2, False) for v in g.nodes]
        net = SynchronousNetwork(g, procs, seed=0)
        stats = run_protocol(net, injectors=[MessageLossInjector(0.1, seed=4)],
                             max_rounds=50)
        assert stats.rounds == 8  # schedule is fixed regardless of loss

    def test_algorithm1_with_crashes_terminates(self):
        g = gnp_graph(20, 0.3, seed=2)
        cov = feasible_coverage(g, 1)
        delta = max_degree(g)
        procs = [FractionalNode(v, cov[v], delta, 2, False) for v in g.nodes]
        net = SynchronousNetwork(g, procs, seed=0)
        injector = CrashFaultInjector({3: [0, 1]})
        stats = run_protocol(net, injectors=[injector], max_rounds=50)
        crashed = [p for p in procs if p.crashed]
        assert len(crashed) == 2
        assert all(p.finished for p in procs if not p.crashed)

    def test_survivors_recluster(self):
        """Kill dominators, rerun clustering on the survivor graph, and
        verify the survivors get covered again — the operational loop a
        sensor network would run."""
        udg = random_udg(150, density=12.0, seed=9)
        ds = solve_kmds_udg(udg, k=1, seed=0)
        killed = set(list(sorted(ds.members))[::2])
        survivors = [v for v in range(udg.n) if v not in killed]
        sub_pts = [tuple(udg.points[v]) for v in survivors]
        sub = repro.udg_from_points(sub_pts)
        ds2 = solve_kmds_udg(sub, k=1, seed=1)
        assert is_k_dominating_set(sub, ds2.members, 1)


class TestCrossConventionConsistency:
    def test_pipeline_closed_output_valid_open(self, small_gnp):
        cov = feasible_coverage(small_gnp, 2)
        res = solve_kmds_general(small_gnp, coverage=cov, t=3, seed=0)
        assert is_k_dominating_set(small_gnp, res.members, cov,
                                   convention="open")

    def test_udg_solution_on_nx_view(self, udg200):
        ds = solve_kmds_udg(udg200, k=2, seed=0)
        # Verification through the raw networkx graph agrees.
        assert is_k_dominating_set(udg200.nx, ds.members, 2)


class TestDeterminismEndToEnd:
    def test_full_pipeline_reproducible(self):
        g = gnp_graph(60, 0.1, seed=5)
        cov = feasible_coverage(g, 2)
        a = solve_kmds_general(g, coverage=cov, t=3, seed=123)
        b = solve_kmds_general(g, coverage=cov, t=3, seed=123)
        assert a.members == b.members

    def test_udg_reproducible_across_modes_and_runs(self):
        udg = random_udg(100, density=10.0, seed=3)
        runs = [solve_kmds_udg(udg, k=2, mode=m, seed=77).members
                for m in ("direct", "message", "direct")]
        assert runs[0] == runs[1] == runs[2]
