"""Unit tests for the SynchronousNetwork topology/delivery layer."""

import networkx as nx
import pytest

from repro.core.fractional import ColorMsg
from repro.errors import GeometryError, ProtocolViolationError, SimulationError
from repro.graphs.udg import random_udg
from repro.simulation.network import SynchronousNetwork
from repro.simulation.node import NodeProcess


class Idle(NodeProcess):
    def run(self, ctx):
        yield


def _net(graph, **kw):
    return SynchronousNetwork(graph, [Idle(v) for v in graph.nodes], **kw)


class TestConstruction:
    def test_accepts_nx_graph(self, triangle):
        net = _net(triangle)
        assert net.n == 3

    def test_accepts_udg_wrapper(self):
        udg = random_udg(20, seed=0)
        net = SynchronousNetwork(udg, [Idle(v) for v in range(20)])
        assert net.n == 20
        assert net.is_geometric

    def test_rejects_non_graph(self):
        with pytest.raises(SimulationError, match="expected a networkx.Graph"):
            SynchronousNetwork([1, 2, 3], [])

    def test_rejects_missing_process(self, triangle):
        with pytest.raises(SimulationError, match="no process supplied"):
            SynchronousNetwork(triangle, [Idle(0), Idle(1)])

    def test_rejects_unknown_process(self, triangle):
        procs = [Idle(v) for v in triangle.nodes] + [Idle(99)]
        with pytest.raises(SimulationError, match="unknown node"):
            SynchronousNetwork(triangle, procs)

    def test_rejects_duplicate_process(self, triangle):
        procs = [Idle(0), Idle(0), Idle(1), Idle(2)]
        with pytest.raises(SimulationError, match="duplicate"):
            SynchronousNetwork(triangle, procs)


class TestGeometry:
    def test_plain_graph_not_geometric(self, triangle):
        assert not _net(triangle).is_geometric

    def test_distance_requires_positions(self, triangle):
        with pytest.raises(GeometryError):
            _net(triangle).distance(0, 1)

    def test_neighbors_within_requires_positions(self, triangle):
        with pytest.raises(GeometryError):
            _net(triangle).neighbors_within(0, 0.5)

    def test_distance_matches_udg(self):
        udg = random_udg(30, seed=3)
        net = SynchronousNetwork(udg, [Idle(v) for v in range(30)])
        for u, v in list(udg.nx.edges)[:10]:
            assert net.distance(u, v) == pytest.approx(udg.distance(u, v))

    def test_neighbors_within_subset_of_neighbors(self):
        udg = random_udg(50, seed=4)
        net = SynchronousNetwork(udg, [Idle(v) for v in range(50)])
        for v in range(10):
            close = set(net.neighbors_within(v, 0.4))
            assert close <= set(udg.nx.neighbors(v))
            for w in close:
                assert net.distance(v, w) <= 0.4


class TestMessaging:
    def test_enqueue_to_non_neighbor_raises(self, path4):
        net = _net(path4)
        ctx = net.make_context(0)
        with pytest.raises(ProtocolViolationError, match="non-neighbor"):
            ctx.send(3, ColorMsg(gray=True))

    def test_non_message_payload_rejected(self, path4):
        net = _net(path4)
        ctx = net.make_context(0)
        with pytest.raises(ProtocolViolationError, match="non-Message"):
            ctx.send(1, "hello")

    def test_broadcast_reaches_all_neighbors(self, path4):
        net = _net(path4)
        ctx = net.make_context(1)
        ctx.broadcast(ColorMsg(gray=False))
        sent = net.drain_outbox()
        assert {dest for _, dest, _ in sent} == {0, 2}

    def test_drain_outbox_empties(self, path4):
        net = _net(path4)
        ctx = net.make_context(1)
        ctx.broadcast(ColorMsg(gray=False))
        net.drain_outbox()
        assert net.drain_outbox() == []

    def test_group_by_dest(self, path4):
        net = _net(path4)
        msgs = [(0, 1, ColorMsg(gray=True)), (2, 1, ColorMsg(gray=False))]
        inboxes = net.group_by_dest(msgs)
        assert len(inboxes[1]) == 2

    def test_sorted_neighbors_stable(self, path4):
        net = _net(path4)
        assert net.sorted_neighbors(1) == (0, 2)
        assert net.sorted_neighbors(1) == (0, 2)


class TestStrictMessageBudget:
    def test_within_budget_passes(self, path4):
        import math

        from repro.simulation.runner import run_protocol
        from repro.core.fractional import ColorMsg

        class Chatty(NodeProcess):
            def run(self, ctx):
                ctx.broadcast(ColorMsg(gray=True))
                yield

        budget = 8 * math.ceil(math.log2(5))
        net = SynchronousNetwork(path4, [Chatty(v) for v in path4.nodes],
                                 strict_message_bits=budget)
        run_protocol(net)

    def test_oversized_message_rejected(self, path4):
        from repro.core.fractional import XUpdateMsg

        net = SynchronousNetwork(path4, [Idle(v) for v in path4.nodes],
                                 strict_message_bits=3)
        ctx = net.make_context(0)
        with pytest.raises(ProtocolViolationError, match="strict budget"):
            ctx.send(1, XUpdateMsg(x=0.1, x_plus=0.1, dyn=1))

    def test_all_core_protocols_fit_16_log_n(self):
        """Enforce (not just measure) the paper's message budget on all
        three algorithms."""
        import math

        from repro.core.fractional import FractionalNode
        from repro.core.udg import UDGNode
        from repro.graphs.properties import feasible_coverage, max_degree
        from repro.graphs.generators import gnp_graph
        from repro.simulation.runner import run_protocol

        g = gnp_graph(40, 0.15, seed=1)
        cov = feasible_coverage(g, 2)
        budget = 16 * math.ceil(math.log2(41))
        procs = [FractionalNode(v, cov[v], max_degree(g), 2, True)
                 for v in g.nodes]
        run_protocol(SynchronousNetwork(g, procs, seed=0,
                                        strict_message_bits=budget))

        udg = random_udg(40, density=9.0, seed=2)
        procs = [UDGNode(v, 2, 40, "random", 41) for v in range(40)]
        run_protocol(SynchronousNetwork(udg, procs, seed=0,
                                        strict_message_bits=budget),
                     max_rounds=500)
