"""Unit tests for deterministic per-node RNG streams."""

import numpy as np

from repro.simulation.rng import spawn_named_rngs, spawn_node_rngs


class TestSpawnNodeRngs:
    def test_same_seed_same_streams(self):
        a = spawn_node_rngs([0, 1, 2], seed=7)
        b = spawn_node_rngs([0, 1, 2], seed=7)
        for v in (0, 1, 2):
            assert a[v].random() == b[v].random()

    def test_different_seeds_differ(self):
        a = spawn_node_rngs([0, 1], seed=1)
        b = spawn_node_rngs([0, 1], seed=2)
        assert a[0].random() != b[0].random()

    def test_order_independent(self):
        a = spawn_node_rngs([2, 0, 1], seed=3)
        b = spawn_node_rngs([0, 1, 2], seed=3)
        for v in (0, 1, 2):
            assert a[v].random() == b[v].random()

    def test_streams_are_independent_objects(self):
        rngs = spawn_node_rngs([0, 1], seed=0)
        before = rngs[1].random()
        # Drawing a lot from node 0 must not affect node 1's stream.
        rngs0 = spawn_node_rngs([0, 1], seed=0)
        rngs0[0].random(1000)
        assert rngs0[1].random() == before

    def test_handles_unorderable_node_ids(self):
        rngs = spawn_node_rngs([(0, 1), "a", 3], seed=5)
        assert len(rngs) == 3

    def test_none_seed_works(self):
        rngs = spawn_node_rngs([0, 1], seed=None)
        assert set(rngs) == {0, 1}

    def test_empty_nodes(self):
        assert spawn_node_rngs([], seed=0) == {}


class TestSpawnNamedRngs:
    def test_deterministic(self):
        a = spawn_named_rngs(["faults", "workload"], seed=9)
        b = spawn_named_rngs(["faults", "workload"], seed=9)
        assert a["faults"].random() == b["faults"].random()

    def test_named_streams_distinct(self):
        rngs = spawn_named_rngs(["a", "b"], seed=9)
        assert rngs["a"].random() != rngs["b"].random()

    def test_does_not_collide_with_node_streams(self):
        named = spawn_named_rngs(["x"], seed=4)
        nodes = spawn_node_rngs([0], seed=4)
        assert named["x"].random() != nodes[0].random()
