"""Unit tests for JRS, Gao, and heuristic baselines."""

import networkx as nx
import pytest

from repro.baselines.gao import gao_mobile_centers
from repro.baselines.heuristics import (
    all_nodes_kmds,
    degree_heuristic_kmds,
    random_feasible_kmds,
)
from repro.baselines.jrs import ROUNDS_PER_PHASE, _round_up_pow2, jrs_kmds
from repro.core.verify import is_k_dominating_set
from repro.errors import GraphError, InfeasibleInstanceError
from repro.graphs.generators import gnp_graph
from repro.graphs.properties import feasible_coverage
from repro.graphs.udg import random_udg


class TestJRS:
    @pytest.mark.parametrize("convention", ["open", "closed"])
    @pytest.mark.parametrize("k", [1, 2])
    def test_output_valid(self, small_gnp, k, convention):
        cov = feasible_coverage(small_gnp, k)
        ds = jrs_kmds(small_gnp, cov, convention=convention, seed=0)
        assert is_k_dominating_set(small_gnp, ds.members, cov,
                                   convention=convention)

    def test_rounds_accounted(self, small_gnp):
        ds = jrs_kmds(small_gnp, 1, seed=0)
        assert ds.stats.rounds == ds.details["phases"] * ROUNDS_PER_PHASE
        assert ds.details["phases"] >= 1

    def test_deterministic_per_seed(self, small_gnp):
        a = jrs_kmds(small_gnp, 1, seed=4)
        b = jrs_kmds(small_gnp, 1, seed=4)
        assert a.members == b.members

    def test_quality_reasonable(self, small_gnp):
        from repro.baselines.greedy import greedy_kmds

        cov = feasible_coverage(small_gnp, 1)
        jrs = jrs_kmds(small_gnp, cov, convention="closed", seed=0)
        greedy = greedy_kmds(small_gnp, cov, convention="closed")
        assert len(jrs) <= 4 * len(greedy)

    def test_phases_logarithmic(self):
        g = gnp_graph(200, 0.05, seed=1)
        ds = jrs_kmds(g, 1, seed=0)
        assert ds.details["phases"] <= 40

    def test_closed_infeasible_raises(self, path4):
        with pytest.raises(InfeasibleInstanceError):
            jrs_kmds(path4, 3, convention="closed")

    def test_unknown_convention(self, triangle):
        with pytest.raises(GraphError):
            jrs_kmds(triangle, 1, convention="zigzag")

    def test_round_up_pow2(self):
        assert _round_up_pow2(0) == 0
        assert _round_up_pow2(1) == 1
        assert _round_up_pow2(3) == 4
        assert _round_up_pow2(8) == 8
        assert _round_up_pow2(9) == 16


class TestGao:
    def test_valid_dominating_set(self):
        udg = random_udg(150, density=10.0, seed=3)
        ds = gao_mobile_centers(udg, seed=0)
        assert is_k_dominating_set(udg, ds.members, 1)

    def test_details_labeled(self):
        udg = random_udg(60, density=8.0, seed=1)
        ds = gao_mobile_centers(udg, seed=0)
        assert ds.details["algorithm"] == "gao-dmc"
        assert "active_per_round" in ds.details

    def test_matches_part_one(self):
        from repro.core.udg import part_one_leaders

        udg = random_udg(100, density=10.0, seed=5)
        assert gao_mobile_centers(udg, seed=2).members == \
            part_one_leaders(udg, seed=2).members


class TestHeuristics:
    @pytest.mark.parametrize("k", [1, 2])
    def test_degree_heuristic_valid(self, small_gnp, k):
        cov = feasible_coverage(small_gnp, k)
        ds = degree_heuristic_kmds(small_gnp, cov)
        assert is_k_dominating_set(small_gnp, ds.members, cov)

    def test_degree_heuristic_star(self, star10):
        ds = degree_heuristic_kmds(star10, 1)
        assert len(ds) <= 2

    @pytest.mark.parametrize("seed", [0, 1])
    def test_random_feasible_valid(self, small_gnp, seed):
        ds = random_feasible_kmds(small_gnp, 2, seed=seed)
        assert is_k_dominating_set(small_gnp, ds.members, 2)

    def test_random_deterministic_per_seed(self, small_gnp):
        a = random_feasible_kmds(small_gnp, 1, seed=6)
        b = random_feasible_kmds(small_gnp, 1, seed=6)
        assert a.members == b.members

    def test_all_nodes(self, small_gnp):
        ds = all_nodes_kmds(small_gnp)
        assert ds.members == set(small_gnp.nodes)
        assert is_k_dominating_set(small_gnp, ds.members, 3)

    def test_closed_infeasible(self, path4):
        with pytest.raises(InfeasibleInstanceError):
            degree_heuristic_kmds(path4, 3, convention="closed")

    def test_unknown_convention(self, triangle):
        with pytest.raises(GraphError):
            degree_heuristic_kmds(triangle, 1, convention="bogus")
        with pytest.raises(GraphError):
            random_feasible_kmds(triangle, 1, convention="bogus")

    def test_degree_beats_random_usually(self):
        wins = 0
        for seed in range(5):
            g = gnp_graph(60, 0.1, seed=seed)
            d = degree_heuristic_kmds(g, 1)
            r = random_feasible_kmds(g, 1, seed=seed)
            if len(d) <= len(r):
                wins += 1
        assert wins >= 3
