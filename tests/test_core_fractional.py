"""Unit tests for Algorithm 1 (distributed LP approximation)."""

import math

import networkx as nx
import pytest

from repro.core.fractional import (
    fractional_kmds,
    lemma_44_dual_violation_bound,
    theorem_45_ratio_bound,
)
from repro.core.lp import CoveringLP
from repro.errors import GraphError, InfeasibleInstanceError
from repro.graphs.generators import gnp_graph, star_graph
from repro.graphs.properties import feasible_coverage, max_degree
from repro.types import uniform_coverage


class TestBounds:
    def test_theorem_45_formula(self):
        assert theorem_45_ratio_bound(1, 3) == pytest.approx(1 * (16 + 4))

    def test_theorem_45_decreases_then_grows(self):
        values = [theorem_45_ratio_bound(t, 1000) for t in range(1, 40)]
        assert min(values) < values[0]

    def test_invalid_t(self):
        with pytest.raises(GraphError):
            theorem_45_ratio_bound(0, 5)
        with pytest.raises(GraphError):
            lemma_44_dual_violation_bound(-1, 5)


class TestPrimalGuarantees:
    @pytest.mark.parametrize("t", [1, 2, 3, 5])
    def test_primal_feasible(self, small_gnp, t):
        cov = feasible_coverage(small_gnp, 2)
        sol = fractional_kmds(small_gnp, coverage=cov, t=t)
        lp = CoveringLP(small_gnp, cov)
        assert lp.primal_feasible(sol.x, tol=1e-9)

    @pytest.mark.parametrize("t", [1, 2, 4])
    def test_ratio_within_theorem_bound(self, small_gnp, t):
        from repro.baselines.lp_opt import lp_optimum

        cov = feasible_coverage(small_gnp, 1)
        sol = fractional_kmds(small_gnp, coverage=cov, t=t)
        opt = lp_optimum(small_gnp, cov, convention="closed").objective
        bound = theorem_45_ratio_bound(t, max_degree(small_gnp))
        assert sol.objective <= bound * opt + 1e-9

    def test_x_in_unit_box(self, small_gnp):
        sol = fractional_kmds(small_gnp, k=1, t=3)
        assert all(0.0 <= x <= 1.0 for x in sol.x.values())

    def test_t1_saturates(self, triangle):
        # With t = 1 the threshold is (Delta+1)^0 = 1 and the increment is
        # 1, so every node jumps straight to x = 1.
        sol = fractional_kmds(triangle, k=1, t=1)
        assert all(x == 1.0 for x in sol.x.values())

    def test_k0_gives_zero(self, triangle):
        sol = fractional_kmds(triangle, k=0, t=2)
        # Nothing requires coverage, but the algorithm may still raise x of
        # nodes with white neighbors in early iterations; with k=0 all
        # nodes turn gray in the first inner iteration, so the dynamic
        # degree collapses to 0 and only the first iteration's increment
        # survives.
        lp = CoveringLP(triangle, uniform_coverage([0, 1, 2], 0))
        assert lp.primal_feasible(sol.x)

    def test_isolated_nodes(self):
        g = nx.empty_graph(5)
        sol = fractional_kmds(g, k=1, t=2)
        assert all(x == 1.0 for x in sol.x.values())

    def test_star_graph(self, star10):
        sol = fractional_kmds(star10, k=1, t=3)
        lp = CoveringLP(star10, uniform_coverage(list(star10.nodes), 1))
        assert lp.primal_feasible(sol.x)
        # The fractional solution should concentrate weight on the hub
        # (node 0 after normalization has the highest degree).
        hub = max(star10.nodes, key=lambda v: star10.degree[v])
        assert sol.x[hub] >= max(x for v, x in sol.x.items() if v != hub) - 1e-9


class TestDualGuarantees:
    @pytest.mark.parametrize("t", [1, 2, 3])
    @pytest.mark.parametrize("k", [1, 2])
    def test_lemma_43_identity(self, small_gnp, t, k):
        cov = feasible_coverage(small_gnp, k)
        sol = fractional_kmds(small_gnp, coverage=cov, t=t)
        lp = CoveringLP(small_gnp, cov)
        dual_obj = lp.dual_objective(sol.y, sol.z)
        beta_sum = sum(sum(row.values()) for row in sol.beta.values())
        assert dual_obj == pytest.approx(beta_sum, abs=1e-7)

    @pytest.mark.parametrize("t", [1, 2, 3, 5])
    def test_lemma_44_violation_bound(self, small_gnp, t):
        cov = feasible_coverage(small_gnp, 2)
        sol = fractional_kmds(small_gnp, coverage=cov, t=t)
        lp = CoveringLP(small_gnp, cov)
        bound = lemma_44_dual_violation_bound(t, lp.delta)
        assert lp.dual_infeasibility_factor(sol.y, sol.z) <= bound + 1e-9

    def test_scaled_dual_feasible(self, small_gnp):
        # Dividing the duals by the Lemma 4.4 factor restores feasibility.
        cov = feasible_coverage(small_gnp, 1)
        sol = fractional_kmds(small_gnp, coverage=cov, t=2)
        lp = CoveringLP(small_gnp, cov)
        kappa = lemma_44_dual_violation_bound(2, lp.delta)
        y = {v: val / kappa for v, val in sol.y.items()}
        z = {v: val / kappa for v, val in sol.z.items()}
        assert lp.dual_feasible(y, z, tol=1e-9)

    def test_alpha_sums_to_k(self, small_gnp):
        # Lemma 4.3's engine: sum_j alpha_{j,i} = k_i for every i.
        cov = feasible_coverage(small_gnp, 2)
        sol = fractional_kmds(small_gnp, coverage=cov, t=3)
        for v in small_gnp.nodes:
            assert sum(sol.alpha[v].values()) == pytest.approx(cov[v])

    def test_alpha_beta_nonnegative(self, small_gnp):
        sol = fractional_kmds(small_gnp, k=1, t=2)
        assert all(a >= 0 for row in sol.alpha.values() for a in row.values())
        assert all(b >= 0 for row in sol.beta.values() for b in row.values())

    def test_duals_skipped_when_disabled(self, small_gnp):
        sol = fractional_kmds(small_gnp, k=1, t=2, compute_duals=False)
        assert all(not row for row in sol.alpha.values())
        assert all(z == 0 for z in sol.z.values())


class TestModes:
    @pytest.mark.parametrize("t", [1, 2, 3])
    def test_message_equals_direct(self, t):
        g = gnp_graph(25, 0.2, seed=3)
        cov = feasible_coverage(g, 2)
        direct = fractional_kmds(g, coverage=cov, t=t, mode="direct")
        message = fractional_kmds(g, coverage=cov, t=t, mode="message")
        for v in g.nodes:
            assert direct.x[v] == pytest.approx(message.x[v], abs=1e-9)
            assert direct.y[v] == pytest.approx(message.y[v], abs=1e-9)
            assert direct.z[v] == pytest.approx(message.z[v], abs=1e-9)

    def test_message_round_count(self):
        g = gnp_graph(20, 0.2, seed=1)
        for t in (1, 2, 4):
            sol = fractional_kmds(g, k=1, t=t, mode="message",
                                  compute_duals=False)
            assert sol.stats.rounds == 2 * t * t
            sol_d = fractional_kmds(g, k=1, t=t, mode="message",
                                    compute_duals=True)
            assert sol_d.stats.rounds == 2 * t * t + 1

    def test_direct_analytic_stats_match_message(self):
        g = gnp_graph(20, 0.25, seed=2)
        d = fractional_kmds(g, k=1, t=2, mode="direct")
        m = fractional_kmds(g, k=1, t=2, mode="message")
        assert d.stats.rounds == m.stats.rounds
        assert d.stats.messages_sent == m.stats.messages_sent
        assert d.stats.bits_sent == m.stats.bits_sent
        assert d.stats.max_message_bits == m.stats.max_message_bits

    def test_unknown_mode(self, triangle):
        with pytest.raises(GraphError, match="unknown mode"):
            fractional_kmds(triangle, k=1, t=1, mode="quantum")


class TestValidation:
    def test_infeasible_raises(self, path4):
        with pytest.raises(InfeasibleInstanceError) as exc:
            fractional_kmds(path4, k=3, t=2)
        assert exc.value.witness in (0, 3)

    def test_invalid_t(self, triangle):
        with pytest.raises(GraphError, match="t must be"):
            fractional_kmds(triangle, k=1, t=0)

    def test_neither_k_nor_coverage(self, triangle):
        with pytest.raises(GraphError, match="either k"):
            fractional_kmds(triangle, k=None)

    def test_empty_graph(self):
        sol = fractional_kmds(nx.Graph(), k=1, t=2)
        assert sol.x == {}
        assert sol.objective == 0.0

    def test_coverage_overrides_k(self, triangle):
        sol = fractional_kmds(triangle, k=99, coverage={0: 1, 1: 1, 2: 1},
                              t=2)
        assert sol.objective <= 3.0
