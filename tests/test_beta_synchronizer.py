"""Unit tests for the beta (tree-based) synchronizer."""

import networkx as nx
import pytest

from repro.core.fractional import FractionalNode, fractional_kmds
from repro.core.udg import UDGNode, solve_kmds_udg
from repro.errors import SimulationError
from repro.graphs.generators import gnp_graph
from repro.graphs.properties import feasible_coverage, max_degree
from repro.graphs.udg import random_udg
from repro.simulation.asynchrony import run_protocol_async, uniform_delays
from repro.simulation.beta import BetaSynchronizer, run_protocol_beta
from repro.simulation.network import SynchronousNetwork
from repro.simulation.node import NodeProcess
from repro.simulation.messages import Message
from dataclasses import dataclass


@dataclass(frozen=True)
class Tick(Message):
    SCHEMA = ()


class Counter(NodeProcess):
    """Counts per-round inbox sizes over `rounds` rounds."""

    def __init__(self, node_id, rounds=3):
        super().__init__(node_id)
        self.rounds = rounds
        self.sizes = []

    def run(self, ctx):
        for _ in range(self.rounds):
            ctx.broadcast(Tick())
            inbox = yield
            self.sizes.append(len(inbox))


class TestTreeConstruction:
    def test_forest_covers_components(self):
        g = nx.disjoint_union(nx.path_graph(4), nx.cycle_graph(5))
        net = SynchronousNetwork(g, [Counter(v) for v in g.nodes], seed=0)
        sync = BetaSynchronizer(net)
        roots = {sync.root_of[v] for v in g.nodes}
        assert len(roots) == 2
        for v in g.nodes:
            if sync.parent[v] is not None:
                assert g.has_edge(v, sync.parent[v])

    def test_children_consistent(self):
        g = gnp_graph(20, 0.2, seed=1)
        net = SynchronousNetwork(g, [Counter(v) for v in g.nodes], seed=0)
        sync = BetaSynchronizer(net)
        for v in g.nodes:
            for c in sync.children[v]:
                assert sync.parent[c] == v


class TestEquivalence:
    def test_counter_matches_sync(self):
        g = gnp_graph(15, 0.3, seed=2)
        from repro.simulation.runner import run_protocol

        ref = [Counter(v) for v in g.nodes]
        run_protocol(SynchronousNetwork(g, ref, seed=0))
        beta = [Counter(v) for v in g.nodes]
        run_protocol_beta(SynchronousNetwork(g, beta, seed=0), delay_seed=3)
        for a, b in zip(ref, beta):
            assert a.sizes == b.sizes

    @pytest.mark.parametrize("delay_seed", [0, 7])
    def test_algorithm1_identical(self, delay_seed):
        g = gnp_graph(18, 0.25, seed=5)
        cov = feasible_coverage(g, 1)
        delta = max_degree(g)
        procs = [FractionalNode(v, cov[v], delta, 2, False) for v in g.nodes]
        run_protocol_beta(SynchronousNetwork(g, procs, seed=2),
                          delay_seed=delay_seed)
        ref = fractional_kmds(g, coverage=cov, t=2, mode="message",
                              compute_duals=False, seed=2)
        for p in procs:
            assert p.x == pytest.approx(ref.x[p.node_id], abs=1e-12)

    def test_algorithm3_identical(self):
        udg = random_udg(50, density=9.0, seed=6)
        procs = [UDGNode(v, 2, 50, "random", 51) for v in range(50)]
        run_protocol_beta(SynchronousNetwork(udg, procs, seed=9),
                          delay_seed=1)
        members = {p.node_id for p in procs if p.leader}
        ref = solve_kmds_udg(udg, k=2, mode="message", seed=9)
        assert members == ref.members

    def test_disconnected_graph(self):
        g = nx.disjoint_union(nx.path_graph(3), nx.path_graph(3))
        procs = [Counter(v, rounds=2) for v in g.nodes]
        stats = run_protocol_beta(SynchronousNetwork(g, procs, seed=0),
                                  delay_seed=0)
        assert all(p.finished for p in procs)
        assert stats.rounds >= 2

    def test_singleton_node(self):
        g = nx.empty_graph(1)
        procs = [Counter(0, rounds=2)]
        run_protocol_beta(SynchronousNetwork(g, procs, seed=0), delay_seed=0)
        assert procs[0].sizes == [0, 0]


class TestAlphaBetaTradeoff:
    def _nets(self, seed=0):
        g = gnp_graph(25, 0.35, seed=3)  # dense: beta should win on msgs
        cov = feasible_coverage(g, 1)
        delta = max_degree(g)

        def make():
            procs = [FractionalNode(v, cov[v], delta, 2, False)
                     for v in g.nodes]
            return SynchronousNetwork(g, procs, seed=seed)

        return make

    def test_beta_fewer_control_messages(self):
        make = self._nets()
        alpha = run_protocol_async(make(), delay_seed=1)
        beta = run_protocol_beta(make(), delay_seed=1)
        assert beta.control_messages < alpha.control_messages
        assert beta.payload_messages == alpha.payload_messages

    def test_beta_higher_latency(self):
        make = self._nets()
        alpha = run_protocol_async(make(), delay=uniform_delays(0.9, 1.1),
                                   delay_seed=2)
        beta = run_protocol_beta(make(), delay=uniform_delays(0.9, 1.1),
                                 delay_seed=2)
        assert beta.virtual_time > alpha.virtual_time


class TestValidation:
    def test_max_rounds_guard(self):
        class Forever(NodeProcess):
            def run(self, ctx):
                while True:
                    ctx.broadcast(Tick())
                    yield

        g = nx.path_graph(3)
        procs = [Forever(v) for v in g.nodes]
        with pytest.raises(SimulationError, match="exceeded"):
            run_protocol_beta(SynchronousNetwork(g, procs, seed=0),
                              delay_seed=0, max_rounds=5)

    def test_non_generator_rejected(self):
        class Bad(NodeProcess):
            def run(self, ctx):
                return 1

        g = nx.path_graph(2)
        with pytest.raises(SimulationError, match="generator"):
            run_protocol_beta(
                SynchronousNetwork(g, [Bad(0), Bad(1)], seed=0))
