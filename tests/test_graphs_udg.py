"""Unit tests for the unit disk graph substrate."""

import math

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs.udg import UnitDiskGraph, random_udg, udg_from_points


class TestConstruction:
    def test_edges_match_brute_force(self):
        udg = random_udg(80, seed=1)
        pts = udg.points
        for i in range(80):
            for j in range(i + 1, 80):
                d = math.hypot(*(pts[i] - pts[j]))
                assert udg.nx.has_edge(i, j) == (d <= 1.0), (i, j, d)

    def test_custom_radius(self):
        pts = [(0, 0), (0, 1.5), (0, 3.5)]
        udg = UnitDiskGraph(pts, radius=2.0)
        assert udg.nx.has_edge(0, 1)
        assert udg.nx.has_edge(1, 2)
        assert not udg.nx.has_edge(0, 2)

    def test_positions_stored(self):
        udg = udg_from_points([(1.0, 2.0), (3.0, 4.0)])
        assert udg.nx.nodes[0]["pos"] == (1.0, 2.0)

    def test_edge_distances_stored(self):
        udg = udg_from_points([(0, 0), (0.6, 0)])
        assert udg.nx.edges[0, 1]["dist"] == pytest.approx(0.6)

    def test_empty(self):
        udg = udg_from_points([])
        assert len(udg) == 0
        assert udg.number_of_edges() == 0

    def test_single_node(self):
        udg = udg_from_points([(0, 0)])
        assert len(udg) == 1
        assert udg.degree(0) == 0

    def test_coincident_points_connected(self):
        udg = udg_from_points([(1, 1), (1, 1)])
        assert udg.nx.has_edge(0, 1)

    def test_bad_radius(self):
        with pytest.raises(GraphError, match="radius"):
            UnitDiskGraph([(0, 0)], radius=0)

    def test_bad_shape(self):
        with pytest.raises(GraphError, match="\\(n, 2\\)"):
            UnitDiskGraph([(0, 0, 0)])


class TestQueries:
    def test_distance_symmetric(self):
        udg = random_udg(30, seed=2)
        assert udg.distance(3, 7) == pytest.approx(udg.distance(7, 3))

    def test_neighbors_within_prefix_property(self):
        udg = random_udg(100, seed=3)
        for v in range(20):
            inner = set(udg.neighbors_within(v, 0.3))
            outer = set(udg.neighbors_within(v, 0.8))
            assert inner <= outer

    def test_neighbors_within_exact(self):
        udg = random_udg(100, seed=4)
        for v in range(10):
            got = set(udg.neighbors_within(v, 0.5))
            want = {w for w in udg.nx.neighbors(v)
                    if udg.distance(v, w) <= 0.5}
            assert got == want

    def test_closed_neighbors_within_includes_self(self):
        udg = random_udg(20, seed=5)
        assert udg.closed_neighbors_within(0, 0.5)[0] == 0

    def test_full_radius_equals_graph_neighbors(self):
        udg = random_udg(60, seed=6)
        for v in range(10):
            assert set(udg.neighbors_within(v, 1.0)) == set(udg.nx.neighbors(v))


class TestRandomUdg:
    def test_deterministic(self):
        a = random_udg(50, seed=9)
        b = random_udg(50, seed=9)
        assert np.allclose(a.points, b.points)

    def test_density_controls_degree(self):
        sparse = random_udg(300, density=3.0, seed=1)
        dense = random_udg(300, density=20.0, seed=1)
        mean_deg = lambda u: 2 * u.number_of_edges() / len(u)
        assert mean_deg(dense) > 2 * mean_deg(sparse)

    def test_density_approximation(self):
        # Mean degree should be close to density - 1 (boundary effects
        # pull it down somewhat).
        udg = random_udg(2000, density=12.0, seed=2)
        mean_deg = 2 * udg.number_of_edges() / len(udg)
        assert 7.0 <= mean_deg <= 12.5

    def test_area_side_explicit(self):
        udg = random_udg(100, area_side=5.0, seed=3)
        assert udg.points.max() <= 5.0
        assert udg.points.min() >= 0.0

    def test_mutually_exclusive_args(self):
        with pytest.raises(GraphError, match="at most one"):
            random_udg(10, area_side=5.0, density=10.0)

    def test_invalid_args(self):
        with pytest.raises(GraphError):
            random_udg(-1)
        with pytest.raises(GraphError):
            random_udg(10, density=-1.0)
        with pytest.raises(GraphError):
            random_udg(10, area_side=0.0)

    def test_zero_nodes(self):
        assert len(random_udg(0, seed=0)) == 0
