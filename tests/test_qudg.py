"""Unit tests for the quasi unit disk graph model."""

import numpy as np
import pytest

from repro.core.udg import solve_kmds_udg
from repro.core.verify import is_k_dominating_set
from repro.errors import GraphError
from repro.graphs.udg import QuasiUnitDiskGraph, UnitDiskGraph, random_udg


@pytest.fixture
def pts():
    return random_udg(150, density=10.0, seed=12).points


class TestConstruction:
    def test_alpha_one_is_plain_udg(self, pts):
        qudg = QuasiUnitDiskGraph(pts, alpha=1.0, p_gray=0.0, seed=0)
        udg = UnitDiskGraph(pts)
        assert set(qudg.nx.edges) == set(udg.nx.edges)

    def test_short_edges_always_kept(self, pts):
        qudg = QuasiUnitDiskGraph(pts, alpha=0.6, p_gray=0.0, seed=1)
        udg = UnitDiskGraph(pts)
        for u, v, data in udg.nx.edges(data=True):
            if data["dist"] <= 0.6:
                assert qudg.nx.has_edge(u, v), (u, v)

    def test_gray_zone_thinned(self, pts):
        full = UnitDiskGraph(pts)
        qudg = QuasiUnitDiskGraph(pts, alpha=0.5, p_gray=0.3, seed=2)
        gray_full = sum(1 for _, _, d in full.nx.edges(data=True)
                        if d["dist"] > 0.5)
        gray_kept = sum(1 for _, _, d in qudg.nx.edges(data=True)
                        if d["dist"] > 0.5)
        assert gray_kept < gray_full
        assert gray_kept > 0  # p_gray 0.3 on hundreds of edges

    def test_p_gray_one_keeps_everything(self, pts):
        qudg = QuasiUnitDiskGraph(pts, alpha=0.4, p_gray=1.0, seed=3)
        assert set(qudg.nx.edges) == set(UnitDiskGraph(pts).nx.edges)

    def test_neighbor_index_consistent_after_thinning(self, pts):
        qudg = QuasiUnitDiskGraph(pts, alpha=0.5, p_gray=0.4, seed=4)
        for v in range(0, 150, 15):
            got = set(qudg.neighbors_within(v, 1.0))
            assert got == set(qudg.nx.neighbors(v))

    def test_deterministic(self, pts):
        a = QuasiUnitDiskGraph(pts, alpha=0.6, p_gray=0.5, seed=5)
        b = QuasiUnitDiskGraph(pts, alpha=0.6, p_gray=0.5, seed=5)
        assert set(a.nx.edges) == set(b.nx.edges)

    def test_validation(self, pts):
        with pytest.raises(GraphError, match="alpha"):
            QuasiUnitDiskGraph(pts, alpha=0.0)
        with pytest.raises(GraphError, match="alpha"):
            QuasiUnitDiskGraph(pts, alpha=1.5)
        with pytest.raises(GraphError, match="p_gray"):
            QuasiUnitDiskGraph(pts, alpha=0.5, p_gray=2.0)


class TestAlgorithmsOnQudg:
    @pytest.mark.parametrize("alpha", [0.8, 0.4])
    def test_algorithm3_valid(self, pts, alpha):
        qudg = QuasiUnitDiskGraph(pts, alpha=alpha, p_gray=0.4, seed=6)
        ds = solve_kmds_udg(qudg, k=2, seed=0)
        assert is_k_dominating_set(qudg, ds.members, 2)

    def test_modes_agree(self, pts):
        qudg = QuasiUnitDiskGraph(pts, alpha=0.6, p_gray=0.4, seed=7)
        d = solve_kmds_udg(qudg, k=2, mode="direct", seed=1)
        m = solve_kmds_udg(qudg, k=2, mode="message", seed=1)
        assert d.members == m.members

    def test_general_pipeline_valid(self, pts):
        from repro.core.general import solve_kmds_general
        from repro.graphs.properties import feasible_coverage

        qudg = QuasiUnitDiskGraph(pts, alpha=0.5, p_gray=0.3, seed=8)
        cov = feasible_coverage(qudg.nx, 2)
        res = solve_kmds_general(qudg.nx, coverage=cov, t=3, seed=0)
        assert is_k_dominating_set(qudg.nx, res.members, cov,
                                   convention="closed")
