"""Unit tests for the k-domination verification oracle."""

import networkx as nx
import pytest

from repro.core.verify import (
    coverage_counts,
    coverage_deficit,
    is_k_dominating_set,
    redundancy_profile,
    uncovered_nodes,
)
from repro.errors import GraphError


class TestCoverageCounts:
    def test_open_counts(self, path4):
        counts = coverage_counts(path4, {1}, convention="open")
        assert counts == {0: 1, 1: 0, 2: 1, 3: 0}

    def test_closed_counts_self(self, path4):
        counts = coverage_counts(path4, {1}, convention="closed")
        assert counts == {0: 1, 1: 1, 2: 1, 3: 0}

    def test_unknown_member_rejected(self, path4):
        with pytest.raises(GraphError, match="unknown node"):
            coverage_counts(path4, {99})

    def test_unknown_convention(self, path4):
        with pytest.raises(GraphError, match="convention"):
            coverage_counts(path4, {1}, convention="weird")

    def test_empty_set(self, triangle):
        counts = coverage_counts(triangle, set())
        assert all(c == 0 for c in counts.values())


class TestIsKDominating:
    def test_open_single(self, path4):
        assert is_k_dominating_set(path4, {1, 3}, 1)
        assert not is_k_dominating_set(path4, {0}, 1)

    def test_open_members_exempt(self, path4):
        # {0, 3}: nodes 1 and 2 each have exactly one neighbor inside.
        assert is_k_dominating_set(path4, {0, 3}, 1)

    def test_closed_members_not_exempt(self):
        g = nx.path_graph(3)
        # Node 0 in the set covers itself once under closed convention.
        assert is_k_dominating_set(g, {0, 2}, 1, convention="closed")
        assert not is_k_dominating_set(g, {0}, 1, convention="closed")

    def test_k2_triangle(self, triangle):
        assert is_k_dominating_set(triangle, {0, 1}, 2)
        assert not is_k_dominating_set(triangle, {0}, 2)

    def test_all_nodes_always_valid_open(self, small_gnp):
        assert is_k_dominating_set(small_gnp, set(small_gnp.nodes), 10)

    def test_per_node_requirements(self, path4):
        # Ends need 1; middles need 2.
        k = {0: 1, 1: 2, 2: 2, 3: 1}
        assert is_k_dominating_set(path4, {0, 1, 2, 3}, k)
        assert not is_k_dominating_set(path4, {0, 3}, k)

    def test_closed_implies_open(self, small_gnp):
        from repro.baselines.greedy import greedy_kmds
        from repro.graphs.properties import feasible_coverage

        cov = feasible_coverage(small_gnp, 2)
        ds = greedy_kmds(small_gnp, cov, convention="closed")
        assert is_k_dominating_set(small_gnp, ds.members, cov,
                                   convention="closed")
        assert is_k_dominating_set(small_gnp, ds.members, cov,
                                   convention="open")

    def test_k_zero_trivially_valid(self, path4):
        assert is_k_dominating_set(path4, set(), 0)

    def test_negative_k_rejected(self, path4):
        with pytest.raises(GraphError):
            is_k_dominating_set(path4, set(), -1)


class TestDeficit:
    def test_deficit_values(self, path4):
        deficit = coverage_deficit(path4, {0}, 2)
        assert deficit[1] == 1  # one covered by 0, needs 2
        assert deficit[3] == 2
        assert deficit[0] == 0  # member, exempt under open

    def test_uncovered_nodes(self, path4):
        assert set(uncovered_nodes(path4, {0}, 1)) == {2, 3}

    def test_closed_member_deficit(self):
        g = nx.path_graph(3)
        deficit = coverage_deficit(g, {1}, 2, convention="closed")
        assert deficit[1] == 1  # member covers itself once, needs 2


class TestRedundancyProfile:
    def test_profile_open(self, path4):
        prof = redundancy_profile(path4, {1, 2})
        # non-members 0 and 3 have exactly one dominator each
        assert prof == {"min": 1.0, "mean": 1.0, "max": 1.0}

    def test_profile_all_members(self, triangle):
        prof = redundancy_profile(triangle, {0, 1, 2})
        assert prof == {"min": 0.0, "mean": 0.0, "max": 0.0}
