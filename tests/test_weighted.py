"""Unit tests for the weighted k-MDS extension."""

import numpy as np
import pytest

from repro.core.fractional import fractional_kmds
from repro.core.lp import CoveringLP
from repro.core.verify import is_k_dominating_set
from repro.errors import GraphError, InfeasibleInstanceError
from repro.graphs.generators import gnp_graph, star_graph
from repro.graphs.properties import feasible_coverage
from repro.weighted import (
    solve_weighted_kmds,
    weighted_exact_kmds,
    weighted_fractional_kmds,
    weighted_greedy_kmds,
    weighted_lp_optimum,
    weighted_randomized_rounding,
)
from repro.weighted.baselines import set_cost
from repro.weighted.fractional import weighted_objective


@pytest.fixture
def weighted_instance():
    g = gnp_graph(30, 0.2, seed=6)
    rng = np.random.default_rng(1)
    w = {v: float(rng.uniform(1.0, 8.0)) for v in g.nodes}
    return g, w, feasible_coverage(g, 2)


class TestWeightedFractional:
    def test_unit_weights_reduce_to_algorithm1(self, small_gnp):
        cov = feasible_coverage(small_gnp, 2)
        unit = {v: 1.0 for v in small_gnp.nodes}
        a = weighted_fractional_kmds(small_gnp, unit, coverage=cov, t=3)
        b = fractional_kmds(small_gnp, coverage=cov, t=3,
                            compute_duals=False)
        assert all(a.x[v] == b.x[v] for v in small_gnp.nodes)

    def test_feasible(self, weighted_instance):
        g, w, cov = weighted_instance
        sol = weighted_fractional_kmds(g, w, coverage=cov, t=3)
        assert CoveringLP(g, cov).primal_feasible(sol.x, tol=1e-7)

    def test_objective_tracks_weighted_lp(self, weighted_instance):
        g, w, cov = weighted_instance
        sol = weighted_fractional_kmds(g, w, coverage=cov, t=4)
        lp = weighted_lp_optimum(g, w, cov, convention="closed")
        cost = weighted_objective(sol.x, w)
        assert lp.objective - 1e-9 <= cost <= 30 * lp.objective

    def test_prefers_cheap_dominators(self):
        # A star where the hub is absurdly expensive: fractional weight
        # should not concentrate everything on the hub.
        g = star_graph(8)
        hub = max(g.nodes, key=lambda v: g.degree[v])
        w = {v: (1000.0 if v == hub else 1.0) for v in g.nodes}
        uniform_sol = weighted_fractional_kmds(
            g, {v: 1.0 for v in g.nodes}, k=1, t=4)
        weighted_sol = weighted_fractional_kmds(g, w, k=1, t=4)
        assert weighted_objective(weighted_sol.x, w) \
            < weighted_objective(uniform_sol.x, w)

    def test_modes_agree(self, weighted_instance):
        g, w, cov = weighted_instance
        d = weighted_fractional_kmds(g, w, coverage=cov, t=2, mode="direct")
        m = weighted_fractional_kmds(g, w, coverage=cov, t=2, mode="message")
        assert all(abs(d.x[v] - m.x[v]) < 1e-12 for v in g.nodes)

    def test_rejects_nonpositive_weights(self, triangle):
        with pytest.raises(GraphError, match="positive"):
            weighted_fractional_kmds(triangle, {0: 1.0, 1: 0.0, 2: 1.0},
                                     k=1)

    def test_rejects_missing_weights(self, triangle):
        with pytest.raises(GraphError, match="missing"):
            weighted_fractional_kmds(triangle, {0: 1.0}, k=1)

    def test_duals_refused_with_weights(self, triangle):
        w = {v: 2.0 for v in triangle.nodes}
        with pytest.raises(GraphError, match="dual"):
            fractional_kmds(triangle, k=1, weights=w, compute_duals=True)


class TestWeightedRounding:
    @pytest.mark.parametrize("policy", ["cheapest", "random", "highest-x"])
    def test_feasible_all_policies(self, weighted_instance, policy):
        g, w, cov = weighted_instance
        frac = weighted_fractional_kmds(g, w, coverage=cov, t=3)
        for seed in range(3):
            ds = weighted_randomized_rounding(g, frac.x, w, coverage=cov,
                                              policy=policy, seed=seed)
            assert is_k_dominating_set(g, ds.members, cov,
                                       convention="closed")
            assert ds.details["cost"] == pytest.approx(
                set_cost(ds.members, w))

    def test_cheapest_beats_random_on_average(self, weighted_instance):
        g, w, cov = weighted_instance
        frac = weighted_fractional_kmds(g, w, coverage=cov, t=3)
        cheap = np.mean([
            weighted_randomized_rounding(g, frac.x, w, coverage=cov,
                                         policy="cheapest",
                                         seed=s).details["cost"]
            for s in range(10)])
        rand = np.mean([
            weighted_randomized_rounding(g, frac.x, w, coverage=cov,
                                         policy="random",
                                         seed=s).details["cost"]
            for s in range(10)])
        assert cheap <= rand + 1e-9

    def test_rejects_bad_weights(self, triangle):
        with pytest.raises(GraphError, match="positive"):
            weighted_randomized_rounding(
                triangle, {v: 0.5 for v in triangle.nodes},
                {0: -1.0, 1: 1.0, 2: 1.0}, k=1)


class TestWeightedBaselines:
    def test_greedy_valid_both_conventions(self, weighted_instance):
        g, w, cov = weighted_instance
        for conv in ("open", "closed"):
            ds = weighted_greedy_kmds(g, w, cov, convention=conv)
            assert is_k_dominating_set(g, ds.members, cov, convention=conv)

    def test_greedy_prefers_cheap(self):
        g = star_graph(6)
        hub = max(g.nodes, key=lambda v: g.degree[v])
        # Hub cheap: greedy takes it alone (open convention, k=1).
        w_cheap = {v: (1.0 if v == hub else 100.0) for v in g.nodes}
        ds = weighted_greedy_kmds(g, w_cheap, 1)
        assert ds.members == {hub}

    def test_lp_lower_bounds_exact(self, weighted_instance):
        g, w, cov = weighted_instance
        lp = weighted_lp_optimum(g, w, cov, convention="closed")
        ex = weighted_exact_kmds(g, w, cov, convention="closed")
        gr = weighted_greedy_kmds(g, w, cov, convention="closed")
        assert lp.objective <= ex.details["cost"] + 1e-6
        assert ex.details["cost"] <= gr.details["cost"] + 1e-9

    def test_exact_beats_unit_exact_on_weighted_instances(self):
        # The weighted optimum is cost-optimal, not size-optimal.
        g = star_graph(5)
        hub = max(g.nodes, key=lambda v: g.degree[v])
        w = {v: (50.0 if v == hub else 1.0) for v in g.nodes}
        ex = weighted_exact_kmds(g, w, 1, convention="open")
        # Leaves self-select (cost 5) rather than paying 50 for the hub.
        assert hub not in ex.members
        assert ex.details["cost"] == pytest.approx(5.0)

    def test_exact_unit_weights_match_unweighted(self, tiny_gnp):
        from repro.baselines.exact import exact_kmds

        unit = {v: 1.0 for v in tiny_gnp.nodes}
        a = weighted_exact_kmds(tiny_gnp, unit, 1, convention="open")
        b = exact_kmds(tiny_gnp, 1, convention="open")
        assert a.details["cost"] == pytest.approx(float(len(b)))

    def test_infeasible_closed(self, path4):
        w = {v: 1.0 for v in path4.nodes}
        with pytest.raises(InfeasibleInstanceError):
            weighted_greedy_kmds(path4, w, 3, convention="closed")
        with pytest.raises(InfeasibleInstanceError):
            weighted_exact_kmds(path4, w, 3, convention="closed")


class TestWeightedPipeline:
    def test_end_to_end_valid(self, weighted_instance):
        g, w, cov = weighted_instance
        ds = solve_weighted_kmds(g, w, coverage=cov, t=3, seed=0)
        assert is_k_dominating_set(g, ds.members, cov, convention="closed")
        assert ds.details["cost"] > 0
        assert ds.details["fractional_cost"] > 0

    def test_deterministic(self, weighted_instance):
        g, w, cov = weighted_instance
        a = solve_weighted_kmds(g, w, coverage=cov, t=2, seed=9)
        b = solve_weighted_kmds(g, w, coverage=cov, t=2, seed=9)
        assert a.members == b.members

    def test_cost_reasonable_vs_lp(self, weighted_instance):
        g, w, cov = weighted_instance
        ds = solve_weighted_kmds(g, w, coverage=cov, t=3, seed=0)
        lp = weighted_lp_optimum(g, w, cov, convention="closed")
        assert ds.details["cost"] <= 40 * lp.objective
