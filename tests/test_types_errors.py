"""Unit tests for shared types and the exception hierarchy."""

import pytest

from repro.errors import (
    BudgetExceededError,
    GeometryError,
    GraphError,
    InfeasibleInstanceError,
    ProtocolViolationError,
    ReproError,
    SimulationError,
    SolverError,
)
from repro.types import (
    DominatingSet,
    FractionalSolution,
    RoundStats,
    RunStats,
    uniform_coverage,
)


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (GraphError, GeometryError, InfeasibleInstanceError,
                    SimulationError, ProtocolViolationError, SolverError,
                    BudgetExceededError):
            assert issubclass(exc, ReproError)

    def test_geometry_is_graph_error(self):
        assert issubclass(GeometryError, GraphError)

    def test_protocol_is_simulation_error(self):
        assert issubclass(ProtocolViolationError, SimulationError)

    def test_budget_is_solver_error(self):
        assert issubclass(BudgetExceededError, SolverError)

    def test_infeasible_carries_witness(self):
        e = InfeasibleInstanceError("msg", witness=42)
        assert e.witness == 42

    def test_budget_carries_incumbent(self):
        e = BudgetExceededError("msg", incumbent={1, 2}, lower_bound=1.5)
        assert e.incumbent == {1, 2}
        assert e.lower_bound == 1.5


class TestRunStats:
    def test_absorb_accumulates(self):
        a = RunStats(rounds=3, messages_sent=10, bits_sent=100,
                     max_message_bits=8)
        b = RunStats(rounds=2, messages_sent=5, bits_sent=40,
                     max_message_bits=16)
        a.absorb(b)
        assert a.rounds == 5
        assert a.messages_sent == 15
        assert a.bits_sent == 140
        assert a.max_message_bits == 16

    def test_absorb_offsets_round_indices(self):
        a = RunStats(rounds=2)
        a.per_round = [RoundStats(0, 1, 8, 8, 3), RoundStats(1, 1, 8, 8, 3)]
        b = RunStats(rounds=1)
        b.per_round = [RoundStats(0, 2, 16, 8, 3)]
        a.absorb(b)
        assert [r.round_index for r in a.per_round] == [0, 1, 2]

    def test_defaults(self):
        s = RunStats()
        assert s.rounds == 0
        assert s.per_round == []


class TestDominatingSet:
    def test_container_protocol(self):
        ds = DominatingSet(members={1, 2, 3})
        assert len(ds) == 3
        assert 2 in ds
        assert sorted(ds) == [1, 2, 3]


class TestFractionalSolution:
    def test_objective(self):
        sol = FractionalSolution(x={0: 0.5, 1: 0.25}, y={}, z={},
                                 alpha={}, beta={}, t=2)
        assert sol.objective == 0.75

    def test_dual_objective(self):
        sol = FractionalSolution(x={}, y={0: 1.0, 1: 0.5},
                                 z={0: 0.2, 1: 0.0}, alpha={}, beta={}, t=1)
        assert sol.dual_objective({0: 2, 1: 1}) == pytest.approx(2.3)


class TestUniformCoverage:
    def test_builds_map(self):
        assert uniform_coverage([1, 2], 3) == {1: 3, 2: 3}

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            uniform_coverage([1], -1)
