"""Unit tests for graph property utilities."""

import networkx as nx
import pytest

from repro.errors import GraphError
from repro.graphs.generators import star_graph
from repro.graphs.properties import (
    as_nx,
    closed_neighborhood,
    degree_histogram,
    feasible_coverage,
    graph_summary,
    max_degree,
    max_feasible_k,
    min_degree,
    validate_coverage,
)
from repro.graphs.udg import random_udg


class TestAsNx:
    def test_passthrough(self, triangle):
        assert as_nx(triangle) is triangle

    def test_unwraps_udg(self):
        udg = random_udg(10, seed=0)
        assert as_nx(udg) is udg.nx

    def test_rejects_garbage(self):
        with pytest.raises(GraphError, match="expected a graph"):
            as_nx(42)


class TestDegrees:
    def test_max_degree_star(self):
        assert max_degree(star_graph(9)) == 9

    def test_min_degree_star(self):
        assert min_degree(star_graph(9)) == 1

    def test_empty_graph(self):
        g = nx.Graph()
        assert max_degree(g) == 0
        assert min_degree(g) == 0

    def test_degree_histogram(self, path4):
        hist = degree_histogram(path4)
        assert hist == {1: 2, 2: 2}


class TestNeighborhoods:
    def test_closed_includes_self(self, path4):
        assert closed_neighborhood(path4, 1) == {0, 1, 2}

    def test_isolated_node(self):
        g = nx.Graph()
        g.add_node(0)
        assert closed_neighborhood(g, 0) == {0}


class TestCoverage:
    def test_max_feasible_k(self, triangle):
        assert max_feasible_k(triangle) == 3

    def test_max_feasible_k_path(self, path4):
        assert max_feasible_k(path4) == 2

    def test_feasible_coverage_clips(self, path4):
        cov = feasible_coverage(path4, 3)
        assert cov[0] == 2  # end node, deg 1
        assert cov[1] == 3

    def test_feasible_coverage_negative_k(self, path4):
        with pytest.raises(GraphError):
            feasible_coverage(path4, -1)

    def test_validate_coverage_ok(self, triangle):
        validate_coverage(triangle, {0: 1, 1: 2, 2: 3})

    def test_validate_coverage_missing(self, triangle):
        with pytest.raises(GraphError, match="missing"):
            validate_coverage(triangle, {0: 1})

    def test_validate_coverage_negative(self, triangle):
        with pytest.raises(GraphError, match="negative"):
            validate_coverage(triangle, {0: -1, 1: 1, 2: 1})

    def test_validate_coverage_infeasible(self, path4):
        with pytest.raises(GraphError, match="infeasible"):
            validate_coverage(path4, {0: 5, 1: 1, 2: 1, 3: 1})


class TestSummary:
    def test_summary_fields(self, triangle):
        s = graph_summary(triangle)
        assert s["n"] == 3
        assert s["m"] == 3
        assert s["avg_degree"] == pytest.approx(2.0)
        assert s["components"] == 1

    def test_summary_empty(self):
        s = graph_summary(nx.Graph())
        assert s["n"] == 0
        assert s["avg_degree"] == 0.0
