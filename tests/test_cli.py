"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestDemo:
    def test_demo_runs(self, capsys):
        assert main(["demo", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "Deployment" in out
        assert "valid=True" in out


class TestSolveUdg:
    def test_solve_udg(self, capsys):
        rc = main(["solve-udg", "--n", "120", "--k", "2", "--seed", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "dominators" in out
        assert "True" in out

    def test_message_mode(self, capsys):
        rc = main(["solve-udg", "--n", "60", "--k", "1",
                   "--mode", "message"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "max message bits" in out


class TestSolveGeneral:
    def test_solve_general(self, capsys):
        rc = main(["solve-general", "--n", "60", "--p", "0.1", "--k", "2",
                   "--t", "2", "--seed", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fractional objective" in out


class TestExperimentCommand:
    def test_single_experiment(self, capsys):
        rc = main(["experiment", "e11"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "E11" in out
        assert "[PASS]" in out

    def test_markdown_flag(self, capsys):
        rc = main(["experiment", "e11", "--markdown"])
        assert rc == 0
        assert "### E11" in capsys.readouterr().out

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            main(["experiment", "e42"])

    def test_replicas_flag(self, capsys):
        # --replicas overrides the seed-replication count of experiments
        # with a batched replication axis (and is ignored by the rest).
        rc = main(["experiment", "e7", "--replicas", "2"])
        assert rc == 0
        assert "2 batched seed replicas" in capsys.readouterr().out

    def test_json_artifact(self, tmp_path, capsys):
        import json

        path = tmp_path / "e11.json"
        rc = main(["experiment", "e11", "--json", str(path)])
        assert rc == 0
        data = json.loads(path.read_text())
        assert data["experiment_id"] == "e11"
        assert data["passed"] is True
        assert data["rows"]
        assert all(isinstance(ok, bool) for ok in data["checks"].values())


class TestDynamicsCommand:
    def test_dynamics_runs(self, capsys):
        rc = main(["dynamics", "--n", "120", "--epochs", "8",
                   "--seed", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "policy=local" in out
        assert "mean availability" in out
        assert "fully_covered_after" in out

    def test_dynamics_recompute_policy(self, capsys):
        rc = main(["dynamics", "--n", "100", "--epochs", "6",
                   "--policy", "recompute"])
        assert rc == 0
        assert "policy=recompute" in capsys.readouterr().out

    def test_dynamics_composed_streams(self, capsys):
        rc = main(["dynamics", "--n", "100", "--epochs", "6",
                   "--joins", "0.5", "--battery", "0.02",
                   "--mobility", "0.003"])
        assert rc == 0

    def test_dynamics_bad_policy(self):
        with pytest.raises(SystemExit):
            main(["dynamics", "--policy", "frantic"])

    def test_dynamics_json_artifact(self, tmp_path, capsys):
        out = tmp_path / "dynamics.json"
        rc = main(["dynamics", "--n", "120", "--epochs", "8",
                   "--seed", "1", "--tail", "3", "--json", str(out)])
        assert rc == 0
        assert f"wrote {out}" in capsys.readouterr().out
        data = json.loads(out.read_text())
        assert data["policy"] == "local"
        assert data["epochs"] == 8
        assert data["always_covered"] is True
        assert data["summary"]["availability_mean"] <= 1.0
        assert len(data["tail"]) == 3
        assert data["tail"][-1]["epoch"] == 7
        assert {"final_live", "final_members"} <= data.keys()

    def test_dynamics_executor_choice(self, capsys):
        rc = main(["dynamics", "--n", "120", "--epochs", "6",
                   "--seed", "1", "--shards", "2", "--workers", "2",
                   "--executor", "process"])
        assert rc == 0
        assert "policy=local" in capsys.readouterr().out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["fabricate"])


class TestSolveWeighted:
    def test_solve_weighted(self, capsys):
        rc = main(["solve-weighted", "--n", "50", "--k", "1",
                   "--seed", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "pipeline cost" in out
        assert "LP lower bound" in out


class TestVisualize:
    def test_visualize(self, tmp_path, capsys):
        rc = main(["visualize", "--n", "60", "--k", "2",
                   "--out", str(tmp_path)])
        assert rc == 0
        assert (tmp_path / "deployment_k2.svg").exists()
        assert (tmp_path / "active_decay.svg").exists()

    def test_visualize_svg_parses(self, tmp_path):
        import xml.etree.ElementTree as ET

        main(["visualize", "--n", "40", "--k", "1", "--out",
              str(tmp_path)])
        ET.parse(tmp_path / "deployment_k1.svg")
        ET.parse(tmp_path / "active_decay.svg")


@pytest.mark.slow
class TestReportCommand:
    def test_report_regenerates_markdown(self, tmp_path, capsys):
        out_file = tmp_path / "EXP.md"
        rc = main(["report", "--out", str(out_file), "--scale", "quick"])
        assert rc == 0
        text = out_file.read_text()
        for i in range(1, 23):
            assert f"### E{i} " in text or f"### E{i} —" in text, i
        assert "❌" not in text
