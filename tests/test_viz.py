"""Unit tests for the SVG rendering module."""

import xml.etree.ElementTree as ET

import pytest

from repro.errors import GraphError
from repro.graphs.udg import random_udg, udg_from_points
from repro.viz import render_deployment_svg, render_series_svg

SVG_NS = "{http://www.w3.org/2000/svg}"


def _parse(svg: str) -> ET.Element:
    return ET.fromstring(svg)


class TestDeploymentSvg:
    def test_valid_xml(self):
        udg = random_udg(30, density=8.0, seed=1)
        root = _parse(render_deployment_svg(udg))
        assert root.tag == f"{SVG_NS}svg"

    def test_node_count(self):
        udg = random_udg(25, density=8.0, seed=2)
        root = _parse(render_deployment_svg(udg, show_edges=False))
        circles = root.findall(f".//{SVG_NS}circle")
        assert len(circles) == 25

    def test_dominators_highlighted(self):
        udg = udg_from_points([(0, 0), (0.5, 0), (1.5, 0)])
        svg = render_deployment_svg(udg, dominators=[1], show_edges=False)
        root = _parse(svg)
        big = [c for c in root.findall(f".//{SVG_NS}circle")
               if c.get("r") == "4.5"]
        assert len(big) == 1

    def test_edges_drawn(self):
        udg = udg_from_points([(0, 0), (0.5, 0), (1.5, 0)])
        root = _parse(render_deployment_svg(udg, show_edges=True))
        lines = root.findall(f".//{SVG_NS}line")
        assert len(lines) == udg.number_of_edges()

    def test_coverage_disks(self):
        udg = udg_from_points([(0, 0), (0.5, 0)])
        svg = render_deployment_svg(udg, dominators=[0], show_edges=False,
                                    show_coverage=True, scale=100.0)
        root = _parse(svg)
        disks = [c for c in root.findall(f".//{SVG_NS}circle")
                 if c.get("r") == "100.0"]
        assert len(disks) == 1

    def test_empty_deployment(self):
        udg = udg_from_points([])
        root = _parse(render_deployment_svg(udg))
        assert root.tag == f"{SVG_NS}svg"

    def test_unknown_dominator_rejected(self):
        udg = udg_from_points([(0, 0)])
        with pytest.raises(GraphError, match="unknown"):
            render_deployment_svg(udg, dominators=[5])

    def test_invalid_scale(self):
        udg = udg_from_points([(0, 0)])
        with pytest.raises(GraphError, match="scale"):
            render_deployment_svg(udg, scale=0.0)

    def test_title_escaped(self):
        udg = udg_from_points([(0, 0)])
        svg = render_deployment_svg(udg, title="<n> & co")
        assert "&lt;n&gt; &amp; co" in svg


class TestSeriesSvg:
    def test_valid_xml(self):
        root = _parse(render_series_svg({"a": [1, 2, 3]}))
        assert root.tag == f"{SVG_NS}svg"

    def test_one_polyline_per_series(self):
        svg = render_series_svg({"a": [1, 2], "b": [3, 1], "c": [0, 0]})
        root = _parse(svg)
        lines = root.findall(f".//{SVG_NS}polyline")
        assert len(lines) == 3

    def test_legend_labels(self):
        svg = render_series_svg({"active nodes": [5, 3, 1]})
        assert "active nodes" in svg

    def test_constant_series_ok(self):
        root = _parse(render_series_svg({"flat": [2.0, 2.0, 2.0]}))
        assert root is not None

    def test_axis_labels(self):
        svg = render_series_svg({"a": [1]}, x_label="round", y_label="n")
        assert "round" in svg

    def test_empty_rejected(self):
        with pytest.raises(GraphError):
            render_series_svg({})
        with pytest.raises(GraphError):
            render_series_svg({"a": []})

    def test_polyline_coordinates_in_canvas(self):
        svg = render_series_svg({"a": [0, 10, 5]}, width=400, height=300)
        root = _parse(svg)
        for poly in root.findall(f".//{SVG_NS}polyline"):
            for pair in poly.get("points").split():
                x, y = map(float, pair.split(","))
                assert 0 <= x <= 400
                assert 0 <= y <= 300
