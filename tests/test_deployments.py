"""Unit tests for non-uniform deployment generators and the targeted
failure strategy."""

import numpy as np
import pytest

from repro.analysis.faults import dominator_failure_experiment
from repro.core.udg import solve_kmds_udg
from repro.core.verify import is_k_dominating_set
from repro.errors import GraphError
from repro.graphs.deployments import clustered_udg, corridor_udg, perforated_udg


class TestClustered:
    def test_basic(self):
        udg = clustered_udg(200, clusters=5, seed=1)
        assert udg.n == 200

    def test_clumpier_than_uniform(self):
        from repro.graphs.udg import random_udg

        clustered = clustered_udg(400, clusters=5, spread=0.5, seed=2)
        uniform = random_udg(400, density=10.0, seed=2)
        # Hot spots: the max degree in a clustered field is far higher.
        max_deg = lambda u: max(d for _, d in u.nx.degree)
        assert max_deg(clustered) > 1.5 * max_deg(uniform)

    def test_deterministic(self):
        a = clustered_udg(100, seed=5)
        b = clustered_udg(100, seed=5)
        assert np.allclose(a.points, b.points)

    def test_validation(self):
        with pytest.raises(GraphError):
            clustered_udg(-1)
        with pytest.raises(GraphError):
            clustered_udg(10, clusters=0)
        with pytest.raises(GraphError):
            clustered_udg(10, spread=-1.0)

    def test_algorithm3_works(self):
        udg = clustered_udg(200, clusters=6, seed=3)
        ds = solve_kmds_udg(udg, k=2, seed=0)
        assert is_k_dominating_set(udg, ds.members, 2)


class TestCorridor:
    def test_shape(self):
        udg = corridor_udg(150, width=2.0, seed=1)
        assert udg.points[:, 1].max() <= 2.0
        assert udg.points[:, 0].max() > 10.0

    def test_validation(self):
        with pytest.raises(GraphError):
            corridor_udg(-1)
        with pytest.raises(GraphError):
            corridor_udg(10, width=0.0)
        with pytest.raises(GraphError):
            corridor_udg(10, length=-5.0)

    def test_algorithm3_works(self):
        udg = corridor_udg(150, seed=2)
        ds = solve_kmds_udg(udg, k=1, seed=0)
        assert is_k_dominating_set(udg, ds.members, 1)


class TestPerforated:
    def test_holes_respected(self):
        udg = perforated_udg(300, holes=3, hole_radius=2.0, seed=4)
        # Regenerate the hole centers the same way to check clearance.
        rng = np.random.default_rng(4)
        import math

        side = math.sqrt(300 * math.pi / 8.0)
        centers = rng.uniform(0.0, side, size=(3, 2))
        d2 = ((udg.points[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        assert (d2.min(axis=1) >= 2.0 ** 2 - 1e-9).all()

    def test_no_holes_is_uniform(self):
        udg = perforated_udg(100, holes=0, seed=1)
        assert udg.n == 100

    def test_validation(self):
        with pytest.raises(GraphError):
            perforated_udg(-1)
        with pytest.raises(GraphError):
            perforated_udg(10, holes=-1)
        with pytest.raises(GraphError):
            perforated_udg(10, hole_radius=-0.5)

    def test_algorithm3_works(self):
        udg = perforated_udg(250, holes=4, seed=5)
        ds = solve_kmds_udg(udg, k=2, seed=0)
        assert is_k_dominating_set(udg, ds.members, 2)


class TestTargetedFailures:
    def _clustering(self):
        udg = clustered_udg(200, clusters=6, seed=7)
        ds = solve_kmds_udg(udg, k=1, seed=0)
        return udg, ds.members

    def test_targeted_at_least_as_bad_as_random(self):
        udg, members = self._clustering()
        rnd = dominator_failure_experiment(udg, members, 0.3, trials=15,
                                           strategy="random", seed=1)
        adv = dominator_failure_experiment(udg, members, 0.3, trials=15,
                                           strategy="targeted", seed=1)
        assert adv["uncovered_fraction"] >= \
            rnd["uncovered_fraction"] - 1e-9

    def test_targeted_deterministic_ranking(self):
        udg, members = self._clustering()
        a = dominator_failure_experiment(udg, members, 0.5, trials=3,
                                         strategy="targeted", seed=2)
        b = dominator_failure_experiment(udg, members, 0.5, trials=3,
                                         strategy="targeted", seed=2)
        assert a == b

    def test_unknown_strategy(self):
        udg, members = self._clustering()
        with pytest.raises(GraphError, match="strategy"):
            dominator_failure_experiment(udg, members, 0.3,
                                         strategy="voodoo")
