"""Unit tests for the synchronous round loop."""

from dataclasses import dataclass

import networkx as nx
import pytest

from repro.errors import SimulationError
from repro.simulation.messages import Message
from repro.simulation.network import SynchronousNetwork
from repro.simulation.node import NodeProcess
from repro.simulation.runner import run_protocol
from repro.simulation.trace import TraceRecorder


@dataclass(frozen=True)
class Ping(Message):
    hop: int = 0
    SCHEMA = (("hop", "count"),)


class Broadcaster(NodeProcess):
    """Broadcasts once, records what it heard."""

    def run(self, ctx):
        ctx.broadcast(Ping(hop=0))
        inbox = yield
        self.heard = sorted(src for src, _ in inbox)


class Relay(NodeProcess):
    """Floods a token for `hops` rounds."""

    def __init__(self, node_id, hops):
        super().__init__(node_id)
        self.hops = hops
        self.saw_token = node_id == 0

    def run(self, ctx):
        for h in range(self.hops):
            if self.saw_token:
                ctx.broadcast(Ping(hop=h))
            inbox = yield
            if inbox:
                self.saw_token = True


class NeverYields(NodeProcess):
    def run(self, ctx):
        while True:
            ctx.broadcast(Ping())
            yield


class NotAGenerator(NodeProcess):
    def run(self, ctx):
        return None


def _run(graph, processes, **kw):
    net = SynchronousNetwork(graph, processes)
    return net, run_protocol(net, **kw)


class TestBasicExecution:
    def test_single_exchange(self, triangle):
        procs = [Broadcaster(v) for v in triangle.nodes]
        _, stats = _run(triangle, procs)
        assert stats.rounds == 1
        for p in procs:
            assert p.heard == sorted(set(triangle.nodes) - {p.node_id})
            assert p.finished

    def test_message_counting(self, triangle):
        procs = [Broadcaster(v) for v in triangle.nodes]
        net, stats = _run(triangle, procs)
        assert stats.messages_sent == 6  # 2 per node on K3
        assert stats.bits_sent == 6 * net.size_model.message_bits(Ping())

    def test_flood_covers_path(self):
        g = nx.path_graph(6)
        procs = [Relay(v, hops=5) for v in g.nodes]
        _, stats = _run(g, procs)
        assert all(p.saw_token for p in procs)
        assert stats.rounds == 5

    def test_flood_too_few_hops(self):
        g = nx.path_graph(6)
        procs = [Relay(v, hops=2) for v in g.nodes]
        _run(g, procs)
        assert not procs[5].saw_token
        assert procs[2].saw_token

    def test_max_rounds_guard(self, triangle):
        procs = [NeverYields(v) for v in triangle.nodes]
        with pytest.raises(SimulationError, match="did not terminate"):
            _run(triangle, procs, max_rounds=10)

    def test_non_generator_process_rejected(self, triangle):
        procs = [NotAGenerator(v) for v in triangle.nodes]
        with pytest.raises(SimulationError, match="must be a generator"):
            _run(triangle, procs)

    def test_no_messages_zero_rounds(self, triangle):
        class Silent(NodeProcess):
            def run(self, ctx):
                self.done_early = True
                return
                yield

        procs = [Silent(v) for v in triangle.nodes]
        _, stats = _run(triangle, procs)
        assert stats.rounds == 0
        assert stats.messages_sent == 0


class TestRoundStats:
    def test_per_round_disabled_by_default(self, triangle):
        _, stats = _run(triangle, [Broadcaster(v) for v in triangle.nodes])
        assert stats.per_round == []

    def test_per_round_enabled(self):
        g = nx.path_graph(4)
        procs = [Relay(v, hops=3) for v in g.nodes]
        net = SynchronousNetwork(g, procs)
        stats = run_protocol(net, keep_round_stats=True)
        assert len(stats.per_round) == stats.rounds
        assert stats.per_round[0].round_index == 0
        assert sum(r.messages_sent for r in stats.per_round) == stats.messages_sent

    def test_max_message_bits_tracked(self, triangle):
        net = SynchronousNetwork(triangle, [Broadcaster(v) for v in triangle.nodes])
        stats = run_protocol(net)
        assert stats.max_message_bits == net.size_model.message_bits(Ping())


class TestTracing:
    def test_round_events_recorded(self, triangle):
        trace = TraceRecorder()
        net = SynchronousNetwork(triangle, [Broadcaster(v) for v in triangle.nodes])
        run_protocol(net, trace=trace)
        rounds = trace.of_kind("round")
        assert len(rounds) == 1
        assert rounds[0].data["messages"] == 6

    def test_trace_filter(self, triangle):
        trace = TraceRecorder(kinds={"nonexistent"})
        net = SynchronousNetwork(triangle, [Broadcaster(v) for v in triangle.nodes])
        run_protocol(net, trace=trace)
        assert len(trace) == 0
