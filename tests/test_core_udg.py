"""Unit tests for Algorithm 3 (unit disk graphs)."""

import math

import pytest

from repro.core.udg import (
    XI,
    part_one_leaders,
    part_one_round_count,
    solve_kmds_udg,
    theta_schedule,
)
from repro.core.verify import is_k_dominating_set
from repro.errors import GeometryError, GraphError
from repro.graphs.udg import random_udg, udg_from_points


class TestSchedule:
    def test_round_count_formula(self):
        for n in (8, 100, 10_000, 10 ** 6):
            expected = math.ceil(math.log(math.log2(n), XI))
            assert part_one_round_count(n) == max(1, expected)

    def test_round_count_tiny(self):
        assert part_one_round_count(1) == 1
        assert part_one_round_count(2) == 1

    def test_loglog_growth(self):
        assert part_one_round_count(10 ** 6) <= part_one_round_count(100) + 4

    def test_schedule_doubles(self):
        for n in (100, 5000):
            sched = theta_schedule(n)
            for a, b in zip(sched, sched[1:]):
                assert b == pytest.approx(2 * a)

    def test_schedule_ends_at_half(self):
        for n in (10, 100, 10_000):
            assert theta_schedule(n)[-1] == pytest.approx(0.5)

    def test_schedule_length(self):
        for n in (50, 2000):
            assert len(theta_schedule(n)) == part_one_round_count(n)


class TestPartOne:
    def test_leaders_dominate(self, udg200):
        res = part_one_leaders(udg200, seed=0)
        assert is_k_dominating_set(udg200, res.members, 1, convention="open")

    @pytest.mark.parametrize("seed", range(5))
    def test_lemma_51_many_seeds(self, seed):
        udg = random_udg(150, density=8.0, seed=seed)
        res = part_one_leaders(udg, seed=seed)
        assert is_k_dominating_set(udg, res.members, 1, convention="open")

    def test_active_counts_decrease(self, udg200):
        res = part_one_leaders(udg200, seed=1)
        trace = res.details["active_per_round"]
        assert trace[0] == 200
        assert all(a >= b for a, b in zip(trace, trace[1:]))
        assert trace[-1] == len(res.members)

    def test_sparsifies(self, udg200):
        res = part_one_leaders(udg200, seed=2)
        assert len(res.members) < 200

    def test_isolated_node_becomes_leader(self):
        udg = udg_from_points([(0, 0), (10, 10), (10.4, 10.0)])
        res = part_one_leaders(udg, seed=0)
        assert 0 in res.members

    def test_single_node(self):
        udg = udg_from_points([(0, 0)])
        res = part_one_leaders(udg, seed=0)
        assert res.members == {0}

    def test_deterministic(self, udg200):
        a = part_one_leaders(udg200, seed=3)
        b = part_one_leaders(udg200, seed=3)
        assert a.members == b.members


class TestFullAlgorithm:
    @pytest.mark.parametrize("k", [1, 2, 3, 5])
    def test_valid_kfold(self, udg200, k):
        ds = solve_kmds_udg(udg200, k=k, seed=0)
        assert is_k_dominating_set(udg200, ds.members, k, convention="open")

    def test_monotone_in_k(self, udg200):
        sizes = [len(solve_kmds_udg(udg200, k=k, seed=0)) for k in (1, 2, 4)]
        assert sizes[0] <= sizes[1] <= sizes[2]

    def test_k_exceeding_degrees_promotes_everyone_needed(self):
        # Clique of 3 with k=5: nobody can have 5 neighbors in S, so all
        # deficient nodes end up inside S (where they are exempt).
        udg = udg_from_points([(0, 0), (0.1, 0), (0, 0.1)])
        ds = solve_kmds_udg(udg, k=5, seed=0)
        assert is_k_dominating_set(udg, ds.members, 5, convention="open")
        assert ds.members == {0, 1, 2}

    def test_details(self, udg200):
        ds = solve_kmds_udg(udg200, k=2, seed=1)
        assert ds.details["part1_leaders"] <= len(ds)
        assert ds.details["part2_iterations"] >= 0
        assert len(ds.details["theta_per_round"]) == part_one_round_count(200)

    def test_selection_policies_valid(self, udg200):
        for policy in ("random", "by-id"):
            ds = solve_kmds_udg(udg200, k=3, selection_policy=policy, seed=0)
            assert is_k_dominating_set(udg200, ds.members, 3,
                                       convention="open")

    def test_empty(self):
        udg = udg_from_points([])
        ds = solve_kmds_udg(udg, k=1)
        assert ds.members == set()

    def test_invalid_k(self, udg_tiny):
        with pytest.raises(GraphError, match="k must be"):
            solve_kmds_udg(udg_tiny, k=0)

    def test_invalid_policy(self, udg_tiny):
        with pytest.raises(GraphError, match="selection policy"):
            solve_kmds_udg(udg_tiny, k=1, selection_policy="telepathy")

    def test_requires_udg(self, triangle):
        with pytest.raises(GeometryError, match="UnitDiskGraph"):
            solve_kmds_udg(triangle, k=1)

    def test_invalid_mode(self, udg_tiny):
        with pytest.raises(GraphError, match="unknown mode"):
            solve_kmds_udg(udg_tiny, k=1, mode="smoke-signals")


class TestModes:
    @pytest.mark.parametrize("k", [1, 3])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_message_equals_direct(self, k, seed):
        udg = random_udg(120, density=9.0, seed=40 + seed)
        d = solve_kmds_udg(udg, k=k, mode="direct", seed=seed)
        m = solve_kmds_udg(udg, k=k, mode="message", seed=seed)
        assert d.members == m.members

    def test_message_rounds_loglog(self):
        udg = random_udg(150, density=10.0, seed=5)
        ds = solve_kmds_udg(udg, k=1, mode="message", seed=0)
        # Part I: 2 rounds per doubling round; Part II small.
        assert ds.stats.rounds <= 2 * part_one_round_count(150) + 3 * 8 + 4

    def test_message_bits_logarithmic(self):
        udg = random_udg(100, density=10.0, seed=6)
        ds = solve_kmds_udg(udg, k=2, mode="message", seed=0)
        assert ds.stats.max_message_bits <= 16 * math.log2(101)
