"""Unit tests for the analysis harness (stats, reporting, ratio, sweep,
faults)."""

import numpy as np
import pytest

from repro.analysis.faults import (
    coverage_survival_curve,
    dominator_failure_experiment,
)
from repro.analysis.ratio import (
    OptimumEstimate,
    approximation_ratio,
    best_known_optimum,
)
from repro.analysis.reporting import format_markdown_table, format_table
from repro.analysis.stats import (
    geometric_mean,
    mean_confidence_interval,
    summarize,
)
from repro.analysis.sweep import group_mean, sweep
from repro.errors import GraphError
from repro.graphs.generators import gnp_graph
from repro.graphs.udg import random_udg


class TestStats:
    def test_summarize(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s["mean"] == 2.0
        assert s["min"] == 1.0
        assert s["max"] == 3.0
        assert s["count"] == 3

    def test_summarize_empty(self):
        assert summarize([])["count"] == 0

    def test_ci_contains_mean(self):
        m, lo, hi = mean_confidence_interval([1, 2, 3, 4, 5])
        assert lo <= m <= hi
        assert m == 3.0

    def test_ci_single_sample(self):
        assert mean_confidence_interval([7.0]) == (7.0, 7.0, 7.0)

    def test_ci_zero_variance(self):
        m, lo, hi = mean_confidence_interval([2.0, 2.0, 2.0])
        assert (m, lo, hi) == (2.0, 2.0, 2.0)

    def test_ci_bad_confidence(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([1, 2], confidence=1.5)

    def test_ci_widens_with_confidence(self):
        vals = list(np.random.default_rng(0).normal(size=30))
        _, lo95, hi95 = mean_confidence_interval(vals, 0.95)
        _, lo99, hi99 = mean_confidence_interval(vals, 0.99)
        assert hi99 - lo99 > hi95 - lo95

    def test_geometric_mean(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])


class TestReporting:
    def test_ascii_table_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.5], [30, 4]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "2.500" in out

    def test_markdown_table(self):
        out = format_markdown_table(["x"], [[1], [2]])
        assert out.splitlines()[1] == "|---|"
        assert out.count("|") == 8

    def test_empty_rows(self):
        out = format_table(["only", "headers"], [])
        assert "only" in out


class TestRatio:
    def test_exact_on_small(self, tiny_gnp):
        opt = best_known_optimum(tiny_gnp, 1, exact_node_limit=60)
        assert opt.kind == "exact"
        assert opt.value >= 1

    def test_lp_on_large(self):
        g = gnp_graph(120, 0.05, seed=0)
        opt = best_known_optimum(g, 1, exact_node_limit=30)
        assert opt.kind == "lp"

    def test_ratio_math(self):
        assert approximation_ratio(10, OptimumEstimate(5.0, "exact")) == 2.0
        assert approximation_ratio(10, 4.0) == 2.5

    def test_ratio_zero_opt(self):
        assert approximation_ratio(0, 0.0) == 1.0
        assert approximation_ratio(3, 0.0) == float("inf")

    def test_bad_kind(self):
        with pytest.raises(ValueError):
            OptimumEstimate(1.0, "guess")


class TestSweep:
    def test_grid_and_seeds(self):
        def measure(seed, a, b):
            return {"sum": a + b + seed}

        recs = sweep(measure, {"a": [1, 2], "b": [10]}, seeds=(0, 1))
        assert len(recs) == 4
        assert {r["sum"] for r in recs} == {11, 12, 13, 12 + 1}

    def test_on_record_callback(self):
        seen = []
        sweep(lambda seed, x: {"y": x}, {"x": [5]},
              on_record=lambda r: seen.append(r))
        assert len(seen) == 1
        assert seen[0]["y"] == 5

    def test_measure_batch_gets_whole_seed_list(self):
        calls = []

        def measure_batch(seeds, a):
            calls.append((tuple(seeds), a))
            return [{"y": a * 10 + s} for s in seeds]

        def measure(seed, a):  # must never run when batch form is given
            raise AssertionError("measure called despite measure_batch")

        recs = sweep(measure, {"a": [1, 2]}, seeds=(0, 3),
                     measure_batch=measure_batch)
        assert calls == [((0, 3), 1), ((0, 3), 2)]
        assert [(r["a"], r["seed"], r["y"]) for r in recs] \
            == [(1, 0, 10), (1, 3, 13), (2, 0, 20), (2, 3, 23)]

    def test_measure_batch_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="returned 1 results for 2"):
            sweep(lambda seed: {}, {}, seeds=(0, 1),
                  measure_batch=lambda seeds: [{}])

    def test_seeds_validated_before_any_run(self):
        from repro.errors import GraphError

        ran = []

        def measure(seed, a):
            ran.append(seed)
            return {}

        # The malformed *last* seed must fail the sweep before the
        # first measurement runs, not half-way through the grid.
        with pytest.raises(GraphError, match="seed must be an int or None"):
            sweep(measure, {"a": [1]}, seeds=(0, 1, "two"))
        assert ran == []

    def test_group_mean(self):
        recs = [{"g": 1, "v": 2.0}, {"g": 1, "v": 4.0}, {"g": 2, "v": 10.0}]
        out = group_mean(recs, by=["g"], value="v")
        assert out[(1,)] == 3.0
        assert out[(2,)] == 10.0


class TestFaults:
    def _setup(self):
        from repro.core.udg import solve_kmds_udg

        udg = random_udg(150, density=10.0, seed=2)
        ds3 = solve_kmds_udg(udg, k=3, seed=0)
        ds1 = solve_kmds_udg(udg, k=1, seed=0)
        return udg, ds1, ds3

    def test_zero_kill_full_coverage(self):
        udg, ds1, _ = self._setup()
        out = dominator_failure_experiment(udg, ds1.members, 0.0, trials=2,
                                           seed=0)
        assert out["uncovered_fraction"] == 0.0
        assert out["all_covered_probability"] == 1.0

    def test_full_kill_no_coverage(self):
        udg, ds1, _ = self._setup()
        out = dominator_failure_experiment(udg, ds1.members, 1.0, trials=2,
                                           seed=0)
        assert out["uncovered_fraction"] == 1.0

    def test_redundancy_helps(self):
        udg, ds1, ds3 = self._setup()
        out1 = dominator_failure_experiment(udg, ds1.members, 0.4,
                                            trials=20, seed=1)
        out3 = dominator_failure_experiment(udg, ds3.members, 0.4,
                                            trials=20, seed=1)
        assert out3["uncovered_fraction"] <= out1["uncovered_fraction"]

    def test_empty_members(self):
        udg, _, _ = self._setup()
        out = dominator_failure_experiment(udg, set(), 0.5, trials=1)
        assert out["uncovered_fraction"] == 1.0

    def test_invalid_fraction(self):
        udg, ds1, _ = self._setup()
        with pytest.raises(GraphError):
            dominator_failure_experiment(udg, ds1.members, 1.5)

    def test_invalid_trials(self):
        udg, ds1, _ = self._setup()
        with pytest.raises(GraphError):
            dominator_failure_experiment(udg, ds1.members, 0.5, trials=0)

    def test_survival_curve_shape(self):
        udg, ds1, _ = self._setup()
        curve = coverage_survival_curve(udg, ds1.members, [0.0, 0.5, 1.0],
                                        trials=5, seed=0)
        assert [c["kill_fraction"] for c in curve] == [0.0, 0.5, 1.0]
        assert curve[0]["uncovered_fraction"] <= \
            curve[-1]["uncovered_fraction"]
