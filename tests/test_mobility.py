"""Unit tests for the mobility models."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs.mobility import (
    GaussianDrift,
    RandomWaypoint,
    _reflect,
    mobility_trace,
)
from repro.graphs.udg import random_udg


class TestReflect:
    def test_inside_unchanged(self):
        pts = np.array([[1.0, 2.0]])
        assert np.allclose(_reflect(pts, 5.0), pts)

    def test_negative_reflected(self):
        pts = np.array([[-1.0, 2.0]])
        assert np.allclose(_reflect(pts, 5.0), [[1.0, 2.0]])

    def test_over_side_reflected(self):
        pts = np.array([[6.0, 2.0]])
        assert np.allclose(_reflect(pts, 5.0), [[4.0, 2.0]])

    def test_multi_bounce(self):
        pts = np.array([[11.5, 0.0]])
        assert np.allclose(_reflect(pts, 5.0), [[1.5, 0.0]])

    def test_invalid_side(self):
        with pytest.raises(GraphError):
            _reflect(np.zeros((1, 2)), 0.0)


class TestGaussianDrift:
    def test_stays_in_bounds(self):
        model = GaussianDrift(0.5, seed=1)
        pts = np.random.default_rng(0).uniform(0, 5, size=(50, 2))
        for _ in range(20):
            pts = model.step(pts, 5.0)
            assert pts.min() >= 0.0
            assert pts.max() <= 5.0

    def test_deterministic(self):
        pts = np.ones((10, 2))
        a = GaussianDrift(0.3, seed=7).step(pts, 5.0)
        b = GaussianDrift(0.3, seed=7).step(pts, 5.0)
        assert np.allclose(a, b)

    def test_zero_speed_static(self):
        model = GaussianDrift(0.0, seed=0)
        pts = np.ones((5, 2))
        assert np.allclose(model.step(pts, 5.0), pts)

    def test_displacement_scales_with_speed(self):
        pts = np.full((200, 2), 2.5)
        slow = GaussianDrift(0.01, seed=3).step(pts, 5.0)
        fast = GaussianDrift(0.5, seed=3).step(pts, 5.0)
        assert np.abs(fast - pts).mean() > 5 * np.abs(slow - pts).mean()

    def test_invalid_speed(self):
        with pytest.raises(GraphError):
            GaussianDrift(-1.0)


class TestRandomWaypoint:
    def test_moves_toward_targets(self):
        model = RandomWaypoint(0.5, seed=2)
        pts = np.full((20, 2), 2.5)
        first = model.step(pts, 5.0)
        # Every non-arrived node moved by exactly `speed`.
        moved = np.hypot(*(first - pts).T)
        assert np.all((np.isclose(moved, 0.5, atol=1e-9)) | (moved < 0.5))

    def test_stays_in_bounds(self):
        model = RandomWaypoint(0.8, pause_steps=1, seed=4)
        pts = np.random.default_rng(1).uniform(0, 5, size=(30, 2))
        for _ in range(50):
            pts = model.step(pts, 5.0)
            assert pts.min() >= -1e-9
            assert pts.max() <= 5.0 + 1e-9

    def test_pause_holds_position(self):
        model = RandomWaypoint(10.0, pause_steps=3, seed=5)
        pts = np.full((5, 2), 2.5)
        # Speed 10 >> area: every node arrives on step 1 and then pauses.
        arrived = model.step(pts, 5.0)
        held = model.step(arrived, 5.0)
        assert np.allclose(arrived, held)

    def test_invalid_args(self):
        with pytest.raises(GraphError):
            RandomWaypoint(-0.1)
        with pytest.raises(GraphError):
            RandomWaypoint(1.0, pause_steps=-1)


class TestMobilityTrace:
    def test_yields_requested_snapshots(self):
        udg = random_udg(40, density=8.0, seed=3)
        snaps = list(mobility_trace(udg, GaussianDrift(0.1, seed=0), 5))
        assert len(snaps) == 5
        assert all(s.n == 40 for s in snaps)
        assert all(s.radius == udg.radius for s in snaps)

    def test_graph_changes_under_motion(self):
        udg = random_udg(60, density=8.0, seed=4)
        snaps = list(mobility_trace(udg, GaussianDrift(0.4, seed=1), 3))
        assert set(snaps[-1].nx.edges) != set(udg.nx.edges)

    def test_zero_steps(self):
        udg = random_udg(10, density=8.0, seed=5)
        assert list(mobility_trace(udg, GaussianDrift(0.1, seed=0), 0)) == []

    def test_negative_steps_rejected(self):
        udg = random_udg(10, density=8.0, seed=5)
        with pytest.raises(GraphError):
            list(mobility_trace(udg, GaussianDrift(0.1), -1))

    def test_deterministic(self):
        udg = random_udg(30, density=8.0, seed=6)
        a = list(mobility_trace(udg, RandomWaypoint(0.3, seed=9), 4))
        b = list(mobility_trace(udg, RandomWaypoint(0.3, seed=9), 4))
        for s1, s2 in zip(a, b):
            assert np.allclose(s1.points, s2.points)
