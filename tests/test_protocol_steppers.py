"""Columnar protocol stepping plane vs the per-node generator oracle.

``run_protocol`` routes stock protocols through per-round batched
steppers (:mod:`repro.simulation.steppers`); the per-node generator
loop stays reachable via ``reference_protocols=True`` as the oracle.
These tests pin the batched plane to that oracle **bit-for-bit** —
solutions (exact float dicts, member sets), RunStats, per-lane RNG
consumption, and loss-injector RNG state/drop counts — across all five
registered protocols and the built-in injector matrix, plus the
experiment call sites (E17, E23) that ride the plane.
"""

from __future__ import annotations

from types import SimpleNamespace

import networkx as nx
import numpy as np
import pytest

from repro.baselines.jrs import JRSProgram
from repro.core.fractional import FractionalProgram, _resolve_instance
from repro.core.rounding import RoundingProgram
from repro.core.udg import UDGProgram
from repro.dynamics.repair import LocalPatchRepair, PatchNode
from repro.engine import execute
from repro.engine.artifacts import graph_artifacts
from repro.engine.instrumentation import Instrumentation
from repro.errors import GraphError
from repro.graphs.properties import feasible_coverage
from repro.graphs.udg import random_udg
from repro.simulation.faults import CrashFaultInjector, MessageLossInjector
from repro.simulation.network import SynchronousNetwork
from repro.simulation.runner import run_protocol

STATS = ("rounds", "messages_sent", "bits_sent", "max_message_bits")


def _graph(seed: int) -> nx.Graph:
    return nx.gnp_random_graph(24, 0.25, seed=seed)


def _stats(s):
    return tuple(getattr(s, f) for f in STATS)


def _inj_state(injectors):
    out = []
    for inj in injectors:
        if isinstance(inj, MessageLossInjector):
            out.append((inj.dropped, repr(inj.rng.bit_generator.state)))
        else:
            out.append(tuple(sorted(map(repr, inj.crashed))))
    return out


def _pair(program, *, seed, injector_factory=lambda: []):
    """Batched and oracle runs with independent injector instances;
    returns (batched result, oracle result) and asserts stats + final
    injector state match exactly."""
    inj_b, inj_o = injector_factory(), injector_factory()
    batched = execute(program, "message", seed=seed, injectors=inj_b)
    oracle = execute(program, "message", seed=seed, injectors=inj_o,
                     reference_protocols=True)
    assert _stats(batched.stats) == _stats(oracle.stats)
    assert _inj_state(inj_b) == _inj_state(inj_o)
    return batched, oracle


# ----------------------------------------------------------------------
# Algorithm 1 — exact x/y/z and duals
# ----------------------------------------------------------------------

@pytest.mark.parametrize("t,duals", ((1, False), (2, True), (3, True)))
def test_fractional_stepper_bit_identical(t, duals):
    g = _graph(t)
    lp = _resolve_instance(g, None, feasible_coverage(g, 2))
    program = FractionalProgram(lp, t=t, compute_duals=duals)
    batched, oracle = _pair(program, seed=t)
    assert batched.x == oracle.x
    assert batched.y == oracle.y
    if duals:
        assert batched.z == oracle.z
        assert batched.alpha == oracle.alpha
        assert batched.beta == oracle.beta


@pytest.mark.parametrize("loss", (0.3, 1.0))
def test_fractional_stepper_under_loss(loss):
    g = _graph(5)
    lp = _resolve_instance(g, None, feasible_coverage(g, 2))
    program = FractionalProgram(lp, t=2, compute_duals=True)
    batched, oracle = _pair(
        program, seed=5,
        injector_factory=lambda: [MessageLossInjector(loss, seed=42)])
    assert batched.x == oracle.x
    assert batched.z == oracle.z


def test_fractional_stepper_under_crash_plus_loss():
    g = _graph(6)
    lp = _resolve_instance(g, None, feasible_coverage(g, 1))
    program = FractionalProgram(lp, t=2, compute_duals=False)
    victims = sorted(g.nodes)[:4]
    batched, oracle = _pair(
        program, seed=6,
        injector_factory=lambda: [
            CrashFaultInjector({1: victims[:2], 4: victims[2:]}),
            MessageLossInjector(0.5, seed=9)])
    assert batched.x == oracle.x
    assert batched.y == oracle.y


# ----------------------------------------------------------------------
# Algorithm 2 — seeded coin flips and REQ selection
# ----------------------------------------------------------------------

@pytest.mark.parametrize("policy", ("random", "highest-x"))
def test_rounding_stepper_identical(policy):
    g = _graph(1)
    lp = _resolve_instance(g, None, feasible_coverage(g, 1))
    frac = execute(FractionalProgram(lp, t=2, compute_duals=False), "direct")
    program = RoundingProgram(lp, frac.x, policy, 1)
    batched, oracle = _pair(
        program, seed=1,
        injector_factory=lambda: [MessageLossInjector(0.35, seed=3)])
    assert batched.members == oracle.members


def test_rounding_stepper_under_crash():
    g = _graph(2)
    lp = _resolve_instance(g, None, feasible_coverage(g, 1))
    frac = execute(FractionalProgram(lp, t=2, compute_duals=False), "direct")
    program = RoundingProgram(lp, frac.x, "random", 1)
    victims = sorted(g.nodes)[:3]
    batched, oracle = _pair(
        program, seed=2,
        injector_factory=lambda: [CrashFaultInjector({0: victims[:1],
                                                      1: victims[1:]})])
    assert batched.members == oracle.members


# ----------------------------------------------------------------------
# Algorithm 3 — Part I elections + Part II adoption
# ----------------------------------------------------------------------

@pytest.mark.parametrize("policy", ("by-id", "random"))
def test_udg_stepper_identical_under_loss(policy):
    udg = random_udg(40, density=8.0, seed=4)
    program = UDGProgram(udg, 2, policy, 5)
    batched, oracle = _pair(
        program, seed=4,
        injector_factory=lambda: [MessageLossInjector(0.3, seed=11)])
    assert batched.members == oracle.members


def test_udg_stepper_identical_under_crash_plus_loss():
    udg = random_udg(35, density=8.0, seed=7)
    program = UDGProgram(udg, 2, "by-id", 5)
    batched, oracle = _pair(
        program, seed=7,
        injector_factory=lambda: [
            CrashFaultInjector({2: [0, 5], 9: [9]}),
            MessageLossInjector(0.4, seed=13)])
    assert batched.members == oracle.members


# ----------------------------------------------------------------------
# JRS/LRG baseline (injector-free plane; per-phase coin flips)
# ----------------------------------------------------------------------

@pytest.mark.parametrize("convention", ("closed", "open"))
def test_jrs_stepper_identical(convention):
    g = _graph(8)
    rng = np.random.default_rng(0)
    req = {v: (int(rng.integers(0, 3)) if convention == "open"
               else int(rng.integers(1, min(3, g.degree[v] + 1) + 1)))
           for v in g.nodes}
    for seed in (8, 21):
        batched, oracle = _pair(
            JRSProgram(graph_artifacts(g), req, convention, seed, 10_000),
            seed=seed)
        assert batched.members == oracle.members
        assert batched.details == oracle.details


def test_jrs_stepper_string_node_ids():
    g = nx.relabel_nodes(_graph(3), {v: f"n{v}" for v in range(24)})
    req = {v: 1 for v in g.nodes}
    batched, oracle = _pair(
        JRSProgram(graph_artifacts(g), req, "open", 3, 10_000), seed=3)
    assert batched.members == oracle.members


def test_jrs_stepper_convergence_valve_parity():
    g = nx.complete_graph(6)
    req = {v: 1 for v in g.nodes}
    errors = []
    for flag in (False, True):
        program = JRSProgram(graph_artifacts(g), req, "closed", 3, 0)
        with pytest.raises(GraphError) as exc:
            execute(program, "message", seed=3, reference_protocols=flag)
        errors.append(str(exc.value))
    assert errors[0] == errors[1]


# ----------------------------------------------------------------------
# Repair patch protocol — PatchNode
# ----------------------------------------------------------------------

def _patch_instance(gseed):
    """A damage patch exactly as ``LocalPatchRepair._repair_message``
    builds one: deficient nodes plus their 1-hop balls."""
    g = nx.gnp_random_graph(30, 0.15, seed=gseed)
    nodes = sorted(g.nodes)
    members = set(nodes[::3])
    deficient = {v: 1 + v % 3 for v in nodes[1::4] if v not in members}
    patch = nx.Graph()
    for u in deficient:
        patch.add_node(u)
        for w in g.neighbors(u):
            patch.add_edge(u, w)
    return patch, members, deficient


def _patch_procs(patch, members, deficient, *, k, policy, patience, maxit):
    return [
        PatchNode(v, k=k, policy=policy, deficit=deficient.get(v, 0),
                  is_member=v in members,
                  member_neighbors=[w for w in patch.neighbors(v)
                                    if w in members],
                  patience=patience, max_iterations=maxit)
        for v in sorted(patch.nodes)
    ]


def _patch_run(patch, members, deficient, *, policy="by-id", k=3,
               patience=3, maxit=10, seed=0, injector_factory=lambda: [],
               reference=False):
    procs = _patch_procs(patch, members, deficient, k=k, policy=policy,
                         patience=patience, maxit=maxit)
    net = SynchronousNetwork(patch, procs, seed=seed)
    injectors = injector_factory()
    stats = run_protocol(net, max_rounds=3 * maxit + 6, injectors=injectors,
                         reference_protocols=reference)
    snap = [(p.node_id, p.member, p.deficit, p.promoted, p.iterations,
             tuple(sorted(map(repr, p.member_neighbors)))) for p in procs]
    return snap, _stats(stats), _inj_state(injectors)


@pytest.mark.parametrize("policy", ("by-id", "random"))
@pytest.mark.parametrize("injector_factory", (
    lambda: [],
    lambda: [MessageLossInjector(0.3, seed=7)],
    lambda: [MessageLossInjector(1.0, seed=7)],
    lambda: [CrashFaultInjector({1: [1], 4: [2]}),
             MessageLossInjector(0.5, seed=9)],
))
def test_patch_stepper_identical(policy, injector_factory):
    patch, members, deficient = _patch_instance(1)
    a = _patch_run(patch, members, deficient, policy=policy,
                   injector_factory=injector_factory)
    b = _patch_run(patch, members, deficient, policy=policy,
                   injector_factory=injector_factory, reference=True)
    assert a == b


def test_patch_stepper_edge_cases_identical():
    g = nx.path_graph(4)
    cases = (
        dict(members={0, 1, 2, 3}, deficient={}, maxit=2),
        dict(members=set(), deficient={1: 2, 2: 1}, maxit=12),  # orphans
        dict(members={0}, deficient={1: 3, 3: 2}, maxit=1),  # exhaustion
    )
    for case in cases:
        a = _patch_run(g, case["members"], case["deficient"],
                       maxit=case["maxit"])
        b = _patch_run(g, case["members"], case["deficient"],
                       maxit=case["maxit"], reference=True)
        assert a == b


@pytest.mark.parametrize("loss", (0.0, 0.4))
def test_local_patch_repair_oracle_identical(loss):
    """The E23 call shape: a whole LocalPatchRepair epoch, batched vs
    ``reference_protocols=True``."""
    g = nx.gnp_random_graph(60, 0.08, seed=8)
    members = set(sorted(g.nodes)[::4])
    deficit = {v: 2 for v in sorted(set(g.nodes) - members)[:10]}
    state = SimpleNamespace(members=members)
    outs = []
    for flag in (False, True):
        policy = LocalPatchRepair("by-id", transport="message",
                                  loss_rate=loss, patience=3,
                                  reference_protocols=flag)
        out = policy.repair(state, g, dict(deficit), 2,
                            rng=np.random.default_rng(42),
                            instr=Instrumentation.for_n(60))
        outs.append((sorted(map(repr, out.promoted)),
                     sorted(map(repr, out.touched)), out.rounds,
                     out.messages, out.iterations, out.repaired))
    assert outs[0] == outs[1]


# ----------------------------------------------------------------------
# Experiment call sites ride the plane bit-identically
# ----------------------------------------------------------------------

def test_e17_cell_identical_to_oracle():
    from repro.experiments.e17_message_loss import _run_with_loss

    udg = random_udg(60, density=8.0, seed=31)
    for loss in (0.0, 0.15):
        batched = _run_with_loss(udg, 3, loss, 17)
        oracle = _run_with_loss(udg, 3, loss, 17, reference_protocols=True)
        assert batched == oracle


# ----------------------------------------------------------------------
# The numpy dispatch leg (REPRO_KERNEL_BACKEND=numpy) is pinned too
# ----------------------------------------------------------------------

def test_stepper_numpy_backend_matches_oracle(monkeypatch):
    g = _graph(12)
    lp = _resolve_instance(g, None, feasible_coverage(g, 2))
    program = FractionalProgram(lp, t=2, compute_duals=True)
    native = execute(program, "message", seed=12)
    monkeypatch.setenv("REPRO_KERNEL_BACKEND", "numpy")
    numpy_run = execute(program, "message", seed=12)
    oracle = execute(program, "message", seed=12, reference_protocols=True)
    assert numpy_run.x == oracle.x == native.x
    assert numpy_run.z == oracle.z == native.z
    assert _stats(numpy_run.stats) == _stats(oracle.stats)
