"""Unit tests for JSON persistence."""

import json

import numpy as np
import pytest

from repro.core.udg import solve_kmds_udg
from repro.core.verify import is_k_dominating_set
from repro.errors import GraphError
from repro.graphs.udg import random_udg, udg_from_points
from repro.io import (
    dominating_set_from_dict,
    dominating_set_to_dict,
    load_dominating_set,
    load_udg,
    save_dominating_set,
    save_udg,
    udg_from_dict,
    udg_to_dict,
)
from repro.types import DominatingSet, RunStats


class TestUdgRoundtrip:
    def test_points_preserved(self, tmp_path):
        udg = random_udg(60, density=9.0, seed=1)
        path = tmp_path / "field.json"
        save_udg(udg, path)
        loaded = load_udg(path)
        assert np.allclose(loaded.points, udg.points)
        assert loaded.radius == udg.radius

    def test_edges_recomputed_identically(self, tmp_path):
        udg = random_udg(80, density=10.0, seed=2)
        path = tmp_path / "field.json"
        save_udg(udg, path)
        loaded = load_udg(path)
        assert set(loaded.nx.edges) == set(udg.nx.edges)

    def test_custom_radius(self, tmp_path):
        udg = udg_from_points([(0, 0), (1.5, 0)], radius=2.0)
        path = tmp_path / "f.json"
        save_udg(udg, path)
        assert load_udg(path).nx.has_edge(0, 1)

    def test_wrong_format_rejected(self):
        with pytest.raises(GraphError, match="format"):
            udg_from_dict({"format": "something-else"})

    def test_file_is_plain_json(self, tmp_path):
        udg = random_udg(10, density=8.0, seed=3)
        path = tmp_path / "f.json"
        save_udg(udg, path)
        data = json.loads(path.read_text())
        assert data["format"] == "repro/udg/v1"


class TestDominatingSetRoundtrip:
    def test_members_and_stats(self, tmp_path):
        udg = random_udg(80, density=10.0, seed=4)
        ds = solve_kmds_udg(udg, k=2, seed=0)
        path = tmp_path / "ds.json"
        save_dominating_set(ds, path)
        loaded = load_dominating_set(path)
        assert loaded.members == ds.members
        assert loaded.stats.rounds == ds.stats.rounds
        assert loaded.details["k"] == 2
        assert is_k_dominating_set(udg, loaded.members, 2)

    def test_unserializable_details_skipped(self):
        ds = DominatingSet(members={1, 2},
                           details={"ok": 5, "bad": {3, 4}})
        data = dominating_set_to_dict(ds)
        assert data["details"] == {"ok": 5}
        assert data["details_skipped"] == ["bad"]

    def test_wrong_format_rejected(self):
        with pytest.raises(GraphError, match="format"):
            dominating_set_from_dict({"format": "nope", "members": []})

    def test_empty_set(self, tmp_path):
        ds = DominatingSet(members=set())
        path = tmp_path / "empty.json"
        save_dominating_set(ds, path)
        assert load_dominating_set(path).members == set()

    def test_stats_defaults(self):
        loaded = dominating_set_from_dict(
            {"format": "repro/dominating-set/v1", "members": [1]})
        assert loaded.stats.rounds == 0


class TestEndToEndWorkflow:
    def test_save_cluster_reload_verify(self, tmp_path):
        """The operational loop: deploy, persist, cluster, persist,
        reload both later and re-verify."""
        udg = random_udg(100, density=10.0, seed=5)
        ds = solve_kmds_udg(udg, k=3, seed=1)
        save_udg(udg, tmp_path / "field.json")
        save_dominating_set(ds, tmp_path / "heads.json")

        field = load_udg(tmp_path / "field.json")
        heads = load_dominating_set(tmp_path / "heads.json")
        assert is_k_dominating_set(field, heads.members, 3)
