"""Unit tests for the (PP)/(DP) LP machinery."""

import networkx as nx
import pytest

from repro.core.lp import CoveringLP
from repro.errors import GraphError
from repro.types import uniform_coverage


def _lp(graph, k=1):
    return CoveringLP(graph, uniform_coverage(list(graph.nodes), k))


class TestConstruction:
    def test_basic(self, triangle):
        lp = _lp(triangle, 2)
        assert lp.n == 3
        assert lp.delta == 2
        assert lp.coverage == {0: 2, 1: 2, 2: 2}

    def test_closed_neighborhoods_include_self(self, path4):
        lp = _lp(path4)
        assert 0 in lp.closed_nbrs[lp.index[0]]
        assert set(lp.closed_nbrs[lp.index[1]].tolist()) == {0, 1, 2}

    def test_missing_coverage(self, triangle):
        with pytest.raises(GraphError, match="missing"):
            CoveringLP(triangle, {0: 1})

    def test_negative_coverage(self, triangle):
        with pytest.raises(GraphError, match="non-negative"):
            CoveringLP(triangle, {0: -1, 1: 1, 2: 1})

    def test_feasibility_check(self, path4):
        assert _lp(path4, 2).is_feasible()
        assert not _lp(path4, 3).is_feasible()
        assert _lp(path4, 3).infeasible_witness() in (0, 3)
        assert _lp(path4, 2).infeasible_witness() is None


class TestPrimalOracles:
    def test_objective(self, triangle):
        lp = _lp(triangle)
        assert lp.primal_objective({0: 0.5, 1: 0.25, 2: 0.0}) == 0.75

    def test_all_ones_feasible(self, path4):
        lp = _lp(path4, 2)
        x = {v: 1.0 for v in path4.nodes}
        assert lp.primal_feasible(x)

    def test_zero_infeasible(self, triangle):
        lp = _lp(triangle)
        x = {v: 0.0 for v in triangle.nodes}
        violations = lp.primal_violations(x)
        assert len(violations) == 3
        assert all(short == pytest.approx(1.0) for _, short in violations)

    def test_fractional_feasible(self, triangle):
        lp = _lp(triangle)
        # Each node sums over all 3 nodes (clique): 3 * 1/3 = 1.
        x = {v: 1.0 / 3.0 for v in triangle.nodes}
        assert lp.primal_feasible(x, tol=1e-9)

    def test_box_violation_detected(self, triangle):
        lp = _lp(triangle)
        x = {0: 2.0, 1: 0.0, 2: 0.0}
        assert not lp.primal_feasible(x)


class TestDualOracles:
    def test_zero_dual_feasible(self, triangle):
        lp = _lp(triangle)
        zeros = {v: 0.0 for v in triangle.nodes}
        assert lp.dual_feasible(zeros, zeros)
        assert lp.dual_objective(zeros, zeros) == 0.0

    def test_uniform_y_slack(self, triangle):
        lp = _lp(triangle)
        y = {v: 1.0 / 3.0 for v in triangle.nodes}
        z = {v: 0.0 for v in triangle.nodes}
        slacks = lp.dual_slacks(y, z)
        assert all(s == pytest.approx(1.0) for s in slacks)
        assert lp.dual_feasible(y, z, tol=1e-9)

    def test_infeasibility_factor(self, triangle):
        lp = _lp(triangle)
        y = {v: 1.0 for v in triangle.nodes}
        z = {v: 0.0 for v in triangle.nodes}
        assert lp.dual_infeasibility_factor(y, z) == pytest.approx(3.0)

    def test_negative_dual_infeasible(self, triangle):
        lp = _lp(triangle)
        y = {0: -0.1, 1: 0.0, 2: 0.0}
        z = {v: 0.0 for v in triangle.nodes}
        assert not lp.dual_feasible(y, z)

    def test_weak_duality(self, small_gnp):
        # Any feasible primal's objective >= any feasible dual's objective.
        lp = _lp(small_gnp, 1)
        x = {v: 1.0 for v in small_gnp.nodes}
        deg_plus = {v: small_gnp.degree[v] + 1 for v in small_gnp.nodes}
        y = {v: 1.0 / (max(deg_plus.values())) for v in small_gnp.nodes}
        z = {v: 0.0 for v in small_gnp.nodes}
        if lp.dual_feasible(y, z):
            assert lp.dual_objective(y, z) <= lp.primal_objective(x) + 1e-9


class TestVectorHelpers:
    def test_k_vector_order(self, path4):
        lp = CoveringLP(path4, {0: 1, 1: 2, 2: 3, 3: 1})
        assert lp.k_vector().tolist() == [1.0, 2.0, 3.0, 1.0]

    def test_neighborhood_sums(self, path4):
        lp = _lp(path4)
        sums = lp.neighborhood_sums(lp.x_vector({0: 1.0, 1: 0.0, 2: 1.0, 3: 0.0}))
        assert sums.tolist() == [1.0, 2.0, 1.0, 1.0]
