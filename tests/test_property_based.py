"""Property-based tests (hypothesis) for the core invariants.

Strategies generate arbitrary small graphs and coverage requirements; the
properties are the paper's structural guarantees, which must hold on
*every* input, not just the benchmark suite.
"""

import math

import networkx as nx
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.greedy import greedy_kmds
from repro.baselines.lp_opt import lp_optimum
from repro.core.fractional import (
    fractional_kmds,
    lemma_44_dual_violation_bound,
)
from repro.core.lp import CoveringLP
from repro.core.rounding import randomized_rounding
from repro.core.udg import solve_kmds_udg, theta_schedule
from repro.core.verify import coverage_counts, is_k_dominating_set
from repro.graphs.properties import feasible_coverage
from repro.graphs.udg import UnitDiskGraph

COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def graphs(draw, max_n=14):
    """Arbitrary simple graphs with integer nodes."""
    n = draw(st.integers(min_value=1, max_value=max_n))
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    mask = draw(st.lists(st.booleans(), min_size=len(pairs),
                         max_size=len(pairs)))
    g = nx.Graph()
    g.add_nodes_from(range(n))
    g.add_edges_from(p for p, keep in zip(pairs, mask) if keep)
    return g


@st.composite
def udgs(draw, max_n=12):
    """Arbitrary small unit disk graphs."""
    n = draw(st.integers(min_value=1, max_value=max_n))
    coords = draw(st.lists(
        st.tuples(st.floats(0, 4, allow_nan=False, allow_infinity=False),
                  st.floats(0, 4, allow_nan=False, allow_infinity=False)),
        min_size=n, max_size=n))
    return UnitDiskGraph(coords)


class TestAlgorithm1Properties:
    @given(g=graphs(), k=st.integers(1, 3), t=st.integers(1, 4))
    @settings(max_examples=40, **COMMON)
    def test_primal_always_feasible(self, g, k, t):
        cov = feasible_coverage(g, k)
        sol = fractional_kmds(g, coverage=cov, t=t)
        lp = CoveringLP(g, cov)
        assert lp.primal_feasible(sol.x, tol=1e-7)

    @given(g=graphs(), k=st.integers(1, 2), t=st.integers(1, 3))
    @settings(max_examples=30, **COMMON)
    def test_lemma_43_dual_identity(self, g, k, t):
        cov = feasible_coverage(g, k)
        sol = fractional_kmds(g, coverage=cov, t=t)
        lp = CoveringLP(g, cov)
        beta_sum = sum(sum(row.values()) for row in sol.beta.values())
        assert lp.dual_objective(sol.y, sol.z) == pytest.approx(
            beta_sum, abs=1e-6)

    @given(g=graphs(), t=st.integers(1, 4))
    @settings(max_examples=30, **COMMON)
    def test_lemma_44_dual_violation(self, g, t):
        cov = feasible_coverage(g, 1)
        sol = fractional_kmds(g, coverage=cov, t=t)
        lp = CoveringLP(g, cov)
        bound = lemma_44_dual_violation_bound(t, lp.delta)
        assert lp.dual_infeasibility_factor(sol.y, sol.z) <= bound + 1e-7

    @given(g=graphs(), k=st.integers(1, 2), t=st.integers(1, 3))
    @settings(max_examples=25, **COMMON)
    def test_x_bounded(self, g, k, t):
        cov = feasible_coverage(g, k)
        sol = fractional_kmds(g, coverage=cov, t=t)
        assert all(-1e-12 <= x <= 1 + 1e-12 for x in sol.x.values())


class TestRoundingProperties:
    @given(g=graphs(), k=st.integers(1, 3), seed=st.integers(0, 1000))
    @settings(max_examples=40, **COMMON)
    def test_rounded_always_feasible(self, g, k, seed):
        cov = feasible_coverage(g, k)
        frac = fractional_kmds(g, coverage=cov, t=2, compute_duals=False)
        ds = randomized_rounding(g, frac.x, coverage=cov, seed=seed)
        assert is_k_dominating_set(g, ds.members, cov, convention="closed")

    @given(g=graphs(), seed=st.integers(0, 100))
    @settings(max_examples=20, **COMMON)
    def test_member_set_subset_of_nodes(self, g, seed):
        frac = fractional_kmds(g, k=1, t=2, compute_duals=False)
        ds = randomized_rounding(g, frac.x, k=1, seed=seed)
        assert ds.members <= set(g.nodes)


class TestUDGProperties:
    @given(udg=udgs(), k=st.integers(1, 3), seed=st.integers(0, 500))
    @settings(max_examples=40, **COMMON)
    def test_udg_always_valid(self, udg, k, seed):
        ds = solve_kmds_udg(udg, k=k, seed=seed)
        assert is_k_dominating_set(udg, ds.members, k, convention="open")

    @given(n=st.integers(1, 10 ** 7))
    @settings(max_examples=60, **COMMON)
    def test_theta_schedule_invariants(self, n):
        sched = theta_schedule(n)
        assert sched[-1] == pytest.approx(0.5)
        assert all(b == pytest.approx(2 * a)
                   for a, b in zip(sched, sched[1:]))
        assert all(0 < t <= 0.5 for t in sched)


class TestBaselineProperties:
    @given(g=graphs(), k=st.integers(0, 3))
    @settings(max_examples=30, **COMMON)
    def test_greedy_open_always_valid(self, g, k):
        ds = greedy_kmds(g, k, convention="open")
        assert is_k_dominating_set(g, ds.members, k, convention="open")

    @given(g=graphs(), k=st.integers(1, 2))
    @settings(max_examples=25, **COMMON)
    def test_lp_sandwich(self, g, k):
        cov = feasible_coverage(g, k)
        lp = lp_optimum(g, cov, convention="closed")
        greedy = greedy_kmds(g, cov, convention="closed")
        assert lp.objective <= len(greedy) + 1e-6
        # The LP optimum of a covering LP with all k_i <= |N_i| is at most n.
        assert lp.objective <= g.number_of_nodes() + 1e-6


class TestVerifyProperties:
    @given(g=graphs(), k=st.integers(0, 3),
           bits=st.lists(st.booleans(), min_size=14, max_size=14))
    @settings(max_examples=40, **COMMON)
    def test_closed_implies_open(self, g, k, bits):
        members = {v for v in g.nodes if bits[v]}
        if is_k_dominating_set(g, members, k, convention="closed"):
            assert is_k_dominating_set(g, members, k, convention="open")

    @given(g=graphs(),
           bits=st.lists(st.booleans(), min_size=14, max_size=14))
    @settings(max_examples=30, **COMMON)
    def test_counts_match_bruteforce(self, g, bits):
        members = {v for v in g.nodes if bits[v]}
        counts = coverage_counts(g, members, convention="open")
        for v in g.nodes:
            assert counts[v] == len(set(g.neighbors(v)) & members)
