"""Smoke tests: the example scripts run end-to-end (marked slow).

Each example is executed as a subprocess with its own interpreter — the
same way a user would run it — and must exit 0 and print its takeaway.
"""

import pathlib
import subprocess
import sys

import pytest

pytestmark = pytest.mark.slow

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "message_cost_analysis.py",
    "heterogeneous_coverage.py",
    "visualize_clustering.py",
]


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_example_runs(name, tmp_path):
    args = [sys.executable, str(EXAMPLES / name)]
    if name == "visualize_clustering.py":
        args.append(str(tmp_path))
    out = subprocess.run(args, capture_output=True, text=True, timeout=600)
    assert out.returncode == 0, out.stderr[-2000:]
    assert out.stdout.strip(), "example produced no output"
