"""Tests for the E1-E13 experiment harness.

Each experiment runs at quick scale and must pass all of its claim checks
— these are the repository's "the paper reproduces" assertions.  The fast
ones run in the default suite; the heavier ones are marked slow.
"""

import pytest

from repro.experiments import EXPERIMENTS, run_experiment
from repro.experiments.base import ExperimentReport, ScaleError

FAST = ["e2", "e3", "e5", "e7", "e8", "e11", "e12", "e13", "e15", "e16",
        "e22", "e23"]
HEAVY = ["e1", "e4", "e6", "e9", "e10", "e14", "e17", "e18", "e19", "e20", "e21"]


class TestRegistry:
    def test_all_thirteen_registered(self):
        assert set(EXPERIMENTS) == {f"e{i}" for i in range(1, 24)}

    def test_unknown_id(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_experiment("e99")

    def test_case_insensitive(self):
        report = run_experiment("E11")
        assert report.experiment_id == "e11"

    def test_unknown_scale(self):
        with pytest.raises(ScaleError):
            run_experiment("e11", scale="galactic")


@pytest.mark.parametrize("eid", FAST)
def test_fast_experiments_pass(eid):
    report = run_experiment(eid, scale="quick", seed=0)
    assert isinstance(report, ExperimentReport)
    assert report.rows, f"{eid} produced no rows"
    assert report.passed, f"{eid} failed: {report.failed_checks()}"


@pytest.mark.slow
@pytest.mark.parametrize("eid", HEAVY)
def test_heavy_experiments_pass(eid):
    report = run_experiment(eid, scale="quick", seed=0)
    assert report.rows, f"{eid} produced no rows"
    assert report.passed, f"{eid} failed: {report.failed_checks()}"


class TestReplication:
    def test_replication_seeds_defaults_and_override(self):
        from repro.experiments.base import replication_seeds

        assert replication_seeds(10, None, 3) == [10, 11, 12]
        assert replication_seeds(10, 2, 3) == [10, 11]
        assert replication_seeds(None, None, 2) == [0, 1]

    def test_replication_seeds_validated_up_front(self):
        from repro.errors import GraphError
        from repro.experiments.base import replication_seeds

        with pytest.raises(ScaleError, match="replicas must be >= 1"):
            replication_seeds(0, 0, 3)
        with pytest.raises(GraphError, match="seed must be an int or None"):
            replication_seeds("zero", None, 3)

    def test_replicas_override_reaches_batched_experiment(self):
        report = run_experiment("e7", scale="quick", seed=0, replicas=2)
        assert "2 batched seed replicas" in report.notes
        assert report.passed, report.failed_checks()

    def test_replicas_ignored_without_replication_axis(self):
        report = run_experiment("e11", scale="quick", seed=0, replicas=4)
        assert report.passed


class TestReportRendering:
    def test_render_ascii(self):
        report = run_experiment("e11")
        out = report.render()
        assert "E11" in out
        assert "PASS" in out

    def test_render_markdown(self):
        report = run_experiment("e11")
        out = report.render_markdown()
        assert out.startswith("### E11")
        assert "|---|" in out

    def test_failed_checks_listed(self):
        report = ExperimentReport(
            experiment_id="ex", title="t", claim="c",
            headers=["h"], rows=[[1]],
            checks={"good": True, "bad": False})
        assert not report.passed
        assert report.failed_checks() == ["bad"]
        assert "[FAIL] bad" in report.render()
