"""Statistical validation of the paper's expectation-level guarantees.

The theorem checks in the regular test modules are per-instance (worst
case or deterministic).  The claims below are about *expectations* over
the algorithms' randomness, so they need replication — these tests are
marked slow and run with ``pytest -m slow``.
"""

import math

import numpy as np
import pytest

from repro.analysis.ratio import best_known_optimum
from repro.baselines.lp_opt import lp_optimum
from repro.core.fractional import fractional_kmds
from repro.core.rounding import randomized_rounding
from repro.core.udg import part_one_leaders, solve_kmds_udg
from repro.graphs.generators import gnp_graph
from repro.graphs.hexcover import leaders_per_disk
from repro.graphs.properties import feasible_coverage, max_degree
from repro.graphs.udg import random_udg

pytestmark = pytest.mark.slow


class TestTheorem46Expectation:
    """E[|DS|] <= rho * ln(Delta+1) * OPT + O(OPT)."""

    def test_mean_blowup_over_seeds(self):
        g = gnp_graph(120, 0.08, seed=4)
        delta = max_degree(g)
        cov = feasible_coverage(g, 2)
        frac = fractional_kmds(g, coverage=cov, t=3, compute_duals=False)
        sizes = [
            len(randomized_rounding(g, frac.x, coverage=cov, seed=s))
            for s in range(60)
        ]
        mean = float(np.mean(sizes))
        bound = math.log(delta + 1) * frac.objective \
            + 2 * g.number_of_nodes() / (delta + 1) + 5
        assert mean <= bound

    def test_variance_not_degenerate(self):
        # The rounding really is random: different seeds differ.
        g = gnp_graph(80, 0.1, seed=5)
        cov = feasible_coverage(g, 1)
        frac = fractional_kmds(g, coverage=cov, t=3, compute_duals=False)
        sizes = {
            len(randomized_rounding(g, frac.x, coverage=cov, seed=s))
            for s in range(20)
        }
        assert len(sizes) > 1


class TestTheorem57Expectation:
    """Expected O(1) approximation and O(1) leaders per disk."""

    def test_mean_ratio_constant_over_seeds(self):
        ratios = []
        for s in range(8):
            udg = random_udg(400, density=10.0, seed=100 + s)
            ds = solve_kmds_udg(udg, k=1, seed=s)
            opt = lp_optimum(udg, 1, convention="open").objective
            ratios.append(len(ds) / max(opt, 1.0))
        assert float(np.mean(ratios)) <= 8.0

    def test_lemma_55_expected_leader_density(self):
        densities = []
        for s in range(6):
            udg = random_udg(1200, density=10.0, seed=200 + s)
            res = part_one_leaders(udg, seed=s)
            stats = leaders_per_disk(udg.points, sorted(res.members),
                                     disk_radius=0.5, grid_step=0.5)
            densities.append(stats["mean"])
        assert float(np.mean(densities)) <= 8.0

    def test_lemma_56_leader_density_scales_with_k(self):
        udg = random_udg(800, density=10.0, seed=42)
        means = {}
        for k in (1, 4):
            ds = solve_kmds_udg(udg, k=k, seed=0)
            stats = leaders_per_disk(udg.points, sorted(ds.members),
                                     disk_radius=0.5, grid_step=0.5)
            means[k] = stats["mean"]
        # O(k): growing k 4x should grow density by at most ~4x (+slack).
        assert means[4] <= 4.0 * means[1] + 2.0


class TestPart2AdoptionExpectation:
    """Part II's constant-time claim: iterations stay small in
    expectation across sizes."""

    def test_iterations_flat_in_n(self):
        iters = {}
        for n in (200, 1600):
            vals = []
            for s in range(5):
                udg = random_udg(n, density=10.0, seed=300 + 10 * s + n)
                ds = solve_kmds_udg(udg, k=3, seed=s)
                vals.append(ds.details["part2_iterations"])
            iters[n] = float(np.mean(vals))
        assert iters[1600] <= iters[200] + 2.0


class TestLowerBoundContext:
    """[13]: finite-t ratios cannot be arbitrarily good — with t = 1 the
    fractional solver must do essentially no better than trivial."""

    def test_t1_is_trivial(self):
        g = gnp_graph(100, 0.1, seed=6)
        cov = feasible_coverage(g, 1)
        sol = fractional_kmds(g, coverage=cov, t=1, compute_duals=False)
        # t = 1: one threshold level, everyone saturates.
        assert sol.objective == pytest.approx(g.number_of_nodes())

    def test_ratio_improves_with_budget(self):
        g = gnp_graph(150, 0.06, seed=7)
        cov = feasible_coverage(g, 2)
        opt = lp_optimum(g, cov, convention="closed").objective
        r = {
            t: fractional_kmds(g, coverage=cov, t=t,
                               compute_duals=False).objective / opt
            for t in (1, 3, 6)
        }
        assert r[6] <= r[3] <= r[1]
