"""Grid-dispatch equivalence: ``solve_kmds_udg_grid`` /
``engine.execute_grid`` must be bit-identical to the per-point
``solve_kmds_udg_batch`` double loop for every (graph, k, seed) cell.

This is the contract of the grid-batched backend: stacking topology
CSRs block-diagonally, fusing the k axis over one shared Part I, and
running the adoption phase cross-graph are *execution* strategies —
never visible in the results.  The suite pins cell-level members,
``RunStats`` and details across same-size groups, mixed size classes,
the per-point fallbacks (message mode, ``force_per_point``), the
``timing`` dispatch breakdown, degenerate axes, and native thread
counts (subprocess matrix, since the worker pool is configured by
environment at import-free call time).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.udg import solve_kmds_udg_batch, solve_kmds_udg_grid
from repro.errors import GraphError
from repro.graphs.udg import UnitDiskGraph, random_udg

SRC = Path(__file__).resolve().parents[1] / "src"

SEEDS = (0, 11)
KS = (1, 3)
DENSITY = 8.0
#: Smallest n whose id-draw range takes vecrng's vector path; below
#: it ``grid_supported`` says no and the cell runs per-point.
GRID_N = 300
SMALL_N = 120


def _graphs(sizes, base=50):
    return [random_udg(n, density=DENSITY, seed=base + i)
            for i, n in enumerate(sizes)]


def _per_point(graphs, seeds, ks, **kw):
    return [[solve_kmds_udg_batch(g, seeds, k=k, **kw) for k in ks]
            for g in graphs]


def _assert_cells_equal(grid, point):
    assert len(grid) == len(point)
    for per_g, per_p in zip(grid, point):
        assert len(per_g) == len(per_p)
        for per_k_g, per_k_p in zip(per_g, per_p):
            assert len(per_k_g) == len(per_k_p)
            for a, b in zip(per_k_g, per_k_p):
                assert a.members == b.members
                assert a.stats == b.stats
                assert a.details == b.details


class TestGridIdentity:
    def test_same_size_group(self):
        graphs = _graphs((GRID_N, GRID_N, GRID_N))
        grid = solve_kmds_udg_grid(graphs, SEEDS, KS)
        _assert_cells_equal(grid, _per_point(graphs, SEEDS, KS))

    def test_mixed_size_classes(self):
        # Two size groups -> two stacked dispatches, interleaved order
        # preserved in the results.
        graphs = _graphs((GRID_N, 340, GRID_N, 340))
        grid = solve_kmds_udg_grid(graphs, SEEDS, KS)
        _assert_cells_equal(grid, _per_point(graphs, SEEDS, KS))

    def test_single_graph_single_cell(self):
        graphs = _graphs((310,))
        grid = solve_kmds_udg_grid(graphs, (7,), (2,))
        _assert_cells_equal(grid, _per_point(graphs, (7,), (2,)))

    def test_by_id_policy(self):
        graphs = _graphs((GRID_N, GRID_N))
        grid = solve_kmds_udg_grid(graphs, SEEDS, KS,
                                   selection_policy="by-id")
        _assert_cells_equal(
            grid, _per_point(graphs, SEEDS, KS, selection_policy="by-id"))


class TestFallbacks:
    def test_force_per_point_identical(self):
        graphs = _graphs((GRID_N, GRID_N))
        timing = {}
        forced = solve_kmds_udg_grid(graphs, SEEDS, KS,
                                     force_per_point=True, timing=timing)
        assert timing["path"] == "per-point"
        assert timing["grid_graphs"] == 0
        assert timing["per_point_graphs"] == 2
        _assert_cells_equal(forced, solve_kmds_udg_grid(graphs, SEEDS, KS))

    def test_message_mode_goes_per_point(self):
        graphs = _graphs((40,))
        timing = {}
        res = solve_kmds_udg_grid(graphs, (3,), (1,), mode="message",
                                  timing=timing)
        assert timing["path"] == "per-point"
        point = solve_kmds_udg_batch(graphs[0], (3,), k=1, mode="message")
        assert res[0][0][0].members == point[0].members

    def test_ineligible_graphs_partition_mixed(self):
        # A sensing subclass the kernels cannot model (bespoke
        # ``neighbors_within``) and a below-vector-threshold graph both
        # take the per-point path while stock graphs stay on the grid
        # dispatch; every cell still matches the per-point loop.
        class BespokeSensing(UnitDiskGraph):
            def neighbors_within(self, i, radius):
                return super().neighbors_within(i, radius)

        stock = _graphs((GRID_N, GRID_N))
        exotic = BespokeSensing(random_udg(GRID_N, density=DENSITY,
                                           seed=99).points)
        small = _graphs((SMALL_N,), base=77)[0]
        graphs = [stock[0], exotic, stock[1], small]
        timing = {}
        grid = solve_kmds_udg_grid(graphs, SEEDS, (1,), timing=timing)
        assert timing["path"] == "mixed"
        assert timing["grid_graphs"] == 2
        assert timing["per_point_graphs"] == 2
        _assert_cells_equal(grid, _per_point(graphs, SEEDS, (1,)))


class TestTimingAndShapes:
    def test_timing_dict_grid_path(self):
        graphs = _graphs((GRID_N, GRID_N))
        timing = {}
        solve_kmds_udg_grid(graphs, SEEDS, KS, timing=timing)
        assert timing["path"] == "grid"
        assert timing["grid_graphs"] == 2
        assert timing["per_point_graphs"] == 0
        assert timing["grid_seconds"] > 0.0
        assert timing["per_point_seconds"] == 0.0

    def test_empty_axes(self):
        graphs = _graphs((310,))
        assert solve_kmds_udg_grid(graphs, SEEDS, ()) == [[]]
        res = solve_kmds_udg_grid(graphs, (), KS)
        assert res == [[[], []]]

    def test_empty_graph_cell(self):
        empty = UnitDiskGraph([])
        graphs = [_graphs((310,))[0], empty]
        res = solve_kmds_udg_grid(graphs, (5,), (2,))
        assert res[1][0][0].members == set()
        point = solve_kmds_udg_batch(graphs[0], (5,), k=2)
        assert res[0][0][0].members == point[0].members

    def test_bad_k_rejected(self):
        with pytest.raises(GraphError):
            solve_kmds_udg_grid(_graphs((SMALL_N,)), SEEDS, (1, 0))
        with pytest.raises(GraphError):
            solve_kmds_udg_grid(_graphs((SMALL_N,)), SEEDS, KS,
                                selection_policy="nope")


# One rendered scenario per runtime configuration: members of every
# (graph, k, seed) cell as sorted lists, JSON on the last stdout line.
_SUBPROCESS_SCRIPT = r'''
import json
from repro.core.udg import solve_kmds_udg_grid
from repro.graphs.udg import random_udg
graphs = [random_udg(n, density=8.0, seed=50 + i)
          for i, n in enumerate((300, 320, 300))]
res = solve_kmds_udg_grid(graphs, (0, 11), (1, 3))
print(json.dumps([[[sorted(ds.members) for ds in per_k]
                   for per_k in per_g] for per_g in res]))
'''


def _run_grid_subprocess(env_overrides):
    env = {**os.environ, "PYTHONPATH": str(SRC), **env_overrides}
    out = subprocess.run([sys.executable, "-c", _SUBPROCESS_SCRIPT],
                         capture_output=True, text=True, env=env,
                         timeout=300)
    assert out.returncode == 0, out.stderr
    return json.loads(out.stdout.strip().splitlines()[-1])


class TestRuntimeMatrix:
    """The same grid under every native runtime configuration.

    Thread count and the native/numpy choice are execution details; the
    slab scheduler partitions per-lane work over contiguous ranges, so
    any worker count — and the numpy fallback — must produce the same
    cells.  Subprocesses, because the worker pool and the library
    handle are process-wide.
    """

    @pytest.fixture(scope="class")
    def reference(self):
        return _run_grid_subprocess({})

    @pytest.mark.parametrize("env", [
        {"REPRO_NATIVE_THREADS": "1"},
        {"REPRO_NATIVE_THREADS": "4"},
        {"REPRO_NATIVE": "0"},
    ], ids=["threads-1", "threads-4", "numpy-only"])
    def test_configuration_matches_default(self, env, reference):
        assert _run_grid_subprocess(env) == reference
