"""Unit tests for the vectorized per-node / per-(replica, node) RNG
streams (:mod:`repro.simulation.vecrng`).

The module's contract is bit-exactness against numpy's own generators:
every draw a lane makes must equal what the corresponding
``spawn_node_rngs`` generator would have produced, and replica ``r`` of
a :class:`ReplicaNodeStreams` must be indistinguishable from a
single-run pool seeded with ``seeds[r]``.  These tests pin that
contract plus the edge cases the engine relies on: lane handoff to
materialized generators, the ``bounded_ranges`` 32-bit fallback
routing, masked draws with ``need`` and ``out=``, and native-vs-numpy
equality for the compiled masked-draw kernel.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulation import vecrng
from repro.simulation.rng import spawn_node_rngs
from repro.simulation.vecrng import node_stream_pool, replica_node_streams

# > 2^32 inclusive width: Lemire's 64-bit path, so the vector engine is
# eligible.  (The engine samples integers(1, high + 1); the inclusive
# width callers declare via bounded_ranges is high - 1.)
HIGH = 10 ** 15
RANGES = (HIGH - 1,)
N = 8
SEEDS = (0, 7, 123456789)


def _reference(seed, n=N):
    return spawn_node_rngs(range(n), seed)


def _ref_ints(rngs, high=HIGH, n=N):
    return [int(rngs[v].integers(1, high + 1)) for v in range(n)]


# ----------------------------------------------------------------------
# Replica bit-exactness: lane (r, v) == single pool seeded seeds[r]
# ----------------------------------------------------------------------

class TestReplicaBitExactness:
    def test_replica_lanes_equal_single_pools(self):
        streams = replica_node_streams(range(N), SEEDS,
                                       bounded_ranges=RANGES)
        all_lanes = np.arange(streams.replicas * N)
        rounds = [streams.draw_ints(all_lanes, HIGH).reshape(-1, N)
                  for _ in range(2)]
        for r, seed in enumerate(SEEDS):
            pool = node_stream_pool(range(N), seed, bounded_ranges=RANGES)
            for drawn in rounds:  # stream positions must track per round
                want = pool.draw_ints(np.arange(N), HIGH)
                assert drawn[r].tolist() == want.tolist()

    def test_replica_streams_equal_real_generators(self):
        streams = replica_node_streams(range(N), SEEDS,
                                       bounded_ranges=RANGES)
        refs = [_reference(s) for s in SEEDS]
        all_lanes = np.arange(streams.replicas * N)
        for _ in range(3):  # rejection re-draws happen across rounds
            drawn = streams.draw_ints(all_lanes, HIGH).reshape(-1, N)
            for r in range(len(SEEDS)):
                assert drawn[r].tolist() == _ref_ints(refs[r])

    def test_random_draws_equal_real_generators(self):
        streams = replica_node_streams(range(N), SEEDS[:2],
                                       bounded_ranges=RANGES)
        refs = [_reference(s) for s in SEEDS[:2]]
        drawn = streams.random(np.arange(2 * N)).reshape(-1, N)
        for r in range(2):
            assert drawn[r].tolist() == [refs[r][v].random()
                                         for v in range(N)]

    def test_batch_composition_does_not_perturb_streams(self):
        # Hammering replica 0 must leave replica 1's sequence untouched.
        streams = replica_node_streams(range(N), SEEDS[:2],
                                       bounded_ranges=RANGES)
        for _ in range(5):
            streams.draw_ints(np.arange(N), HIGH)  # replica 0 only
        ref = _reference(SEEDS[1])
        drawn = streams.draw_ints(np.arange(N) + N, HIGH)
        assert drawn.tolist() == _ref_ints(ref)

    def test_duplicate_seeds_yield_identical_independent_replicas(self):
        streams = replica_node_streams(range(N), (3, 3),
                                       bounded_ranges=RANGES)
        a = streams.draw_ints(np.arange(N), HIGH)
        b = streams.draw_ints(np.arange(N) + N, HIGH)
        assert a.tolist() == b.tolist()

    def test_replica_pool_view_offsets_lanes(self):
        streams = replica_node_streams(range(N), SEEDS[:2],
                                       bounded_ranges=RANGES)
        view = streams.replica_pool(1)
        ref = _reference(SEEDS[1])
        assert view.draw_ints(np.arange(N), HIGH).tolist() == _ref_ints(ref)
        # View draws advance the shared streams, not a copy.
        drawn = streams.draw_ints(np.arange(N) + N, HIGH)
        assert drawn.tolist() == _ref_ints(ref)

    def test_flat_lane_arithmetic(self):
        streams = replica_node_streams(range(N), SEEDS,
                                       bounded_ranges=RANGES)
        assert streams.n == N
        assert streams.replicas == len(SEEDS)
        assert streams.flat_lane(2, 3) == 2 * N + 3

    def test_heavy_rejection_matches_reference(self):
        # high ~ 2^62 makes Lemire reject ~a quarter of all raw words,
        # so the retry loop runs hot; positions must still track exactly.
        high = (1 << 62) + 11
        streams = replica_node_streams(range(N), SEEDS[:2],
                                       bounded_ranges=(high - 1,))
        refs = [_reference(s) for s in SEEDS[:2]]
        for _ in range(4):
            drawn = streams.draw_ints(np.arange(2 * N), high).reshape(-1, N)
            for r in range(2):
                assert drawn[r].tolist() == _ref_ints(refs[r], high=high)

    def test_empty_seed_list(self):
        streams = replica_node_streams(range(N), (), bounded_ranges=RANGES)
        assert streams.replicas == 0
        out = streams.draw_ints(np.array([], dtype=np.int64), HIGH)
        assert out.size == 0


# ----------------------------------------------------------------------
# Lane handoff: generator(lane) claims a stream for per-node code
# ----------------------------------------------------------------------

class TestGeneratorHandoff:
    def test_generator_continues_stream_in_place(self):
        pool = node_stream_pool(range(N), 5, bounded_ranges=RANGES)
        ref = _reference(5)
        pool.draw_ints(np.arange(N), HIGH)
        _ref_ints(ref)
        gen = pool.generator(2)
        assert gen.random() == ref[2].random()
        assert gen.integers(1, HIGH + 1) == ref[2].integers(1, HIGH + 1)

    def test_generator_is_memoized(self):
        pool = node_stream_pool(range(N), 5, bounded_ranges=RANGES)
        assert pool.generator(2) is pool.generator(2)

    def test_vector_draw_on_claimed_lane_raises(self):
        pool = node_stream_pool(range(N), 5, bounded_ranges=RANGES)
        pool.generator(3)
        with pytest.raises(RuntimeError, match="owned by materialized"):
            pool.draw_ints(np.arange(N), HIGH)
        with pytest.raises(RuntimeError, match="owned by materialized"):
            pool.random(np.arange(N))
        mask = np.ones(N, dtype=bool)
        with pytest.raises(RuntimeError, match="owned by materialized"):
            pool.draw_ints_masked(mask, HIGH)

    def test_masked_draw_skipping_claimed_lane_is_fine(self):
        pool = node_stream_pool(range(N), 5, bounded_ranges=RANGES)
        ref = _reference(5)
        gen = pool.generator(3)
        mask = np.ones(N, dtype=bool)
        mask[3] = False
        drawn = pool.draw_ints_masked(mask, HIGH)
        want = [int(ref[v].integers(1, HIGH + 1)) for v in range(N)
                if v != 3]
        assert drawn[mask].tolist() == want
        # The claimed lane's stream position is untouched by the draw.
        assert gen.integers(1, HIGH + 1) == ref[3].integers(1, HIGH + 1)

    def test_claimed_lane_raises_on_replica_streams(self):
        streams = replica_node_streams(range(N), SEEDS[:2],
                                       bounded_ranges=RANGES)
        streams.generator(N + 1)  # node 1 of replica 1
        with pytest.raises(RuntimeError, match="owned by materialized"):
            streams.draw_ints(np.arange(2 * N), HIGH)
        # Replica 0's lanes remain vector-drawable.
        ref = _reference(SEEDS[0])
        assert streams.draw_ints(np.arange(N), HIGH).tolist() \
            == _ref_ints(ref)

    def test_claimed_lane_raises_on_native_sized_masked_draw(self):
        # 2048+ lanes routes masked draws through the compiled kernel
        # when it is available; the ownership check must fire first
        # (and identically without the native module).
        n = 1024
        streams = replica_node_streams(
            range(n), (0, 1), bounded_ranges=RANGES)
        streams.generator(5)
        with pytest.raises(RuntimeError, match="owned by materialized"):
            streams.draw_ints_masked(np.ones(2 * n, dtype=bool), HIGH)


# ----------------------------------------------------------------------
# bounded_ranges routing: the 32-bit buffered sampler needs the fallback
# ----------------------------------------------------------------------

class TestBoundedRangesRouting:
    def test_small_range_selects_fallback_pool(self):
        pool = node_stream_pool(range(N), 0, bounded_ranges=(1000,))
        assert isinstance(pool, vecrng._FallbackPool)
        ref = _reference(0)
        assert pool.draw_ints(np.arange(N), 1000).tolist() \
            == _ref_ints(ref, high=1000)

    def test_boundary_width_selects_fallback(self):
        # 2^32 - 1 is the last width numpy serves from the buffered
        # 32-bit sampler; 2^32 is the first Lemire-64 width.
        small = node_stream_pool(range(2), 0, bounded_ranges=((1 << 32) - 1,))
        assert isinstance(small, vecrng._FallbackPool)
        large = node_stream_pool(range(2), 0, bounded_ranges=((1 << 32),))
        assert not isinstance(large, vecrng._FallbackPool)

    def test_full_width_selects_fallback(self):
        # 2^64 - 1 (integers(0, 2^64)) is masked, not Lemire: fallback.
        pool = node_stream_pool(range(2), 0, bounded_ranges=((1 << 64) - 1,))
        assert isinstance(pool, vecrng._FallbackPool)

    def test_small_range_selects_replica_fallback(self):
        streams = replica_node_streams(range(N), SEEDS[:2],
                                       bounded_ranges=(1000,))
        assert isinstance(streams, vecrng._FallbackReplicaStreams)
        refs = [_reference(s) for s in SEEDS[:2]]
        drawn = streams.draw_ints(np.arange(2 * N), 1000).reshape(-1, N)
        for r in range(2):
            assert drawn[r].tolist() == _ref_ints(refs[r], high=1000)

    def test_fallback_replica_masked_draw_and_generator(self):
        streams = replica_node_streams(range(N), SEEDS[:2],
                                       bounded_ranges=(1000,))
        ref = _reference(SEEDS[1])
        mask = np.zeros(2 * N, dtype=bool)
        mask[N:] = True
        drawn = streams.draw_ints_masked(mask, 1000)
        assert drawn[N:].tolist() == _ref_ints(ref, high=1000)
        assert drawn[:N].tolist() == [0] * N  # generic form zero-fills
        gen = streams.generator(N + 4)
        assert gen.integers(1, 1001) == ref[4].integers(1, 1001)

    def test_self_test_failure_routes_everyone_to_fallback(self, monkeypatch):
        monkeypatch.setattr(vecrng, "_vector_verified", None)
        monkeypatch.setattr(vecrng, "_self_test", lambda: False)
        pool = node_stream_pool(range(N), 0, bounded_ranges=RANGES)
        assert isinstance(pool, vecrng._FallbackPool)
        streams = replica_node_streams(range(N), SEEDS[:2],
                                       bounded_ranges=RANGES)
        assert isinstance(streams, vecrng._FallbackReplicaStreams)

    def test_self_test_passes_for_real(self):
        assert vecrng._self_test()


# ----------------------------------------------------------------------
# Masked draws: need sparsification and the out= value plane
# ----------------------------------------------------------------------

class TestMaskedDraws:
    def test_masked_equals_gathered(self):
        a = node_stream_pool(range(N), 9, bounded_ranges=RANGES)
        b = node_stream_pool(range(N), 9, bounded_ranges=RANGES)
        mask = np.array([True, False, True, True, False, True, False, True])
        lanes = np.nonzero(mask)[0]
        drawn = a.draw_ints_masked(mask, HIGH)
        assert drawn[mask].tolist() == b.draw_ints(lanes, HIGH).tolist()
        # Idle lanes kept their stream positions.
        idle = np.nonzero(~mask)[0]
        assert a.draw_ints(idle, HIGH).tolist() \
            == b.draw_ints(idle, HIGH).tolist()

    def test_need_advances_streams_identically(self):
        a = node_stream_pool(range(N), 11, bounded_ranges=RANGES)
        b = node_stream_pool(range(N), 11, bounded_ranges=RANGES)
        mask = np.ones(N, dtype=bool)
        need = np.zeros(N, dtype=bool)
        need[::2] = True
        with_need = a.draw_ints_masked(mask, HIGH, need=need)
        full = b.draw_ints_masked(mask, HIGH)
        assert with_need[need].tolist() == full[need].tolist()
        # Unneeded lanes still consumed their word: next draws agree.
        assert a.draw_ints(np.arange(N), HIGH).tolist() \
            == b.draw_ints(np.arange(N), HIGH).tolist()

    def test_out_written_in_place_and_returned(self):
        pool = node_stream_pool(range(N), 13, bounded_ranges=RANGES)
        sentinel = np.full(N, -77, dtype=np.int64)
        mask = np.zeros(N, dtype=bool)
        mask[2:5] = True
        ret = pool.draw_ints_masked(mask, HIGH, out=sentinel)
        assert ret is sentinel
        assert (ret[mask] >= 1).all()
        # Entries outside mask keep their previous contents.
        assert ret[~mask].tolist() == [-77] * (N - 3)

    def test_out_values_match_outless_draw(self):
        a = node_stream_pool(range(N), 13, bounded_ranges=RANGES)
        b = node_stream_pool(range(N), 13, bounded_ranges=RANGES)
        mask = np.array([True] * 5 + [False] * 3)
        buf = np.zeros(N, dtype=np.int64)
        assert a.draw_ints_masked(mask, HIGH, out=buf)[mask].tolist() \
            == b.draw_ints_masked(mask, HIGH)[mask].tolist()

    @pytest.mark.parametrize("streams_kind", ("vector", "fallback"))
    def test_out_buffer_validation(self, streams_kind):
        ranges = RANGES if streams_kind == "vector" else (1000,)
        high = HIGH if streams_kind == "vector" else 1000
        pool = replica_node_streams(range(N), (0,), bounded_ranges=ranges)
        mask = np.ones(N, dtype=bool)
        bad = "out must be a C-contiguous int64 buffer"
        with pytest.raises(ValueError, match=bad):
            pool.draw_ints_masked(mask, high,
                                  out=np.zeros(N, dtype=np.float64))
        with pytest.raises(ValueError, match=bad):
            pool.draw_ints_masked(mask, high,
                                  out=np.zeros(N + 1, dtype=np.int64))
        with pytest.raises(ValueError, match=bad):
            pool.draw_ints_masked(mask, high,
                                  out=np.zeros(2 * N, dtype=np.int64)[::2])

    def test_sparse_chunk_gather_path(self):
        # < 40% density in a chunk takes the gathered branch; the dense
        # branch with idle-state restore covers the rest.  Both must
        # leave every stream where the reference loop would.
        for density in (0.1, 0.9):
            rng = np.random.default_rng(42)
            mask = rng.random(N * 4) < density
            nodes = range(N * 4)
            a = node_stream_pool(nodes, 21, bounded_ranges=RANGES)
            b = node_stream_pool(nodes, 21, bounded_ranges=RANGES)
            drawn = a.draw_ints_masked(mask, HIGH)
            want = b.draw_ints(np.nonzero(mask)[0], HIGH)
            assert drawn[mask].tolist() == want.tolist()


# ----------------------------------------------------------------------
# Native kernel vs pure-numpy limb pipeline
# ----------------------------------------------------------------------

class TestNativeEquality:
    @pytest.fixture
    def numpy_only(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "numpy")

    def test_masked_draw_bit_equal(self, monkeypatch):
        # 2048+ lanes engages the compiled kernel when present.  Run the
        # same draw once per implementation; if the native module is
        # absent both runs take the numpy path and the test is a no-op
        # equality, which is still the contract.
        n, seeds = 1024, (0, 1)
        mask = np.ones(2 * n, dtype=bool)
        mask[::7] = False
        need = np.zeros(2 * n, dtype=bool)
        need[: n + n // 2] = True

        def run():
            streams = replica_node_streams(range(n), seeds,
                                           bounded_ranges=RANGES)
            first = streams.draw_ints_masked(mask, HIGH, need=need)
            second = streams.draw_ints_masked(np.ones(2 * n, dtype=bool),
                                              HIGH)
            return first[mask & need].tolist(), second.tolist()

        native = run()
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "numpy")
        assert run() == native

    def test_seeding_bit_equal(self, monkeypatch):
        # The native lane seeder engages at 4096+ lanes.
        n, seeds = 2048, (3, 4)

        def limbs():
            return vecrng._seed_limbs_multi(seeds, n)

        native = limbs()
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "numpy")
        for a, b in zip(native, limbs()):
            assert np.array_equal(a, b)


# ----------------------------------------------------------------------
# Native runtime degradation matrix
# ----------------------------------------------------------------------

class TestNativeDegradation:
    """Every way the compiled runtime can be absent or reconfigured must
    degrade to the numpy path (or a different slab partition) without
    changing a single drawn value.
    """

    @pytest.fixture
    def fresh_native(self, monkeypatch):
        """Reset the module-level compile/load caches so each scenario
        re-resolves the library, and restore them afterwards."""
        from repro import _native
        monkeypatch.setattr(_native, "_lib", None)
        monkeypatch.setattr(_native, "_tried", False)
        return _native

    @staticmethod
    def _draw():
        streams = replica_node_streams(range(N), SEEDS,
                                       bounded_ranges=RANGES)
        lanes = np.arange(len(SEEDS) * N)
        return streams.draw_ints(lanes, HIGH).tolist()

    def test_env_disable_is_clean_and_identical(self, fresh_native,
                                                monkeypatch):
        reference = self._draw()
        monkeypatch.setattr(fresh_native, "_lib", None)
        monkeypatch.setattr(fresh_native, "_tried", False)
        monkeypatch.setenv("REPRO_NATIVE", "0")
        assert not fresh_native.available()
        assert fresh_native.lib() is None
        assert self._draw() == reference

    def test_compile_failure_degrades(self, fresh_native, monkeypatch):
        monkeypatch.setattr(fresh_native, "_compile", lambda: None)
        assert not fresh_native.available()
        assert self._draw() == self._draw()

    def test_missing_source_compiles_to_none(self, fresh_native,
                                             monkeypatch, tmp_path):
        # A deleted/unreadable kernels.c is the "no toolchain shipped"
        # shape: _compile must answer None, not raise.
        monkeypatch.setattr(fresh_native, "_SOURCE",
                            tmp_path / "gone" / "kernels.c")
        assert fresh_native._compile() is None
        assert not fresh_native.available()

    def test_missing_compiler_compiles_to_none(self, fresh_native,
                                               monkeypatch, tmp_path):
        # Every cc/gcc/clang invocation failing (FileNotFoundError) must
        # surface as a clean None.  Point the cache dir at tmp so a
        # previously built .so can't satisfy the digest lookup.
        monkeypatch.setattr(fresh_native, "_HERE", tmp_path)
        monkeypatch.setattr(fresh_native, "_SOURCE", tmp_path / "kernels.c")
        (tmp_path / "kernels.c").write_text("int x;")

        def no_cc(*args, **kwargs):
            raise FileNotFoundError("cc")

        monkeypatch.setattr(fresh_native.subprocess, "run", no_cc)
        assert fresh_native._compile() is None

    def test_thread_count_env_parsing(self, monkeypatch):
        from repro import _native
        monkeypatch.setenv("REPRO_NATIVE_THREADS", "4")
        assert _native.thread_count() == 4
        monkeypatch.setenv("REPRO_NATIVE_THREADS", "0")
        assert _native.thread_count() == 1
        monkeypatch.setenv("REPRO_NATIVE_THREADS", "-3")
        assert _native.thread_count() == 1
        monkeypatch.setenv("REPRO_NATIVE_THREADS", "lots")
        assert _native.thread_count() == (_native.os.cpu_count() or 1)

    @pytest.mark.parametrize("threads", ["1", "4"])
    def test_thread_count_bit_identical(self, monkeypatch, threads):
        # Enough flat lanes (2 * 2^15) that _run_slabs actually splits
        # the draw across workers when threads > 1.
        from repro import _native
        if not _native.available():
            pytest.skip("compiled kernels unavailable on this host")
        n, seeds = 1 << 15, (0, 1)
        mask = np.ones(2 * n, dtype=bool)
        mask[::3] = False

        def run():
            streams = replica_node_streams(range(n), seeds,
                                           bounded_ranges=RANGES)
            return streams.draw_ints_masked(mask, HIGH)[mask].tolist()

        monkeypatch.setenv("REPRO_NATIVE_THREADS", "1")
        single = run()
        monkeypatch.setenv("REPRO_NATIVE_THREADS", threads)
        assert run() == single
