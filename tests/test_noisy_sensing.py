"""Unit tests for imperfect distance sensing (NoisySensingUDG)."""

import numpy as np
import pytest

from repro.core.udg import part_one_leaders, solve_kmds_udg
from repro.core.verify import is_k_dominating_set
from repro.errors import GraphError
from repro.graphs.udg import NoisySensingUDG, random_udg


@pytest.fixture
def base_points():
    return random_udg(120, density=10.0, seed=8).points


class TestNoisySensingUDG:
    def test_zero_sigma_matches_exact(self, base_points):
        exact = random_udg(0, seed=0)  # placeholder; rebuild from points
        from repro.graphs.udg import UnitDiskGraph

        exact = UnitDiskGraph(base_points)
        noisy = NoisySensingUDG(base_points, sigma=0.0, noise_seed=1)
        for v in range(0, 120, 10):
            assert set(noisy.neighbors_within(v, 0.4)) == \
                set(exact.neighbors_within(v, 0.4))

    def test_communication_graph_unchanged(self, base_points):
        from repro.graphs.udg import UnitDiskGraph

        exact = UnitDiskGraph(base_points)
        noisy = NoisySensingUDG(base_points, sigma=0.4, noise_seed=2)
        assert set(noisy.nx.edges) == set(exact.nx.edges)

    def test_sensed_distance_symmetric(self, base_points):
        noisy = NoisySensingUDG(base_points, sigma=0.3, noise_seed=3)
        u, v = next(iter(noisy.nx.edges))
        assert noisy.sensed_distance(u, v) == noisy.sensed_distance(v, u)

    def test_sensed_distance_within_factor(self, base_points):
        noisy = NoisySensingUDG(base_points, sigma=0.2, noise_seed=4)
        for u, v in list(noisy.nx.edges)[:50]:
            true = noisy.distance(u, v)
            sensed = noisy.sensed_distance(u, v)
            assert 0.8 * true - 1e-12 <= sensed <= 1.2 * true + 1e-12

    def test_neighbors_within_uses_sensed(self, base_points):
        noisy = NoisySensingUDG(base_points, sigma=0.3, noise_seed=5)
        for v in range(0, 120, 15):
            got = set(noisy.neighbors_within(v, 0.5))
            want = {w for w in noisy.nx.neighbors(v)
                    if noisy.sensed_distance(v, w) <= 0.5}
            assert got == want

    def test_noise_deterministic_per_seed(self, base_points):
        a = NoisySensingUDG(base_points, sigma=0.3, noise_seed=6)
        b = NoisySensingUDG(base_points, sigma=0.3, noise_seed=6)
        u, v = next(iter(a.nx.edges))
        assert a.sensed_distance(u, v) == b.sensed_distance(u, v)

    def test_invalid_sigma(self, base_points):
        with pytest.raises(GraphError, match="sigma"):
            NoisySensingUDG(base_points, sigma=1.0)
        with pytest.raises(GraphError, match="sigma"):
            NoisySensingUDG(base_points, sigma=-0.1)


class TestAlgorithm3UnderNoise:
    @pytest.mark.parametrize("sigma", [0.1, 0.3])
    def test_final_output_valid(self, base_points, sigma):
        noisy = NoisySensingUDG(base_points, sigma=sigma, noise_seed=7)
        ds = solve_kmds_udg(noisy, k=2, seed=0)
        assert is_k_dominating_set(noisy, ds.members, 2)

    def test_modes_agree_under_noise(self, base_points):
        noisy = NoisySensingUDG(base_points, sigma=0.25, noise_seed=8)
        d = solve_kmds_udg(noisy, k=2, mode="direct", seed=3)
        m = solve_kmds_udg(noisy, k=2, mode="message", seed=3)
        assert d.members == m.members

    def test_part1_differs_from_noise_free(self, base_points):
        from repro.graphs.udg import UnitDiskGraph

        exact = UnitDiskGraph(base_points)
        noisy = NoisySensingUDG(base_points, sigma=0.45, noise_seed=9)
        a = part_one_leaders(exact, seed=1).members
        b = part_one_leaders(noisy, seed=1).members
        # Heavy noise must actually perturb the elections.
        assert a != b
