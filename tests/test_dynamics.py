"""Tests for the repro.dynamics self-healing maintenance subsystem."""

import numpy as np
import pytest

from repro.core.udg import solve_kmds_udg
from repro.core.verify import coverage_deficit, is_k_dominating_set
from repro.dynamics import (
    BatteryDecay,
    CrashEvent,
    DrainEvent,
    JoinEvent,
    LazyRepair,
    LocalPatchRepair,
    MaintenanceLoop,
    MobilityRewiring,
    MoveEvent,
    NetworkState,
    PoissonCrashes,
    PoissonJoins,
    RandomCrashes,
    RecomputeRepair,
    Scenario,
    ScheduledCrashes,
    SurplusDemotion,
    crash_scenario,
    make_policy,
    run_scenario,
)
from repro.engine.instrumentation import Instrumentation
from repro.errors import GraphError
from repro.graphs.mobility import GaussianDrift
from repro.graphs.udg import random_udg


@pytest.fixture
def udg120():
    return random_udg(120, density=10.0, seed=3)


def _state_from(udg, k=3, seed=0):
    members = solve_kmds_udg(udg, k, mode="direct", seed=seed).members
    return NetworkState.from_udg(udg, members=members)


# ======================================================================
# Events and streams
# ======================================================================

class TestEventStreams:
    def test_scheduled_crashes(self, udg120):
        state = _state_from(udg120)
        stream = ScheduledCrashes({0: [1, 2], 3: [5]})
        assert stream.events_at(0, state) == [CrashEvent(1), CrashEvent(2)]
        assert stream.events_at(1, state) == []
        assert stream.events_at(3, state) == [CrashEvent(5)]

    def test_scheduled_skips_dead(self, udg120):
        state = _state_from(udg120)
        state.apply(CrashEvent(1))
        stream = ScheduledCrashes({0: [1, 2]})
        assert stream.events_at(0, state) == [CrashEvent(2)]

    def test_random_crashes_deterministic(self, udg120):
        state_a = _state_from(udg120)
        state_b = _state_from(udg120)
        a = RandomCrashes(2.0, target="any", seed=9)
        b = RandomCrashes(2.0, target="any", seed=9)
        for epoch in range(5):
            assert a.events_at(epoch, state_a) == b.events_at(epoch, state_b)

    def test_random_crashes_target_dominators(self, udg120):
        state = _state_from(udg120)
        stream = RandomCrashes(3.0, target="dominators", seed=1)
        for epoch in range(5):
            for ev in stream.events_at(epoch, state):
                assert ev.node in state.members
                state.apply(ev)

    def test_fractional_rate_accumulates(self, udg120):
        state = _state_from(udg120)
        stream = RandomCrashes(0.5, target="any", seed=2)
        counts = [len(stream.events_at(e, state)) for e in range(10)]
        assert sum(counts) == 5          # 0.5/epoch over 10 epochs
        assert max(counts) == 1

    def test_unknown_target_rejected(self):
        with pytest.raises(GraphError, match="unknown crash target"):
            RandomCrashes(1.0, target="leaders")

    def test_poisson_crashes_mean(self, udg120):
        state = _state_from(udg120, k=1)
        stream = PoissonCrashes(1.0, target="any", seed=4)
        total = sum(len(stream.events_at(e, state)) for e in range(30))
        assert 10 <= total <= 60         # loose Poisson(1)/epoch band

    def test_poisson_joins_fresh_ids(self, udg120):
        state = _state_from(udg120)
        stream = PoissonJoins(3.0, side=3.0, seed=5)
        events = []
        for epoch in range(5):
            batch = stream.events_at(epoch, state)
            state.apply_all(batch)
            events.extend(batch)
        assert events, "Poisson(3) over 5 epochs produced nothing"
        assert all(isinstance(e, JoinEvent) for e in events)
        assert len({e.node for e in events}) == len(events)
        assert all(0 <= x <= 3 and 0 <= y <= 3 for e in events
                   for x, y in [e.pos])

    def test_battery_decay_members_drain_faster(self, udg120):
        state = _state_from(udg120)
        stream = BatteryDecay(0.1, 0.2)
        events = {e.node: e for e in stream.events_at(0, state)}
        member = next(iter(state.members))
        client = next(iter(state.alive - state.members))
        assert events[member].amount == pytest.approx(0.3)
        assert events[client].amount == pytest.approx(0.1)

    def test_mobility_rewiring_emits_moves(self, udg120):
        state = _state_from(udg120)
        stream = MobilityRewiring(GaussianDrift(0.05, seed=6), side=3.0,
                                  every=2)
        assert len(stream.events_at(0, state)) == 1
        assert stream.events_at(1, state) == []
        (move,) = stream.events_at(2, state)
        assert isinstance(move, MoveEvent)
        assert set(move.positions) == state.alive


# ======================================================================
# Network state
# ======================================================================

class TestNetworkState:
    def test_crash_removes_from_members(self, udg120):
        state = _state_from(udg120)
        victim = next(iter(state.members))
        state.apply(CrashEvent(victim))
        assert victim not in state.alive
        assert victim not in state.members
        assert state.total_crashes == 1

    def test_crash_only_churn_reuses_geometry(self, udg120):
        state = _state_from(udg120)
        g0 = state.graph()
        base = state._base_nx
        victim = next(iter(state.alive))
        state.apply(CrashEvent(victim))
        g1 = state.graph()
        assert state._base_nx is base    # geometry cache survived
        assert victim in g0 and victim not in g1

    def test_join_adds_node_and_edges(self, udg120):
        state = _state_from(udg120)
        anchor = next(iter(state.alive))
        nid = state.next_id()
        state.apply(JoinEvent(nid, state.positions[anchor]))
        g = state.graph()
        assert nid in g
        assert g.has_edge(nid, anchor)   # co-located => connected

    def test_duplicate_join_rejected(self, udg120):
        state = _state_from(udg120)
        with pytest.raises(GraphError, match="already exists"):
            state.apply(JoinEvent(0, (0.0, 0.0)))

    def test_drain_to_zero_crashes(self, udg120):
        state = _state_from(udg120)
        node = next(iter(state.alive))
        state.apply(DrainEvent(node, 0.4))
        assert node in state.alive
        state.apply(DrainEvent(node, 0.7))
        assert node not in state.alive
        assert state.battery[node] == 0.0

    def test_move_rewires_edges(self, udg120):
        state = _state_from(udg120)
        a, b = sorted(state.alive)[:2]
        far = {a: (0.0, 0.0), b: (100.0, 100.0)}
        state.apply(MoveEvent(far))
        assert not state.graph().has_edge(a, b)

    def test_promote_dead_rejected(self, udg120):
        state = _state_from(udg120)
        node = next(iter(state.alive - state.members))
        state.apply(CrashEvent(node))
        with pytest.raises(GraphError, match="dead"):
            state.promote([node])

    def test_live_udg_roundtrip(self, udg120):
        state = _state_from(udg120)
        for v in sorted(state.alive)[:10]:
            state.apply(CrashEvent(v))
        udg, to_global = state.live_udg()
        assert udg.n == state.n_live == len(to_global)
        assert set(to_global) == state.alive
        # Edge sets agree under the id mapping.
        g = state.graph()
        for i, j in udg.nx.edges:
            assert g.has_edge(to_global[i], to_global[j])


# ======================================================================
# Repair policies
# ======================================================================

def _damage(state, extra=3):
    """Strip one client of all its dominators (guaranteed deficit) and
    kill `extra` more dominators; returns the live graph and deficit."""
    graph = state.graph()
    client = next(v for v in sorted(state.alive - state.members)
                  if any(w in state.members for w in graph.neighbors(v)))
    for w in list(graph.neighbors(client)):
        if w in state.members:
            state.apply(CrashEvent(w))
    for w in sorted(state.members)[:extra]:
        state.apply(CrashEvent(w))
    graph = state.graph()
    deficit = coverage_deficit(graph, state.members, 3, convention="open")
    assert any(d > 0 for d in deficit.values())
    return graph, deficit


class TestRepairPolicies:
    def test_local_patch_restores_coverage(self, udg120):
        state = _state_from(udg120)
        graph, deficit = _damage(state)
        rng = np.random.default_rng(0)
        instr = Instrumentation.for_n(state.n_live)
        out = LocalPatchRepair().repair(state, graph, deficit, 3,
                                        rng=rng, instr=instr)
        state.promote(out.promoted)
        assert out.repaired
        assert out.messages > 0 and out.rounds > 0
        after = coverage_deficit(state.graph(), state.members, 3,
                                 convention="open")
        assert all(d == 0 for d in after.values())

    def test_local_patch_touches_locally(self, udg120):
        state = _state_from(udg120)
        graph, deficit = _damage(state, extra=0)
        out = LocalPatchRepair().repair(state, graph, deficit, 3,
                                        rng=np.random.default_rng(0),
                                        instr=Instrumentation.for_n(120))
        # Touches a neighborhood, not the deployment.
        assert 0 < len(out.touched) < state.n_live / 2

    def test_local_patch_noop_when_covered(self, udg120):
        state = _state_from(udg120)
        deficit = coverage_deficit(state.graph(), state.members, 3,
                                   convention="open")
        out = LocalPatchRepair().repair(state, state.graph(), deficit, 3,
                                        rng=np.random.default_rng(0),
                                        instr=Instrumentation.for_n(120))
        assert not out.repaired or not out.promoted
        assert out.messages == 0

    def test_orphan_self_promotes(self):
        # Two isolated nodes: one member crashes, the orphan must
        # self-promote (no member neighbor can adopt it).
        udg = random_udg(2, density=0.001, seed=0)
        state = NetworkState.from_udg(udg, members={0})
        state.apply(CrashEvent(0))
        graph = state.graph()
        deficit = coverage_deficit(graph, state.members, 1,
                                   convention="open")
        out = LocalPatchRepair().repair(state, graph, deficit, 1,
                                        rng=np.random.default_rng(0),
                                        instr=Instrumentation.for_n(2))
        assert out.promoted == {1}

    def test_recompute_restores_coverage(self, udg120):
        state = _state_from(udg120)
        graph, deficit = _damage(state)
        out = RecomputeRepair().repair(state, graph, deficit, 3,
                                       rng=np.random.default_rng(0),
                                       instr=Instrumentation.for_n(120))
        state.demote(out.demoted)
        state.promote(out.promoted)
        assert is_k_dominating_set(state.graph(), state.members, 3,
                                   convention="open")
        assert len(out.touched) == state.n_live

    def test_lazy_defers_small_deficits(self, udg120):
        state = _state_from(udg120)
        # k=3 with one dominator killed: worst deficit 1 — deferrable.
        victim = next(iter(state.members))
        state.apply(CrashEvent(victim))
        graph = state.graph()
        deficit = coverage_deficit(graph, state.members, 3,
                                   convention="open")
        policy = LazyRepair(min_coverage=1, max_deficient_fraction=0.9)
        out = policy.repair(state, graph, deficit, 3,
                            rng=np.random.default_rng(0),
                            instr=Instrumentation.for_n(120))
        assert not out.repaired
        assert not out.promoted
        assert out.deferred_deficit == sum(d for d in deficit.values()
                                           if d > 0)

    def test_policies_never_mutate_state(self, udg120):
        state = _state_from(udg120)
        graph, deficit = _damage(state)
        members_before = set(state.members)
        alive_before = set(state.alive)
        for policy in (LocalPatchRepair(), RecomputeRepair(), LazyRepair()):
            policy.repair(state, graph, deficit, 3,
                          rng=np.random.default_rng(0),
                          instr=Instrumentation.for_n(120))
            assert state.members == members_before
            assert state.alive == alive_before

    def test_make_policy(self):
        assert make_policy("local").name == "local"
        assert make_policy("recompute").name == "recompute"
        assert make_policy("lazy").name == "lazy"
        with pytest.raises(GraphError, match="unknown repair policy"):
            make_policy("frantic")


# ======================================================================
# Maintenance loop
# ======================================================================

class TestMaintenanceLoop:
    def test_runs_all_epochs(self, udg120):
        scenario = crash_scenario(120, k=2, epochs=12, kill_fraction=0.2,
                                  seed=0)
        result = run_scenario(scenario, LocalPatchRepair())
        assert len(result.timeline.records) == 12
        assert result.k == 2
        assert result.summary["epochs"] == 12

    def test_members_evolve_but_cover(self, udg120):
        scenario = crash_scenario(120, k=3, epochs=10, kill_fraction=0.3,
                                  seed=1)
        result = run_scenario(scenario, LocalPatchRepair())
        assert result.always_covered
        assert result.summary["drift_total"] > 0

    def test_explicit_schedule(self, udg120):
        members = solve_kmds_udg(udg120, 2, mode="direct", seed=0).members
        victims = sorted(members)[:4]
        scenario = Scenario(
            initial=udg120, k=2, epochs=4,
            streams=[ScheduledCrashes({1: victims})],
            seed=0, initial_members=members,
        )
        result = run_scenario(scenario, LocalPatchRepair())
        rec = result.timeline.records[1]
        assert rec.crashes == len(victims)
        assert rec.fully_covered_after
        assert result.timeline.records[0].crashes == 0

    def test_composed_streams_deterministic(self, udg120):
        def build():
            scenario = crash_scenario(120, k=2, epochs=10,
                                      kill_fraction=0.2, seed=7)
            side = float(np.sqrt(120 / 10.0))
            scenario.streams = list(scenario.streams) + [
                PoissonJoins(0.5, side, seed=8),
                BatteryDecay(0.01, 0.02, jitter=0.1, seed=9),
                MobilityRewiring(GaussianDrift(0.01, seed=10), side,
                                 every=2),
            ]
            return scenario

        a = run_scenario(build(), LocalPatchRepair())
        b = run_scenario(build(), LocalPatchRepair())
        assert a.timeline.to_dicts() == b.timeline.to_dicts()
        assert a.timeline.records[-1].n_live != 120  # churn actually ran

    def test_summary_fields(self, udg120):
        scenario = crash_scenario(120, k=2, epochs=6, kill_fraction=0.2,
                                  seed=3)
        s = run_scenario(scenario, LocalPatchRepair()).summary
        for key in ("availability_mean", "availability_min",
                    "fully_covered_fraction", "messages_total",
                    "touched_per_repair", "locality_mean", "drift_total",
                    "uncovered_epochs"):
            assert key in s
        assert 0.0 <= s["availability_min"] <= s["availability_mean"] <= 1.0

    def test_shared_instrumentation(self, udg120):
        scenario = crash_scenario(120, k=2, epochs=6, kill_fraction=0.2,
                                  seed=3)
        instr = Instrumentation.for_n(120)
        result = MaintenanceLoop(scenario, LocalPatchRepair(),
                                 instrumentation=instr).run()
        assert result.stats.messages_sent == result.summary["messages_total"]


# ======================================================================
# The acceptance scenario (ISSUE acceptance criteria)
# ======================================================================

class TestAcceptanceScenario:
    """n=500 UDG, k=3, kill 20% of dominators over 50 epochs."""

    @pytest.fixture(scope="class")
    def runs(self):
        def cell(policy):
            scenario = crash_scenario(500, k=3, epochs=50,
                                      kill_fraction=0.2,
                                      target="dominators", seed=0)
            return run_scenario(scenario, policy)

        return {"local": cell(LocalPatchRepair()),
                "local2": cell(LocalPatchRepair()),
                "recompute": cell(RecomputeRepair())}

    def test_local_restores_full_coverage_every_epoch(self, runs):
        assert runs["local"].always_covered

    def test_local_sends_fewer_messages(self, runs):
        local = runs["local"].summary["messages_total"]
        recompute = runs["recompute"].summary["messages_total"]
        assert local * 4 <= recompute

    def test_local_touches_fewer_nodes(self, runs):
        local = runs["local"].summary["touched_per_repair"]
        recompute = runs["recompute"].summary["touched_per_repair"]
        assert local < recompute

    def test_deterministic_per_seed(self, runs):
        assert (runs["local"].timeline.to_dicts()
                == runs["local2"].timeline.to_dicts())
        assert runs["local"].final_members == runs["local2"].final_members


# ======================================================================
# Message-transport repair (PatchNode on the simulator data plane)
# ======================================================================

class TestMessageTransportRepair:
    """LocalPatchRepair(transport="message") runs the patch protocol as
    real PatchNode processes through run_protocol, optionally behind a
    MessageLossInjector."""

    def _scenario(self, seed=5):
        return crash_scenario(200, k=3, epochs=10, kill_fraction=0.3,
                              target="dominators", seed=seed)

    def test_constructor_validation(self):
        with pytest.raises(GraphError, match="unknown repair transport"):
            LocalPatchRepair(transport="pigeon")
        with pytest.raises(GraphError, match="loss_rate"):
            LocalPatchRepair(transport="message", loss_rate=1.5)
        with pytest.raises(GraphError, match="patience"):
            LocalPatchRepair(transport="message", patience=0)

    def test_make_policy_threads_transport_kwargs(self):
        policy = make_policy("local", transport="message", loss_rate=0.2)
        assert policy.transport == "message"
        assert policy.loss_rate == 0.2
        assert not policy.shardable
        assert make_policy("local").shardable

    def test_message_transport_not_shardable(self):
        policy = LocalPatchRepair(transport="message")
        with pytest.raises(Exception, match="cannot be sharded"):
            MaintenanceLoop(self._scenario(), policy, shards=2)

    def test_restores_coverage(self):
        policy = LocalPatchRepair(transport="message")
        result = run_scenario(self._scenario(), policy)
        assert result.always_covered
        assert all(r.repair_transport == "message"
                   for r in result.timeline.records)

    def test_loss_zero_matches_analytic_promotions(self):
        """With a deterministic selection policy and no loss, the real
        protocol promotes exactly the nodes the analytic rule promotes."""
        analytic = run_scenario(self._scenario(),
                                LocalPatchRepair("by-id"))
        message = run_scenario(
            self._scenario(),
            LocalPatchRepair("by-id", transport="message", patience=10))
        assert ([r.promoted for r in message.timeline.records]
                == [r.promoted for r in analytic.timeline.records])
        assert message.final_members == analytic.final_members
        assert (message.summary["messages_total"]
                == analytic.summary["messages_total"])

    def test_loss_inflates_rounds_but_not_coverage(self):
        lossless = run_scenario(
            self._scenario(),
            LocalPatchRepair("by-id", transport="message"))
        lossy = run_scenario(
            self._scenario(),
            LocalPatchRepair("by-id", transport="message", loss_rate=0.8))
        assert lossless.always_covered and lossy.always_covered
        assert (lossy.summary["rounds_per_repair"]
                > lossless.summary["rounds_per_repair"])

    def test_total_loss_still_terminates_and_heals(self):
        """At loss 1.0 nothing is ever delivered: orphans and timed-out
        nodes self-promote, so repair still restores full coverage."""
        policy = LocalPatchRepair(transport="message", loss_rate=1.0)
        result = run_scenario(self._scenario(), policy)
        assert result.always_covered
        assert result.summary["messages_total"] == 0  # delivered traffic

    def test_stats_flow_into_loop_instrumentation(self):
        instr = Instrumentation.for_n(200)
        policy = LocalPatchRepair("by-id", transport="message")
        result = MaintenanceLoop(self._scenario(), policy,
                                 instrumentation=instr).run()
        assert result.stats.messages_sent == result.summary["messages_total"]
        assert result.stats.rounds >= result.summary["rounds_total"]

    def test_policy_never_mutates_state(self, udg120):
        state = _state_from(udg120)
        graph, deficit = _damage(state)
        members_before = set(state.members)
        policy = LocalPatchRepair("by-id", transport="message",
                                  loss_rate=0.5)
        out = policy.repair(state, graph, deficit, 3,
                            rng=np.random.default_rng(0),
                            instr=Instrumentation.for_n(120))
        assert state.members == members_before
        assert out.repaired and out.promoted
        assert out.rounds > 0 and out.iterations > 0


# ======================================================================
# Surplus demotion (Lemma-5.5-style decay)
# ======================================================================

class TestSurplusDemotion:
    def _equal_churn_scenario(self, *, epochs=40, seed=3):
        udg = random_udg(400, density=10.0, seed=seed)
        side = float(udg.points.max())
        streams = [RandomCrashes(6, seed=11),
                   PoissonJoins(6.0, side, seed=12)]
        return Scenario(udg, k=2, epochs=epochs, streams=streams,
                        seed=seed, name="equal-churn")

    def test_demotion_preserves_full_coverage(self):
        scenario = self._equal_churn_scenario()
        result = run_scenario(scenario, LocalPatchRepair(),
                              demote=SurplusDemotion())
        # The loop verifies after churn + repair + decay, so this also
        # certifies that no retirement ever broke coverage.
        assert result.always_covered
        assert all(r.deficient_after == 0 for r in result.timeline)

    def test_demotion_bounds_set_growth_under_equal_churn(self):
        scenario = self._equal_churn_scenario()
        plain = run_scenario(scenario, LocalPatchRepair())
        decay = run_scenario(scenario, LocalPatchRepair(),
                             demote=SurplusDemotion())
        assert sum(r.demoted for r in decay.timeline) > 0
        # The decayed set stays strictly below the promote-only set...
        assert len(decay.final_members) < len(plain.final_members)
        # ...and its long-run size is flat: the second half of the run
        # never exceeds the high-water mark of the first half.
        sizes = [r.n_members for r in decay.timeline]
        half = len(sizes) // 2
        assert max(sizes[half:]) <= max(sizes[:half])

    def test_demote_pass_is_safe_on_static_state(self, udg120):
        # Inflate the set (promote every node), then decay: the result
        # must still be a valid k-fold dominating set.
        state = NetworkState.from_udg(udg120, members=set(range(udg120.n)))
        instr = Instrumentation.for_n(udg120.n)
        out = SurplusDemotion().demote(state, 3, instr=instr)
        assert out.demoted
        state.demote(out.demoted)
        assert is_k_dominating_set(state.graph(), state.members, 3,
                                   convention="open")
        assert out.rounds == 1
        assert out.messages > 0
        assert instr.stats.messages_sent == out.messages

    def test_demotion_matches_bruteforce_safety(self, udg120):
        # Every retirement the pass makes must be one a brute-force
        # oracle would also allow at that point; greedy order is stable,
        # so replaying the demotions one by one verifies each step.
        members = solve_kmds_udg(udg120, 2, mode="direct", seed=1).members
        extra = set(range(0, udg120.n, 3))
        state = NetworkState.from_udg(udg120, members=members | extra)
        instr = Instrumentation.for_n(udg120.n)
        out = SurplusDemotion().demote(state, 2, instr=instr)
        g = state.graph()
        current = set(state.members)
        for v in sorted(out.demoted):
            trial = current - {v}
            assert is_k_dominating_set(g, trial, 2, convention="open")
            current = trial

    def test_max_per_epoch_caps_retirements(self, udg120):
        state = NetworkState.from_udg(udg120, members=set(range(udg120.n)))
        instr = Instrumentation.for_n(udg120.n)
        out = SurplusDemotion(max_per_epoch=2).demote(state, 3, instr=instr)
        assert len(out.demoted) == 2

    def test_max_per_epoch_validated(self):
        with pytest.raises(GraphError, match="max_per_epoch"):
            SurplusDemotion(max_per_epoch=0)

    def test_no_members_is_a_noop(self, udg120):
        state = NetworkState.from_udg(udg120)
        out = SurplusDemotion().demote(
            state, 3, instr=Instrumentation.for_n(udg120.n))
        assert not out.demoted
        assert out.rounds == 0
