"""Cross-backend equivalence: every engine-ported algorithm must compute
the same answer on every execution backend for the same seed.

This is the contract of :mod:`repro.engine`: ``mode=`` selects *how* an
algorithm runs (vectorized, simulated rounds, event-driven asynchrony),
never *what* it computes.  Each test runs one entry point under
``direct`` / ``message`` / ``async`` (and ``async-beta`` where cheap) on
fixed seeds and compares dominating sets exactly and x-vectors to float
tolerance.  The unified ``mode`` / ``seed`` validation is covered at the
end.
"""

from __future__ import annotations

import networkx as nx
import pytest

from repro.baselines.jrs import jrs_kmds
from repro.core.fractional import fractional_kmds
from repro.core.local_delta import estimate_two_hop_max_message
from repro.core.rounding import randomized_rounding
from repro.core.udg import solve_kmds_udg
from repro.errors import GraphError, UnknownModeError
from repro.graphs.properties import feasible_coverage
from repro.graphs.udg import random_udg
from repro.weighted.fractional import weighted_fractional_kmds

MODES = ("direct", "message", "async")
ALL_MODES = ("direct", "message", "async", "async-beta")
SEEDS = (0, 17)


def _graph(seed: int) -> nx.Graph:
    return nx.gnp_random_graph(26, 0.22, seed=seed)


# ----------------------------------------------------------------------
# Algorithm 1 (+ weighted variant): identical x-vectors
# ----------------------------------------------------------------------

@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("mode", ALL_MODES[1:])
def test_fractional_x_identical_across_modes(mode, seed):
    g = _graph(seed)
    cov = feasible_coverage(g, 2)
    ref = fractional_kmds(g, coverage=cov, t=2, mode="direct", seed=seed)
    alt = fractional_kmds(g, coverage=cov, t=2, mode=mode, seed=seed)
    assert set(ref.x) == set(alt.x)
    for v in ref.x:
        assert ref.x[v] == pytest.approx(alt.x[v], abs=1e-12)


@pytest.mark.parametrize("mode", MODES[1:])
def test_weighted_fractional_x_identical_across_modes(mode):
    g = _graph(3)
    weights = {v: 1.0 + (v % 5) for v in g.nodes}
    ref = weighted_fractional_kmds(g, weights, 1, t=2, mode="direct", seed=3)
    alt = weighted_fractional_kmds(g, weights, 1, t=2, mode=mode, seed=3)
    for v in ref.x:
        assert ref.x[v] == pytest.approx(alt.x[v], abs=1e-12)


# ----------------------------------------------------------------------
# Algorithm 2: identical dominating sets
# ----------------------------------------------------------------------

@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("mode", ALL_MODES[1:])
@pytest.mark.parametrize("policy", ("random", "highest-x", "self-first"))
def test_rounding_members_identical_across_modes(mode, policy, seed):
    g = _graph(seed)
    frac = fractional_kmds(g, 1, t=2, mode="direct", seed=seed)
    ref = randomized_rounding(g, frac.x, 1, policy=policy, mode="direct",
                              seed=seed)
    alt = randomized_rounding(g, frac.x, 1, policy=policy, mode=mode,
                              seed=seed)
    assert ref.members == alt.members


# ----------------------------------------------------------------------
# Algorithm 3: identical leader sets
# ----------------------------------------------------------------------

@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("mode", ALL_MODES[1:])
def test_udg_members_identical_across_modes(mode, seed):
    udg = random_udg(30, density=8.0, seed=seed)
    ref = solve_kmds_udg(udg, k=2, mode="direct", seed=seed)
    alt = solve_kmds_udg(udg, k=2, mode=mode, seed=seed)
    assert ref.members == alt.members


# ----------------------------------------------------------------------
# Kernel vs. per-node reference: the vectorized direct backends of
# Algorithms 2 and 3 must be bit-identical to their pre-vectorization
# per-node loops — same members, same RunStats, same details, same
# per-node RNG consumption (execute(..., reference_direct=True) selects
# the oracle).  This pins PR 5 the way test_transport_equivalence.py
# pinned the columnar transport.
# ----------------------------------------------------------------------

def _assert_same_result(kernel, reference):
    assert kernel.members == reference.members
    assert kernel.stats == reference.stats
    assert kernel.details == reference.details


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("k", (1, 2, 3))
@pytest.mark.parametrize("policy", ("random", "by-id"))
def test_udg_kernel_matches_reference(policy, k, seed):
    from repro.core.udg import UDGProgram
    from repro.engine import execute

    udg = random_udg(120, density=9.0, seed=seed)
    kernel = solve_kmds_udg(udg, k=k, mode="direct",
                            selection_policy=policy, seed=seed)
    ref = execute(UDGProgram(udg, k, policy, seed), "direct", seed=seed,
                  reference_direct=True)
    ref.details["mode"] = "direct"
    _assert_same_result(kernel, ref)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("graph_kind", ("qudg", "noisy"))
def test_udg_kernel_matches_reference_on_geometric_variants(
        graph_kind, seed):
    from repro.core.udg import UDGProgram
    from repro.engine import execute
    from repro.engine.kernels import supports_kernel_election
    from repro.graphs.udg import NoisySensingUDG, QuasiUnitDiskGraph

    base = random_udg(90, density=9.0, seed=seed)
    if graph_kind == "qudg":
        udg = QuasiUnitDiskGraph(base.points, alpha=0.75, seed=seed)
    else:
        udg = NoisySensingUDG(base.points, sigma=0.05, noise_seed=seed)
    assert supports_kernel_election(udg)
    kernel = solve_kmds_udg(udg, k=2, mode="direct", seed=seed)
    ref = execute(UDGProgram(udg, 2, "random", seed), "direct", seed=seed,
                  reference_direct=True)
    ref.details["mode"] = "direct"
    _assert_same_result(kernel, ref)


def test_udg_exotic_subclass_falls_back_to_reference():
    # A subclass with bespoke sensing semantics the distance CSR cannot
    # express must run the per-node reference path (and still be right).
    from repro.engine.kernels import supports_kernel_election
    from repro.graphs.udg import UnitDiskGraph

    class CustomSensing(UnitDiskGraph):
        def neighbors_within(self, v, theta):
            return [w for w in super().neighbors_within(v, theta)
                    if (v + w) % 7 != 3]

    base = random_udg(60, density=8.0, seed=4)
    udg = CustomSensing(base.points)
    assert not supports_kernel_election(udg)
    result = solve_kmds_udg(udg, k=2, mode="direct", seed=4)
    assert result.members  # the reference path ran and produced a set


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("k", (1, 2, 3))
@pytest.mark.parametrize("policy", ("random", "highest-x", "self-first"))
def test_rounding_kernel_matches_reference(policy, k, seed):
    from repro.core.lp import CoveringLP
    from repro.core.rounding import RoundingProgram
    from repro.engine import execute

    g = _graph(seed)
    cov = feasible_coverage(g, k)
    frac = fractional_kmds(g, coverage=cov, t=2, mode="direct", seed=seed)
    kernel = randomized_rounding(g, frac.x, coverage=cov, policy=policy,
                                 mode="direct", seed=seed)
    lp = CoveringLP(g, cov)
    ref = execute(RoundingProgram(lp, frac.x, policy, seed), "direct",
                  seed=seed, reference_direct=True)
    _assert_same_result(kernel, ref)


@pytest.mark.parametrize("seed", SEEDS)
def test_rounding_kernel_matches_reference_on_udg(seed):
    from repro.core.lp import CoveringLP
    from repro.core.rounding import RoundingProgram
    from repro.engine import execute
    from repro.graphs.properties import as_nx

    udg = random_udg(150, density=9.0, seed=seed)
    g = as_nx(udg)
    cov = feasible_coverage(g, 2)
    frac = fractional_kmds(g, coverage=cov, t=2, mode="direct", seed=seed)
    kernel = randomized_rounding(g, frac.x, coverage=cov, mode="direct",
                                 seed=seed)
    ref = execute(RoundingProgram(CoveringLP(g, cov), frac.x, "random",
                                  seed), "direct",
                  seed=seed, reference_direct=True)
    _assert_same_result(kernel, ref)


# ----------------------------------------------------------------------
# Replica-batched execution: execute_batch on the direct backend must
# be bit-identical, per replica, to the sequential ``[execute(program,
# seed=s) for s in seeds]`` loop — same members, same RunStats, same
# details.  This pins PR 6's lane = (replica, node) batching across
# vecrng, the kernels, and the backend dispatch, the way the section
# above pins the single-replica kernels against the per-node reference.
# ----------------------------------------------------------------------

BATCH_SEEDS = (0, 5, 17)


def _assert_batch_matches_sequential(program, seeds=BATCH_SEEDS):
    from repro.engine import execute_batch

    assert program.supports_direct_batch()
    batch = execute_batch(program, seeds, "direct")
    seq = execute_batch(program, seeds, "direct", force_sequential=True)
    assert len(batch) == len(seq) == len(seeds)
    for one, ref in zip(batch, seq):
        _assert_same_result(one, ref)


@pytest.mark.parametrize("k", (1, 2, 3))
@pytest.mark.parametrize("policy", ("random", "by-id"))
def test_udg_batch_matches_sequential(policy, k):
    from repro.core.udg import UDGProgram

    udg = random_udg(120, density=9.0, seed=k)
    _assert_batch_matches_sequential(UDGProgram(udg, k, policy,
                                                BATCH_SEEDS[0]))


@pytest.mark.parametrize("graph_kind", ("qudg", "noisy"))
def test_udg_batch_matches_sequential_on_geometric_variants(graph_kind):
    from repro.core.udg import UDGProgram
    from repro.graphs.udg import NoisySensingUDG, QuasiUnitDiskGraph

    base = random_udg(90, density=9.0, seed=2)
    if graph_kind == "qudg":
        udg = QuasiUnitDiskGraph(base.points, alpha=0.75, seed=2)
    else:
        udg = NoisySensingUDG(base.points, sigma=0.05, noise_seed=2)
    _assert_batch_matches_sequential(UDGProgram(udg, 2, "random",
                                                BATCH_SEEDS[0]))


@pytest.mark.parametrize("k", (1, 2, 3))
@pytest.mark.parametrize("policy", ("random", "highest-x", "self-first"))
def test_rounding_batch_matches_sequential(policy, k):
    from repro.core.lp import CoveringLP
    from repro.core.rounding import RoundingProgram

    g = _graph(7)
    cov = feasible_coverage(g, k)
    frac = fractional_kmds(g, coverage=cov, t=2, mode="direct", seed=7)
    lp = CoveringLP(g, cov)
    _assert_batch_matches_sequential(RoundingProgram(lp, frac.x, policy,
                                                     BATCH_SEEDS[0]))


def test_solve_kmds_udg_batch_matches_solve_loop():
    from repro.core.udg import solve_kmds_udg_batch

    udg = random_udg(100, density=9.0, seed=1)
    seeds = (3, 1, 4, 1)  # a duplicated seed must reproduce its twin
    batch = solve_kmds_udg_batch(udg, seeds, k=2)
    for one, seed in zip(batch, seeds):
        ref = solve_kmds_udg(udg, k=2, mode="direct", seed=seed)
        _assert_same_result(one, ref)
    assert batch[1].members == batch[3].members


def test_batch_on_message_backend_falls_back_to_loop():
    from repro.core.udg import solve_kmds_udg_batch

    udg = random_udg(24, density=7.0, seed=0)
    batch = solve_kmds_udg_batch(udg, (0, 1), k=1, mode="message")
    for one, seed in zip(batch, (0, 1)):
        ref = solve_kmds_udg(udg, k=1, mode="message", seed=seed)
        assert one.members == ref.members
        assert one.stats == ref.stats


def test_batch_on_exotic_subclass_falls_back_to_loop():
    from repro.core.udg import UDGProgram, solve_kmds_udg_batch
    from repro.graphs.udg import UnitDiskGraph

    class CustomSensing(UnitDiskGraph):
        def neighbors_within(self, v, theta):
            return [w for w in super().neighbors_within(v, theta)
                    if (v + w) % 7 != 3]

    udg = CustomSensing(random_udg(60, density=8.0, seed=4).points)
    assert not UDGProgram(udg, 2, "random", 0).supports_direct_batch()
    batch = solve_kmds_udg_batch(udg, (0, 9), k=2)
    for one, seed in zip(batch, (0, 9)):
        ref = solve_kmds_udg(udg, k=2, mode="direct", seed=seed)
        _assert_same_result(one, ref)


def test_batch_validates_seeds_up_front():
    from repro.core.udg import solve_kmds_udg_batch

    udg = random_udg(20, density=6.0, seed=0)
    with pytest.raises(GraphError, match="seed must be an int or None"):
        solve_kmds_udg_batch(udg, (0, "one"), k=1)


def test_batch_with_empty_seed_list():
    from repro.core.udg import solve_kmds_udg_batch

    udg = random_udg(20, density=6.0, seed=0)
    assert solve_kmds_udg_batch(udg, (), k=1) == []


def test_elect_round_batch_accepts_precompressed_within():
    # The shared within-compression a round computes once and passes via
    # within_csr must be the same thing elect_round_batch computes for
    # itself, and every batch row must equal the single-replica kernel.
    import numpy as np

    from repro.engine.kernels import (compress_within, elect_round,
                                      elect_round_batch, udg_distance_csr)

    udg = random_udg(50, density=8.0, seed=6)
    indptr, src, nbr, dist = udg_distance_csr(udg)
    within = dist <= udg.radius * 0.7
    rng = np.random.default_rng(0)
    R = 4
    active = rng.random((R, udg.n)) < 0.8
    ids = rng.integers(1, 1 << 40, size=(R, udg.n))
    auto = elect_round_batch(indptr, src, nbr, within, active.copy(), ids)
    pre = elect_round_batch(indptr, src, nbr, within, active.copy(), ids,
                            within_csr=compress_within(indptr, nbr, within))
    assert np.array_equal(auto, pre)
    for r in range(R):
        row = elect_round(src, nbr, within, active[r].copy(), ids[r])
        assert np.array_equal(auto[r], row)


# ----------------------------------------------------------------------
# JRS/LRG baseline: identical sets and phase counts
# ----------------------------------------------------------------------

@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("mode", MODES[1:])
@pytest.mark.parametrize("convention", ("closed", "open"))
def test_jrs_members_identical_across_modes(mode, convention, seed):
    g = _graph(seed)
    ref = jrs_kmds(g, 1, convention=convention, mode="direct", seed=seed)
    alt = jrs_kmds(g, 1, convention=convention, mode=mode, seed=seed)
    assert ref.members == alt.members
    assert ref.details["phases"] == alt.details["phases"]


# ----------------------------------------------------------------------
# Local-Delta estimation: identical maps
# ----------------------------------------------------------------------

@pytest.mark.parametrize("mode", ALL_MODES)
def test_local_delta_estimates_identical_across_modes(mode):
    g = _graph(5)
    ref, _ = estimate_two_hop_max_message(g, mode="direct")
    alt, stats = estimate_two_hop_max_message(g, mode=mode)
    assert ref == alt
    assert stats.rounds >= 2


# ----------------------------------------------------------------------
# Async accounting: control traffic is reported, payload matches sync
# ----------------------------------------------------------------------

def test_async_stats_report_control_overhead():
    g = _graph(1)
    sync = fractional_kmds(g, 1, t=2, mode="message", seed=1)
    asyn = fractional_kmds(g, 1, t=2, mode="async", seed=1)
    assert asyn.stats.messages_sent == sync.stats.messages_sent
    assert asyn.stats.bits_sent == sync.stats.bits_sent
    assert asyn.stats.control_messages > 0
    assert asyn.stats.virtual_time > 0
    assert sync.stats.control_messages == 0


# ----------------------------------------------------------------------
# Unified mode / seed validation across all entry points
# ----------------------------------------------------------------------

ENTRY_POINTS = [
    lambda g, mode, seed: fractional_kmds(g, 1, t=1, mode=mode, seed=seed),
    lambda g, mode, seed: randomized_rounding(
        g, {v: 1.0 for v in g.nodes}, 1, mode=mode, seed=seed),
    lambda g, mode, seed: jrs_kmds(g, 1, mode=mode, seed=seed),
    lambda g, mode, seed: estimate_two_hop_max_message(
        g, mode=mode, seed=seed),
]


@pytest.mark.parametrize("entry", ENTRY_POINTS)
def test_unknown_mode_rejected_uniformly(entry):
    g = _graph(0)
    with pytest.raises(UnknownModeError, match="unknown mode 'telepathy'"):
        entry(g, "telepathy", 0)


def test_unknown_mode_rejected_for_udg():
    udg = random_udg(10, density=6.0, seed=0)
    with pytest.raises(UnknownModeError, match="unknown mode 'telepathy'"):
        solve_kmds_udg(udg, k=1, mode="telepathy", seed=0)


@pytest.mark.parametrize("entry", ENTRY_POINTS)
@pytest.mark.parametrize("bad_seed", (True, 1.5, "zero"))
def test_bad_seed_rejected_uniformly(entry, bad_seed):
    g = _graph(0)
    with pytest.raises(GraphError, match="seed must be an int or None"):
        entry(g, "direct", bad_seed)


def test_unknown_mode_is_a_graph_error():
    # Callers catching the old GraphError keep working.
    assert issubclass(UnknownModeError, GraphError)
