"""Tests for the scaling subsystem: incremental artifacts, sharded
repair, and the vectorized verify fast path.

The core guarantees pinned here:

- delta-patched :class:`GraphArtifacts` are field-equivalent to a
  from-scratch rebuild after *any* event sequence (property test);
- a count-preserving rewire never serves stale artifacts (the
  :func:`touch` version-token regression);
- the vectorized coverage oracle agrees with the pure-Python loop;
- the sharded maintenance loop produces bit-identical timelines for
  every ``(shards, workers)`` configuration, and — with deterministic
  selection — identical results to the legacy unsharded loop.
"""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.core.verify import (
    coverage_counts,
    coverage_deficit,
    coverage_deficit_vector,
)
from repro.dynamics import (
    LazyRepair,
    LocalPatchRepair,
    MaintenanceLoop,
    NetworkState,
    RecomputeRepair,
    assign_shards,
    crash_scenario,
    damage_units,
    run_scenario,
)
from repro.engine.artifacts import (
    GraphArtifacts,
    cache_stats,
    graph_artifacts,
    touch,
)
from repro.errors import GraphError, ShardingError
from repro.graphs.generators import gnp_graph
from repro.graphs.udg import random_udg


def assert_artifacts_match(art: GraphArtifacts, graph: nx.Graph) -> None:
    """Semantic (node-keyed, not positional) equivalence of a patched
    bundle and the graph it mirrors — patched node order is maintenance
    order, so positional comparison would be wrong by design."""
    fresh = GraphArtifacts(graph)
    assert set(art.nodes) == set(fresh.nodes)
    assert art.n == fresh.n
    assert art.m == fresh.m
    assert art.delta_max == fresh.delta_max
    assert sorted(art.index.values()) == list(range(art.n))
    for v in fresh.nodes:
        i, fi = art.index[v], fresh.index[v]
        assert art.degrees[i] == fresh.degrees[fi]
        assert art.sorted_neighbors[v] == fresh.sorted_neighbors[v]
        ball = {art.nodes[j] for j in art.closed_nbrs[i]}
        fresh_ball = {fresh.nodes[j] for j in fresh.closed_nbrs[fi]}
        assert ball == fresh_ball
    # The lazily rebuilt CSR must agree row-by-row under the node maps.
    a, f = art.closed_adjacency(), fresh.closed_adjacency()
    for v in fresh.nodes:
        arow = {art.nodes[j] for j in
                a.indices[a.indptr[art.index[v]]:a.indptr[art.index[v] + 1]]}
        frow = {fresh.nodes[j] for j in
                f.indices[f.indptr[fresh.index[v]]:
                          f.indptr[fresh.index[v] + 1]]}
        assert arow == frow


class TestArtifactDelta:
    def test_add_remove_rewire_match_rebuild(self):
        g = gnp_graph(30, 0.15, seed=3)
        art = GraphArtifacts(g.copy())
        delta = art.delta_patcher()
        mirror = g.copy()

        mirror.add_node(100)
        mirror.add_edge(100, 0)
        mirror.add_edge(100, 5)
        delta.add_node(100, [0, 5])
        assert_artifacts_match(art, mirror)

        mirror.remove_node(3)
        delta.remove_node(3)
        assert_artifacts_match(art, mirror)

        new_nbrs = [1, 7, 100]
        mirror.remove_edges_from(list(mirror.edges(9)))
        mirror.add_edges_from((9, w) for w in new_nbrs)
        delta.rewire(9, new_nbrs)
        assert_artifacts_match(art, mirror)

    def test_version_bumps_per_patch(self):
        art = GraphArtifacts(gnp_graph(12, 0.3, seed=0))
        delta = art.delta_patcher()
        v0 = art.version
        delta.remove_node(0)
        assert art.version > v0
        v1 = art.version
        delta.add_node(0, [1, 2])
        assert art.version > v1
        assert delta.patches == 2

    def test_patch_invalidates_csr(self):
        g = nx.path_graph(4)
        art = GraphArtifacts(g)
        before = art.closed_adjacency().toarray().copy()
        art.delta_patcher().rewire(0, [2, 3])
        after = art.closed_adjacency().toarray()
        assert not np.array_equal(before, after)

    def test_patcher_evicts_shared_cache(self):
        g = gnp_graph(10, 0.3, seed=1)
        art = graph_artifacts(g)
        art.delta_patcher().remove_node(0)
        # The cached bundle no longer mirrors g: next lookup rebuilds.
        assert graph_artifacts(g) is not art

    def test_invalid_patches_rejected(self):
        art = GraphArtifacts(nx.path_graph(5))
        delta = art.delta_patcher()
        with pytest.raises(GraphError):
            delta.add_node(2, [0])  # already present
        with pytest.raises(GraphError):
            delta.add_node(99, [42])  # unknown neighbor
        with pytest.raises(GraphError):
            delta.remove_node(77)  # not present
        with pytest.raises(GraphError):
            delta.rewire(2, [2])  # self-loop
        with pytest.raises(GraphError):
            delta.rewire(404, [0])  # not present

    def test_property_200_random_events(self):
        """Any 200-event add/remove/rewire sequence leaves the patched
        bundle field-equivalent to a from-scratch rebuild."""
        rng = np.random.default_rng(1234)
        g = gnp_graph(60, 0.08, seed=9)
        art = GraphArtifacts(g.copy())
        delta = art.delta_patcher()
        mirror = g.copy()
        next_id = 1000
        for step in range(200):
            nodes = list(mirror.nodes)
            op = rng.choice(["add", "remove", "rewire"])
            if op == "add" or len(nodes) < 5:
                count = int(rng.integers(0, min(4, len(nodes)) + 1))
                nbrs = [nodes[i] for i in
                        rng.choice(len(nodes), size=count, replace=False)]
                mirror.add_node(next_id)
                mirror.add_edges_from((next_id, w) for w in nbrs)
                delta.add_node(next_id, nbrs)
                next_id += 1
            elif op == "remove":
                victim = nodes[int(rng.integers(len(nodes)))]
                mirror.remove_node(victim)
                delta.remove_node(victim)
            else:
                v = nodes[int(rng.integers(len(nodes)))]
                others = [w for w in nodes if w != v]
                count = int(rng.integers(0, min(6, len(others)) + 1))
                nbrs = [others[i] for i in
                        rng.choice(len(others), size=count, replace=False)]
                mirror.remove_edges_from(list(mirror.edges(v)))
                mirror.add_edges_from((v, w) for w in nbrs)
                delta.rewire(v, nbrs)
            if step % 40 == 0:
                assert_artifacts_match(art, mirror)
        assert_artifacts_match(art, mirror)
        assert delta.patches == 200

    def test_cache_stats_exposes_patch_counters(self):
        stats = cache_stats()
        assert {"hits", "misses", "delta_patches",
                "full_rebuilds"} <= set(stats)
        before = stats["delta_patches"]
        GraphArtifacts(nx.path_graph(3)).delta_patcher().remove_node(0)
        assert cache_stats()["delta_patches"] == before + 1


class TestStalenessRegression:
    def test_count_preserving_rewire_with_touch(self):
        """An exact rewiring (same n, same m) is invisible to the (n, m)
        fingerprint; the version token must catch it."""
        g = nx.Graph([(0, 1), (2, 3)])
        art = graph_artifacts(g)
        assert art.sorted_neighbors[0] == (1,)
        g.remove_edge(0, 1)
        g.add_edge(1, 2)  # n and m unchanged
        touch(g)
        fresh = graph_artifacts(g)
        assert fresh is not art
        assert fresh.sorted_neighbors[0] == ()
        assert fresh.sorted_neighbors[1] == (2,)

    def test_state_move_preserving_counts_not_stale(self):
        """A NetworkState move that swaps one edge for another (m is
        unchanged) must be visible through graph() artifacts."""
        state = NetworkState({0: (0.0, 0.0), 1: (0.5, 0.0),
                              2: (2.0, 0.0)}, radius=1.0)
        g0 = state.graph()
        assert graph_artifacts(g0).m == 1  # only 0-1
        from repro.dynamics.events import MoveEvent
        state.apply(MoveEvent(positions={1: (1.6, 0.0)}))
        g1 = state.graph()
        art = graph_artifacts(g1)
        assert art.m == 1  # still one edge — counts preserved
        assert art.sorted_neighbors[1] == (2,)  # ...but a different one
        assert_artifacts_match(state.artifacts(), g1)

    def test_untouched_count_change_still_detected(self):
        """The (n, m) fingerprint net: a legacy mutator that changes the
        edge count without touch() must still trigger a rebuild (the
        fast adjacency-sum revalidation sees the new count)."""
        g = gnp_graph(10, 0.3, seed=2)
        art = graph_artifacts(g)
        if g.has_edge(0, 9):
            g.remove_edge(0, 9)
        else:
            g.add_edge(0, 9)
        fresh = graph_artifacts(g)
        assert fresh is not art
        assert fresh.m == g.number_of_edges()

    def test_fingerprint_fast_path_handles_self_loops(self):
        """The revalidation shortcut sums adjacency sizes // 2, which
        undercounts a graph with an odd number of self-loops; the exact
        number_of_edges fallback must keep the cache hit honest."""
        g = nx.path_graph(5)
        g.add_edge(2, 2)
        art = graph_artifacts(g)
        assert graph_artifacts(g) is art  # hit despite the odd degree sum


class TestVectorizedVerify:
    @pytest.mark.parametrize("convention", ["open", "closed"])
    def test_counts_match_python_loop(self, convention):
        g = gnp_graph(80, 0.08, seed=4)
        members = set(list(g.nodes)[::3])
        slow = coverage_counts(g, members, convention=convention)
        fast = coverage_counts(GraphArtifacts(g), members,
                               convention=convention)
        assert slow == fast

    @pytest.mark.parametrize("convention", ["open", "closed"])
    def test_deficit_matches_python_loop(self, convention):
        g = gnp_graph(80, 0.08, seed=4)
        members = set(list(g.nodes)[::4])
        slow = coverage_deficit(g, members, 2, convention=convention)
        fast = coverage_deficit(GraphArtifacts(g), members, 2,
                                convention=convention)
        assert slow == fast

    def test_deficit_vector_zeroes_members_open(self):
        g = nx.path_graph(5)
        art = GraphArtifacts(g)
        vec, nodes = coverage_deficit_vector(art, {2}, 3, convention="open")
        assert nodes == art.nodes
        assert vec[art.index[2]] == 0  # members are exempt
        assert vec[art.index[0]] > 0


class TestDamageUnits:
    def test_far_apart_deficits_split(self):
        g = nx.path_graph(10)  # 0..9 in a line
        units = damage_units({0: 1, 9: 2}, g.neighbors)
        assert len(units) == 2
        assert [u.anchor for u in units] == [0, 9]
        assert [u.rank for u in units] == [0, 1]
        assert units[1].deficits == {9: 2}

    def test_two_hop_deficits_merge(self):
        g = nx.path_graph(5)
        # 0 and 2 share witness node 1 — one unit.
        units = damage_units({0: 1, 2: 1}, g.neighbors)
        assert len(units) == 1
        assert units[0].deficits == {0: 1, 2: 1}

    def test_chain_merges_transitively(self):
        g = nx.path_graph(9)
        units = damage_units({0: 1, 2: 1, 4: 1}, g.neighbors)
        assert len(units) == 1

    def test_assign_shards_geometric_and_clamped(self):
        g = nx.empty_graph(3)
        units = damage_units({0: 1, 1: 1, 2: 1}, g.neighbors)
        pos = {0: (0.1, 0.1), 1: (0.9, 0.9), 2: (5.0, -1.0)}
        plan = assign_shards(units, 2, position_of=pos.get, side=1.0)
        keys = {u.anchor: key for key, us in plan.items() for u in us}
        assert keys[0] == (0, 0)
        assert keys[1] == (1, 1)
        assert keys[2] == (1, 0)  # clamped to the border cell

    def test_assign_shards_rank_fallback(self):
        g = nx.empty_graph(4)
        units = damage_units({i: 1 for i in range(4)}, g.neighbors)
        plan = assign_shards(units, 2)
        assert sorted(plan) == [(0, 0), (1, 0)]

    def test_bad_shard_count(self):
        with pytest.raises(ShardingError):
            assign_shards([], 0)


class TestShardedLoop:
    def _scenario(self, seed=7, epochs=15):
        return crash_scenario(n=150, k=3, epochs=epochs,
                              kill_fraction=0.3, seed=seed)

    def test_invalid_configs_rejected(self):
        sc = self._scenario()
        with pytest.raises(ShardingError, match="shards must be"):
            MaintenanceLoop(sc, LocalPatchRepair(), shards=0)
        with pytest.raises(ShardingError, match="workers must be"):
            MaintenanceLoop(sc, LocalPatchRepair(), workers=0)
        with pytest.raises(ShardingError, match="requires shards"):
            MaintenanceLoop(sc, LocalPatchRepair(), workers=4)
        for policy in (RecomputeRepair(), LazyRepair()):
            with pytest.raises(ShardingError, match="cannot be sharded"):
                MaintenanceLoop(sc, policy, shards=2)

    def _timeline_key(self, result):
        rows = result.timeline.to_dicts()
        for row in rows:
            # Plan-shape fields legitimately differ across shard grids.
            row.pop("shards_active")
        return (tuple(sorted(result.final_members)),
                tuple(tuple(sorted(r.items())) for r in rows))

    def test_bit_identical_across_shard_and_worker_counts(self):
        baseline = None
        for shards, workers in [(1, 1), (3, 1), (4, 4), (8, 2)]:
            result = run_scenario(self._scenario(), LocalPatchRepair(),
                                  shards=shards, workers=workers)
            key = self._timeline_key(result)
            if baseline is None:
                baseline = key
                assert result.always_covered
            else:
                assert key == baseline

    def test_deterministic_selection_matches_legacy_loop(self):
        legacy = run_scenario(self._scenario(), LocalPatchRepair("by-id"))
        sharded = run_scenario(self._scenario(), LocalPatchRepair("by-id"),
                               shards=4, workers=4)
        assert legacy.final_members == sharded.final_members
        assert (legacy.summary["rounds_total"]
                == sharded.summary["rounds_total"])
        assert legacy.always_covered and sharded.always_covered

    def test_incremental_matches_rebuild_baseline(self):
        fast = run_scenario(self._scenario(), LocalPatchRepair("by-id"),
                            shards=2, incremental=True)
        slow = run_scenario(self._scenario(), LocalPatchRepair("by-id"),
                            shards=2, incremental=False)
        assert fast.final_members == slow.final_members
        fast_rows = fast.timeline.to_dicts()
        slow_rows = slow.timeline.to_dicts()
        for f, s in zip(fast_rows, slow_rows):
            # Artifact accounting differs by construction; repair
            # behavior must not.
            for key in ("delta_patches", "full_rebuilds"):
                f.pop(key), s.pop(key)
            assert f == s
        assert fast.summary["delta_patches_total"] > 0
        assert slow.summary["delta_patches_total"] == 0

    def test_epoch_records_expose_plan_and_patch_counters(self):
        result = run_scenario(self._scenario(), LocalPatchRepair(),
                              shards=3)
        repaired = [r for r in result.timeline if r.repaired]
        assert repaired
        assert all(r.units >= 1 for r in repaired)
        assert all(r.shards_active >= 1 for r in repaired)
        assert any(r.delta_patches > 0 for r in result.timeline)
        assert "delta_patches_total" in result.summary
        assert "full_rebuilds_total" in result.summary

    def test_cli_sharded_run(self, capsys):
        rc = cli_main(["dynamics", "--n", "120", "--epochs", "5",
                       "--shards", "2", "--workers", "2", "--seed", "1"])
        assert rc == 0
        assert "mean availability" in capsys.readouterr().out

    def test_cli_invalid_sharding_flags(self):
        with pytest.raises(ShardingError):
            cli_main(["dynamics", "--n", "60", "--epochs", "2",
                      "--workers", "3"])
        with pytest.raises(ShardingError):
            cli_main(["dynamics", "--n", "60", "--epochs", "2",
                      "--policy", "recompute", "--shards", "2"])


class TestIncrementalNetworkState:
    def test_random_churn_artifacts_equivalent(self):
        """NetworkState-level property: after mixed crash/join/move
        churn the live patched artifacts mirror a fresh rebuild."""
        from repro.dynamics.events import CrashEvent, JoinEvent, MoveEvent

        udg = random_udg(120, density=10.0, seed=5)
        state = NetworkState.from_udg(udg, members=range(0, 120, 4))
        state.artifacts()  # arm the live bundle before churn
        rng = np.random.default_rng(42)
        side = float(udg.points.max())
        next_id = 500
        for _ in range(120):
            op = rng.choice(["crash", "join", "move"])
            live = sorted(state.alive)
            if op == "crash" and len(live) > 10:
                state.apply(CrashEvent(node=live[int(rng.integers(
                    len(live)))]))
            elif op == "join":
                pos = tuple(rng.uniform(0, side, size=2))
                state.apply(JoinEvent(node=next_id, pos=pos))
                next_id += 1
            else:
                victims = [live[i] for i in rng.choice(
                    len(live), size=min(3, len(live)), replace=False)]
                state.apply(MoveEvent(positions={
                    v: tuple(rng.uniform(0, side, size=2))
                    for v in victims}))
        art = state.artifacts()
        assert art.delta_max >= 0
        assert state.artifact_patches > 0
        assert_artifacts_match(art, state.graph())
