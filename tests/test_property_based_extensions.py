"""Property-based tests (hypothesis) for the extension subsystems:
weighted solvers, apps layer, synchronizers, deployments."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps.backbone import build_backbone, is_connected_backbone
from repro.apps.scheduling import assign_slots, verify_schedule
from repro.baselines.greedy import greedy_kmds
from repro.core.fractional import FractionalNode, fractional_kmds
from repro.core.lp import CoveringLP
from repro.core.verify import is_k_dominating_set
from repro.graphs.properties import feasible_coverage, max_degree
from repro.graphs.udg import NoisySensingUDG, UnitDiskGraph
from repro.simulation.asynchrony import run_protocol_async
from repro.simulation.beta import run_protocol_beta
from repro.simulation.network import SynchronousNetwork
from repro.weighted import (
    solve_weighted_kmds,
    weighted_greedy_kmds,
    weighted_lp_optimum,
)

COMMON = dict(deadline=None,
              suppress_health_check=[HealthCheck.too_slow])


@st.composite
def graphs(draw, max_n=12):
    n = draw(st.integers(min_value=1, max_value=max_n))
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    mask = draw(st.lists(st.booleans(), min_size=len(pairs),
                         max_size=len(pairs)))
    g = nx.Graph()
    g.add_nodes_from(range(n))
    g.add_edges_from(p for p, keep in zip(pairs, mask) if keep)
    return g


@st.composite
def weighted_graphs(draw, max_n=10):
    g = draw(graphs(max_n=max_n))
    weights = {
        v: draw(st.floats(0.5, 20.0, allow_nan=False, allow_infinity=False))
        for v in g.nodes
    }
    return g, weights


@st.composite
def udgs(draw, max_n=10):
    n = draw(st.integers(min_value=1, max_value=max_n))
    coords = draw(st.lists(
        st.tuples(st.floats(0, 3, allow_nan=False, allow_infinity=False),
                  st.floats(0, 3, allow_nan=False, allow_infinity=False)),
        min_size=n, max_size=n))
    return UnitDiskGraph(coords)


class TestWeightedProperties:
    @given(gw=weighted_graphs(), k=st.integers(1, 2),
           seed=st.integers(0, 200))
    @settings(max_examples=30, **COMMON)
    def test_weighted_pipeline_always_valid(self, gw, k, seed):
        g, weights = gw
        cov = feasible_coverage(g, k)
        ds = solve_weighted_kmds(g, weights, coverage=cov, t=2, seed=seed)
        assert is_k_dominating_set(g, ds.members, cov, convention="closed")

    @given(gw=weighted_graphs(), k=st.integers(1, 2))
    @settings(max_examples=25, **COMMON)
    def test_weighted_lp_lower_bounds_greedy(self, gw, k):
        g, weights = gw
        cov = feasible_coverage(g, k)
        lp = weighted_lp_optimum(g, weights, cov, convention="closed")
        greedy = weighted_greedy_kmds(g, weights, cov, convention="closed")
        assert lp.objective <= greedy.details["cost"] + 1e-6


class TestBackboneProperties:
    @given(udg=udgs())
    @settings(max_examples=30, **COMMON)
    def test_backbone_from_greedy_always_connected(self, udg):
        ds = greedy_kmds(udg.nx, 1, convention="open")
        bb = build_backbone(udg, ds.members)
        assert is_connected_backbone(udg, bb.members)

    @given(udg=udgs(), r=st.integers(1, 3))
    @settings(max_examples=20, **COMMON)
    def test_redundant_backbone_superset(self, udg, r):
        ds = greedy_kmds(udg.nx, 1, convention="open")
        bb1 = build_backbone(udg, ds.members, redundancy=1)
        bbr = build_backbone(udg, ds.members, redundancy=r)
        assert bb1.dominators == bbr.dominators
        assert is_connected_backbone(udg, bbr.members)


class TestSchedulingProperties:
    @given(udg=udgs(),
           bits=st.lists(st.booleans(), min_size=10, max_size=10))
    @settings(max_examples=30, **COMMON)
    def test_any_head_set_gets_valid_schedule(self, udg, bits):
        heads = {v for v in range(udg.n) if bits[v]}
        slots = assign_slots(udg, heads)
        assert set(slots) == heads
        assert verify_schedule(udg, slots)


class TestSynchronizerProperties:
    @given(g=graphs(max_n=10), delay_seed=st.integers(0, 100))
    @settings(max_examples=15, **COMMON)
    def test_alpha_and_beta_agree_with_sync(self, g, delay_seed):
        cov = feasible_coverage(g, 1)
        delta = max_degree(g)
        ref = fractional_kmds(g, coverage=cov, t=2, mode="message",
                              compute_duals=False, seed=1)

        for runner in (run_protocol_async, run_protocol_beta):
            procs = [FractionalNode(v, cov[v], delta, 2, False)
                     for v in g.nodes]
            net = SynchronousNetwork(g, procs, seed=1)
            runner(net, delay_seed=delay_seed)
            for p in procs:
                assert p.x == pytest.approx(ref.x[p.node_id], abs=1e-12)


class TestNoisySensingProperties:
    @given(udg=udgs(), sigma=st.floats(0.0, 0.5, allow_nan=False),
           k=st.integers(1, 2), seed=st.integers(0, 100))
    @settings(max_examples=25, **COMMON)
    def test_noisy_output_always_valid(self, udg, sigma, k, seed):
        from repro.core.udg import solve_kmds_udg

        noisy = NoisySensingUDG(udg.points, sigma=sigma, noise_seed=seed)
        ds = solve_kmds_udg(noisy, k=k, seed=seed)
        assert is_k_dominating_set(noisy, ds.members, k, convention="open")

    @given(udg=udgs(), sigma=st.floats(0.0, 0.5, allow_nan=False))
    @settings(max_examples=20, **COMMON)
    def test_sensed_within_sigma_band(self, udg, sigma):
        noisy = NoisySensingUDG(udg.points, sigma=sigma, noise_seed=0)
        for u, v in noisy.nx.edges:
            true = noisy.distance(u, v)
            sensed = noisy.sensed_distance(u, v)
            assert (1 - sigma) * true - 1e-9 <= sensed \
                <= (1 + sigma) * true + 1e-9
