"""Unit tests for the application layer (backbone, routing, data
collection)."""

import networkx as nx
import numpy as np
import pytest

from repro.apps.backbone import Backbone, build_backbone, is_connected_backbone
from repro.apps.datacollection import (
    DataCollectionReport,
    EnergyModel,
    run_data_collection,
)
from repro.apps.routing import backbone_route, routing_stretch
from repro.baselines.greedy import greedy_kmds
from repro.core.udg import solve_kmds_udg
from repro.errors import GraphError
from repro.graphs.udg import random_udg, udg_from_points


@pytest.fixture
def clustered_udg():
    udg = random_udg(150, density=10.0, seed=3)
    ds = solve_kmds_udg(udg, k=2, seed=0)
    return udg, ds.members


class TestBackbone:
    def test_backbone_is_connected(self, clustered_udg):
        udg, members = clustered_udg
        bb = build_backbone(udg, members)
        assert is_connected_backbone(udg, bb.members)

    def test_backbone_from_greedy_ds(self):
        udg = random_udg(120, density=12.0, seed=5)
        ds = greedy_kmds(udg.nx, 1)
        bb = build_backbone(udg, ds.members)
        assert is_connected_backbone(udg, bb.members)
        assert bb.dominators == set(ds.members)

    def test_connectors_disjoint_from_dominators(self, clustered_udg):
        udg, members = clustered_udg
        bb = build_backbone(udg, members)
        assert not (bb.connectors & bb.dominators)

    def test_connector_count_moderate(self, clustered_udg):
        udg, members = clustered_udg
        bb = build_backbone(udg, members)
        # Each tree edge adds at most 2 connectors (3-hop bridges).
        assert len(bb.connectors) <= 2 * len(bb.tree_edges)

    def test_tree_edges_are_paths_in_graph(self, clustered_udg):
        udg, members = clustered_udg
        bb = build_backbone(udg, members)
        for u, v, path in bb.tree_edges:
            assert path[0] == u and path[-1] == v
            assert 2 <= len(path) <= 4  # <= 3 hops
            for a, b in zip(path, path[1:]):
                assert udg.nx.has_edge(a, b)

    def test_non_dominating_set_rejected(self, clustered_udg):
        udg, _ = clustered_udg
        with pytest.raises(GraphError, match="does not dominate"):
            build_backbone(udg, {0})

    def test_single_dominator_component(self):
        udg = udg_from_points([(0, 0), (0.5, 0), (0, 0.5)])
        bb = build_backbone(udg, {0})
        assert bb.members == {0}
        assert is_connected_backbone(udg, bb.members)

    def test_disconnected_graph(self):
        # Two far-apart cliques, one dominator each.
        pts = [(0, 0), (0.4, 0), (10, 10), (10.4, 10)]
        udg = udg_from_points(pts)
        bb = build_backbone(udg, {0, 2})
        assert is_connected_backbone(udg, bb.members)
        assert bb.connectors == set()

    def test_path_graph_bridging(self):
        # Dominators at distance 3 need exactly the interior connectors.
        pts = [(float(i) * 0.9, 0.0) for i in range(4)]
        udg = udg_from_points(pts)
        bb = build_backbone(udg, {0, 3})
        assert bb.connectors == {1, 2}

    def test_is_connected_backbone_negative(self):
        pts = [(float(i) * 0.9, 0.0) for i in range(4)]
        udg = udg_from_points(pts)
        # {0, 3} dominates P4 but does not induce a connected subgraph.
        assert not is_connected_backbone(udg, {0, 3})


class TestRouting:
    def test_route_endpoints(self, clustered_udg):
        udg, members = clustered_udg
        bb = build_backbone(udg, members)
        route = backbone_route(udg, bb.members, 0, 1)
        if route is not None:
            assert route[0] == 0
            assert route[-1] == 1
            for w in route[1:-1]:
                assert w in bb.members

    def test_trivial_routes(self, clustered_udg):
        udg, members = clustered_udg
        assert backbone_route(udg, members, 5, 5) == [5]

    def test_adjacent_shortcut(self):
        pts = [(0, 0), (0.5, 0), (5, 5)]
        udg = udg_from_points(pts)
        route = backbone_route(udg, {2}, 0, 1)
        assert route == [0, 1]  # direct edge, no backbone needed

    def test_unroutable_pair(self):
        pts = [(0, 0), (10, 10)]
        udg = udg_from_points(pts)
        assert backbone_route(udg, set(), 0, 1) is None

    def test_unknown_node(self, clustered_udg):
        udg, members = clustered_udg
        with pytest.raises(GraphError, match="unknown"):
            backbone_route(udg, members, 0, 10_000)

    def test_stretch_full_delivery_over_backbone(self, clustered_udg):
        udg, members = clustered_udg
        bb = build_backbone(udg, members)
        out = routing_stretch(udg, bb.members, pairs=40, seed=1)
        assert out["delivered_fraction"] == 1.0
        assert 1.0 <= out["mean_stretch"] <= 4.0
        assert out["max_stretch"] < 8.0

    def test_stretch_invalid_pairs(self, clustered_udg):
        udg, members = clustered_udg
        with pytest.raises(GraphError):
            routing_stretch(udg, members, pairs=0)

    def test_stretch_tiny_graph(self):
        udg = udg_from_points([(0, 0)])
        out = routing_stretch(udg, {0}, pairs=5, seed=0)
        assert out["pairs"] == 0


class TestRoutingDegenerate:
    """Point queries on degenerate inputs: the service layer answers
    these live (``repro.service.queries.routes``), so their contract —
    route, ``None``, or :class:`GraphError` — is pinned here."""

    def test_non_member_source_routes_via_backbone(self):
        # 0 -- 1 -- 2 -- 3 in a line; only the interior is backbone.
        pts = [(0, 0), (0.9, 0), (1.8, 0), (2.7, 0)]
        udg = udg_from_points(pts)
        route = backbone_route(udg, {1, 2}, 0, 3)
        assert route == [0, 1, 2, 3]
        assert 0 not in {1, 2} and 3 not in {1, 2}

    def test_non_member_interior_blocks_route(self):
        # Same line, but node 2 is NOT a member: 0 -> 3 must fail even
        # though the graph itself is connected.
        pts = [(0, 0), (0.9, 0), (1.8, 0), (2.7, 0)]
        udg = udg_from_points(pts)
        assert backbone_route(udg, {1}, 0, 3) is None

    def test_disconnected_components_route_none(self):
        pts = [(0, 0), (0.5, 0), (10, 10), (10.5, 10)]
        udg = udg_from_points(pts)
        assert backbone_route(udg, {1, 2}, 0, 3) is None
        # Within one component routing still works.
        assert backbone_route(udg, {1, 2}, 0, 1) == [0, 1]

    def test_empty_backbone(self):
        pts = [(0, 0), (0.9, 0), (1.8, 0)]
        udg = udg_from_points(pts)
        # Adjacent endpoints shortcut past the (empty) backbone...
        assert backbone_route(udg, set(), 0, 1) == [0, 1]
        # ...non-adjacent ones have no interior to route through.
        assert backbone_route(udg, set(), 0, 2) is None
        # Self-routes never touch the backbone at all.
        assert backbone_route(udg, set(), 2, 2) == [2]

    def test_unknown_source_raises(self, clustered_udg):
        udg, members = clustered_udg
        with pytest.raises(GraphError, match="unknown"):
            backbone_route(udg, members, 10_000, 0)

    def test_members_outside_graph_are_ignored(self):
        pts = [(0, 0), (0.9, 0), (1.8, 0)]
        udg = udg_from_points(pts)
        # A stale membership set (dead dominators) must not break
        # routing over the live topology.
        assert backbone_route(udg, {1, 999}, 0, 2) == [0, 1, 2]

    def test_stretch_empty_backbone_delivers_neighbors_only(self):
        pts = [(0, 0), (0.9, 0), (1.8, 0), (2.7, 0)]
        udg = udg_from_points(pts)
        out = routing_stretch(udg, set(), pairs=30, seed=0)
        assert 0.0 < out["delivered_fraction"] < 1.0

    def test_stretch_disconnected_graph_skips_unroutable(self):
        pts = [(0, 0), (0.5, 0), (10, 10), (10.5, 10)]
        udg = udg_from_points(pts)
        out = routing_stretch(udg, {0, 1, 2, 3}, pairs=20, seed=0)
        # Cross-component pairs are not routable pairs; only the two
        # intra-component edges count, and both deliver.
        assert out["delivered_fraction"] == 1.0


class TestDataCollection:
    def test_no_deaths_full_delivery(self, clustered_udg):
        udg, members = clustered_udg
        report = run_data_collection(udg, members, epochs=5,
                                     head_death_rate=0.0, seed=0)
        assert report.delivered_fraction == 1.0
        assert report.live_heads_per_epoch == [len(members)] * 5

    def test_redundancy_improves_delivery(self):
        udg = random_udg(200, density=12.0, seed=7)
        ds1 = solve_kmds_udg(udg, k=1, seed=0)
        ds3 = solve_kmds_udg(udg, k=3, seed=0)
        r1 = run_data_collection(udg, ds1.members, epochs=40,
                                 head_death_rate=0.05, seed=1)
        r3 = run_data_collection(udg, ds3.members, epochs=40,
                                 head_death_rate=0.05, seed=1)
        assert r3.delivered_fraction >= r1.delivered_fraction

    def test_energy_accounting(self, clustered_udg):
        udg, members = clustered_udg
        model = EnergyModel(tx_per_bit=2.0, rx_per_bit=1.0,
                            idle_per_epoch=0.0)
        report = run_data_collection(udg, members, epochs=1,
                                     head_death_rate=0.0,
                                     reading_bits=100, energy=model, seed=0)
        # Every sensor transmits one 100-bit reading.
        assert report.energy_by_role["sensor"] == pytest.approx(200.0)
        # Heads receive in aggregate exactly what sensors sent (at half
        # the per-bit rate).
        n_sensors = udg.n - len(members)
        total_rx = report.energy_by_role["head"] * len(members)
        assert total_rx == pytest.approx(100.0 * n_sensors * 1.0)

    def test_deaths_reduce_live_heads(self, clustered_udg):
        udg, members = clustered_udg
        report = run_data_collection(udg, members, epochs=30,
                                     head_death_rate=0.2, seed=2)
        assert report.live_heads_per_epoch[-1] < len(members)
        assert report.delivered_per_epoch[-1] <= \
            report.delivered_per_epoch[0] + 1e-9

    def test_validation(self, clustered_udg):
        udg, members = clustered_udg
        with pytest.raises(GraphError):
            run_data_collection(udg, members, epochs=-1)
        with pytest.raises(GraphError):
            run_data_collection(udg, members, head_death_rate=2.0)
        with pytest.raises(GraphError):
            run_data_collection(udg, members, reading_bits=0)
        with pytest.raises(GraphError):
            run_data_collection(udg, {99999})
        with pytest.raises(GraphError):
            EnergyModel(tx_per_bit=-1.0)

    def test_zero_epochs(self, clustered_udg):
        udg, members = clustered_udg
        report = run_data_collection(udg, members, epochs=0)
        assert report.delivered_fraction == 1.0
        assert report.delivered_per_epoch == []

    def test_deterministic(self, clustered_udg):
        udg, members = clustered_udg
        a = run_data_collection(udg, members, epochs=10,
                                head_death_rate=0.1, seed=5)
        b = run_data_collection(udg, members, epochs=10,
                                head_death_rate=0.1, seed=5)
        assert a.delivered_per_epoch == b.delivered_per_epoch
