"""Unit tests for spatial-multiplexing scheduling and backbone
robustness."""

import networkx as nx
import pytest

from repro.apps.backbone import backbone_robustness, build_backbone
from repro.apps.scheduling import assign_slots, schedule_report, verify_schedule
from repro.baselines.greedy import greedy_kmds
from repro.core.udg import solve_kmds_udg
from repro.errors import GraphError
from repro.graphs.udg import random_udg, udg_from_points


class TestAssignSlots:
    def test_valid_distance2_coloring(self):
        udg = random_udg(200, density=10.0, seed=1)
        heads = solve_kmds_udg(udg, k=2, seed=0).members
        slots = assign_slots(udg, heads)
        assert set(slots) == set(heads)
        assert verify_schedule(udg, slots)

    def test_isolated_heads_share_slot_zero(self):
        pts = [(0, 0), (10, 10), (20, 20)]
        udg = udg_from_points(pts)
        slots = assign_slots(udg, {0, 1, 2})
        assert set(slots.values()) == {0}

    def test_adjacent_heads_differ(self):
        pts = [(0, 0), (0.5, 0)]
        udg = udg_from_points(pts)
        slots = assign_slots(udg, {0, 1})
        assert slots[0] != slots[1]

    def test_two_hop_heads_differ(self):
        # Heads 0 and 2 share the middle node 1: distance 2 apart.
        pts = [(0, 0), (0.9, 0), (1.8, 0)]
        udg = udg_from_points(pts)
        slots = assign_slots(udg, {0, 2})
        assert slots[0] != slots[2]

    def test_three_hop_heads_can_share(self):
        pts = [(0, 0), (0.9, 0), (1.8, 0), (2.7, 0)]
        udg = udg_from_points(pts)
        slots = assign_slots(udg, {0, 3})
        assert slots[0] == slots[3] == 0

    def test_unknown_head_rejected(self, triangle):
        with pytest.raises(GraphError, match="unknown"):
            assign_slots(triangle, {99})

    def test_empty_heads(self, triangle):
        assert assign_slots(triangle, set()) == {}


class TestScheduleReport:
    def test_report_fields(self):
        udg = random_udg(300, density=10.0, seed=2)
        heads = solve_kmds_udg(udg, k=1, seed=0).members
        rep = schedule_report(udg, heads)
        assert rep["heads"] == len(heads)
        assert rep["slots"] >= 1
        assert rep["reuse"] == pytest.approx(rep["heads"] / rep["slots"])
        assert rep["slots"] <= rep["max_conflict_degree"] + 1

    def test_multiplexing_gain_grows_with_field(self):
        # Same density, 4x area: slot count ~constant, reuse ~4x.
        small = random_udg(150, density=10.0, seed=3)
        large = random_udg(600, density=10.0, seed=3)
        rep_s = schedule_report(small, solve_kmds_udg(small, k=1,
                                                      seed=0).members)
        rep_l = schedule_report(large, solve_kmds_udg(large, k=1,
                                                      seed=0).members)
        assert rep_l["reuse"] > 2 * rep_s["reuse"]
        assert rep_l["slots"] <= 3 * rep_s["slots"]

    def test_empty(self, triangle):
        rep = schedule_report(triangle, set())
        assert rep["slots"] == 0

    def test_verify_rejects_bad_schedule(self):
        pts = [(0, 0), (0.5, 0)]
        udg = udg_from_points(pts)
        assert not verify_schedule(udg, {0: 0, 1: 0})


class TestBackboneRobustness:
    def _setup(self):
        udg = random_udg(200, density=8.0, seed=9)
        ds = greedy_kmds(udg.nx, 1)
        return udg, ds.members

    def test_redundancy_improves_survival(self):
        udg, members = self._setup()
        bb1 = build_backbone(udg, members, redundancy=1)
        bb2 = build_backbone(udg, members, redundancy=2)
        r1 = backbone_robustness(udg, bb1, kill_fraction=0.15, trials=30,
                                 seed=0)
        r2 = backbone_robustness(udg, bb2, kill_fraction=0.15, trials=30,
                                 seed=0)
        assert r2["mean_connected_fraction"] >= r1["mean_connected_fraction"]

    def test_redundant_backbone_still_valid(self):
        udg, members = self._setup()
        from repro.apps.backbone import is_connected_backbone

        bb = build_backbone(udg, members, redundancy=3)
        assert is_connected_backbone(udg, bb.members)

    def test_zero_kill_fully_connected(self):
        udg, members = self._setup()
        bb = build_backbone(udg, members)
        r = backbone_robustness(udg, bb, kill_fraction=0.0, trials=2, seed=0)
        assert r["mean_connected_fraction"] == 1.0

    def test_validation(self):
        udg, members = self._setup()
        bb = build_backbone(udg, members)
        with pytest.raises(GraphError):
            backbone_robustness(udg, bb, kill_fraction=1.5)
        with pytest.raises(GraphError):
            backbone_robustness(udg, bb, trials=0)
        with pytest.raises(GraphError):
            build_backbone(udg, members, redundancy=0)
