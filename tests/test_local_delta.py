"""Unit tests for the unknown-Delta variant (2-hop local estimates)."""

import networkx as nx
import pytest

from repro.core.fractional import fractional_kmds
from repro.core.local_delta import (
    estimate_two_hop_max_message,
    two_hop_max_degree,
)
from repro.core.lp import CoveringLP
from repro.errors import GraphError
from repro.graphs.generators import gnp_graph, path_graph, star_graph
from repro.graphs.properties import feasible_coverage, max_degree


class TestTwoHopMax:
    def test_star_all_see_hub(self, star10):
        est = two_hop_max_degree(star10)
        assert all(v == 10 for v in est.values())

    def test_path_estimates(self):
        g = path_graph(7)
        est = two_hop_max_degree(g)
        # Interior nodes have degree 2 and see only degree-2 nodes at
        # distance <= 2; the ends see degree 2 within two hops.
        assert est[3] == 2
        assert est[0] == 2

    def test_two_stars_joined(self):
        # Two stars joined by a long path: far star's nodes shouldn't see
        # the big hub.
        g = nx.star_graph(10)                   # hub 0, leaves 1..10
        offset = 11
        g.add_edges_from((offset + i, offset + i + 1) for i in range(6))
        g.add_edge(1, offset)                   # bridge
        small_hub_end = offset + 6
        est = two_hop_max_degree(g)
        assert est[0] == 10
        assert est[small_hub_end] < 10

    def test_upper_bounded_by_global(self, small_gnp):
        est = two_hop_max_degree(small_gnp)
        assert max(est.values()) == max_degree(small_gnp)
        assert all(small_gnp.degree[v] <= est[v] for v in small_gnp.nodes)

    def test_message_protocol_agrees(self, small_gnp):
        central = two_hop_max_degree(small_gnp)
        distributed, stats = estimate_two_hop_max_message(small_gnp)
        assert central == distributed
        assert stats.rounds == 2
        assert stats.messages_sent == 4 * small_gnp.number_of_edges()

    def test_isolated_nodes(self):
        g = nx.empty_graph(3)
        est = two_hop_max_degree(g)
        assert est == {0: 0, 1: 0, 2: 0}


class TestLocalDeltaFractional:
    @pytest.mark.parametrize("k", [1, 2])
    def test_feasible(self, small_gnp, k):
        cov = feasible_coverage(small_gnp, k)
        est = two_hop_max_degree(small_gnp)
        sol = fractional_kmds(small_gnp, coverage=cov, t=3, local_delta=est)
        assert CoveringLP(small_gnp, cov).primal_feasible(sol.x, tol=1e-7)

    def test_matches_global_on_regular_graphs(self):
        from repro.graphs.generators import random_regular_graph

        g = random_regular_graph(20, 4, seed=1)
        est = two_hop_max_degree(g)
        assert set(est.values()) == {4}
        a = fractional_kmds(g, k=2, t=3, compute_duals=False)
        b = fractional_kmds(g, k=2, t=3, compute_duals=False,
                            local_delta=est)
        assert all(a.x[v] == pytest.approx(b.x[v]) for v in g.nodes)

    def test_modes_agree(self, small_gnp):
        cov = feasible_coverage(small_gnp, 2)
        est = two_hop_max_degree(small_gnp)
        d = fractional_kmds(small_gnp, coverage=cov, t=2,
                            compute_duals=False, local_delta=est)
        m = fractional_kmds(small_gnp, coverage=cov, t=2, mode="message",
                            compute_duals=False, local_delta=est)
        assert all(abs(d.x[v] - m.x[v]) < 1e-12 for v in small_gnp.nodes)

    def test_dual_identity_survives(self, small_gnp):
        # Lemma 4.3's identity is threshold-independent algebra.
        cov = feasible_coverage(small_gnp, 1)
        est = two_hop_max_degree(small_gnp)
        sol = fractional_kmds(small_gnp, coverage=cov, t=2, local_delta=est)
        lp = CoveringLP(small_gnp, cov)
        beta_sum = sum(sum(r.values()) for r in sol.beta.values())
        assert lp.dual_objective(sol.y, sol.z) == pytest.approx(
            beta_sum, abs=1e-7)

    def test_quality_not_catastrophic(self, small_gnp):
        from repro.baselines.lp_opt import lp_optimum

        cov = feasible_coverage(small_gnp, 2)
        est = two_hop_max_degree(small_gnp)
        sol = fractional_kmds(small_gnp, coverage=cov, t=3,
                              compute_duals=False, local_delta=est)
        opt = lp_optimum(small_gnp, cov, convention="closed").objective
        assert sol.objective <= 10 * opt

    def test_missing_entries_rejected(self, triangle):
        with pytest.raises(GraphError, match="local_delta missing"):
            fractional_kmds(triangle, k=1, t=2, local_delta={0: 2})
