"""Unit tests for the end-to-end general-graph pipeline."""

import networkx as nx
import pytest

from repro.core.general import (
    expected_overall_ratio_bound,
    recommended_t,
    solve_kmds_general,
)
from repro.core.verify import is_k_dominating_set
from repro.graphs.generators import gnp_graph, star_graph
from repro.graphs.properties import feasible_coverage


class TestPipeline:
    @pytest.mark.parametrize("k", [1, 2])
    @pytest.mark.parametrize("t", [1, 2, 3])
    def test_valid_output(self, small_gnp, k, t):
        cov = feasible_coverage(small_gnp, k)
        res = solve_kmds_general(small_gnp, coverage=cov, t=t, seed=0)
        assert is_k_dominating_set(small_gnp, res.members, cov,
                                   convention="closed")

    def test_result_structure(self, small_gnp):
        cov = feasible_coverage(small_gnp, 1)
        res = solve_kmds_general(small_gnp, coverage=cov, t=2, seed=0)
        assert res.size == len(res.members)
        assert res.fractional.objective > 0
        assert res.dominating_set.details["t"] == 2
        assert res.dominating_set.details["fractional_objective"] == \
            pytest.approx(res.fractional.objective)

    def test_stats_compose(self, small_gnp):
        res = solve_kmds_general(small_gnp, k=1, t=2, mode="message", seed=0)
        # 2t^2 rounds of Algorithm 1 + <=2 rounds of Algorithm 2.
        assert 8 <= res.stats.rounds <= 10
        assert res.stats.messages_sent > 0

    def test_message_mode_matches_direct(self):
        g = gnp_graph(20, 0.25, seed=8)
        cov = feasible_coverage(g, 2)
        d = solve_kmds_general(g, coverage=cov, t=2, mode="direct", seed=3)
        m = solve_kmds_general(g, coverage=cov, t=2, mode="message", seed=3)
        assert d.members == m.members

    def test_uniform_k_shortcut(self, triangle):
        res = solve_kmds_general(triangle, k=1, t=2, seed=0)
        assert is_k_dominating_set(triangle, res.members, 1,
                                   convention="closed")

    def test_star_efficient(self, star10):
        # On a star, k=1: hub + maybe little more; far below n.
        res = solve_kmds_general(star10, k=1, t=4, seed=0)
        assert res.size <= 4

    def test_empty_graph(self):
        res = solve_kmds_general(nx.Graph(), k=1, t=2)
        assert res.size == 0


class TestHelpers:
    def test_recommended_t(self, star10):
        assert recommended_t(star10) == 4  # ceil(log2(10+2))

    def test_recommended_t_min_one(self):
        assert recommended_t(nx.empty_graph(3)) >= 1

    def test_overall_bound_positive(self):
        assert expected_overall_ratio_bound(3, 16) > 0

    def test_overall_bound_composes(self):
        import math

        from repro.core.fractional import theorem_45_ratio_bound

        t, delta = 3, 16
        assert expected_overall_ratio_bound(t, delta) == pytest.approx(
            theorem_45_ratio_bound(t, delta) * math.log(delta + 1 + 1e-12))
