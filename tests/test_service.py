"""Tests for repro.service: the coverage-as-a-service subsystem.

Pinned guarantees:

- :class:`SharedArtifactStore` round-trips arrays across generations
  and frees old ones; attached views are read-only;
- :class:`EpochSnapshot` agrees with the :mod:`repro.core.verify`
  oracle, is immutable, and is isolated from later churn epochs;
- the vectorized query plane (``covered`` / ``k_deficit`` /
  ``who_covers`` / ``dominator_of`` / ``route``) matches per-node
  oracles, answers unknown ids with sentinels, and rejects malformed
  batches with :class:`QueryError`;
- ``executor="process"`` produces a **bit-identical timeline** to the
  sequential and thread-pool loops for every ``(shards, workers)``
  configuration (the acceptance criterion of the service PR);
- the resident stepping API (``start``/``step``/``finish``) replays
  ``run()`` exactly, and the daemon lifecycle (submit/drain/signals)
  behaves.
"""

from __future__ import annotations

import json
import signal

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.core.verify import coverage_counts, coverage_deficit
from repro.dynamics import (
    LocalPatchRepair,
    MaintenanceLoop,
    crash_scenario,
    run_scenario,
)
from repro.errors import GraphError, QueryError, ServiceError, ShardingError
from repro.service import (
    CoverageDaemon,
    CoverageService,
    EpochSnapshot,
    LoadGenerator,
    SharedArtifactStore,
    attach,
)
from repro.service import queries as qp


def _scenario(n=150, k=3, epochs=10, seed=7, kill=0.3):
    return crash_scenario(n=n, k=k, epochs=epochs, kill_fraction=kill,
                          seed=seed)


def _fresh_service(**kwargs) -> CoverageService:
    loop = MaintenanceLoop(_scenario(), LocalPatchRepair(), **kwargs)
    return CoverageService(loop)


# ======================================================================
# Shared memory
# ======================================================================

class TestSharedArtifactStore:
    def test_publish_attach_roundtrip(self):
        store = SharedArtifactStore()
        arrays = {
            "a": np.arange(10, dtype=np.int64),
            "mask": np.array([True, False, True]),
            "empty": np.zeros(0, dtype=np.int64),
        }
        manifest = store.publish(arrays)
        assert manifest["generation"] == 1
        with attach(manifest) as gen:
            assert gen.generation == 1
            for key, arr in arrays.items():
                np.testing.assert_array_equal(gen.arrays[key], arr)
                assert not gen.arrays[key].flags.writeable
        store.close()

    def test_new_generation_frees_old_segments(self):
        store = SharedArtifactStore()
        first = store.publish({"x": np.ones(4)})
        second = store.publish({"x": np.zeros(4)})
        assert second["generation"] == 2
        with pytest.raises(FileNotFoundError):
            attach(first)
        with attach(second) as gen:
            np.testing.assert_array_equal(gen.arrays["x"], np.zeros(4))
        store.close()

    def test_close_is_idempotent_and_final(self):
        store = SharedArtifactStore()
        manifest = store.publish({"x": np.ones(2)})
        store.close()
        store.close()
        with pytest.raises(FileNotFoundError):
            attach(manifest)
        with pytest.raises(ServiceError, match="closed store"):
            store.publish({"x": np.ones(2)})

    def test_context_manager_releases(self):
        with SharedArtifactStore() as store:
            manifest = store.publish({"x": np.arange(3)})
        with pytest.raises(FileNotFoundError):
            attach(manifest)


# ======================================================================
# Snapshots
# ======================================================================

class TestEpochSnapshot:
    def test_capture_matches_verify_oracle(self):
        service = _fresh_service()
        snap = service.start()
        state = service.loop.state
        counts = coverage_counts(state.graph(), state.members,
                                 convention="open")
        deficit = coverage_deficit(state.graph(), state.members,
                                   service.loop.scenario.k,
                                   convention="open")
        for i, v in enumerate(snap.nodes.tolist()):
            assert int(snap.coverage[i]) == counts[v]
            assert int(snap.deficit[i]) == deficit[v]
            assert bool(snap.member_mask[i]) == (v in state.members)
        assert snap.members == len(state.members)
        assert snap.fully_covered

    def test_arrays_are_read_only(self):
        snap = _fresh_service().start()
        for arr in (snap.nodes, snap.indptr, snap.indices,
                    snap.member_mask, snap.coverage, snap.deficit):
            with pytest.raises(ValueError):
                arr[0] = 0

    def test_snapshot_isolated_from_later_epochs(self):
        service = _fresh_service()
        snap = service.start()
        frozen = {name: getattr(snap, name).copy()
                  for name in ("nodes", "indptr", "indices",
                               "member_mask", "coverage", "deficit")}
        for _ in range(4):
            service.step_epoch()
        newer = service.current()
        assert newer is not snap
        for name, before in frozen.items():
            np.testing.assert_array_equal(getattr(snap, name), before)

    def test_index_of_sentinel_for_unknown(self):
        snap = _fresh_service().start()
        known = snap.nodes[:3]
        probe = np.concatenate([known, [-5, 10 ** 9]])
        idx = snap.index_of(probe)
        np.testing.assert_array_equal(snap.nodes[idx[:3]], known)
        assert idx[3] == -1 and idx[4] == -1

    def test_graph_matches_live_topology(self):
        service = _fresh_service()
        snap = service.start()
        service.step_epoch()
        live = service.loop.state.graph()
        g = service.current().graph()
        assert set(g.nodes) == set(live.nodes)
        assert {frozenset(e) for e in g.edges} \
            == {frozenset(e) for e in live.edges}
        # The older snapshot still describes the *deployment* topology.
        assert snap.graph().number_of_nodes() == snap.n

    def test_nodes_array_requires_int_ids(self):
        import networkx as nx

        from repro.engine.artifacts import GraphArtifacts

        art = GraphArtifacts(nx.path_graph(["a", "b", "c"]))
        with pytest.raises(GraphError, match="integer node ids"):
            art.nodes_array()

    def test_artifact_csr_caches_drop_on_patch(self):
        import networkx as nx

        from repro.engine.artifacts import GraphArtifacts

        art = GraphArtifacts(nx.path_graph(4))
        indptr, indices = art.closed_csr_arrays()
        nodes = art.nodes_array()
        assert art.closed_csr_arrays()[0] is indptr  # cached
        assert art.nodes_array() is nodes
        art.delta_patcher().remove_node(3)
        indptr2, _ = art.closed_csr_arrays()
        assert indptr2 is not indptr
        assert len(art.nodes_array()) == 3


# ======================================================================
# The query plane
# ======================================================================

class TestQueryPlane:
    @pytest.fixture(scope="class")
    def served(self):
        service = _fresh_service()
        service.start()
        service.step_epoch()
        return service.current(), service.loop.state

    def test_covered_and_deficit_match_oracle(self, served):
        snap, state = served
        k = snap.k
        oracle = coverage_deficit(state.graph(), state.members, k,
                                  convention="open")
        ids = np.concatenate([snap.nodes, [-1, 10 ** 9]])
        dv = qp.k_deficit(snap, ids)
        cv = qp.covered(snap, ids)
        for i, v in enumerate(snap.nodes.tolist()):
            assert int(dv[i]) == oracle[v]
            assert bool(cv[i]) == (oracle[v] == 0)
        assert dv[-1] == k and dv[-2] == k
        assert not cv[-1] and not cv[-2]

    def test_who_covers_matches_neighborhood_oracle(self, served):
        snap, state = served
        g = state.graph()
        ids = np.concatenate([snap.nodes, [10 ** 9]])
        indptr, doms = qp.who_covers(snap, ids)
        assert indptr[-1] == len(doms)
        for i, v in enumerate(snap.nodes.tolist()):
            expected = sorted(w for w in g.neighbors(v)
                              if w in state.members)
            got = sorted(doms[indptr[i]:indptr[i + 1]].tolist())
            assert got == expected
        assert indptr[-2] == indptr[-1]  # unknown id: empty row

    def test_dominator_of_semantics(self, served):
        snap, state = served
        g = state.graph()
        ids = np.concatenate([snap.nodes, [10 ** 9]])
        dom = qp.dominator_of(snap, ids)
        for i, v in enumerate(snap.nodes.tolist()):
            covering = sorted(w for w in g.neighbors(v)
                              if w in state.members)
            if v in state.members:
                assert dom[i] == v
            elif covering:
                assert dom[i] == covering[0]
            else:
                assert dom[i] == -1
        assert dom[-1] == -1

    def test_routes_stay_on_backbone(self, served):
        snap, state = served
        src = snap.nodes[:8]
        dst = snap.nodes[-8:]
        paths = qp.routes(snap, src, dst)
        members = snap.member_ids()
        for s, t, path in zip(src.tolist(), dst.tolist(), paths):
            if path is None:
                continue
            assert path[0] == s and path[-1] == t
            assert all(hop in members for hop in path[1:-1])

    def test_routes_unknown_endpoints_answer_none(self, served):
        snap, _ = served
        paths = qp.routes(snap, np.array([10 ** 9]),
                          np.array([int(snap.nodes[0])]))
        assert paths == [None]

    def test_malformed_batches_rejected(self, served):
        snap, _ = served
        with pytest.raises(QueryError, match="1-D"):
            qp.covered(snap, np.zeros((2, 2), dtype=np.int64))
        with pytest.raises(QueryError, match="integers"):
            qp.covered(snap, np.array(["a", "b"]))
        with pytest.raises(QueryError, match="integers"):
            qp.covered(snap, np.array([1.5]))
        with pytest.raises(QueryError, match="equal-length"):
            qp.routes(snap, np.array([1, 2]), np.array([3]))

    def test_answer_dispatch(self, served):
        snap, _ = served
        ids = snap.nodes[:4]
        np.testing.assert_array_equal(qp.answer(snap, "covered", ids),
                                      qp.covered(snap, ids))
        with pytest.raises(QueryError, match="unknown query kind"):
            qp.answer(snap, "who_is_there", ids)
        with pytest.raises(QueryError, match="need targets"):
            qp.answer(snap, "route", ids)

    def test_integral_float_ids_accepted(self, served):
        snap, _ = served
        ids = snap.nodes[:4].astype(float)
        np.testing.assert_array_equal(qp.covered(snap, ids),
                                      qp.covered(snap, snap.nodes[:4]))


# ======================================================================
# Process-pool sharded repair (the tentpole acceptance criterion)
# ======================================================================

class TestProcessExecutor:
    def _timeline_key(self, result):
        rows = result.timeline.to_dicts()
        for row in rows:
            row.pop("shards_active")
        return (tuple(sorted(result.final_members)),
                tuple(tuple(sorted(r.items())) for r in rows))

    def test_bit_identical_to_sequential_and_threaded(self):
        """Every (shards, workers) config, all three executors, one
        timeline."""
        baseline = None
        for shards, workers in [(1, 1), (2, 2), (4, 3)]:
            for executor in ("thread", "process"):
                result = run_scenario(_scenario(), LocalPatchRepair(),
                                      shards=shards, workers=workers,
                                      executor=executor)
                key = self._timeline_key(result)
                if baseline is None:
                    baseline = key
                    assert result.always_covered
                else:
                    assert key == baseline, (shards, workers, executor)
        sequential = run_scenario(_scenario(), LocalPatchRepair(),
                                  shards=1, workers=1)
        assert self._timeline_key(sequential) == baseline

    def test_invalid_process_configs_rejected(self):
        sc = _scenario()
        with pytest.raises(ShardingError, match="unknown executor"):
            MaintenanceLoop(sc, LocalPatchRepair(), shards=2,
                            executor="quantum")
        with pytest.raises(ShardingError, match="requires shards"):
            MaintenanceLoop(sc, LocalPatchRepair(), executor="process")
        with pytest.raises(ShardingError, match="incremental"):
            MaintenanceLoop(sc, LocalPatchRepair(), shards=2,
                            executor="process", incremental=False)

    def test_close_is_idempotent_and_loop_reusable(self):
        loop = MaintenanceLoop(_scenario(epochs=4), LocalPatchRepair(),
                               shards=2, workers=2, executor="process")
        first = loop.run()
        loop.close()
        loop.close()
        second = loop.run()  # pool is re-created lazily
        assert len(list(first.timeline)) == 4
        assert len(list(second.timeline)) == 4


# ======================================================================
# Resident stepping
# ======================================================================

class TestResidentStepping:
    def test_step_by_step_replays_run(self):
        batch = run_scenario(_scenario(), LocalPatchRepair())
        loop = MaintenanceLoop(_scenario(), LocalPatchRepair())
        loop.start()
        stepped = []
        for _ in range(loop.scenario.epochs):
            stepped.append(loop.step())
        result = loop.finish()
        assert stepped == list(batch.timeline)
        assert result.final_members == batch.final_members
        assert result.summary == batch.summary

    def test_step_past_scenario_horizon(self):
        loop = MaintenanceLoop(_scenario(epochs=2), LocalPatchRepair())
        for _ in range(4):
            record = loop.step()  # auto-starts, then keeps going
        assert record.epoch == 3
        assert loop.epochs_completed == 4

    def test_finish_before_start_raises(self):
        loop = MaintenanceLoop(_scenario(), LocalPatchRepair())
        with pytest.raises(ServiceError, match="before start"):
            loop.finish()

    def test_start_resets_resident_run(self):
        loop = MaintenanceLoop(_scenario(), LocalPatchRepair())
        loop.step()
        loop.start()
        assert loop.epochs_completed == 0
        assert len(list(loop.timeline)) == 0


# ======================================================================
# The daemon
# ======================================================================

class TestDaemon:
    def test_serves_and_drains(self):
        service = _fresh_service()
        daemon = CoverageDaemon(service, max_epochs=3)
        daemon.start()
        snap = service.current()
        ids = snap.nodes[:64]
        covered = daemon.query("covered", ids)
        assert covered.dtype == bool and len(covered) == 64
        daemon.wait_for_writer(timeout=60)
        report = daemon.drain()
        assert report["epochs_published"] == 4  # epoch 0 + 3 churn epochs
        assert report["queries"] >= 64
        assert report["qps"] > 0
        assert sum(report["per_kind"].values()) == report["queries"]

    def test_submit_after_drain_rejected(self):
        service = _fresh_service()
        daemon = CoverageDaemon(service, max_epochs=1)
        daemon.start()
        daemon.drain()
        with pytest.raises(ServiceError, match="draining"):
            daemon.submit("covered", np.array([0]))

    def test_submit_before_start_rejected(self):
        daemon = CoverageDaemon(_fresh_service())
        with pytest.raises(ServiceError, match="not started"):
            daemon.submit("covered", np.array([0]))

    def test_query_errors_propagate_through_futures(self):
        service = _fresh_service()
        daemon = CoverageDaemon(service, max_epochs=1)
        daemon.start()
        future = daemon.submit("covered", np.zeros((2, 2), dtype=np.int64))
        with pytest.raises(QueryError, match="1-D"):
            future.result(timeout=30)
        daemon.drain()

    def test_double_start_rejected(self):
        daemon = CoverageDaemon(_fresh_service(), max_epochs=1)
        daemon.start()
        with pytest.raises(ServiceError, match="already started"):
            daemon.start()
        daemon.drain()

    def test_signal_requests_drain(self):
        service = _fresh_service()
        daemon = CoverageDaemon(service, max_epochs=2)
        previous = daemon.install_signal_handlers()
        try:
            daemon.start()
            signal.raise_signal(signal.SIGTERM)
            assert daemon.draining
            report = daemon.drain()
            assert report["duration_s"] > 0
        finally:
            for sig, handler in previous.items():
                signal.signal(sig, handler)

    def test_load_generator_validation(self):
        daemon = CoverageDaemon(_fresh_service(), max_epochs=1)
        daemon.start()
        with pytest.raises(ServiceError, match="batch must be"):
            LoadGenerator(daemon, batch=0)
        with pytest.raises(ServiceError, match="clients must be"):
            LoadGenerator(daemon, clients=0)
        with pytest.raises(ServiceError, match="unknown query kind"):
            LoadGenerator(daemon, kinds=("covered", "gossip"))
        daemon.drain()

    def test_load_generator_traffic_counts(self):
        service = _fresh_service()
        daemon = CoverageDaemon(service, max_epochs=3)
        daemon.start()
        generator = LoadGenerator(daemon, batch=128, clients=2, seed=5)
        generator.start()
        daemon.wait_for_writer(timeout=120)
        submitted = generator.stop()
        report = daemon.drain()
        assert submitted > 0
        assert report["queries"] >= submitted

    def test_process_executor_behind_daemon(self):
        loop = MaintenanceLoop(_scenario(epochs=3), LocalPatchRepair(),
                               shards=2, workers=2, executor="process")
        daemon = CoverageDaemon(CoverageService(loop), max_epochs=3)
        daemon.start()
        daemon.wait_for_writer(timeout=120)
        report = daemon.drain()
        assert report["epochs_published"] == 4


# ======================================================================
# CLI integration
# ======================================================================

class TestServeCLI:
    def test_serve_smoke_with_json(self, tmp_path, capsys):
        out = tmp_path / "serve.json"
        rc = cli_main(["serve", "--n", "200", "--k", "2", "--epochs", "3",
                       "--kill", "0.1", "--clients", "1", "--batch", "256",
                       "--seed", "1", "--json", str(out)])
        assert rc == 0
        text = capsys.readouterr().out
        assert "throughput (queries/s)" in text
        data = json.loads(out.read_text())
        assert data["metrics"]["epochs_published"] == 4
        assert data["metrics"]["queries"] >= 0
        assert data["snapshot"]["n"] > 0
        assert data["config"]["executor"] == "thread"

    def test_serve_process_executor(self, capsys):
        rc = cli_main(["serve", "--n", "200", "--k", "2", "--epochs", "2",
                       "--kill", "0.1", "--clients", "1", "--batch", "128",
                       "--shards", "2", "--workers", "2",
                       "--executor", "process", "--seed", "1"])
        assert rc == 0
        assert "epochs published" in capsys.readouterr().out
