"""Unit tests for message bit-size accounting."""

import math

import pytest

from repro.core.fractional import ColorMsg, XUpdateMsg
from repro.core.udg import ElectionMsg
from repro.errors import ProtocolViolationError
from repro.simulation.messages import Message, MessageSizeModel, field_bits


class TestFieldBits:
    def test_flag_costs_one_bit(self):
        assert field_bits("flag", 100) == 1

    def test_count_costs_log_n(self):
        assert field_bits("count", 127) == 7
        assert field_bits("count", 128) == 8

    def test_id_costs_four_log_n(self):
        # id space defaults to n^4.
        bits = field_bits("id", 100)
        assert bits == math.ceil(math.log2(100 ** 4))

    def test_id_with_explicit_space(self):
        assert field_bits("id", 100, id_space=2 ** 20) == 20

    def test_value_default_width(self):
        n = 1000
        assert field_bits("value", n) == 4 * math.ceil(math.log2(n + 1))

    def test_value_override(self):
        assert field_bits("value", 1000, value_bits=64) == 64

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown message field kind"):
            field_bits("blob", 10)

    def test_tiny_network_minimum_one_bit(self):
        assert field_bits("count", 1) >= 1


class TestMessageSizeModel:
    def test_rejects_nonpositive_n(self):
        with pytest.raises(ValueError):
            MessageSizeModel(0)

    def test_header_added(self):
        model = MessageSizeModel(100)
        assert model.message_bits(ColorMsg(gray=True)) == model.header_bits + 1

    def test_xupdate_schema(self):
        model = MessageSizeModel(100)
        bits = model.message_bits(XUpdateMsg(x=0.5, x_plus=0.1, dyn=3))
        log_n = math.ceil(math.log2(101))
        # header + 2 values + 1 count
        assert bits == log_n + 2 * 4 * log_n + log_n

    def test_message_size_is_logarithmic(self):
        small = MessageSizeModel(100).message_bits(ElectionMsg(ident=5))
        large = MessageSizeModel(100_000).message_bits(ElectionMsg(ident=5))
        # 1000x more nodes should cost only a constant factor more bits.
        assert large <= 3 * small

    def test_cache_consistency(self):
        model = MessageSizeModel(64)
        a = model.message_bits(ColorMsg(gray=False))
        b = model.message_bits(ColorMsg(gray=True))
        assert a == b


class TestMessageValidation:
    def test_field_kinds_order(self):
        msg = XUpdateMsg(x=0.0, x_plus=0.0, dyn=0.0)
        assert msg.field_kinds() == ("value", "value", "count")

    def test_validate_passes_on_complete_message(self):
        XUpdateMsg(x=1.0, x_plus=0.0, dyn=2.0).validate()

    def test_validate_fails_on_bad_schema(self):
        class Broken(Message):
            SCHEMA = (("missing_field", "flag"),)

        with pytest.raises(ProtocolViolationError, match="missing_field"):
            Broken().validate()
