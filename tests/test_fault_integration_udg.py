"""Fault-injection integration tests for Algorithm 3 in message mode.

The paper's motivation is node failure *of the structure once built*;
these tests crash nodes *during* the construction protocol itself and
check the protocol's behavior stays sane: it terminates, survivors hold
a consistent state, and the damage is localized.
"""

import pytest

from repro.core.udg import UDGNode, theta_schedule
from repro.core.verify import coverage_counts
from repro.graphs.udg import random_udg
from repro.simulation.faults import CrashFaultInjector, MessageLossInjector
from repro.simulation.network import SynchronousNetwork
from repro.simulation.runner import run_protocol


def _run_with_injectors(udg, k, injectors, seed=0):
    n = udg.n
    procs = [UDGNode(v, k, n, "random", n + 1) for v in range(n)]
    net = SynchronousNetwork(udg, procs, seed=seed)
    stats = run_protocol(
        net, injectors=injectors,
        max_rounds=2 * len(theta_schedule(n)) + 3 * (n + 1) + 8)
    return procs, stats


class TestCrashDuringConstruction:
    def test_terminates_with_part1_crashes(self):
        udg = random_udg(100, density=10.0, seed=1)
        injector = CrashFaultInjector({2: [0, 5, 9], 4: [12]})
        procs, stats = _run_with_injectors(udg, 2, [injector])
        crashed = {p.node_id for p in procs if p.crashed}
        assert crashed == {0, 5, 9, 12}
        assert all(p.finished for p in procs if not p.crashed)

    def test_survivors_mostly_covered(self):
        udg = random_udg(150, density=12.0, seed=2)
        victims = list(range(0, 150, 15))
        injector = CrashFaultInjector({3: victims})
        procs, _ = _run_with_injectors(udg, 2, [injector])
        leaders = {p.node_id for p in procs if p.leader and not p.crashed}
        counts = coverage_counts(udg, leaders, convention="open")
        alive_clients = [p.node_id for p in procs
                         if not p.crashed and p.node_id not in leaders]
        uncovered = sum(1 for v in alive_clients if counts[v] == 0)
        # Crashing 10 of 150 nodes mid-protocol may leave a few clients
        # stranded near the crash sites, but the damage is localized.
        assert uncovered <= len(victims) * 3

    def test_crash_during_part2(self):
        udg = random_udg(80, density=10.0, seed=3)
        part1_rounds = 2 * len(theta_schedule(80))
        injector = CrashFaultInjector({part1_rounds + 2: [1, 2, 3]})
        procs, _ = _run_with_injectors(udg, 3, [injector])
        assert all(p.finished for p in procs if not p.crashed)

    def test_mass_crash_terminates(self):
        udg = random_udg(60, density=10.0, seed=4)
        injector = CrashFaultInjector({1: list(range(0, 60, 2))})
        procs, stats = _run_with_injectors(udg, 1, [injector])
        assert sum(1 for p in procs if p.crashed) == 30


class TestCombinedFaults:
    def test_loss_plus_crashes(self):
        udg = random_udg(90, density=10.0, seed=5)
        injectors = [
            CrashFaultInjector({2: [7, 8]}),
            MessageLossInjector(0.05, seed=1),
        ]
        procs, _ = _run_with_injectors(udg, 2, injectors)
        assert all(p.finished for p in procs if not p.crashed)

    def test_faults_do_not_change_node_randomness(self):
        # The same seed with and without loss must draw the same IDs
        # (fault randomness lives on its own stream): compare leader sets
        # under zero-probability loss vs no injector at all.
        udg = random_udg(70, density=10.0, seed=6)
        procs_a, _ = _run_with_injectors(
            udg, 2, [MessageLossInjector(0.0, seed=9)], seed=11)
        procs_b, _ = _run_with_injectors(udg, 2, [], seed=11)
        assert {p.node_id for p in procs_a if p.leader} == \
            {p.node_id for p in procs_b if p.leader}
