"""Unit tests for fault injection (crash-stop and message loss)."""

from dataclasses import dataclass

import networkx as nx
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.udg import UDGProgram
from repro.engine import execute
from repro.errors import SimulationError, UnknownModeError
from repro.graphs.udg import random_udg
from repro.simulation.asynchrony import run_protocol_async
from repro.simulation.beta import run_protocol_beta
from repro.simulation.faults import CrashFaultInjector, MessageLossInjector
from repro.simulation.messages import Message
from repro.simulation.network import SynchronousNetwork
from repro.simulation.node import NodeProcess
from repro.simulation.runner import run_protocol
from repro.simulation.trace import TraceRecorder


@dataclass(frozen=True)
class Beat(Message):
    SCHEMA = ()


class Heartbeat(NodeProcess):
    """Broadcasts for `rounds` rounds; records per-round senders heard."""

    def __init__(self, node_id, rounds=4):
        super().__init__(node_id)
        self.rounds = rounds
        self.heard = []

    def run(self, ctx):
        for _ in range(self.rounds):
            ctx.broadcast(Beat())
            inbox = yield
            self.heard.append(sorted(src for src, _ in inbox))


class TestCrashFaults:
    def test_crashed_node_stops_sending(self, triangle):
        procs = {v: Heartbeat(v) for v in triangle.nodes}
        injector = CrashFaultInjector({2: [0]})  # node 0 dies at round 2
        net = SynchronousNetwork(triangle, procs.values())
        run_protocol(net, injectors=[injector])
        # Rounds 0,1: node 1 hears {0, 2}; afterwards only {2}.
        assert procs[1].heard[0] == [0, 2]
        assert procs[1].heard[1] == [0, 2]
        assert procs[1].heard[2] == [2]

    def test_crashed_node_flagged(self, triangle):
        procs = [Heartbeat(v) for v in triangle.nodes]
        injector = CrashFaultInjector({1: [2]})
        net = SynchronousNetwork(triangle, procs)
        run_protocol(net, injectors=[injector])
        assert procs[2].crashed
        assert not procs[2].finished
        assert procs[0].finished

    def test_crash_at_round_zero(self, triangle):
        procs = {v: Heartbeat(v) for v in triangle.nodes}
        injector = CrashFaultInjector({0: [0]})
        net = SynchronousNetwork(triangle, procs.values())
        run_protocol(net, injectors=[injector])
        assert procs[1].heard[0] == [2]

    def test_crash_traced(self, triangle):
        trace = TraceRecorder()
        procs = [Heartbeat(v) for v in triangle.nodes]
        net = SynchronousNetwork(triangle, procs)
        run_protocol(net, injectors=[CrashFaultInjector({1: [0]})],
                     trace=trace)
        crashes = trace.of_kind("crash")
        assert len(crashes) == 1
        assert crashes[0].node == 0

    def test_all_crash_terminates(self, triangle):
        procs = [Heartbeat(v, rounds=100) for v in triangle.nodes]
        injector = CrashFaultInjector({1: list(triangle.nodes)})
        net = SynchronousNetwork(triangle, procs)
        stats = run_protocol(net, injectors=[injector])
        assert stats.rounds <= 2

    def test_messages_to_crashed_dropped(self, triangle):
        injector = CrashFaultInjector({0: [1]})
        injector.crashes_at(0)
        msgs = [(0, 1, Beat()), (0, 2, Beat()), (1, 2, Beat())]
        kept = injector.filter_messages(0, msgs)
        assert kept == [(0, 2, Beat())]


class TestMessageLoss:
    def test_zero_loss_keeps_all(self):
        inj = MessageLossInjector(0.0, seed=1)
        msgs = [(0, 1, Beat())] * 10
        assert inj.filter_messages(0, msgs) == msgs

    def test_full_loss_drops_all(self):
        inj = MessageLossInjector(1.0, seed=1)
        msgs = [(0, 1, Beat())] * 10
        assert inj.filter_messages(0, msgs) == []
        assert inj.dropped == 10

    def test_partial_loss_statistics(self):
        inj = MessageLossInjector(0.3, seed=123)
        msgs = [(0, 1, Beat())] * 10_000
        kept = inj.filter_messages(0, msgs)
        assert 6300 <= len(kept) <= 7700

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            MessageLossInjector(1.5)
        with pytest.raises(ValueError):
            MessageLossInjector(-0.1)

    def test_loss_is_deterministic_per_seed(self):
        msgs = [(0, 1, Beat())] * 100
        a = MessageLossInjector(0.5, seed=9).filter_messages(0, list(msgs))
        b = MessageLossInjector(0.5, seed=9).filter_messages(0, list(msgs))
        assert len(a) == len(b)

    def test_loss_in_protocol(self):
        g = nx.complete_graph(4)
        procs = {v: Heartbeat(v, rounds=3) for v in g.nodes}
        net = SynchronousNetwork(g, procs.values())
        stats = run_protocol(net, injectors=[MessageLossInjector(1.0, seed=0)])
        assert stats.messages_sent == 0
        assert all(h == [] for p in procs.values() for h in p.heard)


class CoinFlipper(NodeProcess):
    """Draws from its private RNG stream every round and records the
    draws — the canary for injector/protocol RNG isolation."""

    def __init__(self, node_id, rounds=3):
        super().__init__(node_id)
        self.rounds = rounds
        self.draws = []

    def run(self, ctx):
        for _ in range(self.rounds):
            self.draws.append(int(ctx.rng.integers(0, 2**30)))
            ctx.broadcast(Beat())
            yield


def _run_heartbeats(g, *, net_seed, injectors, rounds=4):
    procs = {v: Heartbeat(v, rounds=rounds) for v in g.nodes}
    net = SynchronousNetwork(g, procs.values(), seed=net_seed)
    stats = run_protocol(net, injectors=injectors)
    return procs, stats


class TestLossDeterminism:
    """Same (protocol seed, injector seed) ⇒ bit-identical executions."""

    def test_same_seed_same_drops_and_survivors(self):
        g = nx.complete_graph(6)
        runs = []
        for _ in range(2):
            inj = MessageLossInjector(0.4, seed=17)
            procs, stats = _run_heartbeats(g, net_seed=3, injectors=[inj])
            runs.append((inj.dropped,
                         {v: p.heard for v, p in procs.items()},
                         stats.messages_sent))
        assert runs[0] == runs[1]
        assert runs[0][0] > 0          # some messages actually dropped

    def test_different_injector_seed_different_survivors(self):
        g = nx.complete_graph(6)
        inj_a = MessageLossInjector(0.4, seed=17)
        procs_a, _ = _run_heartbeats(g, net_seed=3, injectors=[inj_a])
        inj_b = MessageLossInjector(0.4, seed=18)
        procs_b, _ = _run_heartbeats(g, net_seed=3, injectors=[inj_b])
        assert ({v: p.heard for v, p in procs_a.items()}
                != {v: p.heard for v, p in procs_b.items()})

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(loss_rate=st.floats(min_value=0.0, max_value=1.0),
           injector_seed=st.integers(min_value=0, max_value=2**16))
    def test_loss_never_perturbs_protocol_rng(self, loss_rate,
                                              injector_seed):
        """The injector's randomness lives on its own stream: whatever it
        drops, every node's private coin flips are unchanged."""
        g = nx.complete_graph(5)

        def draws(injectors):
            procs = {v: CoinFlipper(v) for v in g.nodes}
            net = SynchronousNetwork(g, procs.values(), seed=42)
            run_protocol(net, injectors=injectors)
            return {v: p.draws for v, p in procs.items()}

        baseline = draws([])
        lossy = draws([MessageLossInjector(loss_rate, seed=injector_seed)])
        assert lossy == baseline


class TestAsyncInjectors:
    """Message-dropping injectors on the event-driven backends."""

    def _net(self, g, rounds=3):
        procs = {v: Heartbeat(v, rounds=rounds) for v in g.nodes}
        return procs, SynchronousNetwork(g, procs.values(), seed=0)

    @pytest.mark.parametrize("runner", [run_protocol_async,
                                        run_protocol_beta])
    def test_full_loss_drops_every_payload(self, runner):
        g = nx.complete_graph(4)
        inj = MessageLossInjector(1.0, seed=0)
        procs, net = self._net(g)
        stats = runner(net, delay_seed=1, injectors=[inj])
        # Dropped at delivery ⇒ never buffered, never charged as payload.
        assert stats.payload_messages == 0
        assert inj.dropped == 3 * 12        # 3 rounds x K4's 12 directed
        assert all(h == [] for proc in procs.values() for h in proc.heard)

    @pytest.mark.parametrize("runner", [run_protocol_async,
                                        run_protocol_beta])
    def test_partial_loss_accounting(self, runner):
        g = nx.complete_graph(5)
        inj = MessageLossInjector(0.3, seed=5)
        _, net = self._net(g)
        stats = runner(net, delay_seed=2, injectors=[inj])
        total = 3 * 20                      # 3 rounds x K5's 20 directed
        assert 0 < inj.dropped < total
        assert stats.payload_messages == total - inj.dropped

    @pytest.mark.parametrize("runner", [run_protocol_async,
                                        run_protocol_beta])
    def test_crash_injector_rejected(self, runner):
        g = nx.complete_graph(4)
        _, net = self._net(g)
        with pytest.raises(SimulationError, match="kills nodes"):
            runner(net, injectors=[CrashFaultInjector({1: [0]})])

    def test_no_injectors_unchanged(self):
        """Delivery-time accounting without injectors matches the old
        send-time accounting (every payload is eventually delivered)."""
        g = nx.complete_graph(4)
        _, net = self._net(g)
        stats = run_protocol_async(net, delay_seed=1)
        assert stats.payload_messages == 3 * 12


class TestExecuteInjectors:
    """`execute(..., injectors=)` threading across the backends."""

    def _program(self, n=40, seed=0):
        udg = random_udg(n, density=8.0, seed=seed)
        return udg, UDGProgram(udg, 1, "random", seed)

    def test_direct_rejects_injectors(self):
        _, program = self._program()
        with pytest.raises(UnknownModeError, match="does not support"):
            execute(program, "direct",
                    injectors=[MessageLossInjector(0.1, seed=0)])

    def test_direct_without_injectors_unaffected(self):
        udg, program = self._program()
        result = execute(program, "direct", seed=0)
        assert result.members

    @pytest.mark.parametrize("mode", ["message", "async", "async-beta"])
    def test_loss_threads_through(self, mode):
        _, program = self._program()
        inj = MessageLossInjector(0.2, seed=11)
        result = execute(program, mode, seed=0, injectors=[inj])
        assert inj.dropped > 0
        # The protocol still terminates and emits a nonempty set under
        # loss (coverage may degrade — that is E17's subject).
        assert result.members

    @pytest.mark.parametrize("mode", ["async", "async-beta"])
    def test_crash_rejected_on_async_modes(self, mode):
        _, program = self._program()
        with pytest.raises(SimulationError, match="kills nodes"):
            execute(program, mode, seed=0,
                    injectors=[CrashFaultInjector({1: [0]})])

    def test_crash_supported_on_message_mode(self):
        udg, program = self._program()
        result = execute(program, "message", seed=0,
                         injectors=[CrashFaultInjector({0: [0]})])
        # Node 0 crashed before its first step; the rest completed.
        assert 0 not in result.members
        assert result.members

    def test_lossy_execution_deterministic(self):
        outputs = []
        for _ in range(2):
            _, program = self._program()
            inj = MessageLossInjector(0.2, seed=11)
            result = execute(program, "message", seed=0, injectors=[inj])
            outputs.append((result.members, inj.dropped))
        assert outputs[0] == outputs[1]
        assert outputs[0][1] > 0
