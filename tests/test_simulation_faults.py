"""Unit tests for fault injection (crash-stop and message loss)."""

from dataclasses import dataclass

import networkx as nx
import pytest

from repro.simulation.faults import CrashFaultInjector, MessageLossInjector
from repro.simulation.messages import Message
from repro.simulation.network import SynchronousNetwork
from repro.simulation.node import NodeProcess
from repro.simulation.runner import run_protocol
from repro.simulation.trace import TraceRecorder


@dataclass(frozen=True)
class Beat(Message):
    SCHEMA = ()


class Heartbeat(NodeProcess):
    """Broadcasts for `rounds` rounds; records per-round senders heard."""

    def __init__(self, node_id, rounds=4):
        super().__init__(node_id)
        self.rounds = rounds
        self.heard = []

    def run(self, ctx):
        for _ in range(self.rounds):
            ctx.broadcast(Beat())
            inbox = yield
            self.heard.append(sorted(src for src, _ in inbox))


class TestCrashFaults:
    def test_crashed_node_stops_sending(self, triangle):
        procs = {v: Heartbeat(v) for v in triangle.nodes}
        injector = CrashFaultInjector({2: [0]})  # node 0 dies at round 2
        net = SynchronousNetwork(triangle, procs.values())
        run_protocol(net, injectors=[injector])
        # Rounds 0,1: node 1 hears {0, 2}; afterwards only {2}.
        assert procs[1].heard[0] == [0, 2]
        assert procs[1].heard[1] == [0, 2]
        assert procs[1].heard[2] == [2]

    def test_crashed_node_flagged(self, triangle):
        procs = [Heartbeat(v) for v in triangle.nodes]
        injector = CrashFaultInjector({1: [2]})
        net = SynchronousNetwork(triangle, procs)
        run_protocol(net, injectors=[injector])
        assert procs[2].crashed
        assert not procs[2].finished
        assert procs[0].finished

    def test_crash_at_round_zero(self, triangle):
        procs = {v: Heartbeat(v) for v in triangle.nodes}
        injector = CrashFaultInjector({0: [0]})
        net = SynchronousNetwork(triangle, procs.values())
        run_protocol(net, injectors=[injector])
        assert procs[1].heard[0] == [2]

    def test_crash_traced(self, triangle):
        trace = TraceRecorder()
        procs = [Heartbeat(v) for v in triangle.nodes]
        net = SynchronousNetwork(triangle, procs)
        run_protocol(net, injectors=[CrashFaultInjector({1: [0]})],
                     trace=trace)
        crashes = trace.of_kind("crash")
        assert len(crashes) == 1
        assert crashes[0].node == 0

    def test_all_crash_terminates(self, triangle):
        procs = [Heartbeat(v, rounds=100) for v in triangle.nodes]
        injector = CrashFaultInjector({1: list(triangle.nodes)})
        net = SynchronousNetwork(triangle, procs)
        stats = run_protocol(net, injectors=[injector])
        assert stats.rounds <= 2

    def test_messages_to_crashed_dropped(self, triangle):
        injector = CrashFaultInjector({0: [1]})
        injector.crashes_at(0)
        msgs = [(0, 1, Beat()), (0, 2, Beat()), (1, 2, Beat())]
        kept = injector.filter_messages(0, msgs)
        assert kept == [(0, 2, Beat())]


class TestMessageLoss:
    def test_zero_loss_keeps_all(self):
        inj = MessageLossInjector(0.0, seed=1)
        msgs = [(0, 1, Beat())] * 10
        assert inj.filter_messages(0, msgs) == msgs

    def test_full_loss_drops_all(self):
        inj = MessageLossInjector(1.0, seed=1)
        msgs = [(0, 1, Beat())] * 10
        assert inj.filter_messages(0, msgs) == []
        assert inj.dropped == 10

    def test_partial_loss_statistics(self):
        inj = MessageLossInjector(0.3, seed=123)
        msgs = [(0, 1, Beat())] * 10_000
        kept = inj.filter_messages(0, msgs)
        assert 6300 <= len(kept) <= 7700

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            MessageLossInjector(1.5)
        with pytest.raises(ValueError):
            MessageLossInjector(-0.1)

    def test_loss_is_deterministic_per_seed(self):
        msgs = [(0, 1, Beat())] * 100
        a = MessageLossInjector(0.5, seed=9).filter_messages(0, list(msgs))
        b = MessageLossInjector(0.5, seed=9).filter_messages(0, list(msgs))
        assert len(a) == len(b)

    def test_loss_in_protocol(self):
        g = nx.complete_graph(4)
        procs = {v: Heartbeat(v, rounds=3) for v in g.nodes}
        net = SynchronousNetwork(g, procs.values())
        stats = run_protocol(net, injectors=[MessageLossInjector(1.0, seed=0)])
        assert stats.messages_sent == 0
        assert all(h == [] for p in procs.values() for h in p.heard)
