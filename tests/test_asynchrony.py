"""Unit tests for the asynchronous execution layer (alpha synchronizer)."""

from dataclasses import dataclass

import networkx as nx
import pytest

from repro.core.fractional import FractionalNode, fractional_kmds
from repro.core.rounding import RoundingNode, randomized_rounding
from repro.core.udg import UDGNode, solve_kmds_udg
from repro.errors import SimulationError
from repro.graphs.generators import gnp_graph
from repro.graphs.properties import feasible_coverage, max_degree
from repro.graphs.udg import random_udg
from repro.simulation.asynchrony import (
    AlphaSynchronizer,
    exponential_delays,
    run_protocol_async,
    uniform_delays,
)
from repro.simulation.messages import Message
from repro.simulation.network import SynchronousNetwork
from repro.simulation.node import NodeProcess


@dataclass(frozen=True)
class Token(Message):
    value: int = 0
    SCHEMA = (("value", "count"),)


class Accumulator(NodeProcess):
    """Sums neighbor tokens over `rounds` rounds — order-sensitive state
    that would corrupt if the synchronizer mixed rounds."""

    def __init__(self, node_id, rounds):
        super().__init__(node_id)
        self.rounds = rounds
        self.history = []

    def run(self, ctx):
        value = self.node_id
        for _ in range(self.rounds):
            ctx.broadcast(Token(value=value))
            inbox = yield
            value = value + sum(m.value for _, m in inbox)
            self.history.append(value)


class EarlyExit(NodeProcess):
    """Nodes with odd ids leave after one round; evens run three."""

    def run(self, ctx):
        ctx.broadcast(Token(value=1))
        inbox = yield
        self.round1 = len(inbox)
        if self.node_id % 2 == 1:
            return
        for _ in range(2):
            ctx.broadcast(Token(value=2))
            inbox = yield
        self.final = len(inbox)


def _sync_reference(graph, make_procs):
    from repro.simulation.runner import run_protocol

    procs = make_procs()
    net = SynchronousNetwork(graph, procs, seed=0)
    run_protocol(net)
    return procs


class TestEquivalence:
    def test_accumulator_matches_sync(self):
        g = gnp_graph(15, 0.3, seed=2)
        make = lambda: [Accumulator(v, 4) for v in g.nodes]
        sync_procs = _sync_reference(g, make)
        async_procs = make()
        net = SynchronousNetwork(g, async_procs, seed=0)
        run_protocol_async(net, delay_seed=5)
        for s, a in zip(sync_procs, async_procs):
            assert s.history == a.history, s.node_id

    def test_early_exit_nodes_do_not_deadlock(self):
        g = nx.cycle_graph(8)
        procs = [EarlyExit(v) for v in g.nodes]
        net = SynchronousNetwork(g, procs, seed=0)
        stats = run_protocol_async(net, delay_seed=1)
        assert all(p.finished for p in procs)
        assert stats.rounds >= 3

    @pytest.mark.parametrize("delay_seed", [0, 1, 2])
    def test_algorithm1_identical_under_any_delays(self, delay_seed):
        g = gnp_graph(20, 0.25, seed=4)
        cov = feasible_coverage(g, 2)
        delta = max_degree(g)
        procs = [FractionalNode(v, cov[v], delta, 2, True) for v in g.nodes]
        net = SynchronousNetwork(g, procs, seed=3)
        run_protocol_async(net, delay_seed=delay_seed)
        ref = fractional_kmds(g, coverage=cov, t=2, mode="message", seed=3)
        for p in procs:
            assert p.x == pytest.approx(ref.x[p.node_id], abs=1e-12)
            assert p.z == pytest.approx(ref.z[p.node_id], abs=1e-12)

    def test_algorithm2_identical(self):
        g = gnp_graph(20, 0.25, seed=5)
        cov = feasible_coverage(g, 2)
        frac = fractional_kmds(g, coverage=cov, t=2, compute_duals=False)
        delta = max_degree(g)
        procs = [RoundingNode(v, cov[v], delta, frac.x, "random")
                 for v in g.nodes]
        net = SynchronousNetwork(g, procs, seed=7)
        run_protocol_async(net, delay_seed=2)
        members_async = {p.node_id for p in procs if p.member}
        ref = randomized_rounding(g, frac.x, coverage=cov, mode="message",
                                  seed=7)
        assert members_async == ref.members

    def test_algorithm3_identical(self):
        udg = random_udg(60, density=9.0, seed=8)
        procs = [UDGNode(v, 2, 60, "random", 61) for v in range(60)]
        net = SynchronousNetwork(udg, procs, seed=4)
        run_protocol_async(net, delay_seed=9)
        members = {p.node_id for p in procs if p.leader}
        ref = solve_kmds_udg(udg, k=2, mode="message", seed=4)
        assert members == ref.members


class TestAccounting:
    def _run(self, **kw):
        g = gnp_graph(12, 0.4, seed=1)
        procs = [Accumulator(v, 3) for v in g.nodes]
        net = SynchronousNetwork(g, procs, seed=0)
        return run_protocol_async(net, **kw)

    def test_payload_count_matches_sync_schedule(self):
        g = gnp_graph(12, 0.4, seed=1)
        m2 = 2 * g.number_of_edges()
        stats = self._run(delay_seed=0)
        assert stats.payload_messages == 3 * m2

    def test_control_overhead_positive(self):
        stats = self._run(delay_seed=0)
        # One ack per payload plus safety broadcasts.
        assert stats.control_messages >= stats.payload_messages

    def test_virtual_time_scales_with_delay(self):
        fast = self._run(delay=uniform_delays(0.1, 0.2), delay_seed=3)
        slow = self._run(delay=uniform_delays(10.0, 20.0), delay_seed=3)
        assert slow.virtual_time > 20 * fast.virtual_time

    def test_rounds_tracked(self):
        stats = self._run(delay_seed=0)
        assert stats.rounds >= 3
        assert stats.total_messages == \
            stats.payload_messages + stats.control_messages


class TestValidation:
    def test_bad_delay_distributions(self):
        with pytest.raises(SimulationError):
            exponential_delays(0.0)
        with pytest.raises(SimulationError):
            uniform_delays(2.0, 1.0)
        with pytest.raises(SimulationError):
            uniform_delays(-1.0, 1.0)

    def test_max_rounds_guard(self):
        class Forever(NodeProcess):
            def run(self, ctx):
                while True:
                    ctx.broadcast(Token(value=0))
                    yield

        g = nx.path_graph(3)
        procs = [Forever(v) for v in g.nodes]
        net = SynchronousNetwork(g, procs, seed=0)
        with pytest.raises(SimulationError, match="exceeded"):
            run_protocol_async(net, delay_seed=0, max_rounds=5)

    def test_non_generator_rejected(self):
        class Bad(NodeProcess):
            def run(self, ctx):
                return 42

        g = nx.path_graph(2)
        net = SynchronousNetwork(g, [Bad(0), Bad(1)], seed=0)
        with pytest.raises(SimulationError, match="generator"):
            run_protocol_async(net)
