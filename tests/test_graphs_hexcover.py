"""Unit tests for the hexagonal-covering geometry (Figure 1 / Lemma 5.3)."""

import math

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.graphs.hexcover import (
    ETA,
    alpha_bound,
    covering_disk_count,
    disks_touching,
    hex_cover_centers,
    hex_lattice_points,
    leaders_per_disk,
    verify_cover,
)


class TestLattice:
    def test_contains_origin(self):
        pts = hex_lattice_points(1.0, 3.0)
        assert any(np.allclose(p, (0, 0)) for p in pts)

    def test_nearest_neighbor_spacing(self):
        pts = hex_lattice_points(1.0, 5.0)
        origin = np.array([0.0, 0.0])
        dists = sorted(np.hypot(*(p - origin)) for p in pts if not np.allclose(p, origin))
        assert dists[0] == pytest.approx(1.0)
        # exactly 6 nearest neighbors in a hex lattice
        assert sum(1 for d in dists if abs(d - 1.0) < 1e-9) == 6

    def test_radius_filter(self):
        pts = hex_lattice_points(1.0, 2.0)
        assert all(np.hypot(*p) <= 2.0 + 1e-9 for p in pts)

    def test_invalid_args(self):
        with pytest.raises(GeometryError):
            hex_lattice_points(0.0, 1.0)
        with pytest.raises(GeometryError):
            hex_lattice_points(1.0, -1.0)


class TestCovering:
    @pytest.mark.parametrize("disk_radius", [0.05, 0.1, 0.02])
    def test_cover_is_complete(self, disk_radius):
        centers = hex_cover_centers(0.5, disk_radius)
        assert verify_cover(0.5, disk_radius, centers)

    def test_lemma_53_bound_small_theta(self):
        for theta in (0.2, 0.1, 0.05, 0.02):
            count = covering_disk_count(0.5, theta / 2)
            assert count < alpha_bound(theta)

    def test_count_scales_inverse_square(self):
        c1 = covering_disk_count(0.5, 0.05)
        c2 = covering_disk_count(0.5, 0.025)
        assert 3.0 <= c2 / c1 <= 5.0

    def test_eta_constant(self):
        assert ETA == pytest.approx(16 * math.pi / (3 * math.sqrt(3)))

    def test_alpha_bound_invalid(self):
        with pytest.raises(GeometryError):
            alpha_bound(0.0)

    def test_invalid_radii(self):
        with pytest.raises(GeometryError):
            hex_cover_centers(0.5, 0.0)
        with pytest.raises(GeometryError):
            hex_cover_centers(-0.5, 0.1)


class TestFigure1:
    @pytest.mark.parametrize("theta", [1.0, 0.5, 0.1, 0.037])
    def test_nineteen_disks(self, theta):
        assert disks_touching(theta) == 19

    def test_invalid_theta(self):
        with pytest.raises(GeometryError):
            disks_touching(-1.0)


class TestLeadersPerDisk:
    def test_empty_points(self):
        out = leaders_per_disk([], [], disk_radius=0.5)
        assert out == {"max": 0, "mean": 0.0, "disks": 0}

    def test_single_cluster(self):
        pts = [(0.0, 0.0), (0.1, 0.0), (0.0, 0.1)]
        out = leaders_per_disk(pts, [0, 1, 2], disk_radius=0.5, grid_step=0.25)
        assert out["max"] == 3

    def test_no_leaders(self):
        pts = [(0.0, 0.0), (5.0, 5.0)]
        out = leaders_per_disk(pts, [], disk_radius=0.5)
        assert out["max"] == 0
        assert out["disks"] > 0

    def test_spread_leaders(self):
        # Leaders 10 apart can never share a radius-1/2 disk.
        pts = [(0.0, 0.0), (10.0, 0.0), (20.0, 0.0)]
        out = leaders_per_disk(pts, [0, 1, 2], disk_radius=0.5)
        assert out["max"] == 1

    def test_invalid_inputs(self):
        with pytest.raises(GeometryError):
            leaders_per_disk([(0, 0, 0)], [])
        with pytest.raises(GeometryError):
            leaders_per_disk([(0, 0)], [], grid_step=0.0)
