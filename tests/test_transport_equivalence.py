"""Columnar transport vs the legacy per-edge data plane.

The broadcast-native columnar transport (``repro.simulation.transport``)
is *defined* by equivalence to the original per-edge outbox, which is
kept behind ``execute(..., legacy_transport=True)`` as the reference
implementation.  These tests pin that equivalence across every
message-passing backend and every engine-ported algorithm:

- **solutions** are compared exactly (``==`` on the x/y/z dicts and
  member sets — bit-identical floats, not approximately equal);
- **RunStats** (rounds, messages, bits, max message size) are compared
  exactly on the synchronous backend, including under crash and loss
  injectors (whose RNG-stream consumption is pinned to the legacy
  per-edge order);
- the asynchronous backends compare solutions and payload accounting
  (control-message counts legitimately differ: the columnar transport
  bundles per-(sender, round, destination), the legacy one acks every
  payload individually).
"""

from __future__ import annotations

import networkx as nx
import pytest

from repro.baselines.jrs import JRSProgram
from repro.core.fractional import FractionalProgram, _resolve_instance
from repro.core.rounding import RoundingProgram
from repro.core.udg import UDGProgram
from repro.engine import execute
from repro.engine.artifacts import graph_artifacts
from repro.graphs.properties import feasible_coverage
from repro.graphs.udg import random_udg
from repro.simulation.faults import CrashFaultInjector, MessageLossInjector

SYNC_STATS = ("rounds", "messages_sent", "bits_sent", "max_message_bits")


def _graph(seed: int) -> nx.Graph:
    return nx.gnp_random_graph(24, 0.25, seed=seed)


def _run_pair(program, mode, *, seed, injector_factory=None):
    """Run ``program`` twice — columnar and legacy — with independent
    injector instances (injectors hold RNG state)."""
    def _injectors():
        return [injector_factory()] if injector_factory is not None else []
    columnar = execute(program, mode, seed=seed, injectors=_injectors())
    legacy = execute(program, mode, seed=seed, injectors=_injectors(),
                     legacy_transport=True)
    return columnar, legacy


def _assert_stats_equal(columnar, legacy, fields=SYNC_STATS):
    for field in fields:
        assert getattr(columnar.stats, field) == getattr(legacy.stats, field), field


# ----------------------------------------------------------------------
# Algorithm 1 — exact x/y and exact accounting
# ----------------------------------------------------------------------

@pytest.mark.parametrize("seed", (0, 7))
def test_fractional_message_mode_bit_identical(seed):
    g = _graph(seed)
    lp = _resolve_instance(g, None, feasible_coverage(g, 2))
    program = FractionalProgram(lp, t=2, compute_duals=True)
    columnar, legacy = _run_pair(program, "message", seed=seed)
    assert columnar.x == legacy.x
    assert columnar.y == legacy.y
    assert columnar.z == legacy.z
    assert columnar.alpha == legacy.alpha
    assert columnar.beta == legacy.beta
    _assert_stats_equal(columnar, legacy)


@pytest.mark.parametrize("mode", ("async", "async-beta"))
def test_fractional_async_modes_solution_identical(mode):
    g = _graph(3)
    lp = _resolve_instance(g, None, feasible_coverage(g, 1))
    program = FractionalProgram(lp, t=2, compute_duals=False)
    columnar, legacy = _run_pair(program, mode, seed=3)
    assert columnar.x == legacy.x
    # Payload accounting matches; control overhead differs by design
    # (per-bundle vs per-payload acks), with bundling never worse.
    _assert_stats_equal(columnar, legacy)
    assert columnar.stats.control_messages <= legacy.stats.control_messages


def test_fractional_under_loss_stats_and_drops_identical():
    g = _graph(5)
    lp = _resolve_instance(g, None, feasible_coverage(g, 2))
    program = FractionalProgram(lp, t=2, compute_duals=False)
    col_inj = MessageLossInjector(0.3, seed=42)
    leg_inj = MessageLossInjector(0.3, seed=42)
    columnar = execute(program, "message", seed=5, injectors=[col_inj])
    legacy = execute(program, "message", seed=5, injectors=[leg_inj],
                     legacy_transport=True)
    # The vectorized per-round Bernoulli draw consumes the injector RNG
    # in the legacy per-edge order, so the *same* messages drop.
    assert col_inj.dropped == leg_inj.dropped
    assert columnar.x == legacy.x
    _assert_stats_equal(columnar, legacy)


def test_fractional_under_crashes_stats_identical():
    g = _graph(6)
    lp = _resolve_instance(g, None, feasible_coverage(g, 1))
    program = FractionalProgram(lp, t=2, compute_duals=False)
    victims = sorted(g.nodes)[:3]
    columnar, legacy = _run_pair(
        program, "message", seed=6,
        injector_factory=lambda: CrashFaultInjector({2: victims[:2],
                                                     5: victims[2:]}))
    assert columnar.x == legacy.x
    _assert_stats_equal(columnar, legacy)


def test_fractional_under_total_loss_stats_identical():
    g = _graph(2)
    lp = _resolve_instance(g, None, feasible_coverage(g, 1))
    program = FractionalProgram(lp, t=2, compute_duals=False)
    columnar, legacy = _run_pair(
        program, "message", seed=2,
        injector_factory=lambda: MessageLossInjector(1.0, seed=9))
    assert columnar.x == legacy.x
    _assert_stats_equal(columnar, legacy)


# ----------------------------------------------------------------------
# Algorithm 2 — randomized rounding (seeded coin flips)
# ----------------------------------------------------------------------

@pytest.mark.parametrize("mode", ("message", "async"))
@pytest.mark.parametrize("policy", ("random", "highest-x"))
def test_rounding_members_identical(mode, policy):
    g = _graph(1)
    lp = _resolve_instance(g, None, feasible_coverage(g, 1))
    frac = execute(FractionalProgram(lp, t=2, compute_duals=False), "direct")
    program = RoundingProgram(lp, frac.x, policy, 1)
    columnar, legacy = _run_pair(program, mode, seed=1)
    assert columnar.members == legacy.members
    _assert_stats_equal(columnar, legacy)


# ----------------------------------------------------------------------
# Algorithm 3 — UDG clustering (geometric multicast via send_within)
# ----------------------------------------------------------------------

@pytest.mark.parametrize("mode", ("message", "async"))
def test_udg_members_identical(mode):
    udg = random_udg(30, density=8.0, seed=4)
    program = UDGProgram(udg, 2, "by-id", 4)
    columnar, legacy = _run_pair(program, mode, seed=4)
    assert columnar.members == legacy.members
    _assert_stats_equal(columnar, legacy)


# ----------------------------------------------------------------------
# JRS/LRG baseline
# ----------------------------------------------------------------------

@pytest.mark.parametrize("convention", ("closed", "open"))
def test_jrs_members_identical(convention):
    g = _graph(8)
    req = {v: 1 for v in g.nodes}
    program = JRSProgram(graph_artifacts(g), req, convention, 8, 10_000)
    columnar, legacy = _run_pair(program, "message", seed=8)
    assert columnar.members == legacy.members
    assert columnar.details["phases"] == legacy.details["phases"]
    _assert_stats_equal(columnar, legacy)


# ----------------------------------------------------------------------
# Transport-level invariants
# ----------------------------------------------------------------------

def test_legacy_flag_rejected_nowhere_and_ignored_by_direct():
    g = _graph(0)
    lp = _resolve_instance(g, None, feasible_coverage(g, 1))
    program = FractionalProgram(lp, t=1, compute_duals=False)
    ref = execute(program, "direct")
    alt = execute(program, "direct", legacy_transport=True)
    assert ref.x == alt.x


def test_third_party_injector_fallback_matches_columnar():
    """An injector that only overrides the legacy ``filter_messages``
    must behave identically on the columnar path (expand -> filter ->
    re-wrap fallback)."""
    from repro.simulation.faults import FaultInjector

    class DropEveryThird(FaultInjector):
        def __init__(self):
            self.seen = 0

        def filter_messages(self, round_index, messages):
            kept = []
            for m in messages:
                self.seen += 1
                if self.seen % 3:
                    kept.append(m)
            return kept

    g = _graph(9)
    lp = _resolve_instance(g, None, feasible_coverage(g, 1))
    program = FractionalProgram(lp, t=2, compute_duals=False)
    columnar, legacy = _run_pair(program, "message", seed=9,
                                 injector_factory=DropEveryThird)
    assert columnar.x == legacy.x
    _assert_stats_equal(columnar, legacy)


# ----------------------------------------------------------------------
# Protocol stepping plane: eligibility + fallback matrix
# ----------------------------------------------------------------------
#
# The columnar *protocol* plane (repro.simulation.columnar /
# .steppers) batches whole rounds for stock protocols; anything it
# cannot replay bit-exactly must fall back to the per-node generator
# loop, and deciding that must not consume injector state.  The
# bit-identity matrix itself lives in tests/test_protocol_steppers.py.

def _network_for(program, seed):
    from repro.simulation.network import SynchronousNetwork

    return SynchronousNetwork(program.network_graph, program.processes(),
                              seed=seed, **program.network_kwargs)


def _fractional_network(seed=9):
    g = _graph(seed)
    lp = _resolve_instance(g, None, feasible_coverage(g, 1))
    return _network_for(FractionalProgram(lp, t=2, compute_duals=False),
                        seed)


def test_stepper_resolves_for_stock_run():
    from repro.simulation.columnar import resolve_stepper
    from repro.simulation.steppers import FractionalStepper

    net = _fractional_network()
    stepper = resolve_stepper(net, [MessageLossInjector(0.2, seed=1),
                                    CrashFaultInjector({1: [0]})])
    assert isinstance(stepper, FractionalStepper)


def test_stepper_declines_third_party_injector_without_side_effects():
    from repro.simulation.columnar import resolve_stepper
    from repro.simulation.faults import FaultInjector

    class Bespoke(FaultInjector):
        def filter_messages(self, round_index, messages):
            return messages

    loss = MessageLossInjector(0.2, seed=1)
    state_before = repr(loss.rng.bit_generator.state)
    assert resolve_stepper(_fractional_network(), [loss, Bespoke()]) is None
    assert repr(loss.rng.bit_generator.state) == state_before


def test_stepper_declines_subclassed_builtin_injector():
    from repro.simulation.columnar import resolve_stepper

    class LossWithLogging(MessageLossInjector):
        pass

    assert resolve_stepper(_fractional_network(),
                           [LossWithLogging(0.2, seed=1)]) is None


def test_stepper_declines_exotic_protocol_subclass():
    from repro.core.fractional import FractionalNode
    from repro.simulation.columnar import resolve_stepper

    class TweakedNode(FractionalNode):
        pass

    net = _fractional_network()
    for proc in net.processes.values():
        proc.__class__ = TweakedNode
    assert resolve_stepper(net, []) is None


def test_stepper_declines_heterogeneous_lane_parameters():
    from repro.simulation.columnar import resolve_stepper

    net = _fractional_network()
    next(iter(net.processes.values())).t += 1
    assert resolve_stepper(net, []) is None


def test_stepper_declines_strict_bit_budget():
    from repro.simulation.columnar import resolve_stepper

    net = _fractional_network()
    net.strict_message_bits = 10 ** 6
    assert resolve_stepper(net, []) is None


def test_jrs_stepper_declines_any_injector():
    from repro.baselines.jrs import JRSProgram
    from repro.simulation.columnar import resolve_stepper
    from repro.simulation.steppers import JRSStepper

    g = _graph(8)
    program = JRSProgram(graph_artifacts(g), {v: 1 for v in g.nodes},
                         "closed", 8, 10_000)
    assert isinstance(resolve_stepper(_network_for(program, 8), []),
                      JRSStepper)
    assert resolve_stepper(_network_for(program, 8),
                           [MessageLossInjector(0.1, seed=2)]) is None


def test_reference_protocols_flag_matches_default():
    g = _graph(4)
    lp = _resolve_instance(g, None, feasible_coverage(g, 1))
    program = FractionalProgram(lp, t=2, compute_duals=True)
    batched = execute(program, "message", seed=4)
    oracle = execute(program, "message", seed=4, reference_protocols=True)
    assert batched.x == oracle.x
    assert batched.z == oracle.z
    _assert_stats_equal(batched, oracle)
