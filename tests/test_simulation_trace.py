"""Unit tests for the trace recorder."""

from repro.simulation.trace import TraceEvent, TraceRecorder, null_recorder


class TestTraceRecorder:
    def test_records_events(self):
        t = TraceRecorder()
        t.record(0, "round", messages=5)
        t.record(1, "crash", node=3)
        assert len(t) == 2

    def test_kind_filter(self):
        t = TraceRecorder(kinds={"round"})
        t.record(0, "round")
        t.record(0, "crash", node=1)
        assert len(t) == 1
        assert t.events[0].kind == "round"

    def test_of_kind(self):
        t = TraceRecorder()
        t.record(0, "a")
        t.record(1, "b")
        t.record(2, "a")
        assert [e.round_index for e in t.of_kind("a")] == [0, 2]

    def test_series_extraction(self):
        t = TraceRecorder()
        for i, val in enumerate([10, 7, 3]):
            t.record(i, "active", count=val)
        assert t.series("active", "count") == [10, 7, 3]

    def test_null_recorder_keeps_nothing(self):
        t = null_recorder()
        t.record(0, "round")
        assert len(t) == 0

    def test_event_data_immutable_identity(self):
        e = TraceEvent(0, "x", node=1, data={"a": 2})
        assert e.round_index == 0
        assert e.data["a"] == 2
