"""Unit tests for the centralized greedy baseline."""

import math

import networkx as nx
import pytest

from repro.baselines.greedy import greedy_kmds
from repro.core.verify import is_k_dominating_set
from repro.errors import GraphError, InfeasibleInstanceError
from repro.graphs.generators import gnp_graph, grid_graph, star_graph
from repro.graphs.properties import feasible_coverage


class TestCorrectness:
    @pytest.mark.parametrize("convention", ["open", "closed"])
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_output_valid(self, small_gnp, k, convention):
        cov = feasible_coverage(small_gnp, k)
        ds = greedy_kmds(small_gnp, cov, convention=convention)
        assert is_k_dominating_set(small_gnp, ds.members, cov,
                                   convention=convention)

    def test_star_picks_hub(self, star10):
        ds = greedy_kmds(star10, 1)
        hub = max(star10.nodes, key=lambda v: star10.degree[v])
        assert hub in ds.members
        assert len(ds) <= 2

    def test_grid_quality(self):
        # Greedy on a 6x6 grid should be close to the known optimum 10.
        g = grid_graph(6, 6)
        ds = greedy_kmds(g, 1)
        assert len(ds) <= 14

    def test_clique_k1(self, triangle):
        ds = greedy_kmds(triangle, 1)
        assert len(ds) == 1

    def test_clique_k2_open(self, triangle):
        ds = greedy_kmds(triangle, 2, convention="open")
        assert is_k_dominating_set(triangle, ds.members, 2)
        assert len(ds) == 2

    def test_k0_empty(self, small_gnp):
        ds = greedy_kmds(small_gnp, 0)
        assert ds.members == set()

    def test_empty_graph(self):
        ds = greedy_kmds(nx.Graph(), 1)
        assert ds.members == set()

    def test_isolated_nodes_open(self):
        g = nx.empty_graph(3)
        ds = greedy_kmds(g, 1, convention="open")
        # isolated nodes must self-select (exempt once in the set)
        assert ds.members == {0, 1, 2}


class TestApproximationQuality:
    def test_ln_delta_guarantee(self, tiny_gnp):
        from repro.baselines.exact import exact_kmds

        delta = max(d for _, d in tiny_gnp.degree)
        for k in (1, 2):
            cov = feasible_coverage(tiny_gnp, k)
            greedy = greedy_kmds(tiny_gnp, cov, convention="closed")
            opt = exact_kmds(tiny_gnp, cov, convention="closed")
            h_bound = math.log(delta + 1) + 1
            assert len(greedy) <= h_bound * len(opt) + 1e-9


class TestValidation:
    def test_unknown_convention(self, triangle):
        with pytest.raises(GraphError, match="convention"):
            greedy_kmds(triangle, 1, convention="sideways")

    def test_negative_k(self, triangle):
        with pytest.raises(GraphError):
            greedy_kmds(triangle, -1)

    def test_closed_infeasible_raises(self, path4):
        with pytest.raises(InfeasibleInstanceError):
            greedy_kmds(path4, 3, convention="closed")

    def test_open_never_infeasible(self, path4):
        # k larger than any degree: every node joins and is exempt.
        ds = greedy_kmds(path4, 5, convention="open")
        assert is_k_dominating_set(path4, ds.members, 5)

    def test_per_node_requirements(self, path4):
        ds = greedy_kmds(path4, {0: 1, 1: 2, 2: 0, 3: 1}, convention="closed")
        assert is_k_dominating_set(path4, ds.members,
                                   {0: 1, 1: 2, 2: 0, 3: 1},
                                   convention="closed")
