"""Unit tests for Algorithm 2 (distributed randomized rounding)."""

import math

import networkx as nx
import pytest

from repro.core.fractional import fractional_kmds
from repro.core.rounding import (
    REQUEST_POLICIES,
    randomized_rounding,
    rounding_probability,
)
from repro.core.verify import is_k_dominating_set
from repro.errors import GraphError, InfeasibleInstanceError
from repro.graphs.generators import gnp_graph
from repro.graphs.properties import feasible_coverage


def _frac(graph, cov):
    return fractional_kmds(graph, coverage=cov, t=3, compute_duals=False)


class TestRoundingProbability:
    def test_formula(self):
        assert rounding_probability(0.2, 9) == pytest.approx(0.2 * math.log(10))

    def test_capped_at_one(self):
        assert rounding_probability(0.9, 100) == 1.0

    def test_zero_x(self):
        assert rounding_probability(0.0, 50) == 0.0

    def test_delta_zero(self):
        assert rounding_probability(0.7, 0) == pytest.approx(0.7)


class TestFeasibility:
    @pytest.mark.parametrize("k", [1, 2, 3])
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_always_feasible(self, small_gnp, k, seed):
        cov = feasible_coverage(small_gnp, k)
        frac = _frac(small_gnp, cov)
        ds = randomized_rounding(small_gnp, frac.x, coverage=cov, seed=seed)
        assert is_k_dominating_set(small_gnp, ds.members, cov,
                                   convention="closed")

    @pytest.mark.parametrize("policy", REQUEST_POLICIES)
    def test_all_policies_feasible(self, small_gnp, policy):
        cov = feasible_coverage(small_gnp, 2)
        frac = _frac(small_gnp, cov)
        for seed in range(4):
            ds = randomized_rounding(small_gnp, frac.x, coverage=cov,
                                     policy=policy, seed=seed)
            assert is_k_dominating_set(small_gnp, ds.members, cov,
                                       convention="closed")

    def test_zero_fractional_still_patches(self, path4):
        # Even an all-zero "fractional solution" must end feasible thanks
        # to the REQ patching step.
        x = {v: 0.0 for v in path4.nodes}
        ds = randomized_rounding(path4, x, k=1, seed=0)
        assert is_k_dominating_set(path4, ds.members, 1, convention="closed")

    def test_isolated_nodes_join(self):
        g = nx.empty_graph(4)
        x = {v: 0.0 for v in g.nodes}
        ds = randomized_rounding(g, x, k=1, seed=0)
        assert ds.members == set(g.nodes)


class TestDeterminismAndModes:
    def test_same_seed_same_result(self, small_gnp):
        cov = feasible_coverage(small_gnp, 2)
        frac = _frac(small_gnp, cov)
        a = randomized_rounding(small_gnp, frac.x, coverage=cov, seed=5)
        b = randomized_rounding(small_gnp, frac.x, coverage=cov, seed=5)
        assert a.members == b.members

    def test_different_seeds_vary(self, small_gnp):
        cov = feasible_coverage(small_gnp, 1)
        frac = _frac(small_gnp, cov)
        sets = {frozenset(randomized_rounding(small_gnp, frac.x,
                                              coverage=cov, seed=s).members)
                for s in range(8)}
        assert len(sets) > 1

    @pytest.mark.parametrize("policy", REQUEST_POLICIES)
    def test_message_equals_direct(self, policy):
        g = gnp_graph(25, 0.2, seed=4)
        cov = feasible_coverage(g, 2)
        frac = _frac(g, cov)
        for seed in range(3):
            d = randomized_rounding(g, frac.x, coverage=cov, policy=policy,
                                    mode="direct", seed=seed)
            m = randomized_rounding(g, frac.x, coverage=cov, policy=policy,
                                    mode="message", seed=seed)
            assert d.members == m.members, (policy, seed)

    def test_message_constant_rounds(self, small_gnp):
        cov = feasible_coverage(small_gnp, 1)
        frac = _frac(small_gnp, cov)
        ds = randomized_rounding(small_gnp, frac.x, coverage=cov,
                                 mode="message", seed=0)
        assert ds.stats.rounds <= 2


class TestValidation:
    def test_unknown_policy(self, triangle):
        with pytest.raises(GraphError, match="policy"):
            randomized_rounding(triangle, {v: 0.5 for v in triangle.nodes},
                                k=1, policy="psychic")

    def test_unknown_mode(self, triangle):
        with pytest.raises(GraphError, match="unknown mode"):
            randomized_rounding(triangle, {v: 0.5 for v in triangle.nodes},
                                k=1, mode="carrier-pigeon")

    def test_missing_x_entries(self, triangle):
        with pytest.raises(GraphError, match="missing"):
            randomized_rounding(triangle, {0: 0.5}, k=1)

    def test_infeasible_instance(self, path4):
        x = {v: 1.0 for v in path4.nodes}
        with pytest.raises(InfeasibleInstanceError):
            randomized_rounding(path4, x, k=3)

    def test_empty_graph(self):
        ds = randomized_rounding(nx.Graph(), {}, k=1)
        assert ds.members == set()

    def test_details_recorded(self, small_gnp):
        cov = feasible_coverage(small_gnp, 1)
        frac = _frac(small_gnp, cov)
        ds = randomized_rounding(small_gnp, frac.x, coverage=cov, seed=1)
        assert "sampled" in ds.details
        assert "requested" in ds.details
        assert ds.details["policy"] == "random"


class TestStatisticalBehavior:
    @pytest.mark.slow
    def test_expected_blowup_theorem_46(self):
        # Mean integral size over many seeds stays within
        # ln(Delta+1) * frac + O(OPT-ish additive).
        g = gnp_graph(80, 0.12, seed=9)
        cov = feasible_coverage(g, 2)
        frac = _frac(g, cov)
        delta = max(d for _, d in g.degree)
        sizes = [len(randomized_rounding(g, frac.x, coverage=cov, seed=s))
                 for s in range(40)]
        mean = sum(sizes) / len(sizes)
        assert mean <= math.log(delta + 1) * frac.objective \
            + 2 * g.number_of_nodes() / (delta + 1) + 5


class TestAccountingEquivalence:
    @pytest.mark.parametrize("policy", REQUEST_POLICIES)
    @pytest.mark.parametrize("seed", [0, 3])
    def test_direct_analytic_stats_match_message(self, policy, seed):
        g = gnp_graph(30, 0.15, seed=2)
        cov = feasible_coverage(g, 2)
        frac = _frac(g, cov)
        d = randomized_rounding(g, frac.x, coverage=cov, policy=policy,
                                mode="direct", seed=seed)
        m = randomized_rounding(g, frac.x, coverage=cov, policy=policy,
                                mode="message", seed=seed)
        assert d.members == m.members
        assert d.stats.messages_sent == m.stats.messages_sent
        assert d.stats.bits_sent == m.stats.bits_sent


class TestWeightedFractionalStats:
    def test_weighted_direct_stats_match_message(self):
        import numpy as np

        g = gnp_graph(25, 0.2, seed=4)
        cov = feasible_coverage(g, 2)
        rng = np.random.default_rng(0)
        w = {v: float(rng.uniform(1, 5)) for v in g.nodes}
        d = fractional_kmds(g, coverage=cov, t=2, weights=w,
                            compute_duals=False, mode="direct")
        m = fractional_kmds(g, coverage=cov, t=2, weights=w,
                            compute_duals=False, mode="message")
        assert d.stats.rounds == m.stats.rounds
        assert d.stats.messages_sent == m.stats.messages_sent
        assert d.stats.bits_sent == m.stats.bits_sent
