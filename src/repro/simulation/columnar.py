"""Columnar protocol stepping plane: whole-round batched execution.

:func:`repro.simulation.runner.run_protocol` steps every node's
generator in Python each round; for the stock protocols that loop is
pure data-parallel work wearing a coroutine costume.  This module runs
the *same* rounds as array programs: one stepper per protocol class
(registered in :data:`_STEPPER_FACTORIES` by
:mod:`repro.simulation.steppers`) advances all lanes at once, inbox
loops become CSR segment-reductions dispatched through
:mod:`repro.engine.dispatch` (``inbox_reduce`` / ``state_scatter``),
and the fault injectors are emulated on flat edge arrays.

The contract is **bit-identity** with the per-node path (pinned by
``tests/test_transport_equivalence.py``): same protocol state, same
:class:`~repro.types.RunStats`, same loss-injector RNG consumption.
The invariants that make that possible:

- **lane order** — lanes are the id-sorted node order
  (:func:`_stable_sorted`), the runner's advance order, so enqueue
  order and per-inbox sender order match the per-node path exactly;
- **edge-array traffic** — a round's sends are ``(esrc, edst)`` lane
  arrays in enqueue order.  Record boundaries never matter to the
  built-in injectors: the crash filter is edge-wise, and the loss
  injector's single ``rng.random(total)`` draw covers exactly the
  edges surviving earlier filters, in enqueue order — the same
  sequence the per-node path's ``filter_batch`` sees;
- **per-round single class** — every stock protocol sends one message
  class per round, so bit accounting is one
  ``Instrumentation.payload_class(sample, delivered)`` call, exactly
  what :meth:`RoundBatch.deliver`'s per-class tally produces.

Eligibility is decided *before* any injector state is touched
(:func:`resolve_stepper`): homogeneous processes of a registered exact
type, only built-in injector types, no trace, no strict bit budget.
Anything else — exotic protocol subclasses, third-party
``filter_messages`` injectors — returns ``None`` and the runner falls
back to the per-node loop automatically.  The per-node path also
remains directly reachable via ``run_protocol(...,
reference_protocols=True)`` / ``execute(..., reference_protocols=True)``
as the reference oracle.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple, Type

import numpy as np

from repro.engine import dispatch
from repro.engine.artifacts import _stable_sorted
from repro.engine.instrumentation import Instrumentation
from repro.errors import SimulationError
from repro.simulation.faults import (CrashFaultInjector, FaultInjector,
                                     MessageLossInjector)

__all__ = [
    "ColumnarStepper",
    "MessagePlan",
    "RoundTraffic",
    "inbox_reduce",
    "plan_for",
    "register_stepper",
    "resolve_stepper",
    "run_columnar",
    "take",
    "try_columnar",
]


# ----------------------------------------------------------------------
# Dispatched reductions (numpy references live here, at the call site)
# ----------------------------------------------------------------------

def inbox_reduce(indptr: np.ndarray, values: np.ndarray, mask: np.ndarray,
                 init: np.ndarray) -> np.ndarray:
    """Per-row masked inbox sum: ``out[i] = init[i] + sum of
    (mask[e] ? values[e] : 0.0) over row i``, strictly left to right.

    ``indptr`` is a receiver-major CSR row pointer; each row is one
    lane's inbox in sender order.  The masked-out term is *added as
    +0.0* rather than skipped, so the native kernel and this numpy
    reference perform the identical float-add sequence — bit-equal on
    every input.  (The protocols' own skip-the-absent-sender semantics
    coincide with the +0.0 add because no accumulated value is ever
    ``-0.0``; each stepper documents that argument where it applies.)
    """
    out = np.empty(indptr.size - 1, dtype=np.float64)
    impl = dispatch.kernel("inbox_reduce", int(values.size))
    if impl is not None:
        impl(indptr, values, np.ascontiguousarray(mask, dtype=np.uint8),
             np.ascontiguousarray(init, dtype=np.float64), out)
        return out
    # numpy reference: column-wise jagged accumulation — inbox position
    # j of every row is added at step j, i.e. the same left-to-right
    # per-row order as the C kernel's inner loop.
    out[:] = init
    if values.size:
        vals = np.where(mask != 0, values, 0.0)
        deg = np.diff(indptr)
        starts = indptr[:-1]
        rows = np.arange(indptr.size - 1)
        for j in range(int(deg.max())):
            sel = deg > j
            out[rows[sel]] += vals[starts[sel] + j]
    return out


def take(values: np.ndarray, idx: np.ndarray) -> np.ndarray:
    """Permutation gather ``values[idx]`` through the ``state_scatter``
    dispatch entry (float64 payload columns and uint8 masks go native;
    anything else uses ``np.take``, which is the same pure gather)."""
    out = np.empty(idx.size, dtype=values.dtype)
    impl = dispatch.kernel("state_scatter", int(idx.size))
    if impl is not None and values.dtype.itemsize in (1, 8) and \
            values.dtype.kind in "fu" and values.flags.c_contiguous:
        impl(idx, values, out)
    else:
        np.take(values, idx, out=out)
    return out


# ----------------------------------------------------------------------
# Lane-space topology
# ----------------------------------------------------------------------

class MessagePlan:
    """Static lane-space topology for one columnar run.

    Lanes are the id-sorted node order.  The open adjacency is held
    twice: sender-major (``esrc`` / ``edst`` / ``indptr``, row = one
    lane's broadcast fan-out in stable neighbor order — the enqueue
    order of a full-broadcast round) and receiver-major (``rperm``
    gathers a sender-major per-edge column into inbox order;
    ``rindptr`` rows are per-lane inboxes with senders ascending,
    because the stable argsort preserves the sender-major order among
    equal destinations).
    """

    def __init__(self, network):
        self.nodes: List = _stable_sorted(network.processes)
        self.lane_of: Dict = {v: i for i, v in enumerate(self.nodes)}
        n = self.n = len(self.nodes)
        deg = np.empty(n, dtype=np.int64)
        chunks = []
        lane_of = self.lane_of
        for i, v in enumerate(self.nodes):
            nbrs = network.sorted_neighbors(v)
            deg[i] = len(nbrs)
            chunks.append(np.fromiter((lane_of[w] for w in nbrs),
                                      dtype=np.int64, count=len(nbrs)))
        self.indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(deg, out=self.indptr[1:])
        self.deg = deg
        self.edst = (np.concatenate(chunks) if chunks
                     else np.zeros(0, dtype=np.int64))
        self.esrc = np.repeat(np.arange(n, dtype=np.int64), deg)
        self.E = int(self.indptr[-1])
        # Receiver-major view of the same edge set.
        self.rperm = np.argsort(self.edst, kind="stable")
        self.rsrc = self.esrc[self.rperm]
        self.rindptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(self.edst, minlength=n), out=self.rindptr[1:])
        self.rdst = np.repeat(np.arange(n, dtype=np.int64),
                              np.diff(self.rindptr))

    def to_receiver(self, column: np.ndarray) -> np.ndarray:
        """Reorder a sender-major per-edge column into inbox order."""
        return take(column, self.rperm)


def plan_for(network) -> MessagePlan:
    """The network's :class:`MessagePlan`, cached on its graph artifacts.

    The plan is pure topology (the network carries exactly one process
    per graph node, so the lane set and order are determined by the
    graph alone) and every stepper treats it as read-only, so repeated
    runs on the same graph — sweeps, benchmarks, the repair loop —
    share one build.  The artifact version token invalidates the cache
    whenever the graph is patched or mutated in place.
    """
    artifacts = getattr(network, "_artifacts", None)
    if artifacts is None:
        return MessagePlan(network)
    cached = getattr(artifacts, "_message_plan", None)
    if cached is not None and cached[0] == artifacts.version:
        return cached[1]
    plan = MessagePlan(network)
    artifacts._message_plan = (artifacts.version, plan)
    return plan


class RoundTraffic:
    """One round's emitted traffic in edge-array form.

    ``esrc`` / ``edst`` are lane indices in enqueue order; ``alive0``
    optionally masks edges whose record was never emitted (non-sending
    lanes on a shared full-broadcast edge set) — those edges are
    invisible to the injectors, as opposed to *dropped* by them.
    ``sample`` is one message instance of the round's (single) class,
    used for per-class bit accounting.
    """

    __slots__ = ("sample", "esrc", "edst", "alive0")

    def __init__(self, sample, esrc: np.ndarray, edst: np.ndarray,
                 alive0: Optional[np.ndarray] = None):
        self.sample = sample
        self.esrc = esrc
        self.edst = edst
        self.alive0 = alive0


class ColumnarStepper:
    """Base class for per-protocol batched steppers.

    A stepper owns all protocol state as lane-indexed arrays and
    replays one runner *advance* per :meth:`advance` call: consume the
    previous round's delivery mask, mutate state, emit this round's
    traffic, and report the lanes whose generators would have raised
    ``StopIteration``.  Crashed lanes are frozen via :meth:`crash` and
    must never advance again.
    """

    def __init__(self, network, plan: MessagePlan):
        self.network = network
        self.plan = plan
        self.procs = [network.processes[v] for v in plan.nodes]
        self._rngs: Optional[List[np.random.Generator]] = None

    @property
    def rngs(self) -> List[np.random.Generator]:
        """Per-lane node RNG streams, materialized on first draw (so
        deterministic protocols never pay the O(n) spawn)."""
        if self._rngs is None:
            rngs = self.network.rngs
            self._rngs = [rngs[v] for v in self.plan.nodes]
        return self._rngs

    def crash(self, lane: int) -> None:
        raise NotImplementedError

    def advance(self, round_index: int, alive_prev: Optional[np.ndarray]
                ) -> Tuple[Optional[RoundTraffic], Sequence[int]]:
        """Advance every live lane one round.

        ``alive_prev`` is the surviving-edge mask over the traffic this
        stepper emitted *last* round (None on round 0 / empty rounds).
        Returns ``(traffic, finished_lanes)``.
        """
        raise NotImplementedError

    def finalize(self) -> None:
        """Write final lane state back onto the process objects."""
        raise NotImplementedError


# ----------------------------------------------------------------------
# Stepper registry and eligibility
# ----------------------------------------------------------------------

#: Exact process type -> factory(network, injectors) -> stepper | None.
_STEPPER_FACTORIES: Dict[Type, Callable] = {}

#: Injector types whose effect the columnar loop emulates exactly.
#: Anything else (third-party ``filter_messages`` subclasses included)
#: makes the run ineligible — checked by *exact* type, so subclasses
#: of the built-ins also fall back.
_BUILTIN_INJECTORS = (CrashFaultInjector, MessageLossInjector)


def register_stepper(proc_type: Type):
    """Class/function decorator registering a stepper factory for one
    exact protocol-node type."""
    def deco(factory):
        _STEPPER_FACTORIES[proc_type] = factory
        return factory
    return deco


def resolve_stepper(network, injectors: Sequence[FaultInjector]
                    ) -> Optional[ColumnarStepper]:
    """Build a stepper for this run, or None to use the per-node loop.

    Every check here reads types and static configuration only — no
    injector RNG or crash state is touched, so a None (fallback) is
    side-effect free.
    """
    from repro.simulation import steppers  # noqa: F401  (registers)

    procs = network.processes
    if not procs:
        return None
    ptype = type(next(iter(procs.values())))
    factory = _STEPPER_FACTORIES.get(ptype)
    if factory is None:
        return None
    if any(type(p) is not ptype for p in procs.values()):
        return None
    if any(type(inj) not in _BUILTIN_INJECTORS for inj in injectors):
        return None
    if network.strict_message_bits is not None:
        return None
    return factory(network, injectors)


# ----------------------------------------------------------------------
# The batched round loop
# ----------------------------------------------------------------------

def run_columnar(network, stepper: ColumnarStepper, *,
                 max_rounds: int,
                 injectors: Sequence[FaultInjector],
                 keep_round_stats: bool = False,
                 instrumentation: Optional[Instrumentation] = None):
    """Run one protocol to completion on the columnar plane.

    Mirrors :func:`repro.simulation.runner.run_protocol` step for step
    — crash boundaries, advance, injector filtering, per-class
    accounting, termination conditions, the round counter — with the
    per-node generator pass replaced by ``stepper.advance``.
    """
    plan = stepper.plan
    instr = instrumentation if instrumentation is not None else \
        Instrumentation(network.size_model, keep_round_stats=keep_round_stats)

    for proc in network.processes.values():
        proc.finished = False
        proc.crashed = False
        # No contexts: lanes never run generator code, and nothing
        # reads ``proc.ctx`` after a synchronous run.
        proc.ctx = None

    live = set(plan.nodes)
    lane_of = plan.lane_of
    # Per crash injector: the lane mask mirroring its ``crashed`` set
    # (seeded from any pre-existing state, since ``filter_batch``
    # consults the full set, not just this run's victims).
    crash_masks: List[Optional[np.ndarray]] = []
    for inj in injectors:
        if type(inj) is CrashFaultInjector:
            mask = np.zeros(plan.n, dtype=bool)
            for v in inj.crashed:
                lane = lane_of.get(v)
                if lane is not None:
                    mask[lane] = True
            crash_masks.append(mask)
        else:
            crash_masks.append(None)

    traffic: Optional[RoundTraffic] = None
    alive: Optional[np.ndarray] = None

    for round_index in range(max_rounds + 1):
        # --- crash boundaries (mirrors the runner exactly) --------------
        for inj, cmask in zip(injectors, crash_masks):
            for victim in inj.crashes_at(round_index):
                lane = lane_of.get(victim)
                if lane is not None and cmask is not None:
                    cmask[lane] = True
                if victim in live:
                    live.discard(victim)
                    network.processes[victim].crashed = True
                    stepper.crash(lane)

        if not live:
            break

        # --- advance all live lanes one round ---------------------------
        traffic, finished = stepper.advance(round_index, alive)
        for lane in finished:
            node_id = plan.nodes[lane]
            network.processes[node_id].finished = True
            live.discard(node_id)

        # --- injector filtering on the flat edge set --------------------
        if traffic is None or traffic.esrc.size == 0:
            # No records emitted: crash filtering is vacuous and the
            # loss injector skips empty batches without drawing.
            traffic, alive, delivered = None, None, 0
        else:
            alive = (np.ones(traffic.esrc.size, dtype=bool)
                     if traffic.alive0 is None else traffic.alive0)
            for inj, cmask in zip(injectors, crash_masks):
                if cmask is not None:
                    # CrashFaultInjector.filter_batch: drop records from
                    # crashed senders, block crashed destinations.
                    if cmask.any():
                        alive &= ~cmask[traffic.esrc]
                        alive &= ~cmask[traffic.edst]
                else:
                    # MessageLossInjector.filter_batch: one Bernoulli
                    # vector over the edges surviving earlier filters,
                    # in enqueue order; zero surviving edges draw
                    # nothing (the reference's total == 0 early-out).
                    if inj.loss_rate == 0.0:
                        continue
                    idx = np.flatnonzero(alive)
                    if idx.size == 0:
                        continue
                    keep = inj.rng.random(idx.size) >= inj.loss_rate
                    kept = int(keep.sum())
                    inj.dropped += idx.size - kept
                    if kept != idx.size:
                        alive[idx[~keep]] = False
            delivered = int(alive.sum())

        if not live and delivered == 0:
            break

        instr.begin_round()
        if delivered:
            instr.payload_class(traffic.sample, delivered)
        instr.end_round(round_index, len(live))
    else:
        raise SimulationError(
            f"protocol did not terminate within {max_rounds} rounds "
            f"({len(live)} node(s) still live)"
        )

    stepper.finalize()
    return instr.stats


def try_columnar(network, *, max_rounds: int,
                 injectors: Sequence[FaultInjector],
                 keep_round_stats: bool = False,
                 instrumentation: Optional[Instrumentation] = None):
    """Batched execution if this run is eligible, else None (fall back
    to the per-node loop; no injector state has been consumed)."""
    stepper = resolve_stepper(network, injectors)
    if stepper is None:
        return None
    return run_columnar(network, stepper, max_rounds=max_rounds,
                        injectors=injectors,
                        keep_round_stats=keep_round_stats,
                        instrumentation=instrumentation)
