"""Batched round steppers for the stock protocols.

One :class:`~repro.simulation.columnar.ColumnarStepper` subclass per
protocol-node class, each replaying that protocol's generator body as
lane-parallel array programs — one :meth:`advance` call per runner
round, inbox loops lowered to ``inbox_reduce`` / ``state_scatter``
dispatches.  Registration happens at import time via
:func:`~repro.simulation.columnar.register_stepper`; the module is
imported lazily by :func:`~repro.simulation.columnar.resolve_stepper`.

Every stepper is **bit-identical** to the per-node reference
(``reference_protocols=True``), including RNG consumption: per-lane
draws happen in lane order — the runner's advance order — through the
same ``network.rngs`` generators, and selection helpers
(:func:`~repro.core.rounding._choose_requests`,
:func:`~repro.core.udg._pick`) are called verbatim rather than
re-implemented.  Float reductions follow the reference's exact operand
order; where a stepper adds a masked ``+0.0`` in place of the
reference's *skip*, a comment states why the accumulator can never be
``-0.0`` (the one case where ``+ 0.0`` is not an identity).

A factory may return ``None`` to decline a run it cannot replay
exactly (heterogeneous per-lane parameters that never occur via the
stock programs, sensing subclasses with bespoke semantics, injector
mixes a stepper does not model); the runner then falls back to the
per-node generator loop.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.baselines.jrs import (JRSNode, JrsCandMsg, JrsFallbackMsg,
                                 JrsHoodMaxMsg, JrsJoinMsg, JrsSpanMsg,
                                 JrsStateMsg, JrsSupportMsg)
from repro.core.fractional import (_COLOR_WHITE, DualShareMsg,
                                   FractionalNode, XUpdateMsg)
from repro.core.rounding import (MembershipMsg, ReqMsg, RoundingNode,
                                 _choose_requests, rounding_probability)
from repro.core.udg import (AdoptMsg, DeficitMsg, ElectionMsg, ElectMsg,
                            LeaderStatusMsg, UDGNode, _draw_id, _id_space,
                            _pick, theta_schedule)
from repro.dynamics.repair import (AdoptMsg as PatchAdoptMsg, HelpMsg,
                                   LeaderAnnounceMsg, PatchNode)
from repro.engine import kernels
from repro.errors import GraphError
from repro.simulation.columnar import (ColumnarStepper, MessagePlan,
                                       RoundTraffic, inbox_reduce, plan_for,
                                       register_stepper, take)

__all__ = [
    "FractionalStepper",
    "JRSStepper",
    "PatchStepper",
    "RoundingStepper",
    "UDGStepper",
]


def _float_pow_table(bases: np.ndarray, expo: float,
                     post=lambda v: v) -> np.ndarray:
    """``post(bases ** expo)`` evaluated per *distinct* base with
    Python-float arithmetic — the exact expressions the per-node
    reference computes — then broadcast back to lanes.  Avoids any
    vectorized-pow ulp risk."""
    ubase, inv = np.unique(bases, return_inverse=True)
    vals = np.fromiter((post(float(b) ** expo) for b in ubase),
                       dtype=np.float64, count=ubase.size)
    return vals[inv]


def _same(values) -> bool:
    it = iter(values)
    try:
        first = next(it)
    except StopIteration:
        return True
    return all(v == first for v in it)


# ======================================================================
# Algorithm 1 — FractionalNode
# ======================================================================

@register_stepper(FractionalNode)
def _fractional_factory(network, injectors):
    procs = network.processes.values()
    if not _same((p.t, p.compute_duals, p.w_max, p.w_min) for p in procs):
        return None
    return FractionalStepper(network, plan_for(network))


class FractionalStepper(ColumnarStepper):
    """Algorithm 1's ``2 t^2`` (+1 with duals) rounds, lane-batched.

    Advance ``2j`` / ``2j+1`` maps to inner iteration ``j``
    (``p = t-1-j//t``, ``q = t-1-j%t``): even advances process the
    previous ColorMsg round and broadcast XUpdateMsg; odd advances
    process XUpdateMsg (the coverage/dual accounting) and broadcast
    ColorMsg.  Advance ``2t^2`` processes the last ColorMsg and either
    finishes or unicasts DualShareMsg; advance ``2t^2+1`` assembles
    ``z``.

    Exactness notes (vs the generator body, which skips zero terms):

    - ``c_plus`` is ``inbox_reduce`` with ``init = x_plus`` — me-first
      then senders ascending, the reference's closed-neighborhood order;
    - ``alpha``/``beta``/``c``/``x`` accumulate only non-negative terms
      from ``0.0``, so they are never ``-0.0`` and the masked ``+0.0``
      adds are bit-exact no-ops, matching the reference's skips;
    - each dual share ``alpha*y - beta`` subtracts two non-negative
      finite floats, which never rounds to ``-0.0``, so the ``z``
      partial sums stay ``-0.0``-free and their masked adds are exact;
    - the white-set views are per-edge monotone bits whose integer
      counts equal ``len(white_set)`` in any summation order.
    """

    def __init__(self, network, plan: MessagePlan):
        super().__init__(network, plan)
        n = plan.n
        procs = self.procs
        p0 = procs[0]
        self.t = p0.t
        self.compute_duals = p0.compute_duals
        self.k_i = np.fromiter((p.k_i for p in procs), np.float64, n)
        self.w = np.fromiter((p.weight for p in procs), np.float64, n)
        base = np.fromiter((p.delta + 1.0 for p in procs), np.float64, n)
        self.base = base
        w_ratio = p0.w_max / p0.w_min
        self.big_e = np.fromiter((float(b) * w_ratio for b in base),
                                 np.float64, n)
        self.w_max = p0.w_max

        self.live = np.ones(n, dtype=bool)
        self.started = np.zeros(n, dtype=bool)
        self.x = np.zeros(n)
        self.c = np.zeros(n)
        self.y = np.zeros(n)
        self.z = np.zeros(n)
        self.white = np.ones(n, dtype=bool)
        self.dyn = plan.deg.astype(np.float64) + 1.0   # |closed N(v)|
        self.x_plus = np.zeros(n)
        self.gray_sent = np.zeros(n, dtype=bool)
        self.wrote_x = np.zeros(n, dtype=bool)
        self.wrote_z = np.zeros(n, dtype=bool)
        # White-set views: one bit per receiver-major edge plus the self
        # bit (gray is monotone, the bits only ever clear).
        E = plan.E
        self.W_e = np.ones(E, dtype=bool)
        self.W_self = np.ones(n, dtype=bool)
        # alpha/beta edge shares live on the receiver-major edge set
        # (row i, senders ascending == the reference's closed order).
        self.alpha_e = np.zeros(E)
        self.beta_e = np.zeros(E)
        self.alpha_self = np.zeros(n)
        self.beta_self = np.zeros(n)
        self._dual_vals: Optional[np.ndarray] = None
        self._pow_cache: Dict[Tuple[str, int], np.ndarray] = {}

    def _pow(self, kind: str, e: int) -> np.ndarray:
        out = self._pow_cache.get((kind, e))
        if out is None:
            if kind == "thr":
                out = _float_pow_table(self.base, e / self.t)
            elif kind == "raise":
                out = _float_pow_table(self.big_e, e / self.t,
                                       post=lambda v: v / self.w_max)
            else:  # "inc"
                out = _float_pow_table(self.base, e / self.t,
                                       post=lambda v: 1.0 / v)
            self._pow_cache[(kind, e)] = out
        return out

    def crash(self, lane: int) -> None:
        self.live[lane] = False

    def _broadcast(self, sample) -> RoundTraffic:
        plan, live = self.plan, self.live
        alive0 = None if live.all() else live[plan.esrc]
        return RoundTraffic(sample, plan.esrc, plan.edst, alive0)

    def _mask_r(self, alive_prev) -> np.ndarray:
        if alive_prev is None:
            return np.zeros(self.plan.E, dtype=bool)
        return self.plan.to_receiver(alive_prev)

    def _process_color(self, mask_r: np.ndarray) -> None:
        # The reference's ColorMsg block: shrink the white views, then
        # dyn = |white closed neighborhood| (its empty-set 0.0 branch is
        # what the monotone counts converge to without the branch).
        plan, live = self.plan, self.live
        self.W_e &= ~(mask_r & self.gray_sent[plan.rsrc] & live[plan.rdst])
        self.W_self[live] &= self.white[live]
        counts = (np.bincount(plan.rdst[self.W_e], minlength=plan.n)
                  + self.W_self).astype(np.float64)
        self.dyn[live] = counts[live]

    def _process_xupdate(self, mask_r: np.ndarray, p: int) -> None:
        plan, live = self.plan, self.live
        rsrc, rdst = plan.rsrc, plan.rdst
        xp_e = take(self.x_plus, rsrc)
        c_plus = inbox_reduce(plan.rindptr, xp_e, mask_r, self.x_plus)
        proc = self.white & live
        thr = self._pow("thr", p)
        lam = np.ones(plan.n)
        sel = proc & (c_plus > 0)
        lam[sel] = np.minimum(
            1.0, np.maximum(0.0, (self.k_i[sel] - self.c[sel]) / c_plus[sel]))
        # Dual shares: share = lam * x_plus per (row, sender) pair, each
        # touched once per round; gated-out terms add +0.0 to the
        # non-negative accumulators — exactly the reference's skip.
        gate_e = mask_r & proc[rdst]
        share_e = np.where(gate_e, take(lam, rdst) * xp_e, 0.0)
        self.alpha_e += share_e
        self.beta_e += np.where(gate_e, share_e / take(thr, rdst), 0.0)
        share_s = np.where(proc, lam * self.x_plus, 0.0)
        self.alpha_self += share_s
        self.beta_self += np.where(proc, share_s / thr, 0.0)
        self.c[proc] += c_plus[proc]
        newly = proc & (self.c >= self.k_i)
        self.y[newly] = 1.0 / thr[newly]
        self.white[newly] = False
        self.gray_sent = ~self.white

    def advance(self, round_index: int, alive_prev):
        plan, live, t = self.plan, self.live, self.t
        last = 2 * t * t

        if round_index == 0:
            self.started |= live

        if round_index < last and round_index % 2 == 0:
            # ColorMsg processing (iteration j-1), then the raise step
            # and XUpdateMsg broadcast of iteration j.
            if round_index > 0:
                self._process_color(self._mask_r(alive_prev))
            j = round_index // 2
            raising = (live & (self.x < 1.0)
                       & (self.dyn >= self._pow("raise", t - 1 - j // t)
                          * self.w))
            self.x_plus = np.where(
                raising,
                np.minimum(self._pow("inc", t - 1 - j % t), 1.0 - self.x),
                0.0)
            self.x = self.x + self.x_plus
            return self._broadcast(XUpdateMsg()), ()

        if round_index < last:
            # XUpdateMsg processing + ColorMsg broadcast of iteration j.
            j = round_index // 2
            self._process_xupdate(self._mask_r(alive_prev), t - 1 - j // t)
            return self._broadcast(_COLOR_WHITE), ()

        if round_index == last:
            # Last ColorMsg processing; then ``self.x = x`` and either
            # termination or the DualShareMsg unicast exchange.
            self._process_color(self._mask_r(alive_prev))
            self.wrote_x |= live
            if not self.compute_duals:
                return None, np.nonzero(live)[0].tolist()
            # Enqueue order (sender lane asc, dest asc) == the
            # receiver-major edge order keyed (row, sender): row i's
            # edge (j -> i) carries i's share alpha_i[j]*y_i - beta_i[j]
            # back to j.
            self._dual_vals = (self.alpha_e * take(self.y, plan.rdst)
                               - self.beta_e)
            alive0 = None if live.all() else live[plan.rdst]
            return RoundTraffic(DualShareMsg(), plan.rdst, plan.rsrc,
                                alive0), ()

        # Dual assembly: z = own + left-to-right sum of delivered shares
        # in sender order.  Dual-receiver-major order == the plan's
        # sender-major order, reached by undoing ``rperm``.
        vals_sm = np.empty(plan.E)
        mask_sm = np.zeros(plan.E, dtype=bool)
        vals_sm[plan.rperm] = self._dual_vals
        if alive_prev is not None:
            mask_sm[plan.rperm] = alive_prev
        s = inbox_reduce(plan.indptr, vals_sm, mask_sm, np.zeros(plan.n))
        z = (self.alpha_self * self.y - self.beta_self) + s
        self.z[live] = z[live]
        self.wrote_z |= live
        return None, np.nonzero(live)[0].tolist()

    def finalize(self) -> None:
        plan = self.plan
        nodes = plan.nodes
        rindptr = plan.rindptr.tolist()
        # Bulk ndarray -> Python-float conversion once (``tolist`` yields
        # the same floats as per-element ``float()``), then dict-building
        # per lane with zero per-edge numpy indexing.
        xs, ys, zs = self.x.tolist(), self.y.tolist(), self.z.tolist()
        a_self, b_self = self.alpha_self.tolist(), self.beta_self.tolist()
        a_e, b_e = self.alpha_e.tolist(), self.beta_e.tolist()
        senders = [nodes[s] for s in plan.rsrc.tolist()]
        for i, proc in enumerate(self.procs):
            if not self.started[i]:
                continue
            if self.wrote_x[i]:
                proc.x = xs[i]
            proc.y = ys[i]
            if self.wrote_z[i]:
                proc.z = zs[i]
            lo, hi = rindptr[i], rindptr[i + 1]
            alpha = {nodes[i]: a_self[i]}
            alpha.update(zip(senders[lo:hi], a_e[lo:hi]))
            beta = {nodes[i]: b_self[i]}
            beta.update(zip(senders[lo:hi], b_e[lo:hi]))
            proc.alpha = alpha
            proc.beta = beta


# ======================================================================
# Algorithm 2 — RoundingNode
# ======================================================================

@register_stepper(RoundingNode)
def _rounding_factory(network, injectors):
    return RoundingStepper(network, plan_for(network))


class RoundingStepper(ColumnarStepper):
    """Algorithm 2's two exchanges, lane-batched.

    The per-lane coin flips and REQ-target selections consume
    ``network.rngs`` in lane order — the runner's advance order — and
    the selection itself is the reference's own ``_choose_requests``.
    """

    def __init__(self, network, plan: MessagePlan):
        super().__init__(network, plan)
        n = plan.n
        self.live = np.ones(n, dtype=bool)
        self.member = np.zeros(n, dtype=bool)
        self.member_sent = np.zeros(n, dtype=bool)
        self._req_edst: Optional[np.ndarray] = None

    def crash(self, lane: int) -> None:
        self.live[lane] = False

    def advance(self, round_index: int, alive_prev):
        plan, live = self.plan, self.live

        if round_index == 0:
            for i in np.nonzero(live)[0]:
                proc = self.procs[i]
                self.member[i] = self.rngs[i].random() < \
                    rounding_probability(proc.x[proc.node_id], proc.delta)
            self.member_sent = self.member.copy()
            alive0 = None if live.all() else live[plan.esrc]
            return RoundTraffic(MembershipMsg(), plan.esrc, plan.edst,
                                alive0), ()

        if round_index == 1:
            mask_r = (np.zeros(plan.E, dtype=bool) if alive_prev is None
                      else plan.to_receiver(alive_prev))
            # A closed neighbor counts as member iff its announcement
            # arrived and said so (member_of.get(w, False)).
            heard_member = mask_r & self.member_sent[plan.rsrc]
            have = (np.bincount(plan.rdst[heard_member], minlength=plan.n)
                    + self.member.astype(np.int64))
            esrc: List[int] = []
            edst: List[int] = []
            rindptr, rsrc, nodes = plan.rindptr, plan.rsrc, plan.nodes
            for i in np.nonzero(live)[0]:
                proc = self.procs[i]
                need = proc.k_i - int(have[i])
                if need <= 0:
                    continue
                me = nodes[i]
                row = slice(rindptr[i], rindptr[i + 1])
                candidates = ([] if self.member[i] else [me]) + \
                    [nodes[s] for s, hm in zip(rsrc[row], heard_member[row])
                     if not hm]
                for w in _choose_requests(self.rngs[i], me, candidates,
                                          proc.x, need, proc.policy):
                    if w == me:
                        self.member[i] = True
                    else:
                        esrc.append(i)
                        edst.append(plan.lane_of[w])
            if not esrc:
                self._req_edst = None
                return None, ()
            self._req_edst = np.asarray(edst, dtype=np.int64)
            return RoundTraffic(ReqMsg(), np.asarray(esrc, dtype=np.int64),
                                self._req_edst), ()

        # Round 2: any delivered REQ forces membership; everyone stops.
        if alive_prev is not None and self._req_edst is not None:
            got = np.zeros(plan.n, dtype=bool)
            got[self._req_edst[alive_prev]] = True
            self.member[live & got] = True
        return None, np.nonzero(live)[0].tolist()

    def finalize(self) -> None:
        for i, proc in enumerate(self.procs):
            proc.member = bool(self.member[i])


# ======================================================================
# Algorithm 3 — UDGNode
# ======================================================================

@register_stepper(UDGNode)
def _udg_factory(network, injectors):
    sensing = network._sensing
    if sensing is None or not kernels.supports_kernel_election(sensing):
        return None
    procs = network.processes.values()
    if not _same((p.k, p.n, p.policy, p.part2_sync_iterations)
                 for p in procs):
        return None
    plan = plan_for(network)
    if plan.nodes != list(range(plan.n)):
        return None
    return UDGStepper(network, plan, sensing)


class UDGStepper(ColumnarStepper):
    """Algorithm 3 (Parts I and II), lane-batched.

    Part I (advances ``0 .. 2R-1``, two per theta): active lanes draw
    identifiers in lane order, the within-theta fan-out comes from the
    distance CSR (:func:`~repro.engine.kernels.udg_distance_csr`, whose
    per-row order is the ``neighbors_within`` enqueue order), and the
    election is the two-pass scatter-max of
    :func:`~repro.engine.kernels.elect_round` restricted to *delivered*
    edges (an empty inbox leaves the incumbent ``(my_id, me)`` —
    self-election, exactly the reference).  Advance ``2R`` processes the
    last token round, fixes ``leader``, and starts Part II.

    Part II repeats 3-advance iterations; a lane whose done-predicate
    holds finishes at the iteration's first advance, before sending.
    Views (``leader_of`` / ``deficient_of``) are per-receiver-major-edge
    cells updated only on delivery, so stale views under loss match the
    reference's dict semantics.
    """

    def __init__(self, network, plan: MessagePlan, udg):
        super().__init__(network, plan)
        n = plan.n
        p0 = self.procs[0]
        self.k = p0.k
        self.policy = p0.policy
        self.iters = p0.part2_sync_iterations
        self.schedule = theta_schedule(p0.n)
        self.id_hi = _id_space(p0.n)
        _, self.d_src, self.d_nbr, self.d_dist = kernels.udg_distance_csr(udg)
        self.live = np.ones(n, dtype=bool)
        self.active = np.ones(n, dtype=bool)
        self.ids = np.zeros(n, dtype=np.int64)
        self.elected_self = np.zeros(n, dtype=bool)
        self.leader = np.zeros(n, dtype=bool)
        self.wrote_leader = np.zeros(n, dtype=bool)
        self.my_def = np.zeros(n, dtype=bool)
        self.Lview = np.zeros(plan.E, dtype=bool)
        self.Dview = np.zeros(plan.E, dtype=bool)
        self.leader_sent = np.zeros(n, dtype=bool)
        self.def_sent = np.zeros(n, dtype=bool)
        self.lane_idx = np.arange(n, dtype=np.int64)
        self._edges: Optional[Tuple[np.ndarray, np.ndarray]] = None

    def crash(self, lane: int) -> None:
        self.live[lane] = False

    # -- shared pieces -------------------------------------------------
    def _delivered_to(self, alive_prev) -> np.ndarray:
        """Receivers of at least one delivered unicast from the last
        dynamic (non-broadcast) traffic this stepper emitted."""
        got = np.zeros(self.plan.n, dtype=bool)
        if alive_prev is not None and self._edges is not None:
            got[self._edges[1][alive_prev]] = True
        return got

    def _mask_r(self, alive_prev) -> np.ndarray:
        if alive_prev is None:
            return np.zeros(self.plan.E, dtype=bool)
        return self.plan.to_receiver(alive_prev)

    def _broadcast(self, sample) -> RoundTraffic:
        plan, live = self.plan, self.live
        self._edges = None
        alive0 = None if live.all() else live[plan.esrc]
        return RoundTraffic(sample, plan.esrc, plan.edst, alive0)

    def _process_token(self, alive_prev) -> None:
        got = self._delivered_to(alive_prev)
        upd = self.active & self.live
        self.active[upd] &= got[upd] | self.elected_self[upd]

    def _update_views(self, view: np.ndarray, sent: np.ndarray,
                      mask_r: np.ndarray) -> None:
        plan = self.plan
        upd = mask_r & self.live[plan.rdst]
        view[upd] = sent[plan.rsrc[upd]]

    def _refresh_deficiency(self) -> None:
        plan, live = self.plan, self.live
        cov = (np.bincount(plan.rdst[self.Lview], minlength=plan.n)
               + self.leader.astype(np.int64))
        new_def = ~self.leader & (cov < self.k)
        self.my_def[live] = new_def[live]

    # -- the round map -------------------------------------------------
    def advance(self, round_index: int, alive_prev):
        plan, live = self.plan, self.live
        R = len(self.schedule)
        a0 = 2 * R

        if round_index < a0 and round_index % 2 == 0:
            # Token processing of the previous theta, then identifier
            # draw + within-theta ElectionMsg multicast.
            if round_index > 0:
                self._process_token(alive_prev)
            sending = self.active & live
            for i in np.nonzero(sending)[0]:
                self.ids[i] = _draw_id(self.rngs[i], self.id_hi)
            theta = self.schedule[round_index // 2]
            sel = (self.d_dist <= theta) & sending[self.d_src]
            esrc, edst = self.d_src[sel], self.d_nbr[sel]
            self._edges = (esrc, edst)
            return RoundTraffic(ElectionMsg(), esrc, edst), ()

        if round_index < a0:
            # Election: max (id, node) over the incumbent self and the
            # delivered candidates; non-self-elected send the token.
            procm = self.active & live
            best_id = np.where(procm, self.ids, -1)
            if alive_prev is not None and self._edges is not None:
                s, d = self._edges
                s, d = s[alive_prev], d[alive_prev]
                np.maximum.at(best_id, d, self.ids[s])
                best_node = np.where(procm & (self.ids == best_id),
                                     self.lane_idx, -1)
                tie = self.ids[s] == best_id[d]
                np.maximum.at(best_node, d[tie], s[tie])
            else:
                best_node = np.where(procm, self.lane_idx, -1)
            self.elected_self = procm & (best_node == self.lane_idx)
            senders = procm & ~self.elected_self
            esrc = self.lane_idx[senders]
            edst = best_node[senders]
            self._edges = (esrc, edst)
            return RoundTraffic(ElectMsg(), esrc, edst), ()

        if round_index == a0:
            # Last token processing; Part I verdict; Part II begins.
            self._process_token(alive_prev)
            self.leader[live] = self.active[live]
            self.wrote_leader |= live
            self.leader_sent = self.leader.copy()
            return self._broadcast(LeaderStatusMsg()), ()

        if round_index == a0 + 1:
            self._update_views(self.Lview, self.leader_sent,
                               self._mask_r(alive_prev))
            self._refresh_deficiency()
            self.def_sent = self.my_def.copy()
            return self._broadcast(DeficitMsg()), ()

        phase = (round_index - a0 - 2) % 3
        if phase == 0:
            # DeficitMsg processing, the done check, adoption picks.
            self._update_views(self.Dview, self.def_sent,
                               self._mask_r(alive_prev))
            m = (round_index - a0 - 2) // 3
            if m == self.iters:
                # The reference's for-loop is exhausted: StopIteration.
                return None, np.nonzero(live)[0].tolist()
            any_def = np.bincount(plan.rdst[self.Dview],
                                  minlength=plan.n) > 0
            done = live & ~self.my_def & (~self.leader | ~any_def)
            finished = np.nonzero(done)[0].tolist()
            live = self.live = live & ~done
            esrc: List[int] = []
            edst: List[int] = []
            rindptr, rsrc = plan.rindptr, plan.rsrc
            for i in np.nonzero(live & self.leader)[0]:
                row = slice(rindptr[i], rindptr[i + 1])
                candidates = sorted(
                    ([int(i)] if self.my_def[i] else [])
                    + [int(s) for s in rsrc[row][self.Dview[row]]])
                for u in _pick(self.rngs[i], candidates, self.k,
                               self.policy):
                    if u == i:
                        self.my_def[i] = False
                    else:
                        esrc.append(i)
                        edst.append(u)
            e = (np.asarray(esrc, dtype=np.int64),
                 np.asarray(edst, dtype=np.int64))
            self._edges = e
            return RoundTraffic(AdoptMsg(), e[0], e[1]), finished

        if phase == 1:
            # Adoption; leader-status refresh broadcast.
            got = self._delivered_to(alive_prev)
            adopted = live & ~self.leader & got
            self.leader[adopted] = True
            self.my_def[adopted] = False
            self.leader_sent = self.leader.copy()
            return self._broadcast(LeaderStatusMsg()), ()

        # phase == 2: status processing; deficiency refresh broadcast.
        self._update_views(self.Lview, self.leader_sent,
                           self._mask_r(alive_prev))
        self._refresh_deficiency()
        self.def_sent = self.my_def.copy()
        return self._broadcast(DeficitMsg()), ()

    def finalize(self) -> None:
        for i, proc in enumerate(self.procs):
            if self.wrote_leader[i]:
                proc.leader = bool(self.leader[i])


# ======================================================================
# Repair patch protocol — PatchNode
# ======================================================================

@register_stepper(PatchNode)
def _patch_factory(network, injectors):
    procs = network.processes.values()
    if not _same((p.k, p.policy, p.patience, p.max_iterations)
                 for p in procs):
        return None
    if any(p.max_iterations < 1 for p in procs):
        return None
    return PatchStepper(network, plan_for(network))


class PatchStepper(ColumnarStepper):
    """The repair patch protocol, lane-batched: three advances per
    iteration (help broadcasts / adoption picks / promotion +
    announcements), exactly :meth:`PatchNode.run`'s shape.

    A lane's generator finishes only at an iteration's *first* advance
    — after announcement processing — by retirement (member idle past
    patience, client healed) or by loop exhaustion; ``member`` /
    ``deficit`` are written back only for those normally-finished
    lanes (crashed lanes keep their constructor attributes), while
    ``promoted`` / ``iterations`` / ``member_neighbors`` mirror the
    reference's in-run attribute mutations and are written for every
    lane.  Adoption picks call :func:`~repro.core.udg._pick` verbatim
    with the delivered help senders in inbox (sender-ascending) order,
    consuming ``network.rngs`` in lane order.
    """

    def __init__(self, network, plan: MessagePlan):
        super().__init__(network, plan)
        n = plan.n
        p0 = self.procs[0]
        self.k = p0.k
        self.policy = p0.policy
        self.patience = p0.patience
        self.max_iterations = p0.max_iterations
        self.live = np.ones(n, dtype=bool)
        self.member = np.fromiter((p.member for p in self.procs), bool, n)
        # The generator's local: members run with deficit 0.
        self.deficit = np.fromiter(
            (0 if p.member else p.deficit for p in self.procs), np.int64, n)
        self.has_mn = np.fromiter((bool(p.member_neighbors)
                                   for p in self.procs), bool, n)
        self.waited = np.zeros(n, dtype=np.int64)
        self.idle = np.zeros(n, dtype=np.int64)
        self.heard = np.zeros(n, dtype=bool)
        self.promote = np.zeros(n, dtype=bool)
        self.promoted = np.zeros(n, dtype=bool)
        self.iterations = np.zeros(n, dtype=np.int64)
        self.finished_ok = np.zeros(n, dtype=bool)
        # Per-receiver-major-edge bit: an announcement from this sender
        # arrived at some point (feeds ``member_neighbors``).
        self.ann_r = np.zeros(plan.E, dtype=bool)
        self._edges: Optional[Tuple[np.ndarray, np.ndarray]] = None

    def crash(self, lane: int) -> None:
        self.live[lane] = False

    def _mask_r(self, alive_prev) -> np.ndarray:
        if alive_prev is None:
            return np.zeros(self.plan.E, dtype=bool)
        return self.plan.to_receiver(alive_prev)

    def advance(self, round_index: int, alive_prev):
        plan, live = self.plan, self.live
        phase = round_index % 3

        if phase == 0:
            # Announcement processing, retirement / exhaustion, then the
            # next iteration's help broadcasts.
            finished: List[int] = []
            if round_index > 0:
                upd = self._mask_r(alive_prev) & live[plan.rdst]
                self.ann_r |= upd
                cnt = np.bincount(plan.rdst[upd], minlength=plan.n)
                self.has_mn |= cnt > 0
                self.deficit[live] = np.maximum(
                    self.deficit[live] - cnt[live], 0)
                mem = live & self.member
                self.idle[mem] = np.where(self.heard[mem], 0,
                                          self.idle[mem] + 1)
                done = (mem & (self.idle > self.patience)) | \
                    (live & ~self.member & (self.deficit <= 0))
                if round_index // 3 == self.max_iterations:
                    done = live  # the reference's for-loop is exhausted
                finished = np.nonzero(done)[0].tolist()
                self.finished_ok |= done
                live = self.live = live & ~done
            if not live.any():
                return None, finished
            self.iterations[live] += 1
            senders = live & (self.deficit > 0)
            self._edges = None
            return RoundTraffic(HelpMsg(), plan.esrc, plan.edst,
                                None if senders.all()
                                else senders[plan.esrc]), finished

        if phase == 1:
            # Adoption picks (members) + the deficient side's timeout
            # decision, recorded for the next advance.
            heard_e = self._mask_r(alive_prev) & live[plan.rdst]
            got_any = np.bincount(plan.rdst[heard_e], minlength=plan.n) > 0
            self.heard = live & self.member & got_any
            esrc: List[int] = []
            edst: List[int] = []
            rindptr, rsrc, nodes = plan.rindptr, plan.rsrc, plan.nodes
            for i in np.nonzero(self.heard)[0]:
                row = slice(rindptr[i], rindptr[i + 1])
                candidates = [nodes[s] for s in rsrc[row][heard_e[row]]]
                for u in _pick(self.rngs[i], candidates, self.k,
                               self.policy):
                    esrc.append(i)
                    edst.append(plan.lane_of[u])
            self.promote = (live & ~self.member & (self.deficit > 0)
                            & (~self.has_mn
                               | (self.waited >= self.patience)))
            e = (np.asarray(esrc, dtype=np.int64),
                 np.asarray(edst, dtype=np.int64))
            self._edges = e
            return RoundTraffic(PatchAdoptMsg(), e[0], e[1]), ()

        # phase == 2: promotion + announcements.
        got = np.zeros(plan.n, dtype=bool)
        if alive_prev is not None and self._edges is not None:
            got[self._edges[1][alive_prev]] = True
        client = live & ~self.member & (self.deficit > 0)
        newly = client & (got | self.promote)
        self.member[newly] = True
        self.deficit[newly] = 0
        self.promoted[newly] = True
        self.waited[client & ~newly] += 1
        self._edges = None
        return RoundTraffic(LeaderAnnounceMsg(), plan.esrc, plan.edst,
                            newly[plan.esrc]), ()

    def finalize(self) -> None:
        plan = self.plan
        nodes, rindptr, rsrc = plan.nodes, plan.rindptr, plan.rsrc
        for i, proc in enumerate(self.procs):
            proc.promoted = bool(self.promoted[i])
            proc.iterations = int(self.iterations[i])
            for e in range(rindptr[i], rindptr[i + 1]):
                if self.ann_r[e]:
                    proc.member_neighbors.add(nodes[rsrc[e]])
            if self.finished_ok[i]:
                proc.member = bool(self.member[i])
                proc.deficit = int(self.deficit[i])


# ======================================================================
# LRG baseline — JRSNode
# ======================================================================

@register_stepper(JRSNode)
def _jrs_factory(network, injectors):
    # The stepper exploits that with no injectors every broadcast from a
    # non-exited lane is delivered, so the last-known-state views are
    # the current state arrays (exited lanes' state is frozen — their
    # residual is 0 at exit and never changes).  Any injector (loss OR
    # crash) breaks that identity: fall back to the per-node loop.
    if injectors:
        return None
    procs = network.processes.values()
    if not _same((p.convention, p.max_phases) for p in procs):
        return None
    plan = plan_for(network)
    reprs = [repr(v) for v in plan.nodes]
    if len(set(reprs)) != plan.n:
        return None  # (span, repr(id)) ranking needs distinct reprs
    return JRSStepper(network, plan, reprs)


class JRSStepper(ColumnarStepper):
    """The LRG baseline's 7-round phases, lane-batched.

    Advance ``7p + s`` runs phase ``p``'s round ``s+1``; a lane exits
    (StopIteration) at ``s == 2`` when no residual demand is left
    within distance 2, and the convergence valve raises the reference's
    exact :class:`~repro.errors.GraphError` there.  The reference's
    ``(span, repr(id))`` / ``(best_span, repr(best_id))`` tuple maxima
    become integer maxima over packed keys ``span * n + repr_rank``
    (the factory guarantees distinct reprs); the coin flips at round 6
    consume ``network.rngs`` in lane order over candidate lanes only,
    with the reference's own ``float(np.median(...))`` expression.
    ``support_of.get(u, 1)`` defaults are provably dead: a node with
    positive residual never exits and always sends its support.
    """

    def __init__(self, network, plan: MessagePlan, reprs: List[str]):
        super().__init__(network, plan)
        n = plan.n
        p0 = self.procs[0]
        self.convention = p0.convention
        self.max_phases = p0.max_phases
        self.live = np.ones(n, dtype=bool)
        self.member = np.zeros(n, dtype=bool)
        self.residual = np.fromiter((p.req for p in self.procs),
                                    np.int64, n)
        self.phases = np.zeros(n, dtype=np.int64)
        order = sorted(range(n), key=reprs.__getitem__)
        self.rank = np.empty(n, dtype=np.int64)
        self.rank[order] = np.arange(n, dtype=np.int64)
        # Per-phase scratch.
        self.span = np.zeros(n, dtype=np.int64)
        self.any_res1 = np.zeros(n, dtype=bool)
        self.rounded = np.zeros(n, dtype=np.int64)
        self.hoodmax = np.zeros(n, dtype=np.int64)
        self.candidate = np.zeros(n, dtype=bool)
        self.support = np.zeros(n, dtype=np.int64)
        self.b1 = np.full(n, -1, dtype=np.int64)
        self.b2 = np.full(n, -1, dtype=np.int64)
        self.joined = np.zeros(n, dtype=bool)

    def crash(self, lane: int) -> None:  # pragma: no cover — no injectors
        self.live[lane] = False

    def _broadcast(self, sample) -> RoundTraffic:
        plan, live = self.plan, self.live
        alive0 = None if live.all() else live[plan.esrc]
        return RoundTraffic(sample, plan.esrc, plan.edst, alive0)

    def _apply_joins(self) -> None:
        plan, live = self.plan, self.live
        # ``joined_of`` at phase end is coin | fallback (round 6 sets,
        # round 7 ORs); both were folded into ``joined`` already.
        newly = self.joined & ~self.member
        res = self.residual
        me_new = newly & live
        # Closed order is me-first: own convention adjustment, then one
        # guarded decrement per freshly-joined neighbor (== floor at 0).
        if self.convention == "closed":
            res = np.where(me_new & (res > 0), res - 1, res)
        else:
            res = np.where(me_new, 0, res)
        cnt = np.bincount(plan.edst[newly[plan.esrc]], minlength=plan.n)
        self.residual = np.where(live, np.maximum(res - cnt, 0),
                                 self.residual)
        self.member = self.member | me_new

    def advance(self, round_index: int, alive_prev):
        plan, live = self.plan, self.live
        esrc, edst = plan.esrc, plan.edst
        n = plan.n
        sub = round_index % 7

        if sub == 0:
            if round_index > 0:
                self._apply_joins()
            return self._broadcast(JrsStateMsg()), ()

        if sub == 1:
            # Views == the state arrays themselves (see the factory).
            res_pos = self.residual > 0
            nbr_cnt = np.bincount(edst[res_pos[esrc]], minlength=n)
            extra = (res_pos.astype(np.int64)
                     if self.convention == "closed" else self.residual)
            self.span = np.where(self.member, 0, nbr_cnt + extra)
            self.any_res1 = res_pos | (nbr_cnt > 0)
            return self._broadcast(JrsSpanMsg()), ()

        if sub == 2:
            # Exit check on the 2-hop activity flag, then the 1-hop
            # rounded-span max.  Span/activity senders are the lanes
            # live *before* this advance's exits.
            sel = live[esrc]
            act2 = self.any_res1 | (np.bincount(
                edst[sel & self.any_res1[esrc]], minlength=n) > 0)
            exiting = live & ~act2
            finished = np.nonzero(exiting)[0].tolist()
            live = self.live = live & ~exiting
            self.phases[live] += 1
            if live.any() and int(self.phases[live].max()) > self.max_phases:
                raise GraphError(
                    f"LRG did not converge within {self.max_phases} phases"
                )
            v = self.span
            r = (v > 0).astype(np.int64)  # smallest power of two >= v
            while True:
                lt = r < v
                if not lt.any():
                    break
                r[lt] *= 2
            self.rounded = r
            hm = r.copy()
            np.maximum.at(hm, edst[sel], r[esrc[sel]])
            self.hoodmax = hm
            return self._broadcast(JrsHoodMaxMsg()), finished

        if sub == 3:
            sel = live[esrc]
            m2 = self.hoodmax.copy()
            np.maximum.at(m2, edst[sel], self.hoodmax[esrc[sel]])
            self.candidate = live & (self.rounded > 0) & (self.rounded >= m2)
            return self._broadcast(JrsCandMsg()), ()

        if sub == 4:
            sel = live[esrc]
            selc = sel & self.candidate[esrc]
            cand_cnt = (self.candidate.astype(np.int64)
                        + np.bincount(edst[selc], minlength=n))
            self.support = np.where(self.residual > 0, cand_cnt, 0)
            # Packed (span, repr-rank) key; -1 encodes "no candidate".
            packed = np.where(self.candidate, self.span * n + self.rank, -1)
            b1 = packed.copy()
            np.maximum.at(b1, edst[selc], packed[esrc[selc]])
            self.b1 = b1
            return self._broadcast(JrsSupportMsg()), ()

        if sub == 5:
            # best2: a sender relays its best1 key iff best_span > 0,
            # which is exactly b1 >= 0 (candidates have span > 0); -1
            # contributions are no-ops under max, matching the skip.
            sel = live[esrc]
            b2 = self.b1.copy()
            np.maximum.at(b2, edst[sel], self.b1[esrc[sel]])
            self.b2 = b2
            joined = np.zeros(n, dtype=bool)
            res_pos = self.residual > 0
            rindptr, rsrc = plan.rindptr, plan.rsrc
            for i in np.nonzero(live & self.candidate)[0]:
                row = slice(rindptr[i], rindptr[i + 1])
                nbr = rsrc[row]
                sup = ([int(self.support[i])] if res_pos[i] else []) + \
                    [int(s) for s in self.support[nbr[res_pos[nbr]]]]
                med = float(np.median(sup))
                p = 1.0 if med <= 1 else 1.0 / med
                joined[i] = self.rngs[i].random() < p
            self.joined = joined
            return self._broadcast(JrsJoinMsg()), ()

        # sub == 6: coin-join processing + the deterministic fallback.
        sel = live[esrc]
        any_join1 = self.joined | (np.bincount(
            edst[sel & self.joined[esrc]], minlength=n) > 0)
        fallback = (self.candidate & ~self.joined & ~any_join1
                    & (self.b2 == self.span * n + self.rank))
        self.joined = self.joined | fallback
        return self._broadcast(JrsFallbackMsg()), ()

    def finalize(self) -> None:
        for i, proc in enumerate(self.procs):
            proc.member = bool(self.member[i])
            proc.phases = int(self.phases[i])
