"""The synchronous round loop.

:func:`run_protocol` drives every node's generator in lockstep:

1. at each round boundary, crash faults are applied;
2. every live node's generator is advanced with its inbox (messages
   delivered from the previous round);
3. queued outgoing messages are passed through the fault injectors,
   accounted (count, bits, max size), and become the next round's inboxes;
4. the loop ends when every generator has finished (or crashed), returning
   a :class:`~repro.types.RunStats`.

One generator ``yield`` == one communication round, matching the paper's
synchronous model where "in each round, every node can send a message to
each of its neighbors".
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.engine.artifacts import _stable_sorted
from repro.engine.instrumentation import Instrumentation
from repro.errors import SimulationError
from repro.simulation.faults import FaultInjector
from repro.simulation.network import SynchronousNetwork
from repro.simulation.trace import TraceRecorder
from repro.types import NodeId, RunStats


def run_protocol(network: SynchronousNetwork, *,
                 max_rounds: int = 100_000,
                 injectors: Iterable[FaultInjector] = (),
                 trace: Optional[TraceRecorder] = None,
                 keep_round_stats: bool = False,
                 instrumentation: Optional[Instrumentation] = None,
                 legacy_transport: bool = False,
                 reference_protocols: bool = False) -> RunStats:
    """Execute all node processes on ``network`` to completion.

    Parameters
    ----------
    network:
        A fully-populated :class:`SynchronousNetwork`.
    max_rounds:
        Safety valve: raise :class:`SimulationError` if the protocol has not
        terminated after this many rounds (catches livelock bugs).
    injectors:
        Fault injectors applied to every round's traffic and boundaries.
    trace:
        Optional event recorder; the runner emits ``"round"`` and
        ``"crash"`` events, and hands the recorder to node processes that
        declare a ``trace`` attribute.
    keep_round_stats:
        When true, ``RunStats.per_round`` is populated.
    instrumentation:
        Optional externally-owned accountant; by default a fresh
        :class:`~repro.engine.instrumentation.Instrumentation` is built
        from the network's size model.
    legacy_transport:
        When true, run the pre-columnar per-edge data plane: expand every
        broadcast eagerly, apply injectors via ``filter_messages``, and
        account each delivered copy individually.  Kept as the reference
        implementation — ``tests/test_transport_equivalence.py`` pins the
        columnar path to it bit-for-bit.
    reference_protocols:
        When true, skip the columnar protocol stepping plane and drive
        the per-node generators even for stock protocols.  The per-node
        path is the reference oracle; the batched plane
        (:mod:`repro.simulation.columnar`) is pinned bit-identical to
        it.  Ineligible runs (exotic process subclasses, third-party
        injectors, tracing, strict bit budgets) fall back to the
        per-node loop automatically regardless of this flag.

    Returns
    -------
    RunStats
        Aggregate round/message/bit accounting for the execution.
    """
    injectors = list(injectors)

    if not reference_protocols and not legacy_transport and trace is None:
        from repro.simulation.columnar import try_columnar
        stats = try_columnar(network, max_rounds=max_rounds,
                             injectors=injectors,
                             keep_round_stats=keep_round_stats,
                             instrumentation=instrumentation)
        if stats is not None:
            return stats

    instr = instrumentation if instrumentation is not None else Instrumentation(
        network.size_model, keep_round_stats=keep_round_stats)

    # Hand the trace recorder to any process that wants one.
    if trace is not None:
        for proc in network.processes.values():
            if hasattr(proc, "trace"):
                proc.trace = trace

    generators: Dict[NodeId, object] = {}
    for node_id, proc in network.processes.items():
        proc.finished = False
        proc.crashed = False
        ctx = network.make_context(node_id)
        proc.ctx = ctx
        gen = proc.run(ctx)
        if not hasattr(gen, "send"):
            raise SimulationError(
                f"{type(proc).__name__}.run must be a generator (use 'yield')"
            )
        generators[node_id] = gen

    inboxes: Dict[NodeId, List[Tuple[NodeId, object]]] = {}
    live = set(generators)
    # Deterministic advance order, id-sorted: enqueue order — and hence
    # every per-destination inbox — is sorted by sender id.  This is the
    # delivery-order contract shared by all backends (the synchronizers
    # sort at consume time), which the columnar gather path and
    # order-sensitive float accumulations in protocols rely on.
    node_order = _stable_sorted(generators)
    # Advance rows resolved once: (node_id, proc, ctx, gen, gen.send).
    advance_rows = [
        (node_id, network.processes[node_id],
         network.processes[node_id].ctx, generators[node_id],
         generators[node_id].send)
        for node_id in node_order
    ]

    for round_index in range(max_rounds + 1):
        # --- apply crash faults scheduled for this boundary -------------
        for injector in injectors:
            for victim in injector.crashes_at(round_index):
                if victim in live:
                    live.discard(victim)
                    proc = network.processes[victim]
                    proc.crashed = True
                    generators[victim].close()
                    if trace is not None:
                        trace.record(round_index, "crash", node=victim)

        if not live:
            break

        # --- advance every live generator one round ---------------------
        finished_now = []
        all_live = len(live) == len(advance_rows)
        for node_id, proc, ctx, gen, send in advance_rows:
            if not all_live and node_id not in live:
                continue
            ctx.round_index = round_index
            try:
                if round_index == 0:
                    next(gen)
                else:
                    send(inboxes.get(node_id, ()))
            except StopIteration:
                proc.finished = True
                finished_now.append(node_id)
        for node_id in finished_now:
            live.discard(node_id)

        # --- collect, filter, account, and deliver messages --------------
        if legacy_transport:
            sent = network.drain_outbox()
            # Messages from nodes that crashed mid-round never made it
            # out; filter_messages also drops traffic to/from crashed
            # nodes.
            for injector in injectors:
                sent = injector.filter_messages(round_index, sent)

            if not live and not sent:
                # Everyone finished this round and nothing is in flight.
                break

            instr.begin_round()
            for _, _, msg in sent:
                instr.payload(msg)
            if trace is not None:
                trace.record(round_index, "round",
                             messages=instr.round_messages,
                             bits=instr.round_bits, live=len(live))
            instr.end_round(round_index, len(live))

            inboxes = network.group_by_dest(sent)
        else:
            batch = network.drain_batch()
            # Crash injectors silence records in batch form; loss draws
            # one Bernoulli vector over the expanded edge list.
            for injector in injectors:
                batch = injector.filter_batch(round_index, batch)

            delivered, per_class = batch.deliver()

            if not live and not per_class:
                # Everyone finished this round and nothing is in flight
                # (records whose fan-out was entirely filtered count as
                # nothing in flight, matching the per-edge path).
                break

            instr.begin_round()
            for count, sample in per_class.values():
                instr.payload_class(sample, count)
            if trace is not None:
                trace.record(round_index, "round",
                             messages=instr.round_messages,
                             bits=instr.round_bits, live=len(live))
            instr.end_round(round_index, len(live))

            inboxes = delivered
    else:
        raise SimulationError(
            f"protocol did not terminate within {max_rounds} rounds "
            f"({len(live)} node(s) still live)"
        )

    return instr.stats
