"""Vectorized per-node PCG64 streams, bit-identical to ``spawn_node_rngs``.

:func:`repro.simulation.rng.spawn_node_rngs` gives every node an
independent ``numpy.random.Generator`` spawned from one root
``SeedSequence``.  That contract is perfect for reproducibility but
ruinous for the vectorized direct backends: at n = 10^5 the spawn alone
costs seconds, and every round of Algorithm 3's election pays one Python
``Generator.integers`` call per active node.

This module re-implements the exact numpy pipeline — SeedSequence
entropy pooling, ``generate_state``, PCG64 seeding, the 128-bit LCG
step, XSL-RR output, Lemire's bounded-rejection sampler, and the
53-bit ``random()`` mapping — as elementwise numpy array operations over
*all node streams at once*.  Per-node states live in four ``uint64``
limb arrays; a draw for a set of lanes steps exactly those lanes, so
every node's stream position stays equal to what the per-node reference
loop would have left behind.  Outputs are bit-identical, not just
statistically equivalent: the kernel-vs-reference equivalence suite
(tests/test_mode_equivalence.py) and this module's own import-time
self-test both compare against real ``Generator`` objects.

Safety valve: :func:`node_stream_pool` runs a one-shot self-test of the
whole vector pipeline against numpy's own generators the first time it
is called.  If numpy's internals ever change (different SeedSequence
mixing, a new bounded sampler), the self-test fails and every caller
transparently gets a :class:`_FallbackPool` that wraps real per-node
generators — slower, but still correct and still bit-identical to the
reference.  Bounded draws additionally require Lemire's 64-bit path
(range width > 2^32); smaller ranges use numpy's buffered 32-bit
sampler, which keeps half-word state we do not model, so those callers
are routed to the fallback as well via ``bounded_ranges``.

Nodes that outgrow vector draws — e.g. a leader running the adoption
rule's ``choice``-based selection — call :meth:`NodeStreamPool.generator`
to materialize a real ``Generator`` *positioned at the lane's current
stream state* (PCG64 accepts a raw ``(state, inc)`` assignment).  The
lane is then owned by that generator; vector draws for it are a
programming error and raise.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.simulation.rng import _stable_order, spawn_node_rngs
from repro.types import NodeId

__all__ = ["NodeStreamPool", "node_stream_pool"]

# SeedSequence pool-mixing constants (O'Neill's seed_seq_fe as adopted
# by numpy; 32-bit arithmetic).
_INIT_A = 0x43B0D7E5
_MULT_A = 0x931E8875
_INIT_B = 0x8B51F9DD
_MULT_B = 0x58F38DED
_MIX_MULT_L = 0xCA01F9DD
_MIX_MULT_R = 0x4973F715
_XSHIFT = 16
_POOL_SIZE = 4

_M32 = 0xFFFFFFFF
_M64 = (1 << 64) - 1

# PCG64's 128-bit LCG multiplier, split into 64-bit halves.
_PCG_MULT_HI = np.uint64(0x2360ED051FC65DA4)
_PCG_MULT_LO = np.uint64(0x4385DF649FCCF645)

_U32_MASK = np.uint64(_M32)
_SHIFT32 = np.uint64(32)


# ----------------------------------------------------------------------
# SeedSequence emulation (scalar 32-bit arithmetic on Python ints; only
# the spawn-key word differs across lanes, so the per-lane work is a
# single vectorized hashmix/mix round)
# ----------------------------------------------------------------------

def _entropy_words(entropy: int) -> List[int]:
    """``entropy`` as little-endian 32-bit words (numpy's coercion)."""
    words = []
    while True:
        words.append(entropy & _M32)
        entropy >>= 32
        if entropy == 0:
            return words


def _spawn_pools(entropy: int, n: int) -> np.ndarray:
    """Entropy pools of ``SeedSequence(entropy).spawn(n)``, shape (4, n).

    The assembled entropy of child ``i`` is the root's entropy words,
    zero-padded to the pool size, with the spawn key ``(i,)`` appended.
    Only that final word varies per child, so the pool fill and the
    full O(pool^2) mixing round are lane-independent scalars; each lane
    pays one hashmix + four mixes.
    """
    words = _entropy_words(entropy)
    if len(words) < _POOL_SIZE:
        words = words + [0] * (_POOL_SIZE - len(words))

    hash_const = _INIT_A

    def hashmix(value: int) -> int:
        nonlocal hash_const
        value = (value ^ hash_const) & _M32
        hash_const = (hash_const * _MULT_A) & _M32
        value = (value * hash_const) & _M32
        return value ^ (value >> _XSHIFT)

    def mix(x: int, y: int) -> int:
        result = (x * _MIX_MULT_L - y * _MIX_MULT_R) & _M32
        return result ^ (result >> _XSHIFT)

    # Pool fill + all-pairs mixing: identical for every child.
    pool = [hashmix(words[i]) for i in range(_POOL_SIZE)]
    for i_src in range(_POOL_SIZE):
        for i_dst in range(_POOL_SIZE):
            if i_src != i_dst:
                pool[i_dst] = mix(pool[i_dst], hashmix(pool[i_src]))
    # Entropy words beyond the pool size: all scalar except the spawn
    # key, which is the final word and equals the lane index.
    for i_src in range(_POOL_SIZE, len(words)):
        for i_dst in range(_POOL_SIZE):
            pool[i_dst] = mix(pool[i_dst], hashmix(words[i_src]))

    # The spawn-key word (= the lane index): mixed into each pool word
    # with a *fresh* hashmix — hash_const advances once per destination,
    # exactly as in the scalar loop above.
    lane = np.arange(n, dtype=np.uint64)
    pools = np.empty((_POOL_SIZE, n), dtype=np.uint64)
    mml = np.uint64(_MIX_MULT_L)
    mmr = np.uint64(_MIX_MULT_R)
    xs = np.uint64(_XSHIFT)
    for i_dst in range(_POOL_SIZE):
        value = (lane ^ np.uint64(hash_const)) & _U32_MASK
        hash_const = (hash_const * _MULT_A) & _M32
        value = (value * np.uint64(hash_const)) & _U32_MASK
        value ^= value >> xs
        result = (np.uint64(pool[i_dst]) * mml - value * mmr) & _U32_MASK
        pools[i_dst] = result ^ (result >> xs)
    return pools


def _generate_state_words(pools: np.ndarray) -> List[np.ndarray]:
    """``generate_state(4, uint64)`` per lane: four uint64 arrays."""
    hash_const = _INIT_B
    out32 = []
    for i in range(8):
        value = pools[i % _POOL_SIZE].copy()
        value = (value ^ np.uint64(hash_const)) & _U32_MASK
        hash_const = (hash_const * _MULT_B) & _M32
        value = (value * np.uint64(hash_const)) & _U32_MASK
        value ^= value >> np.uint64(_XSHIFT)
        out32.append(value)
    return [out32[2 * i] | (out32[2 * i + 1] << _SHIFT32) for i in range(4)]


# ----------------------------------------------------------------------
# 128-bit limb arithmetic (uint64 hi/lo pairs, wrapping)
# ----------------------------------------------------------------------

def _mul64_full(a: np.ndarray, b: np.ndarray):
    """Full 64x64 -> 128 product via 32-bit schoolbook limbs."""
    a0 = a & _U32_MASK
    a1 = a >> _SHIFT32
    b0 = b & _U32_MASK
    b1 = b >> _SHIFT32
    p00 = a0 * b0
    p01 = a0 * b1
    p10 = a1 * b0
    mid = (p00 >> _SHIFT32) + (p01 & _U32_MASK) + (p10 & _U32_MASK)
    lo = (p00 & _U32_MASK) | ((mid & _U32_MASK) << _SHIFT32)
    hi = a1 * b1 + (p01 >> _SHIFT32) + (p10 >> _SHIFT32) + (mid >> _SHIFT32)
    return hi, lo


def _step(sh, sl, ih, il):
    """One PCG64 LCG step: ``state = state * MULT + inc`` mod 2^128."""
    hi, lo = _mul64_full(sl, np.broadcast_to(_PCG_MULT_LO, sl.shape))
    hi = hi + sl * _PCG_MULT_HI + sh * _PCG_MULT_LO
    new_lo = lo + il
    new_hi = hi + ih + (new_lo < lo)
    return new_hi, new_lo


def _output(sh, sl):
    """PCG64 XSL-RR output of a (post-step) state."""
    rot = sh >> np.uint64(58)
    value = sh ^ sl
    return (value >> rot) | (value << ((np.uint64(64) - rot) & np.uint64(63)))


# ----------------------------------------------------------------------
# The pools
# ----------------------------------------------------------------------

class NodeStreamPool:
    """Per-node RNG streams addressable by *lane* (stable-order index).

    ``lane`` maps node id -> lane; for the common ``range(n)`` node set
    the mapping is the identity and callers may index by node directly.
    Obtain instances via :func:`node_stream_pool`, which picks the
    vectorized implementation when it can guarantee bit-exactness and
    the generator-wrapping fallback otherwise.
    """

    lane: Dict[NodeId, int]
    nodes: List[NodeId]

    def random(self, lanes: np.ndarray) -> np.ndarray:
        """One ``Generator.random()`` draw per lane, in lane order."""
        raise NotImplementedError

    def draw_ints(self, lanes: np.ndarray, high: int) -> np.ndarray:
        """One ``Generator.integers(1, high + 1)`` draw per lane."""
        raise NotImplementedError

    def generator(self, lane: int) -> np.random.Generator:
        """A real ``Generator`` owning this lane's stream from here on."""
        raise NotImplementedError


class _VectorPool(NodeStreamPool):
    def __init__(self, node_list: Sequence[NodeId], seed):
        n = len(node_list)
        self.nodes = list(node_list)
        self.lane = {v: i for i, v in enumerate(node_list)}
        # Reading .entropy off a real root SeedSequence handles
        # seed=None (OS entropy) and arbitrary-width ints uniformly.
        entropy = int(np.random.SeedSequence(seed).entropy)
        with np.errstate(over="ignore"):
            w0, w1, w2, w3 = _generate_state_words(_spawn_pools(entropy, n))
            # pcg_setseq_128_srandom_r: state = step(inc + initstate).
            one = np.uint64(1)
            self._ih = (w2 << one) | (w3 >> np.uint64(63))
            self._il = (w3 << one) | one
            sl = self._il + w1
            sh = self._ih + w0 + (sl < self._il)
            self._sh, self._sl = _step(sh, sl, self._ih, self._il)
        self._materialized: Dict[int, np.random.Generator] = {}

    def _next64(self, lanes: np.ndarray) -> np.ndarray:
        if self._materialized:
            owned = [i for i in lanes.tolist() if i in self._materialized]
            if owned:
                raise RuntimeError(
                    f"lanes {owned[:5]} are owned by materialized "
                    "generators; vector draws would desynchronize them")
        with np.errstate(over="ignore"):
            sh, sl = _step(self._sh[lanes], self._sl[lanes],
                           self._ih[lanes], self._il[lanes])
            self._sh[lanes] = sh
            self._sl[lanes] = sl
            return _output(sh, sl)

    def random(self, lanes: np.ndarray) -> np.ndarray:
        return (self._next64(lanes) >> np.uint64(11)) * (2.0 ** -53)

    def draw_ints(self, lanes: np.ndarray, high: int) -> np.ndarray:
        # Generator.integers(1, high + 1): off = 1, inclusive range
        # width rng = high - 1.  node_stream_pool guarantees Lemire's
        # 64-bit path (rng > 2^32 - 1), whose acceptance threshold is
        # ((2^64 - rng_excl) % rng_excl) on the low product half;
        # each rejected lane consumes exactly one more raw u64.
        rng_excl = np.uint64(high)
        threshold = np.uint64(((1 << 64) - high) % high)
        out = np.empty(lanes.size, dtype=np.uint64)
        pos = np.arange(lanes.size)
        pending = np.asarray(lanes)
        while pending.size:
            with np.errstate(over="ignore"):
                hi, lo = _mul64_full(self._next64(pending),
                                     np.broadcast_to(rng_excl, pending.shape))
            accepted = lo >= threshold
            out[pos[accepted]] = hi[accepted]
            pos = pos[~accepted]
            pending = pending[~accepted]
        return (out + np.uint64(1)).astype(np.int64)

    def generator(self, lane: int) -> np.random.Generator:
        gen = self._materialized.get(lane)
        if gen is None:
            bg = np.random.PCG64()
            bg.state = {
                "bit_generator": "PCG64",
                "state": {
                    "state": (int(self._sh[lane]) << 64) | int(self._sl[lane]),
                    "inc": (int(self._ih[lane]) << 64) | int(self._il[lane]),
                },
                "has_uint32": 0,
                "uinteger": 0,
            }
            gen = np.random.Generator(bg)
            self._materialized[lane] = gen
        return gen


class _FallbackPool(NodeStreamPool):
    """Same interface over real per-node generators (the safety net)."""

    def __init__(self, node_list: Sequence[NodeId], seed):
        self.nodes = list(node_list)
        self.lane = {v: i for i, v in enumerate(node_list)}
        self._rngs = spawn_node_rngs(node_list, seed)

    def random(self, lanes: np.ndarray) -> np.ndarray:
        return np.fromiter(
            (self._rngs[self.nodes[i]].random() for i in lanes.tolist()),
            dtype=np.float64, count=len(lanes))

    def draw_ints(self, lanes: np.ndarray, high: int) -> np.ndarray:
        return np.fromiter(
            (int(self._rngs[self.nodes[i]].integers(1, high + 1))
             for i in lanes.tolist()),
            dtype=np.int64, count=len(lanes))

    def generator(self, lane: int) -> np.random.Generator:
        return self._rngs[self.nodes[lane]]


# ----------------------------------------------------------------------
# Factory + self-test
# ----------------------------------------------------------------------

_vector_verified: Optional[bool] = None


def _self_test() -> bool:
    """Compare the whole vector pipeline against numpy's generators."""
    try:
        for seed in (12345, 0):
            pool = _VectorPool(list(range(6)), seed)
            ref = spawn_node_rngs(range(6), seed)
            lanes = np.arange(6)
            if [float(x) for x in pool.random(lanes)] != \
                    [ref[v].random() for v in range(6)]:
                return False
            high = 10 ** 16
            for _ in range(3):  # repeat to exercise rejection re-draws
                drawn = pool.draw_ints(lanes, high)
                want = [int(ref[v].integers(1, high + 1)) for v in range(6)]
                if [int(x) for x in drawn] != want:
                    return False
            # Materialization must continue the stream in place.
            gen = pool.generator(2)
            if gen.random() != ref[2].random():
                return False
            if [int(x) for x in gen.integers(0, 2 ** 62, size=3)] != \
                    [int(x) for x in ref[2].integers(0, 2 ** 62, size=3)]:
                return False
        return True
    except Exception:
        return False


def node_stream_pool(nodes: Iterable[NodeId], seed,
                     *, bounded_ranges: Sequence[int] = ()) -> NodeStreamPool:
    """A :class:`NodeStreamPool` over ``nodes``, vectorized when exact.

    ``bounded_ranges`` lists the inclusive range widths of every
    ``integers``-style draw the caller intends to make; any width at or
    below 2^32 - 1 selects numpy's buffered 32-bit sampler, which the
    vector engine does not model, so such callers get the fallback.
    """
    global _vector_verified
    node_list = _stable_order(nodes)
    eligible = all(_M32 < r < _M64 for r in bounded_ranges)
    if eligible:
        if _vector_verified is None:
            _vector_verified = _self_test()
        if _vector_verified:
            return _VectorPool(node_list, seed)
    return _FallbackPool(node_list, seed)
