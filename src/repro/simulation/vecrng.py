"""Vectorized per-node PCG64 streams, bit-identical to ``spawn_node_rngs``.

:func:`repro.simulation.rng.spawn_node_rngs` gives every node an
independent ``numpy.random.Generator`` spawned from one root
``SeedSequence``.  That contract is perfect for reproducibility but
ruinous for the vectorized direct backends: at n = 10^5 the spawn alone
costs seconds, and every round of Algorithm 3's election pays one Python
``Generator.integers`` call per active node.

This module re-implements the exact numpy pipeline — SeedSequence
entropy pooling, ``generate_state``, PCG64 seeding, the 128-bit LCG
step, XSL-RR output, Lemire's bounded-rejection sampler, and the
53-bit ``random()`` mapping — as elementwise numpy array operations over
*all node streams at once*.  Per-node states live in four ``uint64``
limb arrays; a draw for a set of lanes steps exactly those lanes, so
every node's stream position stays equal to what the per-node reference
loop would have left behind.  Outputs are bit-identical, not just
statistically equivalent: the kernel-vs-reference equivalence suite
(tests/test_mode_equivalence.py) and this module's own import-time
self-test both compare against real ``Generator`` objects.

Safety valve: :func:`node_stream_pool` runs a one-shot self-test of the
whole vector pipeline against numpy's own generators the first time it
is called.  If numpy's internals ever change (different SeedSequence
mixing, a new bounded sampler), the self-test fails and every caller
transparently gets a :class:`_FallbackPool` that wraps real per-node
generators — slower, but still correct and still bit-identical to the
reference.  Bounded draws additionally require Lemire's 64-bit path
(range width > 2^32); smaller ranges use numpy's buffered 32-bit
sampler, which keeps half-word state we do not model, so those callers
are routed to the fallback as well via ``bounded_ranges``.

Nodes that outgrow vector draws — e.g. a leader running the adoption
rule's ``choice``-based selection — call :meth:`NodeStreamPool.generator`
to materialize a real ``Generator`` *positioned at the lane's current
stream state* (PCG64 accepts a raw ``(state, inc)`` assignment).  The
lane is then owned by that generator; vector draws for it are a
programming error and raise.

Replica batching: :func:`replica_node_streams` generalizes the lane
space from ``n`` nodes to ``R x n`` (replica, node) pairs — replica
``r`` occupies flat lanes ``[r*n, (r+1)*n)``, and its streams are
bit-exact equal to a single-run pool seeded with ``seeds[r]`` (the limb
states are literally the concatenation of the per-seed pools').  One
vector draw can therefore advance an entire Monte Carlo sweep at once;
:meth:`ReplicaNodeStreams.replica_pool` exposes any one replica through
the ordinary :class:`NodeStreamPool` interface for per-node code paths.

Grid batching: :class:`GridReplicaStreams` widens the pool once more,
from ``R x n`` to ``sum_g(R x n_g)`` over G stacked topologies.
SeedSequence spawn child ``i`` depends only on (seed entropy, i), so
graph ``g``'s limbs are a *prefix copy* of one master ``(R, n_max)``
pool — replica ``r`` of graph ``g`` stays definitionally bit-exact to
``node_stream_pool(range(n_g), seeds[r])``.
:meth:`GridReplicaStreams.graph_view` exposes any one graph through the
:class:`ReplicaNodeStreams` interface for per-graph code paths.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.simulation.rng import _stable_order, spawn_node_rngs
from repro.types import NodeId

__all__ = ["GridReplicaStreams", "NodeStreamPool", "ReplicaNodeStreams",
           "node_stream_pool", "replica_node_streams",
           "vector_streams_available"]

# SeedSequence pool-mixing constants (O'Neill's seed_seq_fe as adopted
# by numpy; 32-bit arithmetic).
_INIT_A = 0x43B0D7E5
_MULT_A = 0x931E8875
_INIT_B = 0x8B51F9DD
_MULT_B = 0x58F38DED
_MIX_MULT_L = 0xCA01F9DD
_MIX_MULT_R = 0x4973F715
_XSHIFT = 16
_POOL_SIZE = 4

_M32 = 0xFFFFFFFF
_M64 = (1 << 64) - 1

# PCG64's 128-bit LCG multiplier, split into 64-bit halves (and the low
# half's 32-bit limbs, precomputed for the constant-multiplier step).
_PCG_MULT_HI = np.uint64(0x2360ED051FC65DA4)
_PCG_MULT_LO = np.uint64(0x4385DF649FCCF645)
_PCG_MULT_LO_0 = np.uint64(0x4385DF649FCCF645 & _M32)
_PCG_MULT_LO_1 = np.uint64(0x4385DF649FCCF645 >> 32)

_U32_MASK = np.uint64(_M32)
_SHIFT32 = np.uint64(32)

#: Lanes per internal block of a vector draw.  Chunking keeps the ~20
#: uint64 temporaries of the limb pipeline small enough to stay in the
#: allocator's reuse pools and the L2 cache (64 KiB each at 2^13 lanes;
#: beyond the ~128 KiB malloc mmap threshold every temporary would pay
#: fresh page faults), which matters once replica batching widens a
#: draw to R x n lanes — a 3e5-lane draw is ~2x faster chunked than
#: streamed through memory whole.
_CHUNK = 1 << 13

#: Throwaway entropy for generator materialization — the PCG64 state it
#: seeds is immediately overwritten with the lane's own state.
_MATERIALIZE_SS = np.random.SeedSequence(0)


def materialize_bit_generator() -> np.random.PCG64:
    """A throwaway-seeded ``PCG64`` meant to have a lane state assigned
    (see :meth:`GridReplicaStreams.snapshot_state`).  Avoids the no-arg
    form's OS-entropy pull for state that is immediately overwritten.
    """
    return np.random.PCG64(_MATERIALIZE_SS)

def _dispatch():
    """The kernel provider registry (:mod:`repro.engine.dispatch`).

    Imported lazily inside the function: this module sits below the
    engine package in the import graph (``engine.kernels`` and the
    backends import it), so a top-level import would be circular.  One
    compiled C loop replaces the ~30 full-array passes of the limb
    pipeline on the batched hot paths; bit-exact with the NumPy paths
    (pinned by tests) and absent without a C compiler.
    """
    from repro.engine import dispatch
    return dispatch


# ----------------------------------------------------------------------
# SeedSequence emulation (scalar 32-bit arithmetic on Python ints; only
# the spawn-key word differs across lanes, so the per-lane work is a
# single vectorized hashmix/mix round)
# ----------------------------------------------------------------------

def _entropy_words(entropy: int) -> List[int]:
    """``entropy`` as little-endian 32-bit words (numpy's coercion)."""
    words = []
    while True:
        words.append(entropy & _M32)
        entropy >>= 32
        if entropy == 0:
            return words


def _pool_prefix(entropy: int):
    """The lane-independent part of ``SeedSequence(entropy).spawn``:
    the four pool words after the all-pairs mixing round plus the
    ``hash_const`` value at which the per-lane spawn-key mix begins."""
    words = _entropy_words(entropy)
    if len(words) < _POOL_SIZE:
        words = words + [0] * (_POOL_SIZE - len(words))

    hash_const = _INIT_A

    def hashmix(value: int) -> int:
        nonlocal hash_const
        value = (value ^ hash_const) & _M32
        hash_const = (hash_const * _MULT_A) & _M32
        value = (value * hash_const) & _M32
        return value ^ (value >> _XSHIFT)

    def mix(x: int, y: int) -> int:
        result = (x * _MIX_MULT_L - y * _MIX_MULT_R) & _M32
        return result ^ (result >> _XSHIFT)

    # Pool fill + all-pairs mixing: identical for every child.
    pool = [hashmix(words[i]) for i in range(_POOL_SIZE)]
    for i_src in range(_POOL_SIZE):
        for i_dst in range(_POOL_SIZE):
            if i_src != i_dst:
                pool[i_dst] = mix(pool[i_dst], hashmix(pool[i_src]))
    # Entropy words beyond the pool size: all scalar except the spawn
    # key, which is the final word and equals the lane index.
    for i_src in range(_POOL_SIZE, len(words)):
        for i_dst in range(_POOL_SIZE):
            pool[i_dst] = mix(pool[i_dst], hashmix(words[i_src]))
    return pool, hash_const


def _spawn_pools(entropy: int, n: int) -> np.ndarray:
    """Entropy pools of ``SeedSequence(entropy).spawn(n)``, shape (4, n).

    The assembled entropy of child ``i`` is the root's entropy words,
    zero-padded to the pool size, with the spawn key ``(i,)`` appended.
    Only that final word varies per child, so the pool fill and the
    full O(pool^2) mixing round are lane-independent scalars; each lane
    pays one hashmix + four mixes.
    """
    pool, hash_const = _pool_prefix(entropy)

    # The spawn-key word (= the lane index): mixed into each pool word
    # with a *fresh* hashmix — hash_const advances once per destination,
    # exactly as in the scalar loop above.
    lane = np.arange(n, dtype=np.uint64)
    pools = np.empty((_POOL_SIZE, n), dtype=np.uint64)
    mml = np.uint64(_MIX_MULT_L)
    mmr = np.uint64(_MIX_MULT_R)
    xs = np.uint64(_XSHIFT)
    for i_dst in range(_POOL_SIZE):
        value = (lane ^ np.uint64(hash_const)) & _U32_MASK
        hash_const = (hash_const * _MULT_A) & _M32
        value = (value * np.uint64(hash_const)) & _U32_MASK
        value ^= value >> xs
        result = (np.uint64(pool[i_dst]) * mml - value * mmr) & _U32_MASK
        pools[i_dst] = result ^ (result >> xs)
    return pools


def _generate_state_words(pools: np.ndarray) -> List[np.ndarray]:
    """``generate_state(4, uint64)`` per lane: four uint64 arrays."""
    hash_const = _INIT_B
    out32 = []
    for i in range(8):
        value = pools[i % _POOL_SIZE].copy()
        value = (value ^ np.uint64(hash_const)) & _U32_MASK
        hash_const = (hash_const * _MULT_B) & _M32
        value = (value * np.uint64(hash_const)) & _U32_MASK
        value ^= value >> np.uint64(_XSHIFT)
        out32.append(value)
    return [out32[2 * i] | (out32[2 * i + 1] << _SHIFT32) for i in range(4)]


# ----------------------------------------------------------------------
# 128-bit limb arithmetic (uint64 hi/lo pairs, wrapping)
# ----------------------------------------------------------------------

def _mul64_full(a: np.ndarray, b: np.ndarray):
    """Full 64x64 -> 128 product via 32-bit schoolbook limbs."""
    a0 = a & _U32_MASK
    a1 = a >> _SHIFT32
    b0 = b & _U32_MASK
    b1 = b >> _SHIFT32
    p00 = a0 * b0
    p01 = a0 * b1
    p10 = a1 * b0
    mid = (p00 >> _SHIFT32) + (p01 & _U32_MASK) + (p10 & _U32_MASK)
    lo = (p00 & _U32_MASK) | ((mid & _U32_MASK) << _SHIFT32)
    hi = a1 * b1 + (p01 >> _SHIFT32) + (p10 >> _SHIFT32) + (mid >> _SHIFT32)
    return hi, lo


def _umulhi(a: np.ndarray, b) -> np.ndarray:
    """Upper 64 bits of a 64x64 product with a *scalar* ``b`` (the
    constant-multiplier half of :func:`_mul64_full`: the low half of
    the product, when needed, is just the wrapping ``a * b``)."""
    b = np.uint64(b)
    b0 = b & _U32_MASK
    b1 = b >> _SHIFT32
    a0 = a & _U32_MASK
    a1 = a >> _SHIFT32
    p00 = a0 * b0
    p01 = a0 * b1
    p10 = a1 * b0
    mid = (p00 >> _SHIFT32) + (p01 & _U32_MASK) + (p10 & _U32_MASK)
    return a1 * b1 + (p01 >> _SHIFT32) + (p10 >> _SHIFT32) + (mid >> _SHIFT32)


def _step(sh, sl, ih, il):
    """One PCG64 LCG step: ``state = state * MULT + inc`` mod 2^128.

    The low-limb 64x64 -> 128 product is expanded inline against the
    multiplier's precomputed 32-bit limbs (``mid << 32`` wraps modulo
    2^64, which *is* the masked shift), keeping the hot path at the
    minimum number of full-array passes.
    """
    a0 = sl & _U32_MASK
    a1 = sl >> _SHIFT32
    p00 = a0 * _PCG_MULT_LO_0
    p01 = a0 * _PCG_MULT_LO_1
    p10 = a1 * _PCG_MULT_LO_0
    mid = (p00 >> _SHIFT32) + (p01 & _U32_MASK) + (p10 & _U32_MASK)
    lo = (p00 & _U32_MASK) | (mid << _SHIFT32)
    hi = (a1 * _PCG_MULT_LO_1 + (p01 >> _SHIFT32) + (p10 >> _SHIFT32)
          + (mid >> _SHIFT32))
    hi = hi + sl * _PCG_MULT_HI + sh * _PCG_MULT_LO
    new_lo = lo + il
    new_hi = hi + ih + (new_lo < lo)
    return new_hi, new_lo


def _output(sh, sl):
    """PCG64 XSL-RR output of a (post-step) state."""
    rot = sh >> np.uint64(58)
    value = sh ^ sl
    return (value >> rot) | (value << ((np.uint64(64) - rot) & np.uint64(63)))


def _seed_limbs_multi(seeds: Sequence, n: int):
    """The four uint64 limb arrays ``(ih, il, sh, sl)`` of the PCG64
    streams of ``len(seeds)`` concatenated per-seed pools — lanes
    ``[r*n, (r+1)*n)`` hold the ``n`` streams
    ``SeedSequence(seeds[r]).spawn(n)`` would seed.

    ``ih/il`` are the per-stream increments, ``sh/sl`` the post-seeding
    LCG states (``pcg_setseq_128_srandom_r``: ``state = step(inc +
    initstate)``).  Reading ``.entropy`` off a real root SeedSequence
    handles ``seed=None`` (OS entropy) and arbitrary-width ints
    uniformly.  Only the entropy-pool spawn is per-seed; the state-word
    generation and all limb arithmetic run once over the concatenated
    lane axis (per-lane operations, so the concatenation is bit-exact
    equal to per-seed calls).
    """
    if not len(seeds):
        z = np.zeros(0, dtype=np.uint64)
        return z, z.copy(), z.copy(), z.copy()
    seed_lanes = _dispatch().kernel("seed_lanes", len(seeds) * n)
    if seed_lanes is not None:
        R = len(seeds)
        pool4 = np.empty((R, 4), dtype=np.uint32)
        hcs = np.empty(R, dtype=np.uint32)
        for r, s in enumerate(seeds):
            pool, hc = _pool_prefix(int(np.random.SeedSequence(s).entropy))
            pool4[r] = pool
            hcs[r] = hc
        total = R * n
        ih = np.empty(total, dtype=np.uint64)
        il = np.empty(total, dtype=np.uint64)
        sh = np.empty(total, dtype=np.uint64)
        sl = np.empty(total, dtype=np.uint64)
        seed_lanes(pool4, hcs, R, n, ih, il, sh, sl)
        return ih, il, sh, sl
    pools = [_spawn_pools(int(np.random.SeedSequence(s).entropy), n)
             for s in seeds]
    pools = pools[0] if len(pools) == 1 else np.concatenate(pools, axis=1)
    total = pools.shape[1]
    ih = np.empty(total, dtype=np.uint64)
    il = np.empty(total, dtype=np.uint64)
    sh = np.empty(total, dtype=np.uint64)
    sl = np.empty(total, dtype=np.uint64)
    one = np.uint64(1)
    # Same chunking as the draw path: the limb pipeline spins up ~30
    # temporaries, and at full replica width each would be a fresh
    # multi-MiB mmap'd allocation.
    with np.errstate(over="ignore"):
        for a in range(0, total, _CHUNK):
            b = min(a + _CHUNK, total)
            w0, w1, w2, w3 = _generate_state_words(pools[:, a:b])
            ih_c = (w2 << one) | (w3 >> np.uint64(63))
            il_c = (w3 << one) | one
            sl_c = il_c + w1
            sh_c = ih_c + w0 + (sl_c < il_c)
            sh_c, sl_c = _step(sh_c, sl_c, ih_c, il_c)
            ih[a:b] = ih_c
            il[a:b] = il_c
            sh[a:b] = sh_c
            sl[a:b] = sl_c
    return ih, il, sh, sl


def _seed_limbs(seed, n: int):
    """Single-seed :func:`_seed_limbs_multi` (one pool of ``n`` lanes)."""
    return _seed_limbs_multi([seed], n)


# ----------------------------------------------------------------------
# The pools
# ----------------------------------------------------------------------

class NodeStreamPool:
    """Per-node RNG streams addressable by *lane* (stable-order index).

    ``lane`` maps node id -> lane; for the common ``range(n)`` node set
    the mapping is the identity and callers may index by node directly.
    Obtain instances via :func:`node_stream_pool`, which picks the
    vectorized implementation when it can guarantee bit-exactness and
    the generator-wrapping fallback otherwise.
    """

    lane: Dict[NodeId, int]
    nodes: List[NodeId]

    def random(self, lanes: np.ndarray) -> np.ndarray:
        """One ``Generator.random()`` draw per lane, in lane order."""
        raise NotImplementedError

    def draw_ints(self, lanes: np.ndarray, high: int,
                  need: np.ndarray | None = None) -> np.ndarray:
        """One ``Generator.integers(1, high + 1)`` draw per lane.

        ``need`` (optional boolean mask over ``lanes``): the streams
        advance identically either way, but values at ``~need`` are
        unspecified — implementations may skip materializing them.
        """
        raise NotImplementedError

    def generator(self, lane: int) -> np.random.Generator:
        """A real ``Generator`` owning this lane's stream from here on."""
        raise NotImplementedError


class _LaneEngine:
    """Shared vector machinery over uint64 limb arrays, one entry per
    lane.  Subclasses decide what a lane *means* (a node, or a
    (replica, node) pair) and how the limb arrays are assembled."""

    _ih: np.ndarray
    _il: np.ndarray
    _sh: np.ndarray
    _sl: np.ndarray
    _materialized: Dict[int, np.random.Generator]

    def _next64(self, lanes: np.ndarray) -> np.ndarray:
        if self._materialized:
            owned = [i for i in lanes.tolist() if i in self._materialized]
            if owned:
                raise RuntimeError(
                    f"lanes {owned[:5]} are owned by materialized "
                    "generators; vector draws would desynchronize them")
        with np.errstate(over="ignore"):
            sh, sl = _step(self._sh[lanes], self._sl[lanes],
                           self._ih[lanes], self._il[lanes])
            self._sh[lanes] = sh
            self._sl[lanes] = sl
            return _output(sh, sl)

    def random(self, lanes: np.ndarray) -> np.ndarray:
        lanes = np.asarray(lanes)
        if lanes.size <= _CHUNK:
            return (self._next64(lanes) >> np.uint64(11)) * (2.0 ** -53)
        out = np.empty(lanes.size, dtype=np.float64)
        for a in range(0, lanes.size, _CHUNK):
            b = min(a + _CHUNK, lanes.size)
            out[a:b] = (self._next64(lanes[a:b]) >> np.uint64(11)) \
                * (2.0 ** -53)
        return out

    def draw_ints(self, lanes: np.ndarray, high: int,
                  need: np.ndarray | None = None) -> np.ndarray:
        # Generator.integers(1, high + 1): off = 1, inclusive range
        # width rng = high - 1.  node_stream_pool guarantees Lemire's
        # 64-bit path (rng > 2^32 - 1), whose acceptance threshold is
        # ((2^64 - rng_excl) % rng_excl) on the low product half;
        # each rejected lane consumes exactly one more raw u64.
        #
        # ``need`` (optional boolean mask over ``lanes``): every lane's
        # stream advances exactly as without it — the accept test only
        # needs the *wrapping* low product half — but the expensive
        # upper-half product that materializes the sampled value is
        # computed for needed lanes only; entries at ``~need`` are
        # unspecified.  Callers use this when a draw must happen for
        # stream-position fidelity but its value is provably never read
        # (e.g. an election identifier nobody is in range to compare).
        rng_excl = np.uint64(high)
        threshold = np.uint64(((1 << 64) - high) % high)
        lanes = np.asarray(lanes)
        out = np.empty(lanes.size, dtype=np.int64)
        for a in range(0, lanes.size, _CHUNK):
            b = min(a + _CHUNK, lanes.size)
            self._draw_chunk(lanes[a:b], rng_excl, threshold, out[a:b],
                             None if need is None else need[a:b])
        return out

    def draw_ints_masked(self, mask: np.ndarray, high: int,
                         need: np.ndarray | None = None,
                         out: np.ndarray | None = None) -> np.ndarray:
        """Bounded draws for every lane where ``mask`` holds.

        Equivalent to ``draw_ints(np.nonzero(mask)[0], high)`` scattered
        into a ``mask.size`` output, but dense chunks advance their
        states with pure *slice* arithmetic over the lane axis — no
        index gather/scatter — and the handful of idle lanes get their
        pre-step states restored.  Lanes outside ``mask`` end up
        untouched either way; output entries are defined only where
        ``mask`` (and ``need``, when given) hold.

        ``out`` (optional, C-contiguous int64 of ``mask.size``): write
        the drawn values into this buffer in place and return it.
        Entries at ``need & ~mask`` are set to 0 — an impossible draw
        (values start at 1), so the persistent plane doubles as an
        *inactive-masked* value plane consumers can read without
        re-gathering the mask (``engine.kernels.elect_round_batch``'s
        ``ids_masked`` fast path).  Entries outside both keep their
        previous contents; entries at ``mask & ~need`` are unspecified
        (a backend may overwrite them with unmaterialized values).
        Callers that persist a value plane across rounds (e.g.
        election identifiers) pass the plane itself and skip an
        extract/scatter pair per round.
        """
        mask = np.ascontiguousarray(mask, dtype=bool)
        if out is None:
            out = np.empty(mask.size, dtype=np.int64)
        elif (out.dtype != np.int64 or out.size != mask.size
                or not out.flags.c_contiguous):
            raise ValueError(
                "out must be a C-contiguous int64 buffer of mask.size")
        draw_masked = _dispatch().kernel("draw_masked", mask.size)
        if draw_masked is not None:
            if self._materialized:
                owned = [i for i in self._materialized if mask[i]]
                if owned:
                    raise RuntimeError(
                        f"lanes {owned[:5]} are owned by materialized "
                        "generators; vector draws would desynchronize "
                        "them")
            draw_masked(
                self._sh, self._sl, self._ih, self._il,
                mask.view(np.uint8),
                None if need is None else
                np.ascontiguousarray(need, dtype=bool).view(np.uint8),
                high, out)
            return out
        if need is not None:
            # Same plane contract as the native kernel: needed idle
            # lanes read as the impossible value 0.
            out[np.asarray(need, dtype=bool) & ~mask] = 0
        rng_excl = np.uint64(high)
        threshold = np.uint64(((1 << 64) - high) % high)
        one = np.uint64(1)
        retry = []
        with np.errstate(over="ignore"):
            for a in range(0, mask.size, _CHUNK):
                b = min(a + _CHUNK, mask.size)
                m = mask[a:b]
                cnt = int(m.sum())
                if cnt == 0:
                    continue
                if self._materialized:
                    owned = [i for i in self._materialized
                             if a <= i < b and m[i - a]]
                    if owned:
                        raise RuntimeError(
                            f"lanes {owned[:5]} are owned by materialized "
                            "generators; vector draws would desynchronize "
                            "them")
                full = cnt == b - a
                if not full and cnt * 5 < 2 * (b - a):
                    # Sparse chunk: the gathered path touches less data.
                    lanes = np.nonzero(m)[0] + a
                    tmp = np.empty(lanes.size, dtype=np.int64)
                    self._draw_chunk(
                        lanes, rng_excl, threshold, tmp,
                        None if need is None else need[a:b][m])
                    out[lanes] = tmp
                    continue
                if full:
                    idle = None
                else:
                    idle = np.nonzero(~m)[0]
                    keep_h = self._sh[a:b][idle]
                    keep_l = self._sl[a:b][idle]
                sh, sl = _step(self._sh[a:b], self._sl[a:b],
                               self._ih[a:b], self._il[a:b])
                if idle is not None:
                    sh[idle] = keep_h
                    sl[idle] = keep_l
                self._sh[a:b] = sh
                self._sl[a:b] = sl
                value = _output(sh, sl)
                lo = value * rng_excl
                rej = (lo < threshold) & m
                sel = m if need is None else m & need[a:b]
                if rej.any():
                    # Rejected lanes re-draw through the gathered loop
                    # (each consumed exactly one raw u64 here already).
                    sel = sel & ~rej
                    retry.append(np.nonzero(rej)[0] + a)
                if sel.all():
                    out[a:b] = (_umulhi(value, rng_excl)
                                + one).astype(np.int64)
                else:
                    out[a:b][sel] = (_umulhi(value[sel], rng_excl)
                                     + one).astype(np.int64)
        if retry:
            lanes = np.concatenate(retry)
            tmp = np.empty(lanes.size, dtype=np.int64)
            self._draw_chunk(lanes, rng_excl, threshold, tmp,
                             None if need is None else need[lanes])
            out[lanes] = tmp
        return out

    def _draw_chunk(self, pending: np.ndarray, rng_excl, threshold,
                    out: np.ndarray, need: np.ndarray | None) -> None:
        """Lemire-rejection bounded draws for one lane block, writing
        the values (``+1`` offset applied) into the ``out`` view."""
        one = np.uint64(1)
        pos = None  # None = all of `out` still pending (the common case)
        while pending.size:
            value = self._next64(pending)
            with np.errstate(over="ignore"):
                lo = value * rng_excl  # wrapping low half: the accept test
            accepted = lo >= threshold
            if accepted.all():
                acc_pos, acc_val = pos, value
                pending = pending[:0]
            else:
                rejected = ~accepted
                if pos is None:
                    pos = np.arange(pending.size)
                acc_pos, acc_val = pos[accepted], value[accepted]
                pos, pending = pos[rejected], pending[rejected]
            sel = need if acc_pos is None else \
                (None if need is None else need[acc_pos])
            with np.errstate(over="ignore"):
                if sel is None:
                    vals = (_umulhi(acc_val, rng_excl) + one).astype(np.int64)
                else:
                    acc_pos = np.nonzero(sel)[0] if acc_pos is None \
                        else acc_pos[sel]
                    vals = (_umulhi(acc_val[sel], rng_excl)
                            + one).astype(np.int64)
            if acc_pos is None:
                out[:] = vals
            else:
                out[acc_pos] = vals

    def generator(self, lane: int) -> np.random.Generator:
        gen = self._materialized.get(lane)
        if gen is None:
            gen = self._lane_generator(lane)
            self._materialized[lane] = gen
        return gen

    def _lane_state(self, lane: int) -> dict:
        """The lane's current stream state as a PCG64 state dict —
        assignable to any ``PCG64.state`` (the cheap half of generator
        materialization, for callers that pool one bit generator and
        swap states per event instead of constructing per lane)."""
        return {
            "bit_generator": "PCG64",
            "state": {
                "state": (int(self._sh[lane]) << 64) | int(self._sl[lane]),
                "inc": (int(self._ih[lane]) << 64) | int(self._il[lane]),
            },
            "has_uint32": 0,
            "uinteger": 0,
        }

    def _lane_generator(self, lane: int) -> np.random.Generator:
        """A fresh ``Generator`` at this lane's current stream state
        (no ownership recorded — callers manage divergence)."""
        # PCG64(<cached SeedSequence>), not PCG64(): the no-arg form
        # pulls OS entropy (~80us) and even PCG64(0) rebuilds a
        # SeedSequence (~4us) — all discarded by the state overwrite.
        bg = np.random.PCG64(_MATERIALIZE_SS)
        bg.state = self._lane_state(lane)
        return np.random.Generator(bg)


class _VectorPool(_LaneEngine, NodeStreamPool):
    def __init__(self, node_list: Sequence[NodeId], seed):
        self.nodes = list(node_list)
        self.lane = {v: i for i, v in enumerate(node_list)}
        self._ih, self._il, self._sh, self._sl = \
            _seed_limbs(seed, len(node_list))
        self._materialized = {}


class _FallbackPool(NodeStreamPool):
    """Same interface over real per-node generators (the safety net)."""

    def __init__(self, node_list: Sequence[NodeId], seed):
        self.nodes = list(node_list)
        self.lane = {v: i for i, v in enumerate(node_list)}
        self._rngs = spawn_node_rngs(node_list, seed)

    def random(self, lanes: np.ndarray) -> np.ndarray:
        return np.fromiter(
            (self._rngs[self.nodes[i]].random() for i in lanes.tolist()),
            dtype=np.float64, count=len(lanes))

    def draw_ints(self, lanes: np.ndarray, high: int,
                  need: np.ndarray | None = None) -> np.ndarray:
        # `need` is advisory; drawing every value is within contract.
        return np.fromiter(
            (int(self._rngs[self.nodes[i]].integers(1, high + 1))
             for i in lanes.tolist()),
            dtype=np.int64, count=len(lanes))

    def generator(self, lane: int) -> np.random.Generator:
        return self._rngs[self.nodes[lane]]


# ----------------------------------------------------------------------
# Replica-batched streams: lane = (replica, node)
# ----------------------------------------------------------------------

class ReplicaNodeStreams:
    """R x n per-(replica, node) RNG streams addressable by *flat lane*.

    Replica ``r`` (seeded with ``seeds[r]``) occupies flat lanes
    ``[r*n, (r+1)*n)`` in node stable order; its streams are bit-exact
    equal to ``node_stream_pool(nodes, seeds[r])``.  One vector draw over
    flat lanes from several replicas advances every addressed stream by
    exactly one value — streams are mutually independent, so batch
    composition cannot perturb any single stream's sequence.

    Obtain instances via :func:`replica_node_streams`.
    """

    lane: Dict[NodeId, int]
    nodes: List[NodeId]
    seeds: List

    @property
    def n(self) -> int:
        """Nodes per replica (the flat lane space has ``replicas * n``)."""
        return len(self.nodes)

    @property
    def replicas(self) -> int:
        return len(self.seeds)

    def flat_lane(self, replica: int, lane: int) -> int:
        """The flat lane of node-lane ``lane`` in ``replica``."""
        return replica * len(self.nodes) + lane

    def random(self, flat_lanes: np.ndarray) -> np.ndarray:
        """One ``Generator.random()`` draw per flat lane, in order."""
        raise NotImplementedError

    def draw_ints(self, flat_lanes: np.ndarray, high: int,
                  need: np.ndarray | None = None) -> np.ndarray:
        """One ``Generator.integers(1, high + 1)`` draw per flat lane
        (``need``: as in :meth:`NodeStreamPool.draw_ints`)."""
        raise NotImplementedError

    def draw_ints_masked(self, mask: np.ndarray, high: int,
                         need: np.ndarray | None = None,
                         out: np.ndarray | None = None) -> np.ndarray:
        """One bounded draw per flat lane where ``mask`` holds, returned
        as a ``mask.size`` array (entries defined where ``mask`` and
        ``need`` hold).  ``out``: optional int64 buffer written in place
        — entries at ``need & ~mask`` are set to 0 (an impossible draw,
        so the buffer doubles as an inactive-masked value plane),
        entries outside both keep their previous contents, entries at
        ``mask & ~need`` are unspecified.  The vector engine overrides
        this with a slice-arithmetic implementation; the generic form
        routes through :meth:`draw_ints`."""
        mask = np.asarray(mask, dtype=bool)
        flat = np.nonzero(mask)[0]
        if out is None:
            out = np.zeros(mask.size, dtype=np.int64)
        elif (out.dtype != np.int64 or out.size != mask.size
                or not out.flags.c_contiguous):
            raise ValueError(
                "out must be a C-contiguous int64 buffer of mask.size")
        if need is not None:
            out[np.asarray(need, dtype=bool) & ~mask] = 0
        out[flat] = self.draw_ints(
            flat, high, need=None if need is None else need[flat])
        return out

    def generator(self, flat_lane: int) -> np.random.Generator:
        """A real ``Generator`` owning this flat lane's stream."""
        raise NotImplementedError

    def replica_pool(self, replica: int) -> NodeStreamPool:
        """Replica ``replica`` as an ordinary :class:`NodeStreamPool`
        (lane-offset view; draws advance the shared stream states)."""
        return _ReplicaView(self, replica)


class _ReplicaView(NodeStreamPool):
    """One replica of a :class:`ReplicaNodeStreams`, adapted to the
    single-run pool interface by offsetting lanes."""

    def __init__(self, streams: ReplicaNodeStreams, replica: int):
        self._streams = streams
        self._offset = replica * len(streams.nodes)
        self.nodes = streams.nodes
        self.lane = streams.lane

    def random(self, lanes: np.ndarray) -> np.ndarray:
        return self._streams.random(
            np.asarray(lanes, dtype=np.int64) + self._offset)

    def draw_ints(self, lanes: np.ndarray, high: int,
                  need: np.ndarray | None = None) -> np.ndarray:
        return self._streams.draw_ints(
            np.asarray(lanes, dtype=np.int64) + self._offset, high,
            need=need)

    def generator(self, lane: int) -> np.random.Generator:
        return self._streams.generator(self._offset + lane)


class _VectorReplicaStreams(_LaneEngine, ReplicaNodeStreams):
    """Vectorized replica streams: the limb arrays are the per-seed
    single-pool limbs concatenated along the lane axis, so replica
    ``r``'s slice is *definitionally* bit-exact to ``_VectorPool(nodes,
    seeds[r])``."""

    def __init__(self, node_list: Sequence[NodeId], seeds: Sequence):
        n = len(node_list)
        self.nodes = list(node_list)
        self.lane = {v: i for i, v in enumerate(node_list)}
        self.seeds = list(seeds)
        self._ih, self._il, self._sh, self._sl = \
            _seed_limbs_multi(self.seeds, n)
        self._materialized = {}


class _FallbackReplicaStreams(ReplicaNodeStreams):
    """Replica streams over per-replica fallback pools (the safety net;
    also the home of draws needing numpy's buffered 32-bit sampler)."""

    def __init__(self, node_list: Sequence[NodeId], seeds: Sequence):
        self.nodes = list(node_list)
        self.lane = {v: i for i, v in enumerate(node_list)}
        self.seeds = list(seeds)
        self._pools = [_FallbackPool(node_list, s) for s in self.seeds]

    def _split(self, flat_lane: int):
        n = len(self.nodes)
        return flat_lane // n, flat_lane % n

    def random(self, flat_lanes: np.ndarray) -> np.ndarray:
        flat = np.asarray(flat_lanes, dtype=np.int64)
        out = np.empty(flat.size, dtype=np.float64)
        for j, i in enumerate(flat.tolist()):
            r, lane = self._split(i)
            out[j] = self._pools[r].random(np.asarray([lane]))[0]
        return out

    def draw_ints(self, flat_lanes: np.ndarray, high: int,
                  need: np.ndarray | None = None) -> np.ndarray:
        # `need` is advisory; drawing every value is within contract.
        flat = np.asarray(flat_lanes, dtype=np.int64)
        out = np.empty(flat.size, dtype=np.int64)
        for j, i in enumerate(flat.tolist()):
            r, lane = self._split(i)
            out[j] = self._pools[r].draw_ints(np.asarray([lane]), high)[0]
        return out

    def generator(self, flat_lane: int) -> np.random.Generator:
        r, lane = self._split(flat_lane)
        return self._pools[r].generator(lane)

    def replica_pool(self, replica: int) -> NodeStreamPool:
        return self._pools[replica]


# ----------------------------------------------------------------------
# Grid-batched streams: lane = (replica, graph, node)
# ----------------------------------------------------------------------

class GridReplicaStreams(_LaneEngine):
    """``sum_g(R x n_g)`` per-(replica, graph, node) RNG streams.

    The lane space is replica-major over the *concatenated* node index
    space of G stacked graphs: graph ``g``'s node ``i`` in replica ``r``
    occupies flat lane ``r * total + offsets[g] + i``, where ``total =
    sum_g n_g``.  SeedSequence spawn child ``i`` depends only on (seed
    entropy, ``i``), so the limbs of every graph are prefix slices of
    one master ``(R, n_max)`` pool — replica ``r`` of graph ``g`` is
    therefore *definitionally* bit-exact to
    ``node_stream_pool(range(n_g), seeds[r])``, and one vector draw over
    the flat plane advances an entire (graphs x replicas) grid at once.

    Construct directly only after checking
    :func:`vector_streams_available` for every bounded range the caller
    will draw; grid callers fall back to per-graph pools otherwise.
    """

    def __init__(self, node_counts: Sequence[int], seeds: Sequence):
        self.counts = [int(c) for c in node_counts]
        if any(c < 0 for c in self.counts):
            raise ValueError("node counts must be non-negative")
        self.seeds = list(seeds)
        self.offsets = np.zeros(len(self.counts) + 1, dtype=np.int64)
        np.cumsum(self.counts, out=self.offsets[1:])
        self.total = int(self.offsets[-1])
        R = len(self.seeds)
        n_max = max(self.counts, default=0)
        master = _seed_limbs_multi(self.seeds, n_max)
        limbs = []
        for src in master:
            src2 = src.reshape(R, n_max) if R else src.reshape(0, 0)
            dst = np.empty(R * self.total, dtype=np.uint64)
            dst2 = dst.reshape(R, self.total) if R else dst.reshape(0, 0)
            for g, n_g in enumerate(self.counts):
                off = int(self.offsets[g])
                dst2[:, off:off + n_g] = src2[:, :n_g]
            limbs.append(dst)
        self._ih, self._il, self._sh, self._sl = limbs
        self._materialized = {}

    @property
    def replicas(self) -> int:
        return len(self.seeds)

    def graph_slice(self, graph: int):
        """``(offset, n)`` of graph ``graph`` in the node index space."""
        return int(self.offsets[graph]), self.counts[graph]

    def flat_lane(self, replica: int, graph: int, node: int) -> int:
        """The flat lane of node ``node`` of ``graph`` in ``replica``."""
        return replica * self.total + int(self.offsets[graph]) + node

    def snapshot_generator(self, flat_lane: int) -> np.random.Generator:
        """A fresh ``Generator`` positioned at the lane's *current*
        stream state.  Unlike :meth:`generator`, no ownership is
        recorded and repeated calls return independent clones that
        diverge from the shared limbs — the k-axis fusion uses this to
        run several adoption phases off one frozen post-election state.
        The caller must not vector-draw the lane afterwards."""
        return self._lane_generator(flat_lane)

    def snapshot_state(self, flat_lane: int) -> dict:
        """:meth:`snapshot_generator`'s state dict alone — for callers
        that keep one pooled ``PCG64`` and swap lane states per event
        (a full state round-trip, so streams continue bit-identically
        to a dedicated per-lane generator)."""
        return self._lane_state(flat_lane)

    def graph_view(self, graph: int) -> ReplicaNodeStreams:
        """Graph ``graph`` as an ordinary :class:`ReplicaNodeStreams`
        (draws advance the shared grid stream states)."""
        return _GridGraphView(self, graph)


class _GridGraphView(ReplicaNodeStreams):
    """One graph of a :class:`GridReplicaStreams`, adapted to the
    replica-streams interface by remapping local flat lanes
    ``r * n_g + i`` to grid lanes ``r * total + offset + i``.

    The per-graph limb slices are *strided* views of the grid plane, so
    draws delegate to the parent engine (whose contiguous arrays keep
    the native kernels usable) rather than slicing limbs here — handing
    a strided view to ctypes would silently read the wrong lanes.
    """

    def __init__(self, streams: GridReplicaStreams, graph: int):
        self._streams = streams
        self._offset, n = streams.graph_slice(graph)
        self.nodes = list(range(n))
        self.lane = {v: v for v in self.nodes}
        self.seeds = streams.seeds

    def _grid_lanes(self, flat_lanes) -> np.ndarray:
        flat = np.asarray(flat_lanes, dtype=np.int64)
        n = len(self.nodes)
        r = flat // n
        return r * self._streams.total + self._offset + (flat - r * n)

    def random(self, flat_lanes: np.ndarray) -> np.ndarray:
        return self._streams.random(self._grid_lanes(flat_lanes))

    def draw_ints(self, flat_lanes: np.ndarray, high: int,
                  need: np.ndarray | None = None) -> np.ndarray:
        return self._streams.draw_ints(self._grid_lanes(flat_lanes), high,
                                       need=need)

    def draw_ints_masked(self, mask: np.ndarray, high: int,
                         need: np.ndarray | None = None,
                         out: np.ndarray | None = None) -> np.ndarray:
        """Masked draw over this graph's ``R x n_g`` plane, expanded to
        a full-grid mask so the parent's contiguous (native-capable)
        masked path does the work, then gathered back."""
        mask = np.asarray(mask, dtype=bool)
        n = len(self.nodes)
        R = len(self.seeds)
        if mask.size != R * n:
            raise ValueError("mask must cover the graph's R x n lanes")
        if out is None:
            out = np.zeros(mask.size, dtype=np.int64)
        elif (out.dtype != np.int64 or out.size != mask.size
                or not out.flags.c_contiguous):
            raise ValueError(
                "out must be a C-contiguous int64 buffer of mask.size")
        total = self._streams.total
        grid_mask = np.zeros(R * total, dtype=bool)
        gm2 = grid_mask.reshape(R, total)
        gm2[:, self._offset:self._offset + n] = mask.reshape(R, n)
        grid_need = None
        if need is None:
            sel = mask
        else:
            need = np.asarray(need, dtype=bool)
            grid_need = np.zeros(R * total, dtype=bool)
            gn2 = grid_need.reshape(R, total)
            gn2[:, self._offset:self._offset + n] = need.reshape(R, n)
            sel = mask & need
        grid_out = self._streams.draw_ints_masked(grid_mask, high,
                                                  need=grid_need)
        local = grid_out.reshape(R, total)[
            :, self._offset:self._offset + n].reshape(-1)
        out[sel] = local[sel]
        return out

    def generator(self, flat_lane: int) -> np.random.Generator:
        return self._streams.generator(int(self._grid_lanes(flat_lane)))


# ----------------------------------------------------------------------
# Factory + self-test
# ----------------------------------------------------------------------

_vector_verified: Optional[bool] = None


def _self_test() -> bool:
    """Compare the whole vector pipeline against numpy's generators."""
    try:
        for seed in (12345, 0):
            pool = _VectorPool(list(range(6)), seed)
            ref = spawn_node_rngs(range(6), seed)
            lanes = np.arange(6)
            if [float(x) for x in pool.random(lanes)] != \
                    [ref[v].random() for v in range(6)]:
                return False
            high = 10 ** 16
            for _ in range(3):  # repeat to exercise rejection re-draws
                drawn = pool.draw_ints(lanes, high)
                want = [int(ref[v].integers(1, high + 1)) for v in range(6)]
                if [int(x) for x in drawn] != want:
                    return False
            # Materialization must continue the stream in place.
            gen = pool.generator(2)
            if gen.random() != ref[2].random():
                return False
            if [int(x) for x in gen.integers(0, 2 ** 62, size=3)] != \
                    [int(x) for x in ref[2].integers(0, 2 ** 62, size=3)]:
                return False
        return True
    except Exception:
        return False


def vector_streams_available(bounded_ranges: Sequence[int] = ()) -> bool:
    """Whether the vector limb engine would serve these draws.

    The same eligibility rule and one-shot pipeline self-test the pool
    factories apply: every intended bounded-draw width must select
    Lemire's 64-bit path (width strictly between 2^32 - 1 and 2^64 - 1),
    and the vector pipeline must have passed its self-test against
    numpy's own generators.  Grid callers check this up front —
    :class:`GridReplicaStreams` has no fallback twin, so ineligible
    graphs take the per-point path instead.
    """
    global _vector_verified
    if not all(_M32 < r < _M64 for r in bounded_ranges):
        return False
    if _vector_verified is None:
        _vector_verified = _self_test()
    return _vector_verified


def node_stream_pool(nodes: Iterable[NodeId], seed,
                     *, bounded_ranges: Sequence[int] = ()) -> NodeStreamPool:
    """A :class:`NodeStreamPool` over ``nodes``, vectorized when exact.

    ``bounded_ranges`` lists the inclusive range widths of every
    ``integers``-style draw the caller intends to make; any width at or
    below 2^32 - 1 selects numpy's buffered 32-bit sampler, which the
    vector engine does not model, so such callers get the fallback.
    """
    node_list = _stable_order(nodes)
    if vector_streams_available(bounded_ranges):
        return _VectorPool(node_list, seed)
    return _FallbackPool(node_list, seed)


def replica_node_streams(nodes: Iterable[NodeId], seeds: Sequence,
                         *, bounded_ranges: Sequence[int] = ()
                         ) -> ReplicaNodeStreams:
    """R x n :class:`ReplicaNodeStreams`, one replica per seed,
    vectorized when exact (same eligibility rules and one-shot pipeline
    self-test as :func:`node_stream_pool`).

    Replica ``r``'s streams are bit-exact equal to
    ``node_stream_pool(nodes, seeds[r])``'s — batched multi-replica
    execution therefore consumes each (replica, node) stream identically
    to a sequential per-seed loop.
    """
    node_list = _stable_order(nodes)
    if vector_streams_available(bounded_ranges):
        return _VectorReplicaStreams(node_list, seeds)
    return _FallbackReplicaStreams(node_list, seeds)
