"""The beta synchronizer — Awerbuch's tree-based alternative.

Where the alpha synchronizer (:mod:`repro.simulation.asynchrony`) has
every node announce safety to *all* neighbors each round (cheap latency,
``O(|E|)`` control messages per round), the beta synchronizer runs
safety detection over a spanning tree:

1. payload messages are acknowledged as in alpha;
2. a node that is safe (all its round-r payloads acked) and has received
   ``subtree-safe(r)`` from all its tree children reports
   ``subtree-safe(r)`` to its tree parent;
3. when the root's whole tree is safe, it broadcasts ``pulse(r+1)`` down
   the tree; receiving the pulse releases a node into round r+1.

Control cost drops to ``O(n)`` messages per round; latency grows with
the tree depth.  E16's companion measurements (tests) expose exactly
this trade-off against alpha, with identical protocol outputs.

The spanning trees (one per connected component, BFS from the
smallest-id node) are computed by the simulator — standard practice for
synchronizer studies; building them distributedly is an orthogonal
O(diameter) preprocessing step.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Dict, List, Optional, Set, Tuple

import networkx as nx
import numpy as np

from repro.errors import SimulationError
from repro.simulation.asynchrony import AsyncStats, _Event, exponential_delays
from repro.simulation.messages import Message
from repro.simulation.network import SynchronousNetwork
from repro.types import NodeId


class BetaSynchronizer:
    """Runs a synchronous protocol asynchronously over spanning trees.

    Same interface and guarantees as
    :class:`~repro.simulation.asynchrony.AlphaSynchronizer`; only the
    safety-detection topology differs.
    """

    def __init__(self, network: SynchronousNetwork, *,
                 delay: Callable[[np.random.Generator], float] | None = None,
                 delay_seed: int | None = None,
                 max_rounds: int = 100_000):
        self.network = network
        self.delay = delay if delay is not None else exponential_delays(1.0)
        self.delay_rng = np.random.default_rng(delay_seed)
        self.max_rounds = max_rounds
        self.stats = AsyncStats()
        self._build_trees()

    def _build_trees(self) -> None:
        """BFS spanning tree per component: parent/children/root maps."""
        g = self.network.graph
        self.parent: Dict[NodeId, Optional[NodeId]] = {}
        self.children: Dict[NodeId, List[NodeId]] = {v: [] for v in g.nodes}
        self.root_of: Dict[NodeId, NodeId] = {}
        self.component: Dict[NodeId, Set[NodeId]] = {}
        for comp in nx.connected_components(g):
            root = min(comp, key=repr)
            members = set(comp)
            tree = nx.bfs_tree(g, root)
            self.parent[root] = None
            for u, v in tree.edges:
                self.parent[v] = u
                self.children[u].append(v)
            for v in comp:
                self.root_of[v] = root
                self.component[v] = members
        for v in self.children:
            self.children[v].sort(key=repr)

    # ------------------------------------------------------------------
    def run(self) -> AsyncStats:
        net = self.network
        queue: List[_Event] = []
        seq = itertools.count()
        now = 0.0

        def push(src, dest, kind, round_index, payload=None, msg_id=-1):
            heapq.heappush(queue, _Event(
                time=now + self.delay(self.delay_rng), seq=next(seq),
                src=src, dest=dest, kind=kind, round_index=round_index,
                payload=payload, msg_id=msg_id))

        generators: Dict[NodeId, object] = {}
        round_of: Dict[NodeId, int] = {}
        inbox_buffer: Dict[Tuple[NodeId, int],
                           List[Tuple[NodeId, Message]]] = {}
        pending_acks: Dict[NodeId, Set[int]] = {}
        #: per node: rounds for which each child's subtree reported safe
        child_safe: Dict[NodeId, Dict[NodeId, int]] = {}
        self_safe: Dict[NodeId, int] = {}
        reported: Dict[NodeId, int] = {}   # last round reported upward
        finished: Set[NodeId] = set()
        msg_counter = itertools.count()

        def advance(v: NodeId) -> None:
            """Execute node v's round and ship its payloads."""
            proc = net.processes[v]
            if v in finished:
                # Finished nodes have nothing to execute but stay in the
                # synchronizer: immediately safe for this round.
                pending_acks[v] = set()
                on_safe(v)
                return
            proc.ctx.round_index = round_of[v]
            gen = generators[v]
            inbox = inbox_buffer.pop((v, round_of[v]), [])
            try:
                if round_of[v] == 0:
                    next(gen)
                else:
                    gen.send(inbox)
            except StopIteration:
                proc.finished = True
                finished.add(v)
            sent = net.drain_outbox()
            pending_acks[v] = set()
            for _, dest, msg in sent:
                mid = next(msg_counter)
                pending_acks[v].add(mid)
                self.stats.payload_messages += 1
                push(v, dest, "payload", round_of[v], payload=msg,
                     msg_id=mid)
            if not pending_acks[v]:
                on_safe(v)

        def on_safe(v: NodeId) -> None:
            """v's own round-r payloads are all acknowledged."""
            self_safe[v] = round_of[v]
            try_report(v)

        def try_report(v: NodeId) -> None:
            """Report subtree safety upward (or pulse, at the root) once
            v and all child subtrees are safe for v's round."""
            r = round_of[v]
            if self_safe.get(v, -1) < r or reported.get(v, -1) >= r:
                return
            kids = self.children.get(v, [])
            if any(child_safe.get(v, {}).get(c, -1) < r for c in kids):
                return
            reported[v] = r
            parent = self.parent.get(v)
            if parent is not None:
                self.stats.control_messages += 1
                push(v, parent, "subtree_safe", r)
            else:
                fire_pulse(v, r)

        def fire_pulse(root: NodeId, r: int) -> None:
            """Whole tree safe for round r: release round r+1."""
            if all(w in finished for w in self.component[root]):
                return  # protocol over in this component; stop pulsing
            if r + 1 > self.max_rounds:
                raise SimulationError(
                    f"beta-synchronized run exceeded {self.max_rounds} rounds"
                )
            enter_round(root, r + 1)

        def enter_round(v: NodeId, r: int) -> None:
            round_of[v] = r
            self.stats.rounds = max(self.stats.rounds, r)
            # Forward the pulse before executing, so the release wave
            # reaches the whole tree regardless of v's own fate.
            for c in self.children.get(v, []):
                self.stats.control_messages += 1
                push(v, c, "pulse", r)
            advance(v)

        # --- start everyone in round 0 ---------------------------------
        for v, proc in net.processes.items():
            proc.finished = False
            proc.crashed = False
            ctx = net.make_context(v)
            proc.ctx = ctx
            gen = proc.run(ctx)
            if not hasattr(gen, "send"):
                raise SimulationError(
                    f"{type(proc).__name__}.run must be a generator"
                )
            generators[v] = gen
            round_of[v] = 0
        for v in net.processes:
            advance(v)

        # --- event loop --------------------------------------------------
        while queue:
            ev = heapq.heappop(queue)
            now = ev.time
            self.stats.virtual_time = now
            if ev.kind == "payload":
                inbox_buffer.setdefault(
                    (ev.dest, ev.round_index + 1), []
                ).append((ev.src, ev.payload))
                self.stats.control_messages += 1
                push(ev.dest, ev.src, "ack", ev.round_index,
                     msg_id=ev.msg_id)
            elif ev.kind == "ack":
                pending = pending_acks.get(ev.dest)
                if pending is not None and ev.msg_id in pending:
                    pending.discard(ev.msg_id)
                    if not pending:
                        on_safe(ev.dest)
            elif ev.kind == "subtree_safe":
                child_safe.setdefault(ev.dest, {})[ev.src] = max(
                    child_safe.get(ev.dest, {}).get(ev.src, -1),
                    ev.round_index)
                try_report(ev.dest)
            elif ev.kind == "pulse":
                enter_round(ev.dest, ev.round_index)
            else:  # pragma: no cover — exhaustive kinds
                raise SimulationError(f"unknown event kind {ev.kind!r}")

        if len(finished) != len(net.processes):
            stuck = set(net.processes) - finished
            raise SimulationError(
                f"beta-synchronized run deadlocked with {len(stuck)} "
                f"node(s) unfinished, e.g. {next(iter(stuck))!r}"
            )
        return self.stats


def run_protocol_beta(network: SynchronousNetwork, *,
                      delay: Callable[[np.random.Generator], float] | None = None,
                      delay_seed: int | None = None,
                      max_rounds: int = 100_000) -> AsyncStats:
    """Convenience wrapper around :class:`BetaSynchronizer`."""
    sync = BetaSynchronizer(network, delay=delay, delay_seed=delay_seed,
                            max_rounds=max_rounds)
    return sync.run()
