"""The beta synchronizer — Awerbuch's tree-based alternative.

Where the alpha synchronizer (:mod:`repro.simulation.asynchrony`) has
every node announce safety to *all* neighbors each round (cheap latency,
``O(|E|)`` control messages per round), the beta synchronizer runs
safety detection over a spanning tree:

1. payload messages are acknowledged as in alpha;
2. a node that is safe (all its round-r payloads acked) and has received
   ``subtree-safe(r)`` from all its tree children reports
   ``subtree-safe(r)`` to its tree parent;
3. when the root's whole tree is safe, it broadcasts ``pulse(r+1)`` down
   the tree; receiving the pulse releases a node into round r+1.

Control cost drops to ``O(n)`` messages per round; latency grows with
the tree depth.  E16's companion measurements (tests) expose exactly
this trade-off against alpha, with identical protocol outputs.

The spanning trees (one per connected component, BFS from the
smallest-id node) are computed by the simulator — standard practice for
synchronizer studies; building them distributedly is an orthogonal
O(diameter) preprocessing step.

Event-queue machinery, payload shipping, and accounting are inherited
from :class:`~repro.simulation.asynchrony.EventDrivenTransport`; this
module supplies only the tree-based safety detection.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Set

import networkx as nx
import numpy as np

from repro.errors import SimulationError
from repro.simulation.asynchrony import (
    AsyncStats,
    EventDrivenTransport,
    _Event,
)
from repro.simulation.faults import FaultInjector
from repro.simulation.network import SynchronousNetwork
from repro.types import NodeId


class BetaSynchronizer(EventDrivenTransport):
    """Runs a synchronous protocol asynchronously over spanning trees.

    Same interface and guarantees as
    :class:`~repro.simulation.asynchrony.AlphaSynchronizer`; only the
    safety-detection topology differs.
    """

    NAME = "beta-synchronized"

    def __init__(self, network: SynchronousNetwork, *,
                 delay: Callable[[np.random.Generator], float] | None = None,
                 delay_seed: int | None = None,
                 max_rounds: int = 100_000,
                 injectors: Iterable[FaultInjector] = (),
                 legacy_transport: bool = False):
        super().__init__(network, delay=delay, delay_seed=delay_seed,
                         max_rounds=max_rounds, injectors=injectors,
                         legacy_transport=legacy_transport)
        self._build_trees()
        #: per node: rounds for which each child's subtree reported safe
        self.child_safe: Dict[NodeId, Dict[NodeId, int]] = {}
        self.self_safe: Dict[NodeId, int] = {}
        self.reported: Dict[NodeId, int] = {}   # last round reported upward

    def _build_trees(self) -> None:
        """BFS spanning tree per component: parent/children/root maps."""
        g = self.network.graph
        self.parent: Dict[NodeId, Optional[NodeId]] = {}
        self.children: Dict[NodeId, List[NodeId]] = {v: [] for v in g.nodes}
        self.root_of: Dict[NodeId, NodeId] = {}
        self.component: Dict[NodeId, Set[NodeId]] = {}
        for comp in nx.connected_components(g):
            root = min(comp, key=repr)
            members = set(comp)
            tree = nx.bfs_tree(g, root)
            self.parent[root] = None
            for u, v in tree.edges:
                self.parent[v] = u
                self.children[u].append(v)
            for v in comp:
                self.root_of[v] = root
                self.component[v] = members
        for v in self.children:
            self.children[v].sort(key=repr)

    # ------------------------------------------------------------------
    # Safety-detection hooks
    # ------------------------------------------------------------------
    def _node_safe(self, v: NodeId) -> None:
        """v's own round-r payloads are all acknowledged."""
        self.self_safe[v] = self.round_of[v]
        self._try_report(v)

    def _acks_complete(self, v: NodeId) -> None:
        # Unlike alpha, finished nodes stay in the synchronizer (they
        # keep reporting subtree safety upward), so no finished-guard.
        self._node_safe(v)

    def _try_report(self, v: NodeId) -> None:
        """Report subtree safety upward (or pulse, at the root) once v
        and all child subtrees are safe for v's round."""
        r = self.round_of[v]
        if self.self_safe.get(v, -1) < r or self.reported.get(v, -1) >= r:
            return
        kids = self.children.get(v, [])
        if any(self.child_safe.get(v, {}).get(c, -1) < r for c in kids):
            return
        self.reported[v] = r
        parent = self.parent.get(v)
        if parent is not None:
            self._push_control(v, parent, "subtree_safe", r)
        else:
            self._fire_pulse(v, r)

    def _fire_pulse(self, root: NodeId, r: int) -> None:
        """Whole tree safe for round r: release round r+1."""
        if all(w in self.finished for w in self.component[root]):
            return  # protocol over in this component; stop pulsing
        if r + 1 > self.max_rounds:
            raise SimulationError(
                f"{self.NAME} run exceeded {self.max_rounds} rounds"
            )
        self._enter_round(root, r + 1)

    def _enter_round(self, v: NodeId, r: int) -> None:
        self.round_of[v] = r
        self.instr.note_round(r)
        # Forward the pulse before executing, so the release wave
        # reaches the whole tree regardless of v's own fate.
        for c in self.children.get(v, []):
            self._push_control(v, c, "pulse", r)
        self._advance(v)

    def _handle_control(self, ev: _Event) -> None:
        if ev.kind == "subtree_safe":
            self.child_safe.setdefault(ev.dest, {})[ev.src] = max(
                self.child_safe.get(ev.dest, {}).get(ev.src, -1),
                ev.round_index)
            self._try_report(ev.dest)
        elif ev.kind == "pulse":
            self._enter_round(ev.dest, ev.round_index)
        else:  # pragma: no cover — exhaustive kinds
            raise SimulationError(f"unknown event kind {ev.kind!r}")


def run_protocol_beta(network: SynchronousNetwork, *,
                      delay: Callable[[np.random.Generator], float] | None = None,
                      delay_seed: int | None = None,
                      max_rounds: int = 100_000,
                      injectors: Iterable[FaultInjector] = (),
                      legacy_transport: bool = False) -> AsyncStats:
    """Convenience wrapper around :class:`BetaSynchronizer`."""
    sync = BetaSynchronizer(network, delay=delay, delay_seed=delay_seed,
                            max_rounds=max_rounds, injectors=injectors,
                            legacy_transport=legacy_transport)
    return sync.run()
