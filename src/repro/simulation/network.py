"""The synchronous network: topology, message delivery, accounting.

:class:`SynchronousNetwork` binds a graph to a set of
:class:`~repro.simulation.node.NodeProcess` instances and exposes the
delivery machinery used by :func:`repro.simulation.runner.run_protocol`.

The network accepts either a plain ``networkx.Graph`` (optionally with
``pos`` node attributes for geometric protocols) or any object with an
``nx`` attribute holding one (e.g. :class:`repro.graphs.udg.UnitDiskGraph`).
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Tuple

import networkx as nx

from repro.engine.artifacts import graph_artifacts
from repro.errors import GeometryError, ProtocolViolationError, SimulationError
from repro.simulation.messages import Message, MessageSizeModel
from repro.simulation.node import NodeContext, NodeProcess
from repro.simulation.rng import LazyNodeRngs
from repro.simulation.transport import (
    BROADCAST,
    MULTICAST,
    UNICAST,
    GatherPlan,
    Record,
    RoundBatch,
)
from repro.types import NodeId


class SynchronousNetwork:
    """A synchronous message-passing network over a fixed topology.

    Parameters
    ----------
    graph:
        ``networkx.Graph`` or an object exposing one via ``.nx``.  Node
        positions, when present (``pos`` node attribute as an ``(x, y)``
        pair), enable the distance-sensing primitives used by Algorithm 3.
    processes:
        One :class:`NodeProcess` per graph node.
    seed:
        Root seed for all per-node randomness.
    value_bits:
        Optional override for the fixed-point width of ``value`` message
        fields (see :class:`~repro.simulation.messages.MessageSizeModel`).
    strict_message_bits:
        When set, sending any message larger than this many bits raises
        :class:`~repro.errors.ProtocolViolationError` — use it to *enforce*
        the paper's O(log n) budget instead of merely measuring it.
    """

    def __init__(self, graph, processes: Iterable[NodeProcess], *,
                 seed: int | None = None, value_bits: int | None = None,
                 strict_message_bits: int | None = None):
        self.graph: nx.Graph = getattr(graph, "nx", graph)
        if not isinstance(self.graph, nx.Graph):
            raise SimulationError(
                f"expected a networkx.Graph (or wrapper), got {type(graph).__name__}"
            )
        self.processes: Dict[NodeId, NodeProcess] = {}
        for proc in processes:
            if proc.node_id not in self.graph:
                raise SimulationError(
                    f"process for unknown node {proc.node_id!r}"
                )
            if proc.node_id in self.processes:
                raise SimulationError(
                    f"duplicate process for node {proc.node_id!r}"
                )
            self.processes[proc.node_id] = proc
        missing = set(self.graph.nodes) - set(self.processes)
        if missing:
            raise SimulationError(
                f"no process supplied for {len(missing)} node(s), e.g. {next(iter(missing))!r}"
            )

        self.n = self.graph.number_of_nodes()
        self.size_model = MessageSizeModel(max(1, self.n), value_bits=value_bits)
        self.strict_message_bits = strict_message_bits
        # Lazy: streams are derived per node on first use, so runs that
        # draw no node randomness (e.g. the columnar stepping plane on
        # deterministic protocols) skip the O(n) spawn entirely.
        self.rngs = LazyNodeRngs(self.graph.nodes, seed)

        # Columnar outbox: one record per send *call* (a broadcast is a
        # single record regardless of degree), expanded lazily at
        # delivery.  See repro.simulation.transport.
        self._outbox: List[Record] = []
        # When the graph wrapper provides its own distance sensing (e.g.
        # NoisySensingUDG), delegate range queries to it so protocols see
        # the wrapper's (possibly imperfect) sensed distances.
        has_sensing = graph is not self.graph and hasattr(graph,
                                                          "neighbors_within")
        self._sensing = graph if has_sensing else None
        self._positions = self._load_positions()
        # Stable neighbor orderings come from the per-graph artifact
        # cache, shared with direct-mode kernels and repeated runs.
        self._artifacts = graph_artifacts(self.graph)
        self._edge_distance_cache: Dict[Tuple[NodeId, NodeId], float] = {}
        self._gather_plan: Optional[GatherPlan] = None

    # ------------------------------------------------------------------
    # Topology and geometry
    # ------------------------------------------------------------------
    def _load_positions(self) -> Optional[Dict[NodeId, Tuple[float, float]]]:
        pos = nx.get_node_attributes(self.graph, "pos")
        if len(pos) == self.n and self.n > 0:
            return {v: (float(p[0]), float(p[1])) for v, p in pos.items()}
        return None

    @property
    def is_geometric(self) -> bool:
        """Whether every node carries a position (distance sensing works)."""
        return self._positions is not None

    def distance(self, u: NodeId, v: NodeId) -> float:
        """Euclidean distance between two positioned nodes."""
        if self._positions is None:
            raise GeometryError(
                "distance sensing requires node positions ('pos' attributes)"
            )
        cache = self._edge_distance_cache
        d = cache.get((u, v))
        if d is None:
            (x1, y1), (x2, y2) = self._positions[u], self._positions[v]
            d = math.hypot(x1 - x2, y1 - y2)
            # Store under both orientations: order-insensitive lookups
            # without canonicalizing (the ids need not be comparable).
            cache[(u, v)] = d
            cache[(v, u)] = d
        return d

    def neighbors_within(self, v: NodeId, radius: float) -> Tuple[NodeId, ...]:
        """Graph neighbors of ``v`` within sensed distance ``radius``."""
        if self._sensing is not None:
            return tuple(self._sensing.neighbors_within(v, radius))
        if self._positions is None:
            raise GeometryError(
                "neighbors_within requires node positions ('pos' attributes)"
            )
        return tuple(
            w for w in self.graph.neighbors(v) if self.distance(v, w) <= radius
        )

    def sorted_neighbors(self, v: NodeId) -> Tuple[NodeId, ...]:
        """Neighbors of ``v`` in a stable order (deterministic runs)."""
        return self._artifacts.sorted_neighbors[v]

    # ------------------------------------------------------------------
    # Message queueing (called by NodeContext)
    # ------------------------------------------------------------------
    def _check_message(self, src: NodeId, message: Message) -> None:
        if not isinstance(message, Message):
            raise ProtocolViolationError(
                f"node {src!r} sent a non-Message payload: {type(message).__name__}"
            )
        if self.strict_message_bits is not None:
            bits = self.size_model.message_bits(message)
            if bits > self.strict_message_bits:
                raise ProtocolViolationError(
                    f"node {src!r} sent a {bits}-bit {type(message).__name__}"
                    f", exceeding the strict budget of "
                    f"{self.strict_message_bits} bits"
                )

    def _enqueue(self, src: NodeId, dest: NodeId, message: Message) -> None:
        self._check_message(src, message)
        self._outbox.append((UNICAST, src, dest, message))

    def _enqueue_broadcast(self, src: NodeId, message: Message) -> None:
        """Record a local broadcast as a single entry; the fan-out over
        ``sorted_neighbors(src)`` happens lazily at delivery."""
        self._check_message(src, message)
        self._outbox.append((BROADCAST, src, None, message))

    def _enqueue_multi(self, src: NodeId, dests: Tuple[NodeId, ...],
                       message: Message) -> None:
        if not dests:
            return
        self._check_message(src, message)
        self._outbox.append((MULTICAST, src, dests, message))

    def gather_plan(self) -> GatherPlan:
        """The per-destination gather plan (built once per network)."""
        if self._gather_plan is None:
            art = self._artifacts
            self._gather_plan = GatherPlan(art.nodes, art.index,
                                           art.sorted_neighbors)
        return self._gather_plan

    def drain_batch(self) -> RoundBatch:
        """Remove and return the round's records as a columnar batch.

        Drains by copy-and-clear so ``self._outbox`` stays the *same*
        list object for the network's lifetime — node contexts bind its
        ``append`` method once at construction (the broadcast hot path).
        """
        records = self._outbox.copy()
        self._outbox.clear()
        return RoundBatch(records, self.sorted_neighbors,
                          nodes=self._artifacts.nodes,
                          plan=self.gather_plan())

    def drain_outbox(self) -> List[Tuple[NodeId, NodeId, Message]]:
        """Remove and return all messages queued in the current round, in
        the legacy per-edge ``(src, dest, msg)`` form (broadcast records
        expanded over the sender's stable neighbor order)."""
        return self.drain_batch().expand()

    def make_context(self, node_id: NodeId) -> NodeContext:
        """Build the per-node context handed to ``NodeProcess.run``."""
        return NodeContext(
            node_id=node_id,
            neighbors=self.sorted_neighbors(node_id),
            network=self,
            rng=self.rngs[node_id],
        )

    def group_by_dest(
        self, messages: Iterable[Tuple[NodeId, NodeId, Message]]
    ) -> Dict[NodeId, List[Tuple[NodeId, Message]]]:
        """Group in-flight messages into per-destination inboxes."""
        inboxes: Dict[NodeId, List[Tuple[NodeId, Message]]] = defaultdict(list)
        for src, dest, msg in messages:
            inboxes[dest].append((src, msg))
        return inboxes
