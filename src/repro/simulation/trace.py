"""Structured execution traces for debugging and experiment analysis.

A :class:`TraceRecorder` collects ``TraceEvent`` records — either emitted by
the runner (round boundaries, crashes, deliveries) or by protocol code that
wants to expose internal state (e.g. Algorithm 3 logging the number of
active nodes per round for experiment E13).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.types import NodeId


@dataclass(frozen=True)
class TraceEvent:
    """One trace record."""

    round_index: int
    kind: str
    node: Optional[NodeId] = None
    data: Dict[str, Any] = field(default_factory=dict)


class TraceRecorder:
    """Collects trace events, optionally filtered by kind.

    Parameters
    ----------
    kinds:
        When given, only events whose ``kind`` is in this set are kept.
        Useful to avoid retaining per-message events on large runs.
    """

    def __init__(self, kinds: Optional[set[str]] = None):
        self.kinds = set(kinds) if kinds is not None else None
        self.events: List[TraceEvent] = []

    def record(self, round_index: int, kind: str,
               node: Optional[NodeId] = None, **data: Any) -> None:
        """Append an event (subject to the kind filter)."""
        if self.kinds is not None and kind not in self.kinds:
            return
        self.events.append(TraceEvent(round_index, kind, node, data))

    def of_kind(self, kind: str) -> List[TraceEvent]:
        """All recorded events of the given kind, in order."""
        return [e for e in self.events if e.kind == kind]

    def series(self, kind: str, key: str) -> List[Any]:
        """Extract ``data[key]`` from every event of ``kind`` — handy for
        plotting per-round time series."""
        return [e.data[key] for e in self.of_kind(kind)]

    def __len__(self) -> int:
        return len(self.events)


def null_recorder() -> TraceRecorder:
    """A recorder that keeps nothing (filter set is empty)."""
    return TraceRecorder(kinds=set())
