"""Message types with bit-size accounting.

The paper restricts messages to ``O(log n)`` bits, i.e. a constant number of
node identifiers per message.  To check this claim empirically we charge
every message field according to a simple information-theoretic model:

- ``id`` fields (node identifiers, or the random identifiers drawn from
  ``[1, n^4]`` in Algorithm 3) cost ``ceil(log2(id_space))`` bits;
- ``value`` fields (the fractional x-values, dynamic degrees, and coverage
  counters) cost a fixed-point budget of ``value_bits`` bits — the paper's
  algorithms only ever need values of the form ``a / (Delta+1)^{q/t}``
  truncated to ``O(log n)`` precision, so the default budget is
  ``4 * ceil(log2(n+1))``;
- ``count`` fields (small integers bounded by ``n``) cost
  ``ceil(log2(n+1))`` bits;
- ``flag`` fields cost one bit.

The model is deliberately coarse — the point is asymptotic bookkeeping, not
wire-format engineering.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import ClassVar, Dict, Tuple

from repro.errors import ProtocolViolationError

#: Recognized message-field kinds.
FIELD_KINDS = ("id", "value", "count", "flag")


def field_bits(kind: str, n: int, *, id_space: int | None = None,
               value_bits: int | None = None) -> int:
    """Bit cost of a single message field of the given ``kind``.

    Parameters
    ----------
    kind:
        One of ``"id"``, ``"value"``, ``"count"``, ``"flag"``.
    n:
        Number of nodes in the network (sets the default field widths).
    id_space:
        Size of the identifier space for ``id`` fields.  Defaults to
        ``n**4`` — the space Algorithm 3 draws its random identifiers from,
        which also upper-bounds plain node ids.
    value_bits:
        Width of fixed-point ``value`` fields.  Defaults to
        ``4 * ceil(log2(n+1))``.
    """
    log_n = max(1, math.ceil(math.log2(n + 1)))
    if kind == "id":
        space = id_space if id_space is not None else max(2, n) ** 4
        return max(1, math.ceil(math.log2(space)))
    if kind == "value":
        return value_bits if value_bits is not None else 4 * log_n
    if kind == "count":
        return log_n
    if kind == "flag":
        return 1
    raise ValueError(f"unknown message field kind {kind!r}; expected one of {FIELD_KINDS}")


class MessageSizeModel:
    """Computes the bit size of :class:`Message` instances for a network of
    ``n`` nodes.

    A small header of ``ceil(log2(n+1))`` bits (the sender id) is charged on
    every message in addition to the declared payload fields.

    Sizes depend only on the message *class* (its interned ``SCHEMA``
    kinds), never on field values, so the model memoizes one payload
    width per class — the transport's per-round accounting multiplies it
    by the class's delivered count instead of re-deriving it per copy.
    """

    def __init__(self, n: int, *, value_bits: int | None = None):
        if n < 1:
            raise ValueError(f"network size must be positive, got {n}")
        self.n = n
        self.value_bits = value_bits
        self.header_bits = max(1, math.ceil(math.log2(n + 1)))
        self._cache: Dict[Tuple[str, ...], int] = {}
        self._class_cache: Dict[type, int] = {}

    def class_bits(self, message_class: type) -> int:
        """Total size in bits of any instance of ``message_class``."""
        total = self._class_cache.get(message_class)
        if total is None:
            kinds = message_class.field_kinds_of_class()
            payload = self._cache.get(kinds)
            if payload is None:
                payload = sum(
                    field_bits(kind, self.n, value_bits=self.value_bits)
                    for kind in kinds
                )
                self._cache[kinds] = payload
            total = self.header_bits + payload
            self._class_cache[message_class] = total
        return total

    def message_bits(self, message: "Message") -> int:
        """Total size of ``message`` in bits under this model."""
        return self.class_bits(type(message))


@dataclass(frozen=True)
class Message:
    """Base class for protocol messages.

    Subclasses declare ``SCHEMA``, a tuple of ``(field_name, kind)`` pairs,
    in payload order.  The dataclass fields must match the schema names.
    The schema's field-kind tuple is interned once per class at definition
    time (``__init_subclass__``), so size accounting never rebuilds it per
    message.
    """

    # ClassVar, not a dataclass field: the schema belongs to the class,
    # so instances neither store it nor pay a (frozen) __setattr__ for
    # it at construction, and it can't be clobbered by a positional
    # constructor argument.
    SCHEMA: ClassVar[Tuple[Tuple[str, str], ...]] = ()
    _FIELD_KINDS: ClassVar[Tuple[str, ...]] = ()

    def __init_subclass__(cls, **kwargs):
        super().__init_subclass__(**kwargs)
        cls._FIELD_KINDS = tuple(kind for _, kind in cls.SCHEMA)

    @classmethod
    def field_kinds_of_class(cls) -> Tuple[str, ...]:
        """The interned schema kinds of this message class."""
        return cls._FIELD_KINDS

    def field_kinds(self) -> Tuple[str, ...]:
        return type(self)._FIELD_KINDS

    def validate(self) -> None:
        """Check that all schema fields are present on the instance."""
        for name, _ in type(self).SCHEMA:
            if not hasattr(self, name):
                raise ProtocolViolationError(
                    f"{type(self).__name__} is missing schema field {name!r}"
                )
