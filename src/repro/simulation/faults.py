"""Fault injection for the synchronous simulator.

Two fault classes relevant to the paper's motivation (Section 1):

- :class:`CrashFaultInjector` — crash-stop node failures ("battery driven
  sensor nodes may stop working"), scheduled per round;
- :class:`MessageLossInjector` — i.i.d. message drops ("the shared wireless
  medium is inherently less stable than wired media").

Injectors are composable: the runner applies every injector's
``filter_messages`` to each round's traffic and asks ``crashes_at`` for the
set of nodes to kill at each round boundary.

Backend support
---------------
Message-dropping injectors work on every message-passing backend: the
synchronous runner filters each round's traffic in batch, the
event-driven transports (``mode="async"`` / ``"async-beta"``) filter
each payload individually at *delivery* time.  Crash injectors
(``kills_nodes = True``) are supported only by the synchronous runner —
the synchronizers' safety detection assumes acknowledgments from every
neighbor, so a silently crashed node would deadlock the transformation
rather than model a crash.  The event-driven transports therefore
reject them at construction, and the vectorized ``mode="direct"``
backend (no messages at all) rejects any injector.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Set, Tuple

import numpy as np

from repro.simulation.messages import Message
from repro.simulation.transport import MULTICAST, RoundBatch, explicit_batch
from repro.types import NodeId


class FaultInjector:
    """Base class; the default injector is a no-op."""

    #: Whether this injector removes nodes from the execution (via
    #: :meth:`crashes_at`).  Transports that cannot honor node removal —
    #: the event-driven synchronizers — check this flag and refuse such
    #: injectors up front instead of deadlocking.
    kills_nodes = False

    def crashes_at(self, round_index: int) -> Set[NodeId]:
        """Nodes that crash at the *start* of ``round_index`` (0-based)."""
        return set()

    def filter_messages(
        self, round_index: int,
        messages: List[Tuple[NodeId, NodeId, Message]],
    ) -> List[Tuple[NodeId, NodeId, Message]]:
        """Return the subset of ``messages`` that survive this injector."""
        return messages

    def filter_batch(self, round_index: int, batch: RoundBatch) -> RoundBatch:
        """Batch (columnar) form of :meth:`filter_messages`.

        The built-in injectors override this with fast paths that never
        expand broadcast records.  Third-party subclasses that only
        override the legacy per-edge :meth:`filter_messages` get a
        compatibility fallback: the batch is expanded to the per-edge
        list (legacy order), filtered, and re-wrapped.
        """
        if type(self).filter_messages is FaultInjector.filter_messages:
            return batch
        kept = self.filter_messages(round_index, batch.expand())
        return explicit_batch(kept, batch.neighbors_of, nodes=batch.nodes)


class CrashFaultInjector(FaultInjector):
    """Crash-stop failures on a fixed schedule.

    Parameters
    ----------
    schedule:
        Maps a 0-based round index to the node ids that crash at the start
        of that round.  A crashed node stops executing, sends nothing, and
        silently drops anything addressed to it.

    In-flight delivery semantics (pinned — tests rely on these):

    - A node crashing at the start of round ``r`` completed round
      ``r - 1`` normally: its round-``(r-1)`` transmissions were drained,
      filtered, and delivered *before* the crash took effect, so
      neighbors still receive them in their round-``r`` inboxes.
    - The victim's own round-``r`` inbox is discarded (its generator is
      closed before being advanced); from round ``r`` on it executes
      nothing and sends nothing.
    - From round ``r`` on, every message **to or from** the victim is
      dropped by :meth:`filter_messages` — a crashed node is silent in
      both directions, exactly the paper's crash-stop model.
    - ``schedule={0: [...]}`` is well-defined: the victim crashes before
      its first generator step, i.e. it never executes at all and
      contributes nothing to the run (as if absent from the deployment,
      except that neighbors still count it in their static degree).
    """

    kills_nodes = True

    def __init__(self, schedule: Mapping[int, Iterable[NodeId]]):
        self.schedule: Dict[int, Set[NodeId]] = {
            int(r): set(nodes) for r, nodes in schedule.items()
        }
        self.crashed: Set[NodeId] = set()

    def crashes_at(self, round_index: int) -> Set[NodeId]:
        newly = self.schedule.get(round_index, set())
        self.crashed |= newly
        return set(newly)

    def filter_messages(self, round_index, messages):
        if not self.crashed:
            return messages
        return [
            (src, dest, msg) for src, dest, msg in messages
            if src not in self.crashed and dest not in self.crashed
        ]

    def filter_batch(self, round_index, batch):
        # Silencing the crashed set needs no expansion: drop records
        # whose sender crashed, and mark the set as blocked destinations
        # so lazy fan-out skips them.
        batch.drop_sources(self.crashed)
        return batch


class MessageLossInjector(FaultInjector):
    """Drop each message independently with probability ``loss_rate``.

    Uses its own RNG stream so enabling loss does not perturb the protocol
    nodes' random draws: for a fixed seed, the protocol's coin flips —
    and hence its output — are identical with and without loss, and two
    runs with the same (protocol seed, injector seed) drop the *same*
    messages and report the same ``dropped`` count.

    Boundary cases are well-defined: ``loss_rate=0.0`` passes every
    message through without consuming injector randomness, and
    ``loss_rate=1.0`` drops every message — protocols written for this
    repository still terminate under total loss because their round
    loops are bounded and advance on empty inboxes (they degrade to
    their zero-information behavior rather than hang; see E17).

    On the event-driven backends this injector is applied per message at
    delivery time, so the drop *decisions* differ from the synchronous
    runner's batch filtering for the same injector seed; determinism per
    (backend, seed) still holds.
    """

    def __init__(self, loss_rate: float, seed: int | None = None):
        if not 0.0 <= loss_rate <= 1.0:
            raise ValueError(f"loss_rate must be in [0, 1], got {loss_rate}")
        self.loss_rate = float(loss_rate)
        self.rng = np.random.default_rng(seed)
        self.dropped = 0

    def filter_messages(self, round_index, messages):
        if self.loss_rate == 0.0 or not messages:
            return messages
        keep_mask = self.rng.random(len(messages)) >= self.loss_rate
        kept = [m for m, keep in zip(messages, keep_mask) if keep]
        self.dropped += len(messages) - len(kept)
        return kept

    def filter_batch(self, round_index, batch):
        """Vectorized loss: one Bernoulli draw per round over the
        expanded (src, dst) edge list.

        The RNG-stream contract is pinned to the legacy per-edge path:
        the expansion (broadcasts fanned out over the sender's stable
        neighbor order, blocked endpoints excluded — exactly what
        :meth:`RoundBatch.expand` yields) has the same length and order
        as the legacy filtered message list, the round consumes exactly
        one ``rng.random(len(edges))`` call, and an empty round consumes
        none.  Loss patterns per (seed, round) are therefore identical
        to the legacy path.
        """
        if self.loss_rate == 0.0 or batch.is_empty():
            return batch
        seqs = batch.target_sequences()
        total = sum(len(s) for s in seqs)
        if total == 0:
            return batch
        keep_mask = self.rng.random(total) >= self.loss_rate
        kept_total = int(keep_mask.sum())
        self.dropped += total - kept_total
        if kept_total == total:
            return batch
        records = []
        pos = 0
        for rec, dests in zip(batch.records, seqs):
            fanout = len(dests)
            if fanout == 0:
                continue
            mask = keep_mask[pos:pos + fanout]
            pos += fanout
            if mask.all():
                records.append(rec)
            else:
                survivors = tuple(w for w, keep in zip(dests, mask) if keep)
                if survivors:
                    records.append((MULTICAST, rec[1], survivors, rec[3]))
        return RoundBatch(records, batch.neighbors_of, batch.blocked,
                          nodes=batch.nodes, plan=batch.plan)
