"""Fault injection for the synchronous simulator.

Two fault classes relevant to the paper's motivation (Section 1):

- :class:`CrashFaultInjector` — crash-stop node failures ("battery driven
  sensor nodes may stop working"), scheduled per round;
- :class:`MessageLossInjector` — i.i.d. message drops ("the shared wireless
  medium is inherently less stable than wired media").

Injectors are composable: the runner applies every injector's
``filter_messages`` to each round's traffic and asks ``crashes_at`` for the
set of nodes to kill at each round boundary.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Set, Tuple

import numpy as np

from repro.simulation.messages import Message
from repro.types import NodeId


class FaultInjector:
    """Base class; the default injector is a no-op."""

    def crashes_at(self, round_index: int) -> Set[NodeId]:
        """Nodes that crash at the *start* of ``round_index`` (0-based)."""
        return set()

    def filter_messages(
        self, round_index: int,
        messages: List[Tuple[NodeId, NodeId, Message]],
    ) -> List[Tuple[NodeId, NodeId, Message]]:
        """Return the subset of ``messages`` that survive this injector."""
        return messages


class CrashFaultInjector(FaultInjector):
    """Crash-stop failures on a fixed schedule.

    Parameters
    ----------
    schedule:
        Maps a 0-based round index to the node ids that crash at the start
        of that round.  A crashed node stops executing, sends nothing, and
        silently drops anything addressed to it.
    """

    def __init__(self, schedule: Mapping[int, Iterable[NodeId]]):
        self.schedule: Dict[int, Set[NodeId]] = {
            int(r): set(nodes) for r, nodes in schedule.items()
        }
        self.crashed: Set[NodeId] = set()

    def crashes_at(self, round_index: int) -> Set[NodeId]:
        newly = self.schedule.get(round_index, set())
        self.crashed |= newly
        return set(newly)

    def filter_messages(self, round_index, messages):
        if not self.crashed:
            return messages
        return [
            (src, dest, msg) for src, dest, msg in messages
            if src not in self.crashed and dest not in self.crashed
        ]


class MessageLossInjector(FaultInjector):
    """Drop each message independently with probability ``loss_rate``.

    Uses its own RNG stream so enabling loss does not perturb the protocol
    nodes' random draws.
    """

    def __init__(self, loss_rate: float, seed: int | None = None):
        if not 0.0 <= loss_rate <= 1.0:
            raise ValueError(f"loss_rate must be in [0, 1], got {loss_rate}")
        self.loss_rate = float(loss_rate)
        self.rng = np.random.default_rng(seed)
        self.dropped = 0

    def filter_messages(self, round_index, messages):
        if self.loss_rate == 0.0 or not messages:
            return messages
        keep_mask = self.rng.random(len(messages)) >= self.loss_rate
        kept = [m for m, keep in zip(messages, keep_mask) if keep]
        self.dropped += len(messages) - len(kept)
        return kept
