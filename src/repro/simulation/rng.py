"""Deterministic per-node random number streams.

Randomized distributed algorithms need independent randomness at each node,
yet experiments must be reproducible from a single seed.  We derive one
``numpy.random.Generator`` per node from a root ``SeedSequence`` so that:

- the same ``(seed, node set)`` always yields the same per-node streams;
- streams are statistically independent across nodes;
- adding tracing or changing iteration order cannot perturb the draws of
  unrelated nodes (each node owns its stream).
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Dict, Iterable, Sequence

import numpy as np

from repro.types import NodeId


def spawn_node_rngs(nodes: Iterable[NodeId], seed: int | None) -> Dict[NodeId, np.random.Generator]:
    """Create one independent, deterministic RNG per node.

    Nodes are sorted (by repr when not mutually orderable) so the mapping is
    stable regardless of input order.
    """
    node_list = _stable_order(nodes)
    root = np.random.SeedSequence(seed)
    children = root.spawn(len(node_list))
    return {v: np.random.default_rng(s) for v, s in zip(node_list, children)}


class LazyNodeRngs(Mapping):
    """Mapping view of :func:`spawn_node_rngs` that materializes lazily.

    Spawning a ``Generator`` per node is O(n) of SeedSequence hashing —
    measurable setup cost at n >= 10^3 that the columnar stepping plane
    pays for nothing when the protocol draws no node randomness (e.g.
    Algorithm 1).  This mapping derives the child ``SeedSequence``s on
    first access and a node's ``Generator`` on first lookup; because a
    stream depends only on its own child sequence, access order cannot
    perturb any node's draws, and every materialized stream is
    bit-identical to the eager ``spawn_node_rngs`` one.
    """

    __slots__ = ("_seed", "_nodes", "_children", "_rngs")

    def __init__(self, nodes: Iterable[NodeId], seed: int | None):
        self._nodes = _stable_order(nodes)
        self._seed = seed
        self._children: Dict[NodeId, np.random.SeedSequence] | None = None
        self._rngs: Dict[NodeId, np.random.Generator] = {}

    def __getitem__(self, node: NodeId) -> np.random.Generator:
        rng = self._rngs.get(node)
        if rng is None:
            if self._children is None:
                root = np.random.SeedSequence(self._seed)
                self._children = dict(zip(self._nodes,
                                          root.spawn(len(self._nodes))))
            rng = self._rngs[node] = np.random.default_rng(
                self._children[node])
        return rng

    def __iter__(self):
        return iter(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)


def spawn_named_rngs(names: Sequence[str], seed: int | None) -> Dict[str, np.random.Generator]:
    """Create independent RNG streams for named protocol components.

    Used, e.g., to give a fault injector a stream separate from node
    randomness so enabling faults does not change nodes' coin flips.
    """
    root = np.random.SeedSequence(seed)
    children = root.spawn(len(names) + 1)  # +1 reserves a child for node streams
    return {name: np.random.default_rng(s) for name, s in zip(names, children[1:])}


def _stable_order(nodes: Iterable[NodeId]) -> list:
    node_list = list(nodes)
    try:
        return sorted(node_list)
    except TypeError:
        return sorted(node_list, key=repr)
