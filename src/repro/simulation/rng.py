"""Deterministic per-node random number streams.

Randomized distributed algorithms need independent randomness at each node,
yet experiments must be reproducible from a single seed.  We derive one
``numpy.random.Generator`` per node from a root ``SeedSequence`` so that:

- the same ``(seed, node set)`` always yields the same per-node streams;
- streams are statistically independent across nodes;
- adding tracing or changing iteration order cannot perturb the draws of
  unrelated nodes (each node owns its stream).
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence

import numpy as np

from repro.types import NodeId


def spawn_node_rngs(nodes: Iterable[NodeId], seed: int | None) -> Dict[NodeId, np.random.Generator]:
    """Create one independent, deterministic RNG per node.

    Nodes are sorted (by repr when not mutually orderable) so the mapping is
    stable regardless of input order.
    """
    node_list = _stable_order(nodes)
    root = np.random.SeedSequence(seed)
    children = root.spawn(len(node_list))
    return {v: np.random.default_rng(s) for v, s in zip(node_list, children)}


def spawn_named_rngs(names: Sequence[str], seed: int | None) -> Dict[str, np.random.Generator]:
    """Create independent RNG streams for named protocol components.

    Used, e.g., to give a fault injector a stream separate from node
    randomness so enabling faults does not change nodes' coin flips.
    """
    root = np.random.SeedSequence(seed)
    children = root.spawn(len(names) + 1)  # +1 reserves a child for node streams
    return {name: np.random.default_rng(s) for name, s in zip(names, children[1:])}


def _stable_order(nodes: Iterable[NodeId]) -> list:
    node_list = list(nodes)
    try:
        return sorted(node_list)
    except TypeError:
        return sorted(node_list, key=repr)
