"""Broadcast-native columnar transport records.

The paper's synchronous model lets every node send to each neighbor per
round — which the simulator originally realized as one Python tuple *per
edge per round*.  This module replaces the per-edge outbox with compact
**records**:

- a local broadcast is ONE record ``(BROADCAST, src, None, msg)``,
  expanded lazily at delivery time against the cached stable neighbor
  order in :class:`~repro.engine.artifacts.GraphArtifacts`;
- a unicast is ``(UNICAST, src, dest, msg)``;
- a restricted multicast (Algorithm 3's ``send_within``) is
  ``(MULTICAST, src, (dests...), msg)``.

One :class:`RoundBatch` carries a round's records plus a set of
``blocked`` nodes (crash-silenced endpoints).  Delivery expands records
**in record order**, each broadcast fanning out over the sender's
stable (id-sorted) neighbor tuple — exactly the sequence the legacy
per-edge outbox produced, so per-destination inbox order, message
counts, bit counts, and loss-injector RNG consumption are all preserved
bit-for-bit (pinned by ``tests/test_transport_equivalence.py``).

Accounting is columnar too: message bits depend only on the class
(interned ``SCHEMA``), so a delivered batch is charged per class with
``class_bits * fan_out`` instead of one
:meth:`~repro.engine.instrumentation.Instrumentation.payload` call per
copy.
"""

from __future__ import annotations

from operator import itemgetter
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.simulation.messages import Message
from repro.types import NodeId

#: Record kinds (first element of each record tuple).
UNICAST = 0
BROADCAST = 1
MULTICAST = 2

#: One outbox record: ``(kind, src, target, msg)`` where ``target`` is
#: ``None`` (broadcast), a node id (unicast), or a tuple of node ids
#: (multicast).
Record = Tuple[int, NodeId, object, Message]


def _singleton_gather(j: int):
    def gather(pairs, _j=j):
        return (pairs[_j],)
    return gather


class GatherPlan:
    """Precomputed per-destination gather for full-broadcast rounds.

    When every record in a round is a broadcast and no endpoint is
    blocked, each destination's inbox is exactly the senders adjacent to
    it — gathered from an index-aligned ``pairs`` list through one
    C-level :func:`operator.itemgetter` per destination (built once per
    network, over the stable id-sorted neighbor order), instead of one
    Python-level append per delivered copy.  The gathered order (the
    destination's id-sorted neighbors) equals the scatter order because
    the runner advances senders in id-sorted order — the delivery-order
    contract.
    """

    __slots__ = ("nodes", "index", "n", "gather", "degree")

    def __init__(self, nodes: Sequence[NodeId], index: Dict[NodeId, int],
                 sorted_neighbors: Dict[NodeId, Tuple[NodeId, ...]]):
        self.nodes = list(nodes)
        self.index = index
        self.n = len(self.nodes)
        self.gather = []
        #: Per-node degree, aligned with ``nodes`` — the broadcast
        #: fan-out charged by the accounting fast path.
        self.degree = [len(sorted_neighbors[v]) for v in self.nodes]
        for v in self.nodes:
            nbrs = sorted_neighbors[v]
            if not nbrs:
                self.gather.append(None)
            elif len(nbrs) == 1:
                # itemgetter(j) returns a bare item, not a 1-tuple.
                self.gather.append(_singleton_gather(index[nbrs[0]]))
            else:
                self.gather.append(
                    itemgetter(*[index[w] for w in nbrs]))


class RoundBatch:
    """One round's outgoing traffic in columnar (record) form.

    Parameters
    ----------
    records:
        The round's records, in send order.
    neighbors_of:
        Maps a node id to its stable (id-sorted) neighbor tuple — the
        broadcast expansion order.  Shared with the network's
        :class:`~repro.engine.artifacts.GraphArtifacts`.
    blocked:
        Nodes whose traffic is suppressed in both directions (crashed).
        Applied during expansion, before any accounting, matching the
        legacy runner's pre-accounting crash filter.
    """

    __slots__ = ("records", "neighbors_of", "blocked", "nodes", "plan")

    def __init__(self, records: List[Record], neighbors_of,
                 blocked: Optional[Set[NodeId]] = None,
                 nodes: Optional[Sequence[NodeId]] = None,
                 plan: Optional[GatherPlan] = None):
        self.records = records
        self.neighbors_of = neighbors_of
        self.blocked: Set[NodeId] = blocked if blocked is not None else set()
        #: All network nodes (when known): lets delivery pre-seed one
        #: inbox list per node instead of branching per delivered copy.
        self.nodes = nodes
        #: Per-destination gather plan for the full-broadcast fast path.
        self.plan = plan

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.records)

    def is_empty(self) -> bool:
        return not self.records

    # ------------------------------------------------------------------
    def targets_of(self, record: Record) -> Tuple[NodeId, ...]:
        """The surviving destinations of ``record``, in delivery order."""
        kind, src, target, _ = record
        blocked = self.blocked
        if kind == BROADCAST:
            dests = self.neighbors_of(src)
        elif kind == UNICAST:
            dests = (target,)
        else:
            dests = target
        if blocked:
            dests = tuple(w for w in dests if w not in blocked)
        return dests

    def target_sequences(self) -> List[Tuple[NodeId, ...]]:
        """Per-record destination tuples (blocked endpoints excluded),
        aligned with ``self.records`` — the expanded (src, dst) edge list
        in legacy enqueue order."""
        return [self.targets_of(rec) for rec in self.records]

    # ------------------------------------------------------------------
    def drop_sources(self, dead: Set[NodeId]) -> None:
        """Remove every record whose sender is in ``dead`` and silence
        ``dead`` as destinations (the crash-stop filter, batch form)."""
        if not dead:
            return
        self.records = [rec for rec in self.records if rec[1] not in dead]
        self.blocked |= dead

    # ------------------------------------------------------------------
    def expand(self) -> List[Tuple[NodeId, NodeId, Message]]:
        """The legacy per-edge view ``[(src, dest, msg), ...]``, in the
        exact order the per-edge outbox would have produced."""
        out: List[Tuple[NodeId, NodeId, Message]] = []
        append = out.append
        for rec in self.records:
            src, msg = rec[1], rec[3]
            for w in self.targets_of(rec):
                append((src, w, msg))
        return out

    def iter_edges(self) -> Iterator[Tuple[NodeId, NodeId, Message]]:
        """Iterate the expanded (src, dest, msg) edges lazily."""
        for rec in self.records:
            src, msg = rec[1], rec[3]
            for w in self.targets_of(rec):
                yield (src, w, msg)

    # ------------------------------------------------------------------
    def deliver(self) -> Tuple[Dict[NodeId, List[Tuple[NodeId, Message]]],
                               Dict[type, Tuple[int, Message]]]:
        """Expand the batch into per-destination inboxes + class counts.

        Returns ``(inboxes, per_class)`` where ``inboxes[dest]`` is the
        destination's ``[(src, msg), ...]`` list in legacy order and
        ``per_class[cls] = (delivered_count, sample_msg)`` drives the
        columnar bit accounting (bits depend only on the class).

        The ``(src, msg)`` pair of a broadcast is created once and the
        same tuple object is shared across all fan-out destinations.
        Records whose surviving fan-out is empty contribute nothing —
        not even a zero-count class entry — so ``per_class`` is empty
        exactly when the legacy per-edge list would be.
        """
        if self.plan is not None and not self.blocked and self.records:
            fast = self._deliver_gathered(self.plan)
            if fast is not None:
                return fast
        if self.nodes is not None:
            inboxes: Dict[NodeId, List[Tuple[NodeId, Message]]] = {
                v: [] for v in self.nodes
            }
        else:
            inboxes = {}
        per_class: Dict[type, Tuple[int, Message]] = {}
        blocked = self.blocked
        neighbors_of = self.neighbors_of
        seeded = self.nodes is not None
        for kind, src, target, msg in self.records:
            if kind == BROADCAST:
                dests = neighbors_of(src)
            elif kind == UNICAST:
                dests = (target,)
            else:
                dests = target
            if blocked:
                dests = [w for w in dests if w not in blocked]
            if not dests:
                continue
            pair = (src, msg)
            if seeded:
                for w in dests:
                    inboxes[w].append(pair)
            else:
                for w in dests:
                    box = inboxes.get(w)
                    if box is None:
                        inboxes[w] = [pair]
                    else:
                        box.append(pair)
            cls = type(msg)
            entry = per_class.get(cls)
            if entry is None:
                per_class[cls] = (len(dests), msg)
            else:
                per_class[cls] = (entry[0] + len(dests), msg)
        return inboxes, per_class

    def _deliver_gathered(self, plan: GatherPlan):
        """Full-broadcast fast path (every record a broadcast, each
        sender at most once, nothing blocked); None if inapplicable.

        Inboxes come out as the itemgetter result tuples themselves —
        no per-destination list copy.  Inboxes are read-only by contract
        (no protocol or backend mutates one), so handing out tuples is
        observationally identical to the legacy lists.
        """
        index = plan.index
        degree = plan.degree
        pairs: List[Optional[Tuple[NodeId, Message]]] = [None] * plan.n
        filled = 0
        per_class: Dict[type, Tuple[int, Message]] = {}
        for rec in self.records:
            if rec[0] != BROADCAST:
                return None
            i = index[rec[1]]
            if pairs[i] is not None:
                return None
            msg = rec[3]
            pairs[i] = (rec[1], msg)
            filled += 1
            count = degree[i]
            if not count:
                continue
            cls = type(msg)
            entry = per_class.get(cls)
            if entry is None:
                per_class[cls] = (count, msg)
            else:
                per_class[cls] = (entry[0] + count, msg)
        if filled == plan.n:
            inboxes = {
                v: (g(pairs) if g is not None else ())
                for v, g in zip(plan.nodes, plan.gather)
            }
        else:
            inboxes = {
                v: (tuple(p for p in g(pairs) if p is not None)
                    if g is not None else ())
                for v, g in zip(plan.nodes, plan.gather)
            }
        return inboxes, per_class


def sort_inbox(inbox: List[Tuple[NodeId, Message]]
               ) -> List[Tuple[NodeId, Message]]:
    """Sort an inbox by sender id (stable: a sender's own messages keep
    their send order) — the delivery-order contract.  The synchronous
    runner gets this for free by advancing generators in id-sorted
    order; the event-driven synchronizers, whose payloads arrive in
    delay order, call this at consume time."""
    try:
        return sorted(inbox, key=_pair_src)
    except TypeError:
        return sorted(inbox, key=_pair_src_repr)


def _pair_src(pair):
    return pair[0]


def _pair_src_repr(pair):
    return repr(pair[0])


def explicit_batch(edges: Sequence[Tuple[NodeId, NodeId, Message]],
                   neighbors_of,
                   nodes: Optional[Sequence[NodeId]] = None) -> RoundBatch:
    """A batch of plain unicast records from a legacy per-edge list
    (used to re-wrap the output of third-party ``filter_messages``
    overrides)."""
    return RoundBatch([(UNICAST, src, dest, msg) for src, dest, msg in edges],
                      neighbors_of, nodes=nodes)
