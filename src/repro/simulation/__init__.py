"""Synchronous message-passing simulation substrate.

This package implements the computation model of Section 3 of the paper:
an undirected graph ``G = (V, E)`` where time is divided into synchronous
rounds and, in each round, every node may send one message to each of its
neighbors.  Message sizes are accounted in bits so that the paper's
``O(log n)``-bit message claims can be checked empirically.

Protocols are written as Python generators: a node process implements
``run(ctx)`` and receives one inbox of messages per ``yield`` (one yield ==
one communication round).  See :class:`repro.simulation.node.NodeProcess`.

The substrate also supports fault injection (crash-stop failures and
probabilistic message loss) used by the fault-tolerance experiments.
"""

from repro.simulation.messages import Message, MessageSizeModel, field_bits
from repro.simulation.node import NodeContext, NodeProcess
from repro.simulation.network import SynchronousNetwork
from repro.simulation.runner import run_protocol
from repro.simulation.faults import CrashFaultInjector, MessageLossInjector
from repro.simulation.trace import TraceRecorder
from repro.simulation.rng import spawn_node_rngs
from repro.simulation.asynchrony import (
    AlphaSynchronizer,
    AsyncStats,
    exponential_delays,
    run_protocol_async,
    uniform_delays,
)
from repro.simulation.beta import BetaSynchronizer, run_protocol_beta

__all__ = [
    "AlphaSynchronizer",
    "BetaSynchronizer",
    "run_protocol_beta",
    "AsyncStats",
    "exponential_delays",
    "run_protocol_async",
    "uniform_delays",
    "Message",
    "MessageSizeModel",
    "field_bits",
    "NodeContext",
    "NodeProcess",
    "SynchronousNetwork",
    "run_protocol",
    "CrashFaultInjector",
    "MessageLossInjector",
    "TraceRecorder",
    "spawn_node_rngs",
]
