"""Asynchronous execution of synchronous protocols (alpha-synchronizer).

Section 3 of the paper notes: "at the cost of higher message complexity,
every synchronous message passing algorithm can be turned into an
asynchronous algorithm with the same time complexity" (Awerbuch [2]).
This module realizes that transformation so the repository's protocols —
written for the synchronous model — can run over an event-driven network
with arbitrary per-message delays:

- a discrete-event transport: each message is delivered after a random
  delay drawn from a configurable distribution (:func:`exponential_delays`
  / :func:`uniform_delays`); a global event queue orders deliveries by
  timestamp;
- :class:`AlphaSynchronizer` — Awerbuch's alpha synchronizer: every node
  acknowledges each received payload message; a node whose round-r
  messages are all acknowledged is *safe* and announces safety to its
  neighbors; a node enters round r+1 once it and all neighbors are safe
  for round r.  The payload protocol is oblivious to all of this.

The synchronizer preserves the protocol's semantics exactly: the same
seed produces the same dominating set asynchronously as synchronously
(tested), while the event-time span reveals the latency dilation caused
by the delay distribution, and message counts reveal the 3x payload
overhead (payload + ack + safe).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.simulation.messages import Message
from repro.simulation.network import SynchronousNetwork
from repro.types import NodeId


@dataclass(order=True)
class _Event:
    """A timestamped delivery in the event queue."""

    time: float
    seq: int
    src: NodeId = field(compare=False)
    dest: NodeId = field(compare=False)
    kind: str = field(compare=False)          # "payload" | "ack" | "safe"
    round_index: int = field(compare=False)
    payload: Optional[Message] = field(compare=False, default=None)
    msg_id: int = field(compare=False, default=-1)


@dataclass
class AsyncStats:
    """Accounting for an asynchronous execution."""

    virtual_time: float = 0.0       # event time of the last delivery
    payload_messages: int = 0
    control_messages: int = 0       # acks + safety announcements
    rounds: int = 0                 # synchronizer rounds completed

    @property
    def total_messages(self) -> int:
        return self.payload_messages + self.control_messages


def exponential_delays(mean: float = 1.0) -> Callable[[np.random.Generator], float]:
    """Delay sampler: exponential with the given mean (memoryless links)."""
    if mean <= 0:
        raise SimulationError(f"mean delay must be positive, got {mean}")
    return lambda rng: float(rng.exponential(mean))


def uniform_delays(low: float = 0.5, high: float = 1.5
                   ) -> Callable[[np.random.Generator], float]:
    """Delay sampler: uniform in [low, high]."""
    if not 0 <= low <= high:
        raise SimulationError(f"need 0 <= low <= high, got [{low}, {high}]")
    return lambda rng: float(rng.uniform(low, high))


class AlphaSynchronizer:
    """Runs a synchronous protocol on an asynchronous network.

    Parameters
    ----------
    network:
        A fully-populated :class:`SynchronousNetwork` (reused for its
        topology, processes, size model, and per-node RNG streams).
    delay:
        Callable drawing one link delay from an RNG; defaults to
        exponential with mean 1.
    delay_seed:
        Seed for the delay randomness (separate stream from node
        randomness, so delays never perturb protocol coin flips).
    max_rounds:
        Safety valve on synchronizer rounds.
    """

    def __init__(self, network: SynchronousNetwork, *,
                 delay: Callable[[np.random.Generator], float] | None = None,
                 delay_seed: int | None = None,
                 max_rounds: int = 100_000):
        self.network = network
        self.delay = delay if delay is not None else exponential_delays(1.0)
        self.delay_rng = np.random.default_rng(delay_seed)
        self.max_rounds = max_rounds
        self.stats = AsyncStats()

    # ------------------------------------------------------------------
    def run(self) -> AsyncStats:
        """Execute all node processes to completion; returns accounting."""
        net = self.network
        queue: List[_Event] = []
        seq = itertools.count()
        now = 0.0

        def push(src, dest, kind, round_index, payload=None, msg_id=-1):
            heapq.heappush(queue, _Event(
                time=now + self.delay(self.delay_rng), seq=next(seq),
                src=src, dest=dest, kind=kind, round_index=round_index,
                payload=payload, msg_id=msg_id))

        # --- per-node synchronizer state ------------------------------
        generators: Dict[NodeId, object] = {}
        round_of: Dict[NodeId, int] = {}
        # Payloads are buffered per (receiver, consuming round): a
        # message sent in the sender's round r is consumed by the
        # receiver's round r+1 generator step.  Neighbors may run one
        # round apart under the alpha synchronizer, so a single shared
        # buffer would mix rounds.
        inbox_buffer: Dict[Tuple[NodeId, int], List[Tuple[NodeId, Message]]] = {}
        pending_acks: Dict[NodeId, Set[int]] = {}
        #: neighbors' highest announced safe round
        safe_round: Dict[NodeId, Dict[NodeId, int]] = {}
        finished: Set[NodeId] = set()
        msg_counter = itertools.count()

        def live_neighbors(v: NodeId) -> Tuple[NodeId, ...]:
            return net.sorted_neighbors(v)

        def advance(v: NodeId) -> None:
            """Run node v's generator for one synchronous round and ship
            its outgoing messages with the current round tag."""
            proc = net.processes[v]
            proc.ctx.round_index = round_of[v]
            gen = generators[v]
            inbox = inbox_buffer.pop((v, round_of[v]), [])
            try:
                if round_of[v] == 0:
                    next(gen)
                else:
                    gen.send(inbox)
            except StopIteration:
                proc.finished = True
                finished.add(v)
            sent = net.drain_outbox()
            pending_acks[v] = set()
            for src, dest, msg in sent:
                if src != v:  # pragma: no cover — defensive
                    raise SimulationError("outbox contamination")
                mid = next(msg_counter)
                pending_acks[v].add(mid)
                self.stats.payload_messages += 1
                push(v, dest, "payload", round_of[v], payload=msg,
                     msg_id=mid)
            if not pending_acks[v]:
                announce_safe(v)

        #: Safety round announced by a node that has finished its protocol
        #: and had its last messages acknowledged: safe for every future
        #: round, so neighbors never wait on it again.
        safe_forever = self.max_rounds + 1

        def announce_safe(v: NodeId) -> None:
            """v is safe for its current round (or forever, once its
            generator has finished and its last messages are acked)."""
            r_announce = safe_forever if v in finished else round_of[v]
            for w in live_neighbors(v):
                self.stats.control_messages += 1
                push(v, w, "safe", r_announce)
            # Record own safety so maybe_advance can treat v uniformly.
            safe_round.setdefault(v, {})[v] = r_announce
            maybe_advance(v)

        def maybe_advance(v: NodeId) -> None:
            """Enter round r+1 once v and all neighbors are safe for r."""
            if v in finished:
                return
            r = round_of[v]
            known = safe_round.get(v, {})
            if known.get(v, -1) < r:
                return
            for w in live_neighbors(v):
                if known.get(w, -1) < r:
                    return
            round_of[v] = r + 1
            if round_of[v] > self.max_rounds:
                raise SimulationError(
                    f"asynchronous run exceeded {self.max_rounds} rounds"
                )
            self.stats.rounds = max(self.stats.rounds, round_of[v])
            advance(v)

        # --- start every node in round 0 ------------------------------
        for v, proc in net.processes.items():
            proc.finished = False
            proc.crashed = False
            ctx = net.make_context(v)
            proc.ctx = ctx
            gen = proc.run(ctx)
            if not hasattr(gen, "send"):
                raise SimulationError(
                    f"{type(proc).__name__}.run must be a generator"
                )
            generators[v] = gen
            round_of[v] = 0
        for v in net.processes:
            advance(v)

        # --- event loop -------------------------------------------------
        while queue:
            ev = heapq.heappop(queue)
            now = ev.time
            self.stats.virtual_time = now
            if ev.kind == "payload":
                # Buffer for the receiver's round r+1; ack immediately.
                inbox_buffer.setdefault(
                    (ev.dest, ev.round_index + 1), []
                ).append((ev.src, ev.payload))
                self.stats.control_messages += 1
                push(ev.dest, ev.src, "ack", ev.round_index,
                     msg_id=ev.msg_id)
            elif ev.kind == "ack":
                pending = pending_acks.get(ev.dest)
                if pending is not None and ev.msg_id in pending:
                    pending.discard(ev.msg_id)
                    if not pending and ev.dest not in finished:
                        announce_safe(ev.dest)
            elif ev.kind == "safe":
                safe_round.setdefault(ev.dest, {})[ev.src] = max(
                    safe_round.get(ev.dest, {}).get(ev.src, -1),
                    ev.round_index)
                maybe_advance(ev.dest)
            else:  # pragma: no cover — exhaustive kinds
                raise SimulationError(f"unknown event kind {ev.kind!r}")

        if len(finished) != len(net.processes):
            stuck = set(net.processes) - finished
            raise SimulationError(
                f"asynchronous run deadlocked with {len(stuck)} node(s) "
                f"unfinished, e.g. {next(iter(stuck))!r}"
            )
        return self.stats


def run_protocol_async(network: SynchronousNetwork, *,
                       delay: Callable[[np.random.Generator], float] | None = None,
                       delay_seed: int | None = None,
                       max_rounds: int = 100_000) -> AsyncStats:
    """Convenience wrapper: run ``network``'s processes asynchronously
    under an alpha synchronizer.  Node state afterwards is identical to a
    synchronous :func:`repro.simulation.runner.run_protocol` run with the
    same network seed."""
    sync = AlphaSynchronizer(network, delay=delay, delay_seed=delay_seed,
                             max_rounds=max_rounds)
    return sync.run()
