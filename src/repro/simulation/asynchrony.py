"""Asynchronous execution of synchronous protocols (alpha-synchronizer).

Section 3 of the paper notes: "at the cost of higher message complexity,
every synchronous message passing algorithm can be turned into an
asynchronous algorithm with the same time complexity" (Awerbuch [2]).
This module realizes that transformation so the repository's protocols —
written for the synchronous model — can run over an event-driven network
with arbitrary per-message delays:

- a discrete-event transport: each message is delivered after a random
  delay drawn from a configurable distribution (:func:`exponential_delays`
  / :func:`uniform_delays`); a global event queue orders deliveries by
  timestamp;
- :class:`AlphaSynchronizer` — Awerbuch's alpha synchronizer: every node
  acknowledges each received payload message; a node whose round-r
  messages are all acknowledged is *safe* and announces safety to its
  neighbors; a node enters round r+1 once it and all neighbors are safe
  for round r.  The payload protocol is oblivious to all of this.

The synchronizer preserves the protocol's semantics exactly: the same
seed produces the same dominating set asynchronously as synchronously
(tested), while the event-time span reveals the latency dilation caused
by the delay distribution, and message counts reveal the 3x payload
overhead (payload + ack + safe).

The event-queue machinery shared with the tree-based
:class:`~repro.simulation.beta.BetaSynchronizer` lives in
:class:`EventDrivenTransport`; subclasses supply only the safety-
detection topology.  All accounting flows through one
:class:`~repro.engine.instrumentation.Instrumentation`, so
:meth:`AsyncStats.as_run_stats` yields figures directly comparable to
the synchronous runner's.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.engine.instrumentation import Instrumentation
from repro.errors import SimulationError
from repro.simulation.faults import FaultInjector
from repro.simulation.messages import Message
from repro.simulation.network import SynchronousNetwork
from repro.simulation.transport import sort_inbox
from repro.types import NodeId, RunStats


@dataclass(order=True)
class _Event:
    """A timestamped delivery in the event queue."""

    time: float
    seq: int
    src: NodeId = field(compare=False)
    dest: NodeId = field(compare=False)
    kind: str = field(compare=False)          # "payload" | "ack" | control
    round_index: int = field(compare=False)
    #: One Message (legacy transport) or a list of Messages (a bundle:
    #: every payload one sender ships to one neighbor in one round).
    payload: object = field(compare=False, default=None)
    msg_id: int = field(compare=False, default=-1)


@dataclass
class AsyncStats:
    """Accounting snapshot for an asynchronous execution."""

    virtual_time: float = 0.0       # event time of the last delivery
    payload_messages: int = 0
    payload_bits: int = 0
    max_message_bits: int = 0
    control_messages: int = 0       # acks + safety announcements + pulses
    rounds: int = 0                 # synchronizer rounds completed

    @property
    def total_messages(self) -> int:
        return self.payload_messages + self.control_messages

    def as_run_stats(self) -> RunStats:
        """The execution's accounting as a :class:`RunStats` (payload
        traffic in the message/bit fields, synchronizer overhead in
        ``control_messages``) — the engine's common currency."""
        return RunStats(
            rounds=self.rounds,
            messages_sent=self.payload_messages,
            bits_sent=self.payload_bits,
            max_message_bits=self.max_message_bits,
            control_messages=self.control_messages,
            virtual_time=self.virtual_time,
        )


def exponential_delays(mean: float = 1.0) -> Callable[[np.random.Generator], float]:
    """Delay sampler: exponential with the given mean (memoryless links)."""
    if mean <= 0:
        raise SimulationError(f"mean delay must be positive, got {mean}")
    return lambda rng: float(rng.exponential(mean))


def uniform_delays(low: float = 0.5, high: float = 1.5
                   ) -> Callable[[np.random.Generator], float]:
    """Delay sampler: uniform in [low, high]."""
    if not 0 <= low <= high:
        raise SimulationError(f"need 0 <= low <= high, got [{low}, {high}]")
    return lambda rng: float(rng.uniform(low, high))


class EventDrivenTransport:
    """Shared machinery for running synchronous protocols asynchronously.

    Owns the event queue, the delayed-delivery primitive, generator
    startup, the advance/payload/ack cycle, and the accounting.
    Subclasses implement the safety-detection strategy:

    - :meth:`_node_safe` — called when a node's round-r payloads are all
      acknowledged straight from its advance (possibly with the node
      already finished);
    - :meth:`_acks_complete` — called when the last outstanding ack of a
      node arrives;
    - :meth:`_handle_control` — dispatch for event kinds beyond
      ``payload`` / ``ack``.

    Parameters
    ----------
    network:
        A fully-populated :class:`SynchronousNetwork` (reused for its
        topology, processes, size model, and per-node RNG streams).
    delay:
        Callable drawing one link delay from an RNG; defaults to
        exponential with mean 1.
    delay_seed:
        Seed for the delay randomness (separate stream from node
        randomness, so delays never perturb protocol coin flips).
    max_rounds:
        Safety valve on synchronizer rounds.
    injectors:
        Message-dropping :class:`~repro.simulation.faults.FaultInjector`
        instances.  Each *payload* is passed through every injector's
        ``filter_messages`` individually at delivery time; a dropped
        payload is never buffered into the receiver's inbox and never
        charged as payload traffic (matching the synchronous runner,
        which only accounts surviving messages).  The acknowledgment is
        sent either way: the synchronizer's control plane (acks, safety
        announcements, pulses) is assumed reliable — an unacknowledged
        payload would deadlock the transformation, not model loss.
        Injectors with ``kills_nodes = True`` (crash faults) are
        rejected here: silently removing a node would likewise deadlock
        its neighbors' safety detection.  Use the synchronous runner
        (``mode="message"``) for crash faults.
    legacy_transport:
        When true, ship every payload as its own event with its own
        delay draw, msg-id, and acknowledgment (the pre-bundling
        behavior).  The default bundles all payloads one sender ships to
        one neighbor in one round into a single event acknowledged once,
        which shrinks the event queue and the ack traffic without
        changing payload accounting, synchronizer rounds, or protocol
        output (delay-stream consumption and hence ``virtual_time`` and
        ``control_messages`` do change).
    """

    #: Subclass label used in error messages.
    NAME = "asynchronous"

    def __init__(self, network: SynchronousNetwork, *,
                 delay: Callable[[np.random.Generator], float] | None = None,
                 delay_seed: int | None = None,
                 max_rounds: int = 100_000,
                 injectors: Iterable[FaultInjector] = (),
                 legacy_transport: bool = False):
        self.legacy_transport = legacy_transport
        self.network = network
        self.delay = delay if delay is not None else exponential_delays(1.0)
        self.delay_rng = np.random.default_rng(delay_seed)
        self.max_rounds = max_rounds
        self.injectors = list(injectors)
        for inj in self.injectors:
            if getattr(inj, "kills_nodes", False):
                raise SimulationError(
                    f"{type(inj).__name__} kills nodes, which the "
                    f"{self.NAME} transport does not support (a silent "
                    "crash deadlocks the synchronizer's ack-based safety "
                    "detection); expected one of ('message',) for crash "
                    "faults"
                )
        self.instr = Instrumentation(network.size_model)

        self._queue: List[_Event] = []
        self._seq = itertools.count()
        self._msg_counter = itertools.count()
        self.now = 0.0
        self.generators: Dict[NodeId, object] = {}
        self.round_of: Dict[NodeId, int] = {}
        # Payloads are buffered per (receiver, consuming round): a
        # message sent in the sender's round r is consumed by the
        # receiver's round r+1 generator step.  Neighbors may run one
        # round apart under a synchronizer, so a single shared buffer
        # would mix rounds.
        self.inbox_buffer: Dict[Tuple[NodeId, int],
                                List[Tuple[NodeId, Message]]] = {}
        self.pending_acks: Dict[NodeId, Set[int]] = {}
        self.finished: Set[NodeId] = set()

    @property
    def stats(self) -> AsyncStats:
        """Accounting snapshot (live during the run, final afterwards)."""
        s = self.instr.stats
        return AsyncStats(
            virtual_time=s.virtual_time,
            payload_messages=s.messages_sent,
            payload_bits=s.bits_sent,
            max_message_bits=s.max_message_bits,
            control_messages=s.control_messages,
            rounds=s.rounds,
        )

    # ------------------------------------------------------------------
    # Primitives shared by all synchronizers
    # ------------------------------------------------------------------
    def _push(self, src: NodeId, dest: NodeId, kind: str, round_index: int,
              payload: Optional[Message] = None, msg_id: int = -1) -> None:
        """Schedule a delivery after a random link delay."""
        heapq.heappush(self._queue, _Event(
            time=self.now + self.delay(self.delay_rng), seq=next(self._seq),
            src=src, dest=dest, kind=kind, round_index=round_index,
            payload=payload, msg_id=msg_id))

    def _push_control(self, src: NodeId, dest: NodeId, kind: str,
                      round_index: int) -> None:
        """Schedule (and account) one control message."""
        self.instr.control()
        self._push(src, dest, kind, round_index)

    def _advance(self, v: NodeId) -> None:
        """Run node v's generator for one synchronous round and ship its
        outgoing messages with the current round tag."""
        net = self.network
        proc = net.processes[v]
        if v in self.finished:
            # A finished node re-entered by a release wave (beta's pulse)
            # has nothing to execute: it is immediately safe.
            self.pending_acks[v] = set()
            self._node_safe(v)
            return
        proc.ctx.round_index = self.round_of[v]
        gen = self.generators[v]
        inbox = self.inbox_buffer.pop((v, self.round_of[v]), [])
        if len(inbox) > 1:
            # Delivery-order contract: inboxes are sorted by sender id
            # on every backend (arrival order here is delay order).
            inbox = sort_inbox(inbox)
        try:
            if self.round_of[v] == 0:
                next(gen)
            else:
                gen.send(inbox)
        except StopIteration:
            proc.finished = True
            self.finished.add(v)
        self.pending_acks[v] = set()
        if self.legacy_transport:
            for src, dest, msg in net.drain_outbox():
                if src != v:  # pragma: no cover — defensive
                    raise SimulationError("outbox contamination")
                mid = next(self._msg_counter)
                self.pending_acks[v].add(mid)
                # Payload accounting happens at delivery (see run()), so
                # a message dropped by an injector is never charged —
                # the same only-survivors convention as the synchronous
                # runner.
                self._push(v, dest, "payload", self.round_of[v],
                           payload=msg, msg_id=mid)
        else:
            batch = net.drain_batch()
            # Bundle the round's payloads per neighbor: one event, one
            # delay draw, one msg-id, one ack per (sender-round, dest)
            # instead of per payload copy.  Broadcast records fan out
            # here over the cached stable neighbor order.
            bundles: Dict[NodeId, List[Message]] = {}
            for rec in batch.records:
                if rec[1] != v:  # pragma: no cover — defensive
                    raise SimulationError("outbox contamination")
                msg = rec[3]
                for dest in batch.targets_of(rec):
                    bundle = bundles.get(dest)
                    if bundle is None:
                        bundles[dest] = [msg]
                    else:
                        bundle.append(msg)
            for dest, msgs in bundles.items():
                mid = next(self._msg_counter)
                self.pending_acks[v].add(mid)
                self._push(v, dest, "payload", self.round_of[v],
                           payload=msgs, msg_id=mid)
        if not self.pending_acks[v]:
            self._node_safe(v)

    def _enter_round(self, v: NodeId, r: int) -> None:
        """Release node v into round r (respecting the safety valve)."""
        if r > self.max_rounds:
            raise SimulationError(
                f"{self.NAME} run exceeded {self.max_rounds} rounds"
            )
        self.round_of[v] = r
        self.instr.note_round(r)
        self._advance(v)

    # ------------------------------------------------------------------
    # Safety-detection hooks (subclass responsibility)
    # ------------------------------------------------------------------
    def _node_safe(self, v: NodeId) -> None:
        raise NotImplementedError

    def _acks_complete(self, v: NodeId) -> None:
        raise NotImplementedError

    def _handle_control(self, ev: _Event) -> None:
        raise NotImplementedError

    def _start(self) -> None:
        """Hook run after generators are primed, before the event loop."""

    # ------------------------------------------------------------------
    def run(self) -> AsyncStats:
        """Execute all node processes to completion; returns accounting."""
        net = self.network
        for v, proc in net.processes.items():
            proc.finished = False
            proc.crashed = False
            ctx = net.make_context(v)
            proc.ctx = ctx
            gen = proc.run(ctx)
            if not hasattr(gen, "send"):
                raise SimulationError(
                    f"{type(proc).__name__}.run must be a generator"
                )
            self.generators[v] = gen
            self.round_of[v] = 0
        self._start()
        for v in net.processes:
            self._advance(v)

        while self._queue:
            ev = heapq.heappop(self._queue)
            self.now = ev.time
            self.instr.advance_time(ev.time)
            if ev.kind == "payload":
                payloads = (ev.payload if isinstance(ev.payload, list)
                            else [ev.payload])
                buffer = None
                for msg in payloads:
                    # Fault injectors act on each payload at delivery
                    # time — per message even inside a bundle, so drop
                    # decisions and `dropped` counts are per payload.
                    surviving = [(ev.src, ev.dest, msg)]
                    for inj in self.injectors:
                        if not surviving:
                            break
                        surviving = inj.filter_messages(ev.round_index,
                                                        surviving)
                    if surviving:
                        # Buffer for the receiver's round r+1.
                        self.instr.async_payload(msg)
                        if buffer is None:
                            buffer = self.inbox_buffer.setdefault(
                                (ev.dest, ev.round_index + 1), [])
                        buffer.append((ev.src, msg))
                # One ack per event (per bundle), even if every payload
                # in it was dropped: the synchronizer's control plane is
                # reliable (see class docstring), only payload content
                # is lost.
                self.instr.control()
                self._push(ev.dest, ev.src, "ack", ev.round_index,
                           msg_id=ev.msg_id)
            elif ev.kind == "ack":
                pending = self.pending_acks.get(ev.dest)
                if pending is not None and ev.msg_id in pending:
                    pending.discard(ev.msg_id)
                    if not pending:
                        self._acks_complete(ev.dest)
            else:
                self._handle_control(ev)

        if len(self.finished) != len(net.processes):
            stuck = set(net.processes) - self.finished
            raise SimulationError(
                f"{self.NAME} run deadlocked with {len(stuck)} node(s) "
                f"unfinished, e.g. {next(iter(stuck))!r}"
            )
        return self.stats


class AlphaSynchronizer(EventDrivenTransport):
    """Awerbuch's alpha synchronizer: per-neighbor safety announcements.

    Every node announces safety to all neighbors once its round-r
    payloads are acknowledged; a node enters round r+1 once it and all
    neighbors are safe for round r.  Cheap latency, ``O(|E|)`` control
    messages per round.
    """

    NAME = "asynchronous"

    def __init__(self, network: SynchronousNetwork, *,
                 delay: Callable[[np.random.Generator], float] | None = None,
                 delay_seed: int | None = None,
                 max_rounds: int = 100_000,
                 injectors: Iterable[FaultInjector] = (),
                 legacy_transport: bool = False):
        super().__init__(network, delay=delay, delay_seed=delay_seed,
                         max_rounds=max_rounds, injectors=injectors,
                         legacy_transport=legacy_transport)
        #: neighbors' highest announced safe round
        self.safe_round: Dict[NodeId, Dict[NodeId, int]] = {}
        #: Safety round announced by a node that has finished its protocol
        #: and had its last messages acknowledged: safe for every future
        #: round, so neighbors never wait on it again.
        self.safe_forever = max_rounds + 1

    def _node_safe(self, v: NodeId) -> None:
        """v is safe for its current round (or forever, once its
        generator has finished and its last messages are acked)."""
        r_announce = self.safe_forever if v in self.finished else self.round_of[v]
        for w in self.network.sorted_neighbors(v):
            self._push_control(v, w, "safe", r_announce)
        # Record own safety so _maybe_advance can treat v uniformly.
        self.safe_round.setdefault(v, {})[v] = r_announce
        self._maybe_advance(v)

    def _acks_complete(self, v: NodeId) -> None:
        if v not in self.finished:
            self._node_safe(v)

    def _maybe_advance(self, v: NodeId) -> None:
        """Enter round r+1 once v and all neighbors are safe for r."""
        if v in self.finished:
            return
        r = self.round_of[v]
        known = self.safe_round.get(v, {})
        if known.get(v, -1) < r:
            return
        for w in self.network.sorted_neighbors(v):
            if known.get(w, -1) < r:
                return
        self._enter_round(v, r + 1)

    def _handle_control(self, ev: _Event) -> None:
        if ev.kind != "safe":  # pragma: no cover — exhaustive kinds
            raise SimulationError(f"unknown event kind {ev.kind!r}")
        self.safe_round.setdefault(ev.dest, {})[ev.src] = max(
            self.safe_round.get(ev.dest, {}).get(ev.src, -1),
            ev.round_index)
        self._maybe_advance(ev.dest)


def run_protocol_async(network: SynchronousNetwork, *,
                       delay: Callable[[np.random.Generator], float] | None = None,
                       delay_seed: int | None = None,
                       max_rounds: int = 100_000,
                       injectors: Iterable[FaultInjector] = (),
                       legacy_transport: bool = False) -> AsyncStats:
    """Convenience wrapper: run ``network``'s processes asynchronously
    under an alpha synchronizer.  Node state afterwards is identical to a
    synchronous :func:`repro.simulation.runner.run_protocol` run with the
    same network seed."""
    sync = AlphaSynchronizer(network, delay=delay, delay_seed=delay_seed,
                             max_rounds=max_rounds, injectors=injectors,
                             legacy_transport=legacy_transport)
    return sync.run()
