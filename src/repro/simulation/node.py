"""Node process abstraction for the synchronous simulator.

A protocol is implemented by subclassing :class:`NodeProcess` and writing
``run(ctx)`` as a generator.  Each ``yield`` marks the end of one
communication round; the value received from the yield is the node's inbox
for the next round — a list of ``(sender, message)`` pairs::

    class EchoNode(NodeProcess):
        def run(self, ctx):
            ctx.broadcast(Ping(val=self.node_id))
            inbox = yield
            self.heard = [sender for sender, _ in inbox]

This style keeps multi-phase protocols (like Algorithm 1's nested loops or
Algorithm 3's doubling rounds) structurally identical to their pseudocode.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.errors import ProtocolViolationError
from repro.simulation.messages import Message
from repro.types import NodeId


class NodeContext:
    """Per-node handle into the network, valid for one protocol execution.

    Provides sending primitives, neighbor discovery, distance sensing (on
    geometric graphs), and the node's private RNG stream.
    """

    def __init__(self, node_id: NodeId, neighbors: Tuple[NodeId, ...],
                 network: "SynchronousNetwork",
                 rng: np.random.Generator):
        self.node_id = node_id
        #: Open neighborhood of the node (excludes the node itself).
        self.neighbors = neighbors
        self.rng = rng
        self._network = network
        self._neighbor_set = frozenset(neighbors)
        self.round_index = 0
        # Hot-path bindings: the network's outbox list is stable for its
        # lifetime (drained by copy-and-clear), so its append method can
        # be bound once instead of resolved per broadcast.
        self._record_append = network._outbox.append
        self._strict = network.strict_message_bits is not None

    @property
    def n(self) -> int:
        """Total number of nodes in the network (known a priori, as the
        paper assumes nodes know ``n``)."""
        return self._network.n

    def send(self, dest: NodeId, message: Message) -> None:
        """Queue ``message`` for delivery to neighbor ``dest`` at the end of
        the current round."""
        if dest != self.node_id and dest not in self._neighbor_set:
            raise ProtocolViolationError(
                f"node {self.node_id!r} tried to send to non-neighbor {dest!r}"
            )
        self._network._enqueue(self.node_id, dest, message)

    def broadcast(self, message: Message) -> None:
        """Send ``message`` to every neighbor (a local broadcast — the
        natural primitive on a shared wireless medium).

        Recorded as a *single* transport entry; the per-neighbor fan-out
        is materialized lazily at delivery over the cached stable
        neighbor order, so the cost of calling this is O(1) rather than
        O(degree)."""
        # Validation inlined from SynchronousNetwork._enqueue_broadcast:
        # this is the hottest send primitive.
        if not isinstance(message, Message):
            raise ProtocolViolationError(
                f"node {self.node_id!r} sent a non-Message payload: "
                f"{type(message).__name__}"
            )
        if self._strict:
            self._network._check_message(self.node_id, message)
        self._record_append((1, self.node_id, None, message))  # 1 == BROADCAST

    def send_within(self, radius: float, message: Message) -> None:
        """Send ``message`` to every neighbor within Euclidean distance
        ``radius`` (requires a geometric graph; models the restricted
        transmission range :math:`\\theta` of Algorithm 3)."""
        self._network._enqueue_multi(
            self.node_id, self.neighbors_within(radius), message
        )

    def neighbors_within(self, radius: float) -> Tuple[NodeId, ...]:
        """Neighbors at Euclidean distance at most ``radius`` — the paper's
        :math:`N_v(\\tau)` minus the node itself."""
        return self._network.neighbors_within(self.node_id, radius)

    def distance(self, other: NodeId) -> float:
        """Sensed Euclidean distance to a neighbor (UDG model assumption)."""
        return self._network.distance(self.node_id, other)


#: Inbox type: messages received in the previous round.
Inbox = List[Tuple[NodeId, Message]]


class NodeProcess:
    """Base class for protocol node processes.

    Subclasses implement :meth:`run` as a generator.  State that should be
    inspected after the run (e.g. the final ``x`` value or leader flag)
    should be stored on ``self``.
    """

    def __init__(self, node_id: NodeId):
        self.node_id = node_id
        #: Set by the runner when the node's generator finishes.
        self.finished = False
        #: Set by a fault injector if the node crashes mid-protocol.
        self.crashed = False
        self.ctx: Optional[NodeContext] = None

    def run(self, ctx: NodeContext) -> Iterator[None]:
        """Protocol body.  Must be a generator: ``inbox = yield`` advances
        one synchronous round."""
        raise NotImplementedError
        yield  # pragma: no cover — marks this as a generator template

    def __repr__(self) -> str:  # pragma: no cover — debugging aid
        status = "crashed" if self.crashed else ("done" if self.finished else "live")
        return f"<{type(self).__name__} {self.node_id!r} {status}>"
