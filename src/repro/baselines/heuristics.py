"""Context-setting heuristic baselines.

Most practical clustering schemes the paper cites ([3, 8, 23]) are
degree-based heuristics without worst-case guarantees.  These three
baselines bracket the solution-quality spectrum in the experiment tables:

- :func:`degree_heuristic_kmds` — admit nodes in static highest-degree
  order until the coverage constraint holds (a typical "cluster-head by
  degree" scheme);
- :func:`random_feasible_kmds` — admit uniformly random nodes until
  feasible (the "no algorithm" floor);
- :func:`all_nodes_kmds` — every node a dominator (the trivial upper
  bound; also what a k-fold dominating set degenerates to when k exceeds
  the neighborhood sizes).
"""

from __future__ import annotations

from typing import Dict, List, Set, Union

import numpy as np

from repro.core.verify import coverage_deficit
from repro.errors import GraphError, InfeasibleInstanceError
from repro.graphs.properties import as_nx
from repro.types import CoverageMap, DominatingSet, NodeId


def _check_convention(convention: str) -> None:
    if convention not in ("open", "closed"):
        raise GraphError(
            f"unknown convention {convention!r}; expected 'open' or 'closed'"
        )


def _feasibility_guard(g, req: Dict[NodeId, int], convention: str) -> None:
    if convention == "closed":
        for v in g.nodes:
            if req[v] > g.degree[v] + 1:
                raise InfeasibleInstanceError(
                    f"node {v!r} requires {req[v]} covers but |N[v]| = "
                    f"{g.degree[v] + 1}",
                    witness=v,
                )


def _admit_until_feasible(g, order: List[NodeId],
                          k: Union[int, CoverageMap],
                          convention: str,
                          algorithm: str) -> DominatingSet:
    """Admit nodes in the given order, skipping ones that reduce no
    deficit, until the k-domination constraint holds."""
    members: Set[NodeId] = set()
    deficit = coverage_deficit(g, members, k, convention=convention)
    outstanding = sum(deficit.values())
    for v in order:
        if outstanding == 0:
            break
        helps = deficit.get(v, 0) > 0 or any(
            deficit.get(w, 0) > 0 for w in g.neighbors(v))
        if not helps:
            continue
        members.add(v)
        deficit = coverage_deficit(g, members, k, convention=convention)
        outstanding = sum(deficit.values())
    if outstanding > 0:
        raise InfeasibleInstanceError(
            "no feasible k-fold dominating set exists for this instance"
        )
    return DominatingSet(members=members,
                         details={"algorithm": algorithm,
                                  "convention": convention})


def degree_heuristic_kmds(graph, k: Union[int, CoverageMap] = 1, *,
                          convention: str = "open") -> DominatingSet:
    """Highest-degree-first cluster-head heuristic."""
    _check_convention(convention)
    g = as_nx(graph)
    req = {v: k for v in g.nodes} if isinstance(k, int) else dict(k)
    _feasibility_guard(g, req, convention)
    order = sorted(g.nodes, key=lambda v: (-g.degree[v], repr(v)))
    return _admit_until_feasible(g, order, k, convention, "degree-heuristic")


def random_feasible_kmds(graph, k: Union[int, CoverageMap] = 1, *,
                         convention: str = "open",
                         seed: int | None = None) -> DominatingSet:
    """Admit uniformly random nodes until feasible."""
    _check_convention(convention)
    g = as_nx(graph)
    req = {v: k for v in g.nodes} if isinstance(k, int) else dict(k)
    _feasibility_guard(g, req, convention)
    rng = np.random.default_rng(seed)
    order = list(g.nodes)
    rng.shuffle(order)
    return _admit_until_feasible(g, order, k, convention, "random-feasible")


def all_nodes_kmds(graph) -> DominatingSet:
    """The trivial solution: every node is a dominator."""
    g = as_nx(graph)
    return DominatingSet(members=set(g.nodes),
                         details={"algorithm": "all-nodes"})
