"""Centralized greedy k-fold dominating set.

The straightforward adaptation of the greedy set-cover algorithm: always
add the node covering the largest number of still-unsatisfied coverage
units.  The paper cites it (Section 2) as the asymptotically optimal
``O(log Delta)`` approximation even for the fault-tolerant version
(Rajagopalan-Vazirani [20]); Algorithm 1 is explicitly "a distributed
version of the greedy k-MDS-algorithm".

Supports both coverage conventions:

- ``closed`` — every node u needs ``k_u`` dominators in ``N[u]`` (self
  counts once when selected);
- ``open`` — the Section 1 definition: selecting u waives u's own
  requirement entirely; otherwise u needs ``k_u`` dominators among its
  (open) neighbors.

Implementation: lazy max-heap over marginal gains (gains are monotone
non-increasing under both conventions, so stale heap entries are safely
re-evaluated on pop).
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Set, Union

from repro.errors import GraphError, InfeasibleInstanceError
from repro.graphs.properties import as_nx
from repro.types import CoverageMap, DominatingSet, NodeId


def _requirements(g, k: Union[int, CoverageMap]) -> Dict[NodeId, int]:
    if isinstance(k, int):
        if k < 0:
            raise GraphError(f"k must be non-negative, got {k}")
        return {v: k for v in g.nodes}
    return {v: int(k[v]) for v in g.nodes}


def greedy_kmds(graph, k: Union[int, CoverageMap] = 1, *,
                convention: str = "open") -> DominatingSet:
    """Greedy k-fold dominating set (``ln Delta + O(1)`` approximation).

    Parameters
    ----------
    graph:
        The network graph.
    k:
        Uniform requirement or per-node map.
    convention:
        ``"open"`` (Section 1 definition, members exempt) or ``"closed"``
        (the LP (PP) convention).

    Raises
    ------
    InfeasibleInstanceError
        Under the closed convention, when some node's requirement exceeds
        its closed neighborhood (the open convention is always feasible:
        in the worst case the node itself is selected and exempted).
    """
    if convention not in ("open", "closed"):
        raise GraphError(
            f"unknown convention {convention!r}; expected 'open' or 'closed'"
        )
    g = as_nx(graph)
    req = _requirements(g, k)

    residual: Dict[NodeId, int] = dict(req)
    members: Set[NodeId] = set()

    if convention == "closed":
        for v in g.nodes:
            if req[v] > g.degree[v] + 1:
                raise InfeasibleInstanceError(
                    f"node {v!r} requires {req[v]} covers but |N[v]| = "
                    f"{g.degree[v] + 1}",
                    witness=v,
                )

    def gain(v: NodeId) -> int:
        if v in members:
            return 0
        total = sum(1 for u in g.neighbors(v) if residual[u] > 0)
        if convention == "closed":
            total += 1 if residual[v] > 0 else 0
        else:
            # Selecting v waives v's own (possibly multi-unit) requirement.
            total += residual[v]
        return total

    heap: List[tuple] = [(-gain(v), _key(v), v) for v in g.nodes]
    heapq.heapify(heap)

    outstanding = sum(residual.values())
    while outstanding > 0:
        if not heap:
            raise InfeasibleInstanceError(
                "greedy exhausted all nodes with requirements outstanding"
            )
        neg_g, _, v = heapq.heappop(heap)
        current = gain(v)
        if current <= 0:
            # Positive outstanding demand must be coverable by someone
            # unless the instance is infeasible.
            if all(gain(w) <= 0 for w in g.nodes if w not in members):
                raise InfeasibleInstanceError(
                    "no remaining node can cover the outstanding demand"
                )
            continue
        if -neg_g != current:
            heapq.heappush(heap, (-current, _key(v), v))
            continue
        # v has the (lazily verified) best gain: select it.
        members.add(v)
        covered = 0
        for u in g.neighbors(v):
            if residual[u] > 0:
                residual[u] -= 1
                covered += 1
        if convention == "closed":
            if residual[v] > 0:
                residual[v] -= 1
                covered += 1
        else:
            covered += residual[v]
            residual[v] = 0
        outstanding -= covered

    return DominatingSet(members=members,
                         details={"algorithm": "greedy",
                                  "convention": convention})


def _key(v: NodeId):
    """Stable tie-break key for heterogeneous node ids."""
    return repr(v)
