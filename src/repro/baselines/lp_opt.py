"""Exact LP optimum of the covering LP (PP) via scipy's HiGHS solver.

The LP value lower-bounds the integral optimum, so measured ratios
``|ALG| / LP_OPT`` are *upper bounds* on the true approximation ratio —
the safe direction for validating the paper's guarantees on instances too
large for the exact branch-and-bound solver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Union

import numpy as np
import scipy.optimize as opt
import scipy.sparse as sp

from repro.core.lp import CoveringLP
from repro.errors import GraphError, SolverError
from repro.graphs.properties import as_nx
from repro.types import CoverageMap, NodeId


@dataclass
class LPOptimum:
    """LP solution: optimal objective and the optimal fractional vector."""

    objective: float
    x: Dict[NodeId, float]


def _constraint_matrix(lp: CoveringLP, convention: str) -> sp.csr_matrix:
    """Rows = covering constraints (one per node), columns = x variables.

    ``closed``: row u has a 1 for every j in N[u] — the (PP) constraint
    ``sum_{j in N_u} x_j >= k_u``.

    ``open``: the Section 1 definition linearizes to
    ``sum_{j in N(u)} x_j + k_u * x_u >= k_u`` (selecting u itself waives
    its requirement), so row u has 1 on open neighbors and ``k_u`` on u.
    """
    rows, cols, vals = [], [], []
    for i, v in enumerate(lp.nodes):
        for w in lp.graph.neighbors(v):
            rows.append(i)
            cols.append(lp.index[w])
            vals.append(1.0)
        rows.append(i)
        cols.append(i)
        vals.append(1.0 if convention == "closed" else float(lp.coverage[v]))
    return sp.csr_matrix((vals, (rows, cols)), shape=(lp.n, lp.n))


def lp_optimum(graph, k: Union[int, CoverageMap] = 1, *,
               convention: str = "closed") -> LPOptimum:
    """Solve the LP relaxation of k-MDS exactly.

    Parameters
    ----------
    graph:
        The network graph.
    k:
        Uniform requirement or per-node map.
    convention:
        ``"closed"`` — the paper's (PP) (default, matches Algorithm 1);
        ``"open"`` — relaxation of the Section 1 definition.

    Raises
    ------
    SolverError
        If the LP is infeasible or HiGHS fails.
    """
    if convention not in ("open", "closed"):
        raise GraphError(
            f"unknown convention {convention!r}; expected 'open' or 'closed'"
        )
    g = as_nx(graph)
    coverage = {v: k for v in g.nodes} if isinstance(k, int) else k
    lp = CoveringLP(g, coverage)
    if lp.n == 0:
        return LPOptimum(objective=0.0, x={})

    a_mat = _constraint_matrix(lp, convention)
    b = lp.k_vector()
    res = opt.linprog(
        c=np.ones(lp.n),
        A_ub=-a_mat,
        b_ub=-b,
        bounds=[(0.0, 1.0)] * lp.n,
        method="highs",
    )
    if not res.success:
        raise SolverError(
            f"LP solve failed ({res.status}): {res.message}"
        )
    x = {v: float(res.x[i]) for i, v in enumerate(lp.nodes)}
    return LPOptimum(objective=float(res.fun), x=x)
