"""Discrete mobile centers (Gao, Guibas, Hershberger, Zhang, Zhu [7]).

The paper's UDG algorithm builds directly on [7]: Part I of Algorithm 3
*is* the discrete-mobile-centers sparsification ("a first phase — which is
essentially equivalent to the algorithm proposed in [7]").  This wrapper
exposes that phase as a standalone baseline: a plain (k = 1) dominating
set of a unit disk graph, constant-approximate in expectation, in
``O(log log n)`` rounds.

Used in experiment E6 as the k = 1 comparison point, and in E13 to study
the per-round decay of active nodes (Lemma 5.2's sqrt-law).
"""

from __future__ import annotations

from repro.core.udg import part_one_leaders
from repro.types import DominatingSet


def gao_mobile_centers(graph, *, seed: int | None = None) -> DominatingSet:
    """Compute a plain dominating set of a UDG via discrete mobile centers.

    Parameters
    ----------
    graph:
        A :class:`~repro.graphs.udg.UnitDiskGraph`.
    seed:
        Root seed for the per-node random identifiers.

    Returns
    -------
    DominatingSet
        The leaders of the sparsification; ``details["active_per_round"]``
        holds the per-round active-node counts.
    """
    result = part_one_leaders(graph, seed=seed)
    result.details["algorithm"] = "gao-dmc"
    return result
