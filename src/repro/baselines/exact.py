"""Exact minimum k-fold dominating set by branch-and-bound.

Solves the 0/1 covering ILP ``min 1'x : A x >= b, x in {0,1}^n`` exactly
(for both coverage conventions — see :mod:`repro.baselines.lp_opt` for the
linearization of the open convention).  Components:

- LP relaxation (HiGHS) lower bounds at every node;
- a greedy warm-start incumbent;
- constraint propagation: a free variable is *forced in* when the
  remaining free+fixed supply of some constraint would otherwise fall
  short of the demand;
- branching on the most fractional LP variable, "include" branch first.

Intended for the experiment harness on instances up to roughly a hundred
nodes; the node budget guards against pathological inputs (raising
:class:`~repro.errors.BudgetExceededError` with the best incumbent found).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Set, Tuple, Union

import numpy as np
import scipy.optimize as opt
import scipy.sparse as sp

from repro.baselines.greedy import greedy_kmds
from repro.baselines.lp_opt import _constraint_matrix
from repro.core.lp import CoveringLP
from repro.errors import BudgetExceededError, GraphError, InfeasibleInstanceError
from repro.graphs.properties import as_nx
from repro.types import CoverageMap, DominatingSet


@dataclass
class _SearchState:
    """Bookkeeping shared across the branch-and-bound recursion."""

    best_size: int
    best_set: Set[int]
    nodes_explored: int = 0
    lp_solves: int = 0


def exact_kmds(graph, k: Union[int, CoverageMap] = 1, *,
               convention: str = "open",
               node_budget: int = 200_000) -> DominatingSet:
    """Exact minimum k-fold dominating set.

    Parameters
    ----------
    graph:
        The network graph.
    k:
        Uniform requirement or per-node map.
    convention:
        ``"open"`` (Section 1, default) or ``"closed"`` (the LP (PP)).
    node_budget:
        Maximum branch-and-bound nodes before giving up.

    Raises
    ------
    InfeasibleInstanceError
        If no feasible set exists (closed convention only).
    BudgetExceededError
        If optimality was not proven within the budget; the exception
        carries the best incumbent found.
    """
    if convention not in ("open", "closed"):
        raise GraphError(
            f"unknown convention {convention!r}; expected 'open' or 'closed'"
        )
    g = as_nx(graph)
    coverage = {v: k for v in g.nodes} if isinstance(k, int) else dict(k)
    lp = CoveringLP(g, coverage)
    if lp.n == 0:
        return DominatingSet(members=set(), details={"algorithm": "exact"})

    if convention == "closed" and lp.infeasible_witness() is not None:
        w = lp.infeasible_witness()
        raise InfeasibleInstanceError(
            f"node {w!r} requires {lp.coverage[w]} covers but |N[w]| = "
            f"{lp.graph.degree[w] + 1}",
            witness=w,
        )

    a_mat = _constraint_matrix(lp, convention).tocsr()
    b = lp.k_vector()
    n = lp.n

    # Warm start: greedy incumbent.
    greedy = greedy_kmds(g, coverage, convention=convention)
    incumbent = {lp.index[v] for v in greedy.members}
    state = _SearchState(best_size=len(incumbent), best_set=set(incumbent))

    def lp_bound(fixed_in: Set[int], fixed_out: Set[int]) -> Tuple[float, Optional[np.ndarray]]:
        """LP lower bound given partial assignment; (inf, None) if the LP
        is infeasible under the assignment."""
        lo = np.zeros(n)
        hi = np.ones(n)
        for j in fixed_in:
            lo[j] = 1.0
        for j in fixed_out:
            hi[j] = 0.0
        res = opt.linprog(c=np.ones(n), A_ub=-a_mat, b_ub=-b,
                          bounds=np.stack([lo, hi], axis=1),
                          method="highs")
        state.lp_solves += 1
        if not res.success:
            return math.inf, None
        return float(res.fun), res.x

    def propagate(fixed_in: Set[int], fixed_out: Set[int]) -> bool:
        """Force variables whose exclusion would make a row unsatisfiable:
        a free ``j`` with coefficient ``a[i, j]`` exceeding row ``i``'s
        slack (max supply minus demand) must be selected.  Returns False
        when some row is unsatisfiable even with every free node in."""
        hi = np.ones(n)
        for j in fixed_out:
            hi[j] = 0.0
        supply = a_mat @ hi  # max achievable per row under the assignment
        if (supply < b - 1e-9).any():
            return False
        row_slack = supply - b
        for i in range(len(b)):
            lo_i, hi_i = a_mat.indptr[i], a_mat.indptr[i + 1]
            for ptr in range(lo_i, hi_i):
                j = a_mat.indices[ptr]
                if j in fixed_in or j in fixed_out:
                    continue
                if a_mat.data[ptr] > row_slack[i] + 1e-9:
                    fixed_in.add(j)
        return True

    def recurse(fixed_in: Set[int], fixed_out: Set[int]) -> None:
        state.nodes_explored += 1
        if state.nodes_explored > node_budget:
            raise BudgetExceededError(
                f"branch-and-bound exceeded {node_budget} nodes",
                incumbent={lp.nodes[j] for j in state.best_set},
            )
        if not propagate(fixed_in, fixed_out):
            return
        if len(fixed_in) >= state.best_size:
            return
        bound, x_rel = lp_bound(fixed_in, fixed_out)
        if x_rel is None or math.ceil(bound - 1e-6) >= state.best_size:
            return
        frac = np.where((x_rel > 1e-6) & (x_rel < 1 - 1e-6))[0]
        frac = [j for j in frac if j not in fixed_in and j not in fixed_out]
        if not frac:
            chosen = {j for j in range(n)
                      if x_rel[j] > 0.5 or j in fixed_in} - fixed_out
            # Integral LP solution: it is feasible and optimal for this
            # subproblem.
            size = len(chosen)
            if size < state.best_size and _feasible(chosen):
                state.best_size = size
                state.best_set = set(chosen)
            return
        # Branch on the most fractional free variable, include-first.
        j = max(frac, key=lambda jj: min(x_rel[jj], 1 - x_rel[jj]))
        recurse(fixed_in | {j}, set(fixed_out))
        recurse(set(fixed_in), fixed_out | {j})

    def _feasible(chosen: Set[int]) -> bool:
        xv = np.zeros(n)
        for j in chosen:
            xv[j] = 1.0
        return bool(((a_mat @ xv) >= b - 1e-6).all())

    recurse(set(), set())

    members = {lp.nodes[j] for j in state.best_set}
    return DominatingSet(
        members=members,
        details={
            "algorithm": "exact",
            "convention": convention,
            "bnb_nodes": state.nodes_explored,
            "lp_solves": state.lp_solves,
        },
    )
