"""Baseline solvers the paper compares against (or that its analysis uses).

- :mod:`repro.baselines.greedy` — the centralized greedy multicover
  algorithm (Chvatal [5] / Rajagopalan-Vazirani [20]), ``ln Delta + O(1)``
  approximate: the classical quality yardstick;
- :mod:`repro.baselines.lp_opt` — exact LP optimum of (PP) via scipy
  (a lower bound on the integral optimum, used for large instances);
- :mod:`repro.baselines.exact` — exact k-MDS by branch-and-bound with LP
  bounds (small instances; the true OPT in approximation ratios);
- :mod:`repro.baselines.jrs` — a Jia-Rajaraman-Suel-style [9] distributed
  greedy, the only prior distributed k-MDS algorithm for general graphs;
- :mod:`repro.baselines.gao` — Part-I-only discrete mobile centers [7]
  (the k = 1 comparison point in unit disk graphs);
- :mod:`repro.baselines.heuristics` — degree heuristic / random feasible /
  all-nodes context baselines.
"""

from repro.baselines.greedy import greedy_kmds
from repro.baselines.lp_opt import lp_optimum
from repro.baselines.exact import exact_kmds
from repro.baselines.jrs import jrs_kmds
from repro.baselines.gao import gao_mobile_centers
from repro.baselines.heuristics import (
    degree_heuristic_kmds,
    random_feasible_kmds,
    all_nodes_kmds,
)

__all__ = [
    "greedy_kmds",
    "lp_optimum",
    "exact_kmds",
    "jrs_kmds",
    "gao_mobile_centers",
    "degree_heuristic_kmds",
    "random_feasible_kmds",
    "all_nodes_kmds",
]
