"""A Jia-Rajaraman-Suel-style distributed greedy baseline ([9]).

The paper cites Jia, Rajaraman and Suel's *local randomized greedy* (LRG)
as "the only previously known upper bound on the distributed
approximability of the k-fold dominating set problem in general graphs":
expected ``O(log Delta)`` approximation in ``O(log n log Delta log k)``
time.  This module implements an LRG-style algorithm adapted to
k-coverage, used as the comparison point in experiment E12:

1. every unselected node computes its *span* — the number of coverage
   units it could still supply (one per closed neighbor with positive
   residual demand);
2. a node is a *candidate* if its span, rounded up to a power of 2, is
   maximal among the rounded spans within its 2-neighborhood (the rounding
   makes "nearly maximal" nodes candidates too, which is what makes the
   round count logarithmic);
3. every candidate joins the set with probability ``1 / median support``,
   where the support of a still-deficient node is the number of candidates
   that would cover it;
4. if a candidate saw no coin-flip join in its closed neighborhood and its
   ``(span, id)`` is maximal among candidates within distance 2, it joins
   deterministically (a *local* progress guarantee — every phase makes
   progress without any global coordination);
5. repeat until no residual demand remains anywhere within distance 2.

The algorithm is an engine :class:`~repro.engine.program.RoundProgram`:
``mode="direct"`` runs the phases centrally; ``mode="message"`` (and
``"async"`` / ``"async-beta"``) runs them as a real 7-round-per-phase
protocol — state, span, 2-hop span max, candidacy, support, coin joins,
fallback joins — with per-message bit accounting.  Both consume the
per-node RNG streams identically, so the same seed yields the same set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Set, Union

import numpy as np

from repro.engine import Instrumentation, RoundProgram, execute, validate_seed
from repro.engine.artifacts import graph_artifacts
from repro.errors import GraphError, InfeasibleInstanceError
from repro.graphs.properties import as_nx
from repro.simulation.messages import Message
from repro.simulation.node import NodeProcess
from repro.simulation.rng import spawn_node_rngs
from repro.types import CoverageMap, DominatingSet, NodeId, RunStats

#: Communication rounds per LRG phase (state: 1, span: 1, 2-hop span max:
#: 1, candidacy: 1, support: 1, coin joins: 1, fallback joins: 1).
ROUNDS_PER_PHASE = 7


def _round_up_pow2(value: int) -> int:
    """Smallest power of two >= value (0 stays 0)."""
    if value <= 0:
        return 0
    return 1 << (value - 1).bit_length()


# ======================================================================
# Messages (one dataclass per protocol round)
# ======================================================================

@dataclass(frozen=True)
class JrsStateMsg(Message):
    """Round 1: membership + residual demand."""
    member: bool = False
    residual: int = 0
    SCHEMA = (("member", "flag"), ("residual", "count"))


@dataclass(frozen=True)
class JrsSpanMsg(Message):
    """Round 2: own span + whether any residual remains in N[v]."""
    span: int = 0
    active: bool = False
    SCHEMA = (("span", "count"), ("active", "flag"))


@dataclass(frozen=True)
class JrsHoodMaxMsg(Message):
    """Round 3: max rounded span over N[v] (relayed for the 2-hop max)."""
    value: int = 0
    SCHEMA = (("value", "count"),)


@dataclass(frozen=True)
class JrsCandMsg(Message):
    """Round 4: candidacy flag."""
    candidate: bool = False
    SCHEMA = (("candidate", "flag"),)


@dataclass(frozen=True)
class JrsSupportMsg(Message):
    """Round 5: own support + the best candidate key seen in N[v]
    (``best_span == 0`` means no candidate in N[v])."""
    support: int = 0
    best_span: int = 0
    best_id: int = 0
    SCHEMA = (("support", "count"), ("best_span", "count"), ("best_id", "id"))


@dataclass(frozen=True)
class JrsJoinMsg(Message):
    """Round 6: coin-flip join announcement."""
    joined: bool = False
    SCHEMA = (("joined", "flag"),)


@dataclass(frozen=True)
class JrsFallbackMsg(Message):
    """Round 7: deterministic fallback-join announcement."""
    joined: bool = False
    SCHEMA = (("joined", "flag"),)


class JRSNode(NodeProcess):
    """Per-node process running LRG phases until its 2-hop region has no
    residual demand left."""

    def __init__(self, node_id: NodeId, req: int, convention: str,
                 max_phases: int):
        super().__init__(node_id)
        self.req = int(req)
        self.convention = convention
        self.max_phases = max_phases
        self.member = False
        self.phases = 0

    def run(self, ctx) -> Iterator[None]:
        me = self.node_id
        nbrs = tuple(ctx.neighbors)
        closed = (me,) + nbrs
        convention = self.convention
        residual = self.req
        # Last-known neighbor state (exited neighbors stop broadcasting,
        # but their state is frozen by then, so stale values stay exact).
        member_of: Dict[NodeId, bool] = {w: False for w in closed}
        residual_of: Dict[NodeId, int] = {w: 0 for w in closed}

        while True:
            # --- round 1: state ---------------------------------------
            ctx.broadcast(JrsStateMsg(member=self.member, residual=residual))
            inbox = yield
            for src, msg in inbox:
                member_of[src] = msg.member
                residual_of[src] = msg.residual
            member_of[me] = self.member
            residual_of[me] = residual

            if self.member:
                span = 0
            else:
                span = sum(1 for u in nbrs if residual_of[u] > 0)
                if convention == "closed":
                    span += 1 if residual > 0 else 0
                else:
                    span += residual
            any_res1 = any(residual_of[u] > 0 for u in closed)

            # --- round 2: span (+ 1-hop activity flag) ----------------
            ctx.broadcast(JrsSpanMsg(span=span, active=any_res1))
            inbox = yield
            span_of: Dict[NodeId, int] = {me: span}
            active2 = any_res1
            for src, msg in inbox:
                span_of[src] = msg.span
                active2 = active2 or msg.active
            if not active2:
                # No residual demand anywhere within distance 2: every
                # value this node could still relay is zero, so it can
                # leave the protocol without affecting anyone.
                return
            self.phases += 1
            if self.phases > self.max_phases:
                raise GraphError(
                    f"LRG did not converge within {self.max_phases} phases"
                )
            rounded_of = {w: _round_up_pow2(s) for w, s in span_of.items()}
            hoodmax = max(rounded_of.values())

            # --- round 3: 2-hop rounded-span max ----------------------
            ctx.broadcast(JrsHoodMaxMsg(value=hoodmax))
            inbox = yield
            max2 = hoodmax
            for _, msg in inbox:
                max2 = max(max2, msg.value)
            candidate = rounded_of[me] > 0 and rounded_of[me] >= max2

            # --- round 4: candidacy -----------------------------------
            ctx.broadcast(JrsCandMsg(candidate=candidate))
            inbox = yield
            cand_of: Dict[NodeId, bool] = {me: candidate}
            for src, msg in inbox:
                cand_of[src] = msg.candidate
            support = (sum(1 for c in cand_of.values() if c)
                       if residual > 0 else 0)
            best1 = max(
                ((span_of.get(w, 0), repr(w), w)
                 for w, c in cand_of.items() if c),
                default=None,
            )

            # --- round 5: support + best candidate key in N[v] --------
            ctx.broadcast(JrsSupportMsg(
                support=support,
                best_span=best1[0] if best1 else 0,
                best_id=best1[2] if best1 else me,
            ))
            inbox = yield
            support_of: Dict[NodeId, int] = {me: support}
            best2 = (best1[0], best1[1]) if best1 else None
            for src, msg in inbox:
                support_of[src] = msg.support
                if msg.best_span > 0:
                    key = (msg.best_span, repr(msg.best_id))
                    if best2 is None or key > best2:
                        best2 = key
            joined = False
            if candidate:
                covered = [u for u in closed if residual_of[u] > 0]
                med = float(np.median([support_of.get(u, 1)
                                       for u in covered]))
                p = 1.0 if med <= 1 else 1.0 / med
                joined = ctx.rng.random() < p

            # --- round 6: coin-flip joins -----------------------------
            ctx.broadcast(JrsJoinMsg(joined=joined))
            inbox = yield
            joined_of: Dict[NodeId, bool] = {me: joined}
            for src, msg in inbox:
                joined_of[src] = msg.joined
            any_join1 = any(joined_of.values())
            fallback = (candidate and not joined and not any_join1
                        and best2 == (span, repr(me)))
            if fallback:
                joined = True
                joined_of[me] = True

            # --- round 7: fallback joins ------------------------------
            ctx.broadcast(JrsFallbackMsg(joined=fallback))
            inbox = yield
            for src, msg in inbox:
                if msg.joined:
                    joined_of[src] = True

            # Apply this phase's joins to the local view.
            for w in closed:
                if not joined_of.get(w, False) or member_of[w]:
                    continue
                member_of[w] = True
                if w == me:
                    self.member = True
                    if convention == "closed":
                        if residual > 0:
                            residual -= 1
                    else:
                        residual = 0
                elif residual > 0:
                    residual -= 1


# ======================================================================
# The round program
# ======================================================================

class JRSProgram(RoundProgram):
    """The LRG baseline as an engine-executable round program."""

    def __init__(self, artifacts, req: Dict[NodeId, int], convention: str,
                 seed: int | None, max_phases: int):
        super().__init__(artifacts)
        self.req = req
        self.convention = convention
        self.seed = seed
        self.max_phases = max_phases

    def max_rounds(self) -> int:
        return ROUNDS_PER_PHASE * self.max_phases + 4

    # ------------------------------------------------------------------
    def direct(self, instr: Instrumentation) -> DominatingSet:
        g = self.artifacts.graph
        convention = self.convention
        nbrs_of = self.artifacts.sorted_neighbors
        rngs = spawn_node_rngs(g.nodes, self.seed)
        residual: Dict[NodeId, int] = dict(self.req)
        members: Set[NodeId] = set()
        phases = 0

        def closed(v: NodeId) -> List[NodeId]:
            return [v] + list(nbrs_of[v])

        def span(v: NodeId) -> int:
            if v in members:
                return 0
            s = sum(1 for u in nbrs_of[v] if residual[u] > 0)
            if convention == "closed":
                s += 1 if residual[v] > 0 else 0
            else:
                s += residual[v]
            return s

        while any(r > 0 for r in residual.values()):
            phases += 1
            if phases > self.max_phases:
                raise GraphError(
                    f"LRG did not converge within {self.max_phases} phases"
                )
            spans = {v: span(v) for v in g.nodes}
            rounded = {v: _round_up_pow2(s) for v, s in spans.items()}

            # Candidates: rounded span maximal within distance 2.
            candidates: Set[NodeId] = set()
            for v in g.nodes:
                rv = rounded[v]
                if rv == 0:
                    continue
                two_hood = set(closed(v))
                for w in nbrs_of[v]:
                    two_hood.update(nbrs_of[w])
                if rv >= max(rounded[u] for u in two_hood):
                    candidates.add(v)

            # Support of each deficient node: candidates that would cover it.
            support: Dict[NodeId, int] = {}
            for u in g.nodes:
                if residual[u] <= 0:
                    continue
                cnt = sum(1 for w in nbrs_of[u] if w in candidates)
                if u in candidates:
                    cnt += 1
                support[u] = cnt

            # Candidates join with probability 1 / (median support of the
            # deficient nodes they would cover).
            joined: Set[NodeId] = set()
            for v in sorted(candidates, key=repr):
                covered = [u for u in closed(v) if residual[u] > 0]
                if not covered:
                    continue
                med = float(np.median([support.get(u, 1) for u in covered]))
                p = 1.0 if med <= 1 else 1.0 / med
                if rngs[v].random() < p:
                    joined.add(v)

            # Local fallback: a candidate with no coin-flip join in its
            # closed neighborhood joins iff its (span, id) is maximal
            # among candidates within distance 2 (same rule the message
            # protocol applies, so the backends stay in lockstep).
            fallback: Set[NodeId] = set()
            for v in candidates:
                if v in joined or any(w in joined for w in closed(v)):
                    continue
                two_hood = set(closed(v))
                for w in nbrs_of[v]:
                    two_hood.update(nbrs_of[w])
                best = max((u for u in two_hood if u in candidates),
                           key=lambda u: (spans[u], repr(u)))
                if best == v:
                    fallback.add(v)
            joined |= fallback

            for v in joined:
                members.add(v)
                for u in nbrs_of[v]:
                    if residual[u] > 0:
                        residual[u] -= 1
                if convention == "closed":
                    if residual[v] > 0:
                        residual[v] -= 1
                else:
                    residual[v] = 0

        instr.charge_rounds(phases * ROUNDS_PER_PHASE)
        return DominatingSet(
            members=members,
            stats=instr.stats,
            details={"algorithm": "jrs-lrg", "phases": phases,
                     "convention": convention},
        )

    # ------------------------------------------------------------------
    def processes(self) -> List[JRSNode]:
        return [JRSNode(v, self.req[v], self.convention, self.max_phases)
                for v in self.artifacts.nodes]

    def collect(self, processes: Sequence[JRSNode],
                stats: RunStats) -> DominatingSet:
        members = {p.node_id for p in processes if p.member}
        phases = max((p.phases for p in processes), default=0)
        return DominatingSet(
            members=members,
            stats=stats,
            details={"algorithm": "jrs-lrg", "phases": phases,
                     "convention": self.convention},
        )


# ======================================================================
# Public entry point
# ======================================================================

def jrs_kmds(graph, k: Union[int, CoverageMap] = 1, *,
             convention: str = "closed",
             mode: str = "direct",
             seed: int | None = None,
             delay=None,
             delay_seed: int | None = None,
             max_phases: int = 10_000) -> DominatingSet:
    """Run the LRG-style distributed greedy to a k-fold dominating set.

    Parameters
    ----------
    graph:
        The network graph.
    k:
        Uniform requirement or per-node map.
    convention:
        ``"closed"`` (default; matches the LP (PP) and Algorithm 1+2) or
        ``"open"`` (members exempt).
    mode:
        An engine backend: ``"direct"`` (default), ``"message"``,
        ``"async"`` or ``"async-beta"``.
    seed:
        Root seed for the per-node randomness (every backend consumes the
        per-node streams identically).
    max_phases:
        Safety valve against livelock on adversarial inputs.
    """
    if convention not in ("open", "closed"):
        raise GraphError(
            f"unknown convention {convention!r}; expected 'open' or 'closed'"
        )
    seed = validate_seed(seed)
    g = as_nx(graph)
    req = {v: k for v in g.nodes} if isinstance(k, int) else dict(k)
    for v in g.nodes:
        if convention == "closed" and req[v] > g.degree[v] + 1:
            raise InfeasibleInstanceError(
                f"node {v!r} requires {req[v]} covers but |N[v]| = "
                f"{g.degree[v] + 1}",
                witness=v,
            )
    program = JRSProgram(graph_artifacts(g), req, convention, seed,
                         max_phases)
    return execute(program, mode, seed=seed, delay=delay,
                   delay_seed=delay_seed)
