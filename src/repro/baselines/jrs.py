"""A Jia-Rajaraman-Suel-style distributed greedy baseline ([9]).

The paper cites Jia, Rajaraman and Suel's *local randomized greedy* (LRG)
as "the only previously known upper bound on the distributed
approximability of the k-fold dominating set problem in general graphs":
expected ``O(log Delta)`` approximation in ``O(log n log Delta log k)``
time.  This module implements an LRG-style algorithm adapted to
k-coverage, used as the comparison point in experiment E12:

1. every unselected node computes its *span* — the number of coverage
   units it could still supply (one per closed neighbor with positive
   residual demand);
2. a node is a *candidate* if its span, rounded up to a power of 2, is
   maximal among the rounded spans within its 2-neighborhood (the rounding
   makes "nearly maximal" nodes candidates too, which is what makes the
   round count logarithmic);
3. every candidate joins the set with probability ``1 / median support``,
   where the support of a still-deficient node is the number of candidates
   that would cover it;
4. repeat until no residual demand remains.

Each phase corresponds to a constant number of communication rounds on a
real network (span exchange is 2-hop, hence 2 rounds; candidate flags,
support counts, and membership announcements one round each); the reported
``RunStats.rounds`` charges 5 rounds per phase.
"""

from __future__ import annotations

from typing import Dict, List, Set, Union

import numpy as np

from repro.errors import GraphError, InfeasibleInstanceError
from repro.graphs.properties import as_nx
from repro.simulation.rng import spawn_node_rngs
from repro.types import CoverageMap, DominatingSet, NodeId, RunStats

#: Communication rounds charged per LRG phase (span: 2, candidacy: 1,
#: support: 1, membership: 1).
ROUNDS_PER_PHASE = 5


def _round_up_pow2(value: int) -> int:
    """Smallest power of two >= value (0 stays 0)."""
    if value <= 0:
        return 0
    return 1 << (value - 1).bit_length()


def jrs_kmds(graph, k: Union[int, CoverageMap] = 1, *,
             convention: str = "closed",
             seed: int | None = None,
             max_phases: int = 10_000) -> DominatingSet:
    """Run the LRG-style distributed greedy to a k-fold dominating set.

    Parameters
    ----------
    graph:
        The network graph.
    k:
        Uniform requirement or per-node map.
    convention:
        ``"closed"`` (default; matches the LP (PP) and Algorithm 1+2) or
        ``"open"`` (members exempt).
    seed:
        Root seed for the per-node randomness.
    max_phases:
        Safety valve against livelock on adversarial inputs.
    """
    if convention not in ("open", "closed"):
        raise GraphError(
            f"unknown convention {convention!r}; expected 'open' or 'closed'"
        )
    g = as_nx(graph)
    req = {v: k for v in g.nodes} if isinstance(k, int) else dict(k)
    for v in g.nodes:
        if convention == "closed" and req[v] > g.degree[v] + 1:
            raise InfeasibleInstanceError(
                f"node {v!r} requires {req[v]} covers but |N[v]| = "
                f"{g.degree[v] + 1}",
                witness=v,
            )

    rngs = spawn_node_rngs(g.nodes, seed)
    residual: Dict[NodeId, int] = dict(req)
    members: Set[NodeId] = set()
    phases = 0

    def closed(v: NodeId) -> List[NodeId]:
        return [v] + list(g.neighbors(v))

    def span(v: NodeId) -> int:
        if v in members:
            return 0
        s = sum(1 for u in g.neighbors(v) if residual[u] > 0)
        if convention == "closed":
            s += 1 if residual[v] > 0 else 0
        else:
            s += residual[v]
        return s

    while any(r > 0 for r in residual.values()):
        phases += 1
        if phases > max_phases:
            raise GraphError(
                f"LRG did not converge within {max_phases} phases"
            )
        spans = {v: span(v) for v in g.nodes}
        rounded = {v: _round_up_pow2(s) for v, s in spans.items()}

        # Candidates: rounded span maximal within distance 2.
        candidates: Set[NodeId] = set()
        for v in g.nodes:
            rv = rounded[v]
            if rv == 0:
                continue
            two_hood = set(closed(v))
            for w in g.neighbors(v):
                two_hood.update(g.neighbors(w))
            if rv >= max(rounded[u] for u in two_hood):
                candidates.add(v)

        # Support of each deficient node: candidates that would cover it.
        support: Dict[NodeId, int] = {}
        for u in g.nodes:
            if residual[u] <= 0:
                continue
            cnt = sum(1 for w in g.neighbors(u) if w in candidates)
            if u in candidates:
                cnt += 1
            support[u] = cnt

        # Candidates join with probability 1 / (median support of the
        # deficient nodes they would cover).
        joined: Set[NodeId] = set()
        for v in sorted(candidates, key=repr):
            covered = [u for u in closed(v) if residual[u] > 0]
            if not covered:
                continue
            med = float(np.median([support.get(u, 1) for u in covered]))
            p = 1.0 if med <= 1 else 1.0 / med
            if rngs[v].random() < p:
                joined.add(v)

        if not joined and candidates:
            # Guarantee progress: deterministically admit the candidate
            # with the largest span (ties by id).
            best = max(candidates, key=lambda v: (spans[v], repr(v)))
            joined.add(best)

        for v in joined:
            members.add(v)
            for u in g.neighbors(v):
                if residual[u] > 0:
                    residual[u] -= 1
            if convention == "closed":
                if residual[v] > 0:
                    residual[v] -= 1
            else:
                residual[v] = 0

    stats = RunStats()
    stats.rounds = phases * ROUNDS_PER_PHASE
    return DominatingSet(
        members=members,
        stats=stats,
        details={"algorithm": "jrs-lrg", "phases": phases,
                 "convention": convention},
    )
