"""Graph substrates: unit disk graphs, general-graph generators, geometry.

The paper studies two network models (Section 1): arbitrary general graphs
("the pessimistic counterpart") and unit disk graphs ("a quasi-standard for
the analysis of algorithms designed for wireless networks").  This package
provides generators for both, plus the hexagonal-lattice covering geometry
of Figure 1 used in the Section 5 analysis.
"""

from repro.graphs.udg import (
    NoisySensingUDG,
    QuasiUnitDiskGraph,
    UnitDiskGraph,
    random_udg,
    udg_from_points,
)
from repro.graphs.generators import (
    gnp_graph,
    random_regular_graph,
    powerlaw_graph,
    grid_graph,
    path_graph,
    star_graph,
    complete_graph,
    caterpillar_graph,
    graph_suite,
)
from repro.graphs.properties import (
    as_nx,
    max_degree,
    min_degree,
    closed_neighborhood,
    degree_histogram,
    graph_summary,
    max_feasible_k,
    feasible_coverage,
)
from repro.graphs.deployments import (
    clustered_udg,
    corridor_udg,
    perforated_udg,
)
from repro.graphs.mobility import (
    GaussianDrift,
    MobilityModel,
    RandomWaypoint,
    mobility_trace,
)
from repro.graphs.hexcover import (
    hex_cover_centers,
    covering_disk_count,
    alpha_bound,
    disks_touching,
    leaders_per_disk,
)

__all__ = [
    "NoisySensingUDG",
    "QuasiUnitDiskGraph",
    "UnitDiskGraph",
    "as_nx",
    "random_udg",
    "udg_from_points",
    "gnp_graph",
    "random_regular_graph",
    "powerlaw_graph",
    "grid_graph",
    "path_graph",
    "star_graph",
    "complete_graph",
    "caterpillar_graph",
    "graph_suite",
    "max_degree",
    "min_degree",
    "closed_neighborhood",
    "degree_histogram",
    "graph_summary",
    "max_feasible_k",
    "feasible_coverage",
    "clustered_udg",
    "corridor_udg",
    "perforated_udg",
    "GaussianDrift",
    "MobilityModel",
    "RandomWaypoint",
    "mobility_trace",
    "hex_cover_centers",
    "covering_disk_count",
    "alpha_bound",
    "disks_touching",
    "leaders_per_disk",
]
