"""General-graph generators for the Section 4 experiments.

All generators return ``networkx.Graph`` instances with integer node labels
``0..n-1`` and no self-loops, ready for the distributed algorithms.  The
suite covers the regimes the paper's general-graph analysis cares about:
bounded-degree graphs (grids, regular graphs), heavy-tailed degree
distributions (power-law), dense random graphs, and adversarial shapes
(stars, caterpillars) where greedy-style algorithms are stressed.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

import networkx as nx

from repro.errors import GraphError


def _normalize(g: nx.Graph) -> nx.Graph:
    """Relabel nodes to 0..n-1 ints and strip self-loops."""
    g = nx.convert_node_labels_to_integers(g, ordering="sorted")
    g.remove_edges_from(nx.selfloop_edges(g))
    return g


def gnp_graph(n: int, p: float, seed: int | None = None) -> nx.Graph:
    """Erdos-Renyi ``G(n, p)``."""
    if not 0.0 <= p <= 1.0:
        raise GraphError(f"edge probability must be in [0, 1], got {p}")
    return _normalize(nx.gnp_random_graph(n, p, seed=seed))


def random_regular_graph(n: int, d: int, seed: int | None = None) -> nx.Graph:
    """Random ``d``-regular graph (``n * d`` must be even, ``d < n``)."""
    if d >= n or (n * d) % 2 != 0:
        raise GraphError(
            f"random regular graph needs d < n and n*d even, got n={n}, d={d}"
        )
    return _normalize(nx.random_regular_graph(d, n, seed=seed))


def powerlaw_graph(n: int, m: int = 2, seed: int | None = None) -> nx.Graph:
    """Barabasi-Albert preferential attachment (heavy-tailed degrees)."""
    if n <= m:
        raise GraphError(f"powerlaw graph needs n > m, got n={n}, m={m}")
    return _normalize(nx.barabasi_albert_graph(n, m, seed=seed))


def grid_graph(rows: int, cols: int) -> nx.Graph:
    """2D grid — the canonical bounded-degree, large-diameter topology."""
    if rows < 1 or cols < 1:
        raise GraphError(f"grid dimensions must be positive, got {rows}x{cols}")
    return _normalize(nx.grid_2d_graph(rows, cols))


def path_graph(n: int) -> nx.Graph:
    """Simple path on ``n`` nodes."""
    return _normalize(nx.path_graph(n))


def star_graph(n_leaves: int) -> nx.Graph:
    """Star with one hub and ``n_leaves`` leaves — maximal degree skew."""
    if n_leaves < 0:
        raise GraphError(f"n_leaves must be non-negative, got {n_leaves}")
    return _normalize(nx.star_graph(n_leaves))


def complete_graph(n: int) -> nx.Graph:
    """Clique on ``n`` nodes — the densest instance."""
    return _normalize(nx.complete_graph(n))


def caterpillar_graph(spine: int, legs_per_node: int = 2) -> nx.Graph:
    """A path ("spine") where every spine node carries pendant leaves.

    Dominating-set instances on caterpillars force any good algorithm to
    pick (nearly) every spine node, making approximation slack visible.
    """
    if spine < 1:
        raise GraphError(f"spine length must be positive, got {spine}")
    if legs_per_node < 0:
        raise GraphError(f"legs_per_node must be non-negative, got {legs_per_node}")
    g = nx.path_graph(spine)
    next_id = spine
    for v in range(spine):
        for _ in range(legs_per_node):
            g.add_edge(v, next_id)
            next_id += 1
    return _normalize(g)


def graph_suite(scale: str = "small", seed: int = 0) -> Iterator[Tuple[str, nx.Graph]]:
    """Yield ``(name, graph)`` pairs forming the standard experiment suite.

    ``scale`` is one of ``"tiny"`` (exact-solver friendly), ``"small"``
    (LP-bound friendly), or ``"medium"`` (sweep scale).
    """
    sizes: Dict[str, Dict[str, int]] = {
        "tiny": dict(n=24, grid=5, spine=6),
        "small": dict(n=80, grid=9, spine=20),
        "medium": dict(n=250, grid=16, spine=60),
    }
    if scale not in sizes:
        raise GraphError(
            f"unknown scale {scale!r}; expected one of {sorted(sizes)}"
        )
    s = sizes[scale]
    n = s["n"]
    yield "gnp-sparse", gnp_graph(n, min(1.0, 4.0 / n), seed=seed)
    yield "gnp-dense", gnp_graph(n, min(1.0, 12.0 / n), seed=seed + 1)
    yield "regular", random_regular_graph(n - (n % 2), 6 if n > 6 else 3, seed=seed + 2)
    yield "powerlaw", powerlaw_graph(n, 3 if n > 3 else 1, seed=seed + 3)
    yield "grid", grid_graph(s["grid"], s["grid"])
    yield "caterpillar", caterpillar_graph(s["spine"], 2)
