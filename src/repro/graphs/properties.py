"""Graph property utilities shared by algorithms and experiments."""

from __future__ import annotations

from typing import Dict, List, Set

import networkx as nx

from repro.errors import GraphError
from repro.types import CoverageMap, NodeId


def as_nx(graph) -> nx.Graph:
    """Accept a ``networkx.Graph`` or any wrapper exposing ``.nx`` (such as
    :class:`repro.graphs.udg.UnitDiskGraph`) and return the plain graph."""
    g = getattr(graph, "nx", graph)
    if not isinstance(g, nx.Graph):
        raise GraphError(f"expected a graph, got {type(graph).__name__}")
    return g


# Internal alias kept for intra-package use.
_as_nx = as_nx


def max_degree(graph) -> int:
    """The paper's Delta: the maximum degree in the network (0 if empty)."""
    g = _as_nx(graph)
    if g.number_of_nodes() == 0:
        return 0
    return max(d for _, d in g.degree)


def min_degree(graph) -> int:
    """Minimum degree (0 if empty)."""
    g = _as_nx(graph)
    if g.number_of_nodes() == 0:
        return 0
    return min(d for _, d in g.degree)


def closed_neighborhood(graph, v: NodeId) -> Set[NodeId]:
    """The paper's :math:`N_v`: neighbors of ``v`` including ``v``."""
    g = _as_nx(graph)
    return set(g.neighbors(v)) | {v}


def degree_histogram(graph) -> Dict[int, int]:
    """Map degree -> number of nodes with that degree."""
    g = _as_nx(graph)
    hist: Dict[int, int] = {}
    for _, d in g.degree:
        hist[d] = hist.get(d, 0) + 1
    return hist


def max_feasible_k(graph) -> int:
    """Largest uniform ``k`` for which a k-fold dominating set exists under
    the closed-neighborhood convention: ``min_v (deg(v) + 1)``."""
    g = _as_nx(graph)
    if g.number_of_nodes() == 0:
        return 0
    return min(d for _, d in g.degree) + 1


def feasible_coverage(graph, k: int) -> Dict[NodeId, int]:
    """Uniform requirement ``k`` clipped per node to what is achievable:
    ``k_i = min(k, deg(i) + 1)``.

    The paper's LP ``(PP)`` takes arbitrary per-node ``k_i``; clipping keeps
    every instance feasible while demanding full ``k``-redundancy wherever
    the topology permits.  This is the standard way to run k-MDS on graphs
    with low-degree fringe nodes.
    """
    if k < 0:
        raise GraphError(f"coverage requirement must be non-negative, got {k}")
    g = _as_nx(graph)
    return {v: min(k, g.degree[v] + 1) for v in g.nodes}


def validate_coverage(graph, coverage: CoverageMap) -> None:
    """Raise :class:`GraphError` unless ``coverage`` assigns a feasible,
    non-negative requirement to every node of ``graph``."""
    g = _as_nx(graph)
    missing = [v for v in g.nodes if v not in coverage]
    if missing:
        raise GraphError(
            f"coverage map is missing {len(missing)} node(s), e.g. {missing[0]!r}"
        )
    for v in g.nodes:
        k_v = coverage[v]
        if k_v < 0:
            raise GraphError(f"negative coverage requirement {k_v} at node {v!r}")
        if k_v > g.degree[v] + 1:
            raise GraphError(
                f"infeasible requirement at node {v!r}: k_v={k_v} exceeds "
                f"closed-neighborhood size {g.degree[v] + 1}"
            )


def graph_summary(graph) -> Dict[str, float]:
    """One-line statistical summary used by the CLI and reports."""
    g = _as_nx(graph)
    n = g.number_of_nodes()
    m = g.number_of_edges()
    degs: List[int] = [d for _, d in g.degree] or [0]
    return {
        "n": n,
        "m": m,
        "max_degree": max(degs),
        "min_degree": min(degs),
        "avg_degree": (2.0 * m / n) if n else 0.0,
        "components": nx.number_connected_components(g) if n else 0,
    }
