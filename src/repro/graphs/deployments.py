"""Non-uniform deployment models for unit-disk experiments.

Uniform random placement (``random_udg``) is the friendliest case for
Algorithm 3's density arguments.  Real sensor fields are not uniform:
nodes are dropped in clumps, installed along corridors, and kept out of
obstacles.  These generators produce such fields so experiments (E19) can
check that the algorithm's guarantees are *per-disk* — independent of
global density uniformity:

- :func:`clustered_udg` — a Thomas-process-style field: cluster parents
  uniform, members Gaussian around their parent (dense hot spots,
  near-empty space between);
- :func:`corridor_udg` — a long thin strip (tunnel / pipeline / road
  monitoring; maximal boundary effects);
- :func:`perforated_udg` — uniform placement with circular forbidden
  zones (obstacles, lakes, buildings).
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import GraphError
from repro.graphs.udg import UnitDiskGraph

__all__ = ["clustered_udg", "corridor_udg", "perforated_udg"]


def clustered_udg(n: int, *, clusters: int = 8, spread: float = 1.0,
                  side: float | None = None, radius: float = 1.0,
                  seed: int | None = None) -> UnitDiskGraph:
    """Thomas-process-style clustered deployment.

    ``clusters`` parent locations are drawn uniformly in the square;
    every node picks a uniform parent and lands Gaussian(``spread``)
    around it (clipped to the square).

    Parameters
    ----------
    n:
        Number of nodes.
    clusters:
        Number of cluster centers.
    spread:
        Standard deviation of the member offset, in radio-range units.
    side:
        Deployment square side; default sizes the square for an *average*
        density of 10 per unit disk (the hot spots are far denser).
    radius / seed:
        As in :func:`repro.graphs.udg.random_udg`.
    """
    if n < 0:
        raise GraphError(f"n must be non-negative, got {n}")
    if clusters < 1:
        raise GraphError(f"clusters must be positive, got {clusters}")
    if spread < 0:
        raise GraphError(f"spread must be non-negative, got {spread}")
    rng = np.random.default_rng(seed)
    if side is None:
        side = math.sqrt(max(n, 1) * math.pi * radius * radius / 10.0)
    parents = rng.uniform(0.0, side, size=(clusters, 2))
    assignment = rng.integers(0, clusters, size=n)
    pts = parents[assignment] + rng.normal(scale=spread, size=(n, 2))
    pts = np.clip(pts, 0.0, side)
    return UnitDiskGraph(pts, radius=radius)


def corridor_udg(n: int, *, length: float | None = None,
                 width: float = 2.0, radius: float = 1.0,
                 seed: int | None = None) -> UnitDiskGraph:
    """A long thin strip of uniform nodes (corridor monitoring).

    Parameters
    ----------
    n:
        Number of nodes.
    length:
        Corridor length; default sizes it for linear density ~5 nodes per
        radio range.
    width:
        Corridor width (2 radio ranges by default — nodes on opposite
        walls may not hear each other).
    """
    if n < 0:
        raise GraphError(f"n must be non-negative, got {n}")
    if width <= 0:
        raise GraphError(f"width must be positive, got {width}")
    if length is None:
        length = max(1.0, n * radius / 5.0)
    if length <= 0:
        raise GraphError(f"length must be positive, got {length}")
    rng = np.random.default_rng(seed)
    xs = rng.uniform(0.0, length, size=n)
    ys = rng.uniform(0.0, width, size=n)
    return UnitDiskGraph(np.stack([xs, ys], axis=1), radius=radius)


def perforated_udg(n: int, *, side: float | None = None,
                   holes: int = 4, hole_radius: float = 1.5,
                   radius: float = 1.0,
                   seed: int | None = None) -> UnitDiskGraph:
    """Uniform deployment with circular forbidden zones.

    Nodes falling inside any of the ``holes`` randomly-placed circular
    obstacles are re-sampled (up to a cap, after which the remaining
    points are accepted wherever they land so the function always
    terminates).
    """
    if n < 0:
        raise GraphError(f"n must be non-negative, got {n}")
    if holes < 0:
        raise GraphError(f"holes must be non-negative, got {holes}")
    if hole_radius < 0:
        raise GraphError(f"hole_radius must be non-negative, got {hole_radius}")
    rng = np.random.default_rng(seed)
    if side is None:
        side = math.sqrt(max(n, 1) * math.pi * radius * radius / 8.0)
    centers = rng.uniform(0.0, side, size=(holes, 2)) if holes else \
        np.zeros((0, 2))

    def blocked(pts: np.ndarray) -> np.ndarray:
        if not len(centers):
            return np.zeros(len(pts), dtype=bool)
        d2 = ((pts[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        return (d2 < hole_radius ** 2).any(axis=1)

    pts = rng.uniform(0.0, side, size=(n, 2))
    for _ in range(200):
        bad = blocked(pts)
        if not bad.any():
            break
        pts[bad] = rng.uniform(0.0, side, size=(int(bad.sum()), 2))
    return UnitDiskGraph(pts, radius=radius)
