"""Hexagonal-lattice disk coverings — the geometry of Figure 1 / Lemma 5.3.

The Section 5 analysis covers the plane with disks :math:`C_i` of radius
:math:`\\theta_i/2` arranged in a hexagonal lattice, and uses two facts:

- (Lemma 5.3) the number :math:`\\alpha(i)` of lattice disks needed to
  cover a disk of radius 1/2 satisfies
  :math:`\\alpha(i) < \\eta / (4\\theta_i^2)` with
  :math:`\\eta = 16\\pi/(3\\sqrt{3})`;
- (Figure 1) the disk :math:`D_i` of radius :math:`3\\theta_i/2` around a
  lattice center touches exactly 19 lattice disks.

This module reproduces both computationally, and provides the
"leaders per unit disk" measurement used to validate Lemmas 5.5/5.6.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import GeometryError

#: The paper's lattice constant eta = 16*pi / (3*sqrt(3)).
ETA = 16.0 * math.pi / (3.0 * math.sqrt(3.0))


def hex_lattice_points(spacing: float, within: float,
                       center: Tuple[float, float] = (0.0, 0.0)) -> np.ndarray:
    """All points of a hexagonal lattice with nearest-neighbor distance
    ``spacing`` lying within Euclidean distance ``within`` of ``center``.

    The lattice contains ``center`` itself.  Row pitch is
    ``spacing * sqrt(3)/2`` with alternate rows offset by ``spacing / 2``.
    """
    if spacing <= 0:
        raise GeometryError(f"lattice spacing must be positive, got {spacing}")
    if within < 0:
        raise GeometryError(f"search radius must be non-negative, got {within}")
    cx, cy = center
    row_pitch = spacing * math.sqrt(3.0) / 2.0
    max_row = int(math.ceil(within / row_pitch)) + 1
    max_col = int(math.ceil(within / spacing)) + 1
    pts: List[Tuple[float, float]] = []
    r2 = within * within
    for row in range(-max_row, max_row + 1):
        y = cy + row * row_pitch
        offset = (spacing / 2.0) if (row % 2) else 0.0
        for col in range(-max_col, max_col + 1):
            x = cx + offset + col * spacing
            dx, dy = x - cx, y - cy
            if dx * dx + dy * dy <= r2 + 1e-12:
                pts.append((x, y))
    return np.asarray(pts, dtype=float)


def hex_cover_centers(target_radius: float, disk_radius: float) -> np.ndarray:
    """Centers of lattice disks of radius ``disk_radius`` that intersect the
    target disk of radius ``target_radius`` centered at the origin.

    The lattice spacing is ``disk_radius * sqrt(3)`` — the densest spacing
    at which disks of that radius still cover the whole plane (each disk
    covers its inscribed hexagon of circumradius ``disk_radius``).
    """
    if disk_radius <= 0:
        raise GeometryError(f"disk radius must be positive, got {disk_radius}")
    if target_radius < 0:
        raise GeometryError(f"target radius must be non-negative, got {target_radius}")
    spacing = disk_radius * math.sqrt(3.0)
    # A lattice disk intersects the target iff its center is within
    # target_radius + disk_radius of the origin.
    return hex_lattice_points(spacing, target_radius + disk_radius)


def covering_disk_count(target_radius: float, disk_radius: float) -> int:
    """Number of hexagonal-lattice disks of radius ``disk_radius`` that
    intersect (and jointly cover) a disk of radius ``target_radius`` — the
    paper's :math:`\\alpha(i)` with ``disk_radius`` = :math:`\\theta_i/2`
    and ``target_radius`` = 1/2."""
    return len(hex_cover_centers(target_radius, disk_radius))


def alpha_bound(theta: float) -> float:
    """Lemma 5.3's upper bound :math:`\\eta / (4 (\\theta/2)^2 \\cdot 4)`...
    stated in the paper as :math:`\\alpha(i) < \\eta / (4\\theta_i^2)` for
    lattice disks of radius :math:`\\theta_i / 2` covering a disk of radius
    1/2."""
    if theta <= 0:
        raise GeometryError(f"theta must be positive, got {theta}")
    return ETA / (4.0 * theta * theta)


def verify_cover(target_radius: float, disk_radius: float,
                 centers: np.ndarray, resolution: int = 80) -> bool:
    """Check (by dense sampling) that the given disks cover the target disk
    of radius ``target_radius`` centered at the origin."""
    if len(centers) == 0:
        return target_radius == 0
    xs = np.linspace(-target_radius, target_radius, resolution)
    grid_x, grid_y = np.meshgrid(xs, xs)
    inside = grid_x ** 2 + grid_y ** 2 <= target_radius ** 2
    samples = np.stack([grid_x[inside], grid_y[inside]], axis=1)
    if len(samples) == 0:
        return True
    d2 = ((samples[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
    return bool((d2.min(axis=1) <= disk_radius ** 2 + 1e-9).all())


def disks_touching(theta: float) -> int:
    """Number of lattice disks :math:`C_i` (radius :math:`\\theta/2`) fully
    or partially covered by the disk :math:`D_i` of radius
    :math:`3\\theta/2` centered at a lattice point — Figure 1 shows 19."""
    if theta <= 0:
        raise GeometryError(f"theta must be positive, got {theta}")
    r = theta / 2.0
    spacing = r * math.sqrt(3.0)
    # C_j touches D_i iff center distance < 3*theta/2 + theta/2 = 2*theta.
    # Use a strict inequality with a tiny tolerance: tangent disks (distance
    # exactly 2*theta) share no interior area.
    pts = hex_lattice_points(spacing, 2.0 * theta)
    d = np.sqrt((pts ** 2).sum(axis=1))
    return int((d < 2.0 * theta - 1e-12).sum())


def leaders_per_disk(points: Sequence[Tuple[float, float]],
                     leaders: Sequence[int],
                     disk_radius: float = 0.5,
                     grid_step: float | None = None) -> dict:
    """Measure the leader density statistic of Lemmas 5.5/5.6.

    Slides disks of radius ``disk_radius`` over the deployment area (on a
    grid of candidate centers with pitch ``grid_step``, default
    ``disk_radius / 2``) and counts leaders inside each disk.

    Returns a dict with ``max``, ``mean`` (over occupied disks — disks
    containing at least one point), and ``disks`` (number of occupied
    candidate disks).  The lemmas claim ``max``/``mean`` stay O(1) (Part I)
    and O(k) (after Part II) as n grows.
    """
    pts = np.asarray(points, dtype=float)
    if len(pts) == 0:
        return {"max": 0, "mean": 0.0, "disks": 0}
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise GeometryError(f"points must be (n, 2), got shape {pts.shape}")
    leader_pts = pts[np.fromiter(leaders, dtype=int)] if len(leaders) else pts[:0]
    step = grid_step if grid_step is not None else disk_radius / 2.0
    if step <= 0:
        raise GeometryError(f"grid step must be positive, got {step}")

    lo = pts.min(axis=0) - disk_radius
    hi = pts.max(axis=0) + disk_radius
    xs = np.arange(lo[0], hi[0] + step, step)
    ys = np.arange(lo[1], hi[1] + step, step)
    r2 = disk_radius * disk_radius

    max_count = 0
    total = 0
    occupied = 0
    for cx in xs:
        # Vectorize over candidate centers in one column strip.
        near_any = np.abs(pts[:, 0] - cx) <= disk_radius
        if not near_any.any():
            continue
        col_pts = pts[near_any]
        near_lead = (np.abs(leader_pts[:, 0] - cx) <= disk_radius
                     if len(leader_pts) else np.zeros(0, dtype=bool))
        col_lead = leader_pts[near_lead] if len(leader_pts) else leader_pts
        for cy in ys:
            d2p = (col_pts[:, 0] - cx) ** 2 + (col_pts[:, 1] - cy) ** 2
            if not (d2p <= r2).any():
                continue
            occupied += 1
            if len(col_lead):
                d2l = (col_lead[:, 0] - cx) ** 2 + (col_lead[:, 1] - cy) ** 2
                count = int((d2l <= r2).sum())
            else:
                count = 0
            total += count
            if count > max_count:
                max_count = count
    mean = (total / occupied) if occupied else 0.0
    return {"max": max_count, "mean": mean, "disks": occupied}
