"""Unit disk graphs with spatial indexing and distance sensing.

A unit disk graph (UDG) has nodes at points in the Euclidean plane and an
edge between every pair at distance at most ``radius`` (the paper fixes the
radius to 1).  :class:`UnitDiskGraph` builds the graph with a uniform-grid
spatial hash (O(n) expected construction at constant density) and supports
the distance-restricted neighborhood queries :math:`N_v(\\tau)` that
Algorithm 3 needs ("nodes can sense the distance between themselves and
their neighbors", Section 3).
"""

from __future__ import annotations

import bisect
import math
from typing import Dict, List, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.errors import GraphError

Point = Tuple[float, float]


class UnitDiskGraph:
    """A unit disk graph over explicit points.

    Parameters
    ----------
    points:
        Sequence of ``(x, y)`` coordinates; node ``i`` sits at
        ``points[i]``.
    radius:
        Communication radius (edge iff distance <= radius).  Default 1.0,
        matching the paper.

    Attributes
    ----------
    nx:
        The underlying ``networkx.Graph`` with integer nodes ``0..n-1``,
        ``pos`` node attributes, and ``dist`` edge attributes.
    """

    def __init__(self, points: Sequence[Point], radius: float = 1.0):
        if radius <= 0:
            raise GraphError(f"UDG radius must be positive, got {radius}")
        self.points = np.asarray(points, dtype=float)
        if len(self.points) == 0:
            self.points = self.points.reshape(0, 2)
        if self.points.ndim != 2 or self.points.shape[1] != 2:
            raise GraphError(
                f"points must be an (n, 2) array, got shape {self.points.shape}"
            )
        self.radius = float(radius)
        self.n = len(self.points)
        self.nx = self._build_graph()
        # Per-node neighbor lists sorted by distance, enabling O(log deg)
        # N_v(tau) prefix queries.
        self._sorted_by_dist: Dict[int, Tuple[List[float], List[int]]] = {}
        for v in range(self.n):
            pairs = sorted(
                (self.nx.edges[v, w]["dist"], w) for w in self.nx.neighbors(v)
            )
            self._sorted_by_dist[v] = ([d for d, _ in pairs], [w for _, w in pairs])

    # ------------------------------------------------------------------
    def _build_graph(self) -> nx.Graph:
        g = nx.Graph()
        for i, (x, y) in enumerate(self.points):
            g.add_node(i, pos=(float(x), float(y)))
        if self.n == 0:
            return g

        # Uniform grid spatial hash with cell size = radius: all neighbors
        # of a point lie in its 3x3 cell block.
        cell = self.radius
        buckets: Dict[Tuple[int, int], List[int]] = {}
        for i, (x, y) in enumerate(self.points):
            key = (int(math.floor(x / cell)), int(math.floor(y / cell)))
            buckets.setdefault(key, []).append(i)

        r2 = self.radius * self.radius
        for (cx, cy), members in buckets.items():
            neighbor_cells = [
                buckets.get((cx + dx, cy + dy), [])
                for dx in (-1, 0, 1) for dy in (-1, 0, 1)
            ]
            for i in members:
                xi, yi = self.points[i]
                for other_members in neighbor_cells:
                    for j in other_members:
                        if j <= i:
                            continue
                        dx = xi - self.points[j][0]
                        dy = yi - self.points[j][1]
                        d2 = dx * dx + dy * dy
                        if d2 <= r2:
                            g.add_edge(i, j, dist=math.sqrt(d2))
        return g

    # ------------------------------------------------------------------
    def distance(self, u: int, v: int) -> float:
        """Euclidean distance between two nodes (not just neighbors)."""
        du = self.points[u] - self.points[v]
        return float(math.hypot(du[0], du[1]))

    def neighbors_within(self, v: int, tau: float) -> List[int]:
        """The paper's :math:`N_v(\\tau)` minus ``v`` itself: graph
        neighbors at distance at most ``tau`` (``tau`` is capped by the
        communication radius since farther nodes are not neighbors)."""
        dists, nbrs = self._sorted_by_dist[v]
        cut = bisect.bisect_right(dists, tau)
        return nbrs[:cut]

    def closed_neighbors_within(self, v: int, tau: float) -> List[int]:
        """:math:`N_v(\\tau)` including ``v`` itself."""
        return [v] + self.neighbors_within(v, tau)

    # Convenience pass-throughs ----------------------------------------
    def degree(self, v: int) -> int:
        return self.nx.degree[v]

    def number_of_nodes(self) -> int:
        return self.n

    def number_of_edges(self) -> int:
        return self.nx.number_of_edges()

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover — debugging aid
        return (f"UnitDiskGraph(n={self.n}, m={self.number_of_edges()}, "
                f"radius={self.radius})")


class QuasiUnitDiskGraph(UnitDiskGraph):
    """A quasi unit disk graph — the standard "no clear-cut disks" model.

    Section 1 concedes that "in reality, signal propagation does often
    not form clear-cut disks".  The QUDG formalizes that: pairs at
    distance <= ``alpha`` are always connected, pairs beyond ``radius``
    never, and pairs in the gray zone ``(alpha, radius]`` are connected
    independently with probability ``p_gray`` (fading, obstacles,
    antenna anisotropy).

    Distance sensing stays exact; only the edge set is degraded.  Note
    that Lemma 5.1's coverage argument is specific to the clean-disk
    model: it delivers a covering leader within *distance* 1 of every
    node, which is only guaranteed to be a *neighbor* when every
    distance-<=1 pair has an edge (alpha = 1).  On a QUDG, Part I alone
    can therefore leave nodes uncovered, and Part II's adoption loop is
    what restores end-to-end correctness — experiment E21 quantifies the
    degradation across alpha.
    """

    def __init__(self, points: Sequence[Point], *, alpha: float = 0.75,
                 p_gray: float = 0.5, radius: float = 1.0,
                 seed: int | None = None):
        if not 0.0 < alpha <= radius:
            raise GraphError(
                f"alpha must be in (0, radius], got alpha={alpha}, "
                f"radius={radius}")
        if not 0.0 <= p_gray <= 1.0:
            raise GraphError(f"p_gray must be in [0, 1], got {p_gray}")
        super().__init__(points, radius=radius)
        self.alpha = float(alpha)
        self.p_gray = float(p_gray)
        rng = np.random.default_rng(seed)
        # Remove each gray-zone edge independently with prob 1 - p_gray.
        doomed = []
        for u, v in sorted(self.nx.edges):
            if self.nx.edges[u, v]["dist"] > self.alpha \
                    and rng.random() >= self.p_gray:
                doomed.append((u, v))
        self.nx.remove_edges_from(doomed)
        # In-place mutation after construction: bump the mutation token so
        # any artifact bundle cached against the pristine graph is dropped.
        from repro.engine.artifacts import touch  # deferred: avoids cycle
        touch(self.nx)
        # Rebuild the distance-sorted neighbor lists over the new edges.
        self._sorted_by_dist = {}
        for v in range(self.n):
            pairs = sorted(
                (self.nx.edges[v, w]["dist"], w)
                for w in self.nx.neighbors(v)
            )
            self._sorted_by_dist[v] = ([d for d, _ in pairs],
                                       [w for _, w in pairs])


class NoisySensingUDG(UnitDiskGraph):
    """A unit disk graph whose *distance sensing* is imperfect.

    The paper (following [7]) assumes "nodes can sense the distance
    between themselves and their neighbors" exactly.  Real ranging (RSSI,
    time-of-flight) is noisy.  This subclass keeps the communication
    graph exact (edges are still true-distance <= radius) but perturbs
    every *sensed* distance by a symmetric multiplicative factor
    ``1 + eps_uv`` with ``eps_uv ~ U(-sigma, +sigma)``, fixed per node
    pair (both endpoints sense the same wrong value, as with RSSI).

    Distance-restricted queries (:meth:`neighbors_within`, hence
    Algorithm 3's ``N_v(theta)``) use the noisy values; experiment E20
    measures the effect on Part I's guarantees.
    """

    def __init__(self, points: Sequence[Point], *, sigma: float,
                 radius: float = 1.0, noise_seed: int | None = None):
        if not 0.0 <= sigma < 1.0:
            raise GraphError(
                f"sensing noise sigma must be in [0, 1), got {sigma}")
        super().__init__(points, radius=radius)
        self.sigma = float(sigma)
        rng = np.random.default_rng(noise_seed)
        # One symmetric factor per edge, in a deterministic edge order.
        self._noise: Dict[Tuple[int, int], float] = {}
        for u, v in sorted(self.nx.edges):
            key = (u, v) if u <= v else (v, u)
            self._noise[key] = 1.0 + float(rng.uniform(-sigma, sigma))

    def sensed_distance(self, u: int, v: int) -> float:
        """The (noisy) distance the radios report for a linked pair."""
        key = (u, v) if u <= v else (v, u)
        factor = self._noise.get(key, 1.0)
        return self.distance(u, v) * factor

    def neighbors_within(self, v: int, tau: float) -> List[int]:
        """Graph neighbors whose *sensed* distance is at most ``tau``."""
        # Superset by true distance (noise can only inflate by 1+sigma),
        # then filter by the sensed value.
        superset = super().neighbors_within(
            v, min(self.radius, tau / max(1e-12, 1.0 - self.sigma)))
        return [w for w in superset if self.sensed_distance(v, w) <= tau]


def udg_from_points(points: Sequence[Point], radius: float = 1.0) -> UnitDiskGraph:
    """Build a :class:`UnitDiskGraph` from explicit coordinates."""
    return UnitDiskGraph(points, radius=radius)


def random_udg(n: int, *, area_side: float | None = None,
               density: float | None = None, radius: float = 1.0,
               seed: int | None = None) -> UnitDiskGraph:
    """Sample ``n`` points uniformly in a square and build the UDG.

    Exactly one of ``area_side`` and ``density`` may be given:

    - ``area_side``: side length ``L`` of the deployment square ``[0, L]^2``;
    - ``density``: expected number of nodes per unit-disk area
      (``pi * radius^2``); the side length is derived as
      ``sqrt(n * pi * radius^2 / density)``.

    The default (neither given) targets density 10 — a well-connected
    sensor-network regime.
    """
    if n < 0:
        raise GraphError(f"n must be non-negative, got {n}")
    if area_side is not None and density is not None:
        raise GraphError("give at most one of area_side and density")
    if density is not None and density <= 0:
        raise GraphError(f"density must be positive, got {density}")
    if area_side is not None and area_side <= 0:
        raise GraphError(f"area_side must be positive, got {area_side}")

    if area_side is None:
        target_density = density if density is not None else 10.0
        disk_area = math.pi * radius * radius
        area_side = math.sqrt(max(n, 1) * disk_area / target_density)

    rng = np.random.default_rng(seed)
    pts = rng.uniform(0.0, area_side, size=(n, 2))
    return UnitDiskGraph(pts, radius=radius)
