"""Mobility models for ad hoc network experiments.

Section 1 names mobility as the third driver of fault-tolerance ("a key
issue in ad hoc networks").  This module provides the standard synthetic
mobility models used to stress clustering structures:

- :class:`GaussianDrift` — per-step Gaussian jitter with reflecting
  borders (Brownian-style local motion);
- :class:`RandomWaypoint` — the classic MANET model: each node picks a
  uniform destination, travels toward it at its speed, pauses, repeats;
- :func:`mobility_trace` — generator of :class:`UnitDiskGraph` snapshots
  driven by any model.

Models are deterministic per seed and hold their own RNG, so mobility
never perturbs protocol randomness.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from repro.errors import GraphError
from repro.graphs.udg import UnitDiskGraph

__all__ = ["MobilityModel", "GaussianDrift", "RandomWaypoint",
           "mobility_trace"]


class MobilityModel:
    """Base class: mutates an (n, 2) position array one step at a time."""

    def step(self, points: np.ndarray, side: float) -> np.ndarray:
        """Return the next positions (must stay inside ``[0, side]^2``)."""
        raise NotImplementedError


def _reflect(points: np.ndarray, side: float) -> np.ndarray:
    """Reflect coordinates into [0, side] (handles multi-bounce)."""
    if side <= 0:
        raise GraphError(f"area side must be positive, got {side}")
    period = 2.0 * side
    pts = np.mod(points, period)
    return np.where(pts > side, period - pts, pts)


class GaussianDrift(MobilityModel):
    """Gaussian jitter: each coordinate moves by N(0, speed^2) per step.

    Parameters
    ----------
    speed:
        Standard deviation of the per-step displacement, in radio-range
        units.
    seed:
        RNG seed (model-private stream).
    """

    def __init__(self, speed: float, seed: int | None = None):
        if speed < 0:
            raise GraphError(f"speed must be non-negative, got {speed}")
        self.speed = float(speed)
        self.rng = np.random.default_rng(seed)

    def step(self, points: np.ndarray, side: float) -> np.ndarray:
        moved = points + self.rng.normal(scale=self.speed,
                                         size=points.shape)
        return _reflect(moved, side)


class RandomWaypoint(MobilityModel):
    """Random waypoint: travel to a uniform destination, pause, repeat.

    Parameters
    ----------
    speed:
        Distance traveled per step.
    pause_steps:
        Steps to wait at each reached waypoint before choosing the next.
    seed:
        RNG seed (model-private stream).
    """

    def __init__(self, speed: float, pause_steps: int = 0,
                 seed: int | None = None):
        if speed < 0:
            raise GraphError(f"speed must be non-negative, got {speed}")
        if pause_steps < 0:
            raise GraphError(
                f"pause_steps must be non-negative, got {pause_steps}")
        self.speed = float(speed)
        self.pause_steps = int(pause_steps)
        self.rng = np.random.default_rng(seed)
        self._targets: Optional[np.ndarray] = None
        self._pause_left: Optional[np.ndarray] = None

    def _init_state(self, n: int, side: float) -> None:
        self._targets = self.rng.uniform(0.0, side, size=(n, 2))
        self._pause_left = np.zeros(n, dtype=int)

    def step(self, points: np.ndarray, side: float) -> np.ndarray:
        n = len(points)
        if self._targets is None or len(self._targets) != n:
            self._init_state(n, side)
        pts = points.copy()
        vec = self._targets - pts
        dist = np.hypot(vec[:, 0], vec[:, 1])

        paused = self._pause_left > 0
        self._pause_left[paused] -= 1
        # Nodes whose pause just ended (or that never paused) and sit at
        # their waypoint draw a new destination.
        arrived = (~paused) & (dist <= self.speed)
        moving = (~paused) & ~arrived

        # Move toward the waypoint.
        if moving.any():
            scale = self.speed / np.maximum(dist[moving], 1e-12)
            pts[moving] += vec[moving] * scale[:, None]
        # Snap arrivals onto the waypoint, start their pause, pick the
        # next destination for when the pause ends.
        if arrived.any():
            pts[arrived] = self._targets[arrived]
            self._pause_left[arrived] = self.pause_steps
            self._targets[arrived] = self.rng.uniform(
                0.0, side, size=(int(arrived.sum()), 2))
        return _reflect(pts, side)


def mobility_trace(initial: UnitDiskGraph, model: MobilityModel,
                   steps: int, *,
                   side: float | None = None
                   ) -> Iterator[UnitDiskGraph]:
    """Yield ``steps`` successive UDG snapshots under the mobility model.

    Parameters
    ----------
    initial:
        Starting deployment (its radius carries over to every snapshot).
    model:
        Any :class:`MobilityModel`.
    steps:
        Number of snapshots to produce (the initial graph is not yielded).
    side:
        Deployment-area side; defaults to the bounding square of the
        initial points.
    """
    if steps < 0:
        raise GraphError(f"steps must be non-negative, got {steps}")
    points = initial.points.copy()
    if side is None:
        side = float(points.max()) if len(points) else 1.0
    for _ in range(steps):
        points = model.step(points, side)
        yield UnitDiskGraph(points, radius=initial.radius)
