"""E15 — removing the known-Delta assumption (Section 4 remark).

Each node replaces the global maximum degree with its 2-hop local
estimate (computed by a 2-round protocol).  This experiment measures the
price: the fractional objective with local estimates vs with global
Delta, across graphs whose degree distributions range from flat (regular)
to extreme (power-law, caterpillar), plus the distributed estimation
protocol's correctness and cost.
"""

from __future__ import annotations

from repro.baselines.lp_opt import lp_optimum
from repro.core.fractional import fractional_kmds
from repro.core.local_delta import (
    estimate_two_hop_max_message,
    two_hop_max_degree,
)
from repro.core.lp import CoveringLP
from repro.experiments.base import ExperimentReport, check_scale
from repro.graphs.generators import graph_suite
from repro.graphs.properties import feasible_coverage


def run(*, scale: str = "quick", seed: int = 0) -> ExperimentReport:
    check_scale(scale)
    suite_scale = "small" if scale == "quick" else "medium"
    t = 3

    rows = []
    protocol_correct = True
    always_feasible = True
    degradations = []
    for name, g in graph_suite(suite_scale, seed=seed):
        central = two_hop_max_degree(g)
        distributed, stats = estimate_two_hop_max_message(g, seed=seed)
        protocol_correct &= (central == distributed and stats.rounds == 2)

        cov = feasible_coverage(g, 2)
        lp = CoveringLP(g, cov)
        opt = lp_optimum(g, cov, convention="closed").objective
        global_sol = fractional_kmds(g, coverage=cov, t=t,
                                     compute_duals=False)
        local_sol = fractional_kmds(g, coverage=cov, t=t,
                                    compute_duals=False, local_delta=central)
        always_feasible &= lp.primal_feasible(local_sol.x, tol=1e-7)
        degradation = local_sol.objective / max(global_sol.objective, 1e-9)
        degradations.append(degradation)
        rows.append((name,
                     max(central.values()), min(central.values()),
                     round(global_sol.objective / opt, 2),
                     round(local_sol.objective / opt, 2),
                     round(degradation, 3)))

    mean_degradation = sum(degradations) / len(degradations)

    return ExperimentReport(
        experiment_id="e15",
        title="Unknown-Delta variant: 2-hop local estimates (Section 4 remark)",
        claim=("Replacing global Delta with 2-hop local estimates keeps "
               "Algorithm 1 feasible at a small quality cost, and the "
               "estimates are computable in 2 distributed rounds."),
        headers=["graph", "max est.", "min est.", "global ratio",
                 "local ratio", "local/global obj"],
        rows=rows,
        checks={
            "2-round estimation protocol matches central computation":
                protocol_correct,
            "local-delta solutions always (PP)-feasible": always_feasible,
            "mean objective degradation below 50%": mean_degradation <= 1.5,
        },
        notes=(f"t={t}, k=2; mean local/global objective ratio "
               f"{mean_degradation:.3f} (1.0 = no cost)."),
    )
