"""E23 — repair latency under message loss (the distributed patch, for real).

E22 validated the *analytic* local patch: the Part II adoption rule with
its message traffic charged as if sent.  This experiment executes the
same patch protocol on the simulator's data plane
(``LocalPatchRepair(transport="message")`` — :class:`PatchNode`
processes on the broadcast-native columnar transport) and degrades it
with a :class:`~repro.simulation.faults.MessageLossInjector`, closing
the ROADMAP's "repair under loss" item.  Three claims:

1. **Faithfulness**: at loss 0 with a deterministic selection policy the
   message transport promotes exactly the nodes the analytic rule
   promotes, epoch by epoch — the analytic accounting models a real
   protocol, not a convenient fiction;
2. **Loss costs latency, not correctness**: at every loss rate — up to
   and including 1.0, where *no* message is ever delivered — full
   k-coverage is restored every epoch.  Lost adoption offers are
   absorbed by the distributed timeout (a deficient node self-promotes
   after ``patience`` unadopted iterations), so loss shows up purely as
   inflated repair rounds (``EpochRecord.rounds``);
3. **Redundancy buys the slack**: the k-fold headroom keeps every
   client covered *while* the slowed-down repair converges, so
   pre-repair availability stays flat across the loss sweep.

Deterministic per seed (asserted by re-running the headline cell).
"""

from __future__ import annotations

from repro.dynamics import LocalPatchRepair, crash_scenario, run_scenario
from repro.experiments.base import ExperimentReport, check_scale

#: Sweep: drop each message independently with this probability.
LOSS_RATES = (0.0, 0.1, 0.3, 0.5, 0.8, 1.0)


def run(*, scale: str = "quick", seed: int = 0) -> ExperimentReport:
    check_scale(scale)
    if scale == "quick":
        n, epochs = 150, 12
    else:
        n, epochs = 400, 40
    k = 3
    kill_fraction = 0.3
    patience = 3

    def _scenario():
        return crash_scenario(n, k=k, epochs=epochs,
                              kill_fraction=kill_fraction,
                              target="dominators", seed=seed)

    def _cell(policy):
        return run_scenario(_scenario(), policy)

    # Analytic reference (the E22 policy, deterministic selection so the
    # loss-0 faithfulness check compares like with like).
    analytic = _cell(LocalPatchRepair("by-id"))

    rows = []
    results = {}
    for loss in LOSS_RATES:
        res = _cell(LocalPatchRepair("by-id", transport="message",
                                     loss_rate=loss, patience=patience))
        results[loss] = res
        s = res.summary
        rows.append((
            loss,
            round(100 * s["availability_mean"], 2),
            round(100 * s["fully_covered_fraction"], 1),
            round(s["rounds_per_repair"], 1),
            s["messages_total"],
            round(s["touched_per_repair"], 1),
            s["drift_total"],
        ))
    rows.append(("analytic",
                 round(100 * analytic.summary["availability_mean"], 2),
                 round(100 * analytic.summary["fully_covered_fraction"], 1),
                 round(analytic.summary["rounds_per_repair"], 1),
                 analytic.summary["messages_total"],
                 round(analytic.summary["touched_per_repair"], 1),
                 analytic.summary["drift_total"]))

    lossless = results[0.0]
    total_loss = results[1.0]

    # Determinism: the headline cell re-run bit-for-bit.
    rerun = _cell(LocalPatchRepair("by-id", transport="message",
                                   loss_rate=0.3, patience=patience))
    deterministic = (rerun.timeline.to_dicts()
                     == results[0.3].timeline.to_dicts())

    checks = {
        "loss 0: message transport promotes exactly the analytic nodes":
            [r.promoted for r in lossless.timeline.records]
            == [r.promoted for r in analytic.timeline.records],
        "full k-coverage restored every epoch at every loss rate":
            all(res.always_covered for res in results.values()),
        "total loss (rate 1.0) still heals via the distributed timeout":
            total_loss.always_covered,
        "loss inflates repair latency (rounds/repair, 1.0 vs 0.0)":
            total_loss.summary["rounds_per_repair"]
            > lossless.summary["rounds_per_repair"],
        "headroom: no client fully uncovered at any loss rate":
            all(res.summary["uncovered_epochs"] == 0
                for res in results.values()),
        "epoch records carry the transport tag":
            all(r.repair_transport == "message"
                for res in results.values() for r in res.timeline.records),
        "same seed reproduces the identical epoch timeline":
            deterministic,
    }

    return ExperimentReport(
        experiment_id="e23",
        title="Repair latency under message loss",
        claim=("The local patch protocol executed on the real message "
               "transport keeps healing under arbitrary message loss: "
               "adoption offers that never arrive are absorbed by a "
               "distributed timeout, so loss inflates repair rounds but "
               "never breaks coverage — and at loss 0 the protocol "
               "reproduces the analytic repair exactly."),
        headers=["loss rate", "mean avail %", "% epochs healed",
                 "rounds/repair", "messages", "touched/repair", "drift"],
        rows=rows,
        checks=checks,
        notes=(f"UDG n={n}, density 10, k={k}; the adversary kills "
               f"{int(100 * kill_fraction)}% of the dominator count over "
               f"{epochs} epochs; repairs run as PatchNode processes via "
               "run_protocol with a MessageLossInjector at the given "
               f"rate (patience={patience}, selection 'by-id').  "
               "'messages' counts *delivered* traffic (dropped copies "
               "are not charged, hence the decrease with loss); "
               "'rounds/repair' is the true distributed latency, "
               "including the members' idle wind-down, which is why the "
               "analytic row's 3-rounds-per-iteration figure is lower "
               "at equal promotions.  The final row is the analytic "
               "E22 policy on the same scenario."),
    )
