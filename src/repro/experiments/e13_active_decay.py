"""E13 — Lemma 5.2 / Lemma 5.5 dynamics: the number of active nodes
collapses doubly-exponentially during Part I, leaving O(1) leaders per
disk of radius 1/2.

Traces the per-round active-node counts of the Part I sparsification
(Gao et al.'s experiment, re-run under our implementation), and measures
the leader density statistic of Lemma 5.5 across network sizes.
"""

from __future__ import annotations

from repro.core.udg import part_one_leaders
from repro.experiments.base import ExperimentReport, check_scale
from repro.graphs.hexcover import leaders_per_disk
from repro.graphs.udg import random_udg


def run(*, scale: str = "quick", seed: int = 0) -> ExperimentReport:
    check_scale(scale)
    if scale == "quick":
        sizes = (300, 1000, 3000)
        n_seeds = 2
    else:
        sizes = (300, 1000, 3000, 10_000, 30_000)
        n_seeds = 4

    rows = []
    density_by_n = {}
    decays = True
    for n in sizes:
        mean_density = 0.0
        max_density = 0.0
        final_leaders = 0
        active_trace = []
        for s in range(n_seeds):
            udg = random_udg(n, density=10.0, seed=seed + 17 * s + n)
            res = part_one_leaders(udg, seed=seed + s)
            active_trace = res.details["active_per_round"]
            decays &= all(
                active_trace[i + 1] <= active_trace[i]
                for i in range(len(active_trace) - 1)
            )
            stats = leaders_per_disk(udg.points, sorted(res.members),
                                     disk_radius=0.5, grid_step=0.5)
            mean_density += stats["mean"] / n_seeds
            max_density = max(max_density, stats["max"])
            final_leaders = len(res.members)
        density_by_n[n] = mean_density
        rows.append((n, " -> ".join(str(a) for a in active_trace),
                     final_leaders, round(mean_density, 2),
                     int(max_density)))

    # Lemma 5.5: E[leaders per disk] is O(1) — flat in n.
    lo, hi = min(density_by_n), max(density_by_n)
    flat = density_by_n[hi] <= 2.0 * density_by_n[lo] + 1.0
    bounded = all(d <= 10.0 for d in density_by_n.values())

    return ExperimentReport(
        experiment_id="e13",
        title="Part I active-node decay and leader density (Lemmas 5.2/5.5)",
        claim=("Active nodes collapse (roughly square-root per round per "
               "disk); the expected number of leaders in any disk of "
               "radius 1/2 is O(1), independent of n."),
        headers=["n", "active per round", "leaders", "mean leaders/disk",
                 "max leaders/disk"],
        rows=rows,
        checks={
            "active-node counts are monotonically non-increasing": decays,
            "mean leaders per disk flat in n (O(1))": flat,
            "mean leaders per disk below a small constant": bounded,
        },
        notes="density 10; sliding-disk probe with step 0.5.",
    )
