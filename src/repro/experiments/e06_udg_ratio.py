"""E6 — Theorem 5.7 / Lemmas 5.5-5.6: Algorithm 3 is an expected O(1)
approximation, with O(1) leaders per unit disk after Part I and O(k)
after Part II.

Measures (a) |ALG| / OPT as n grows at fixed density — the ratio should
stay flat (O(1)), not grow with n — and (b) leaders-per-disk statistics
via the hexagonal sliding-disk probe of :mod:`repro.graphs.hexcover`.

The whole ``sizes x k_values x seeds`` grid runs as *one*
grid-batched dispatch (``solve_kmds_udg_grid``): the k axis is fused
over a shared Part I per deployment, and the dispatch breakdown lands
in the report's ``timing`` field.  The LP lower bound is still
computed once per (n, k) cell instead of once per replica.
"""

from __future__ import annotations

from repro.analysis.ratio import approximation_ratio, best_known_optimum
from repro.core.udg import solve_kmds_udg_grid
from repro.experiments.base import (ExperimentReport, check_scale,
                                    replication_seeds)
from repro.graphs.hexcover import leaders_per_disk
from repro.graphs.udg import random_udg


def run(*, scale: str = "quick", seed: int = 0,
        replicas: int | None = None) -> ExperimentReport:
    check_scale(scale)
    if scale == "quick":
        sizes = (100, 300, 900)
        k_values = (1, 2)
        n_seeds = 2
    else:
        sizes = (100, 300, 900, 2700)
        k_values = (1, 2, 3)
        n_seeds = 5
    seeds = replication_seeds(seed, replicas, n_seeds)

    rows = []
    ratios_by_n = {}
    mean_per_disk_by_k = {}
    # One grid dispatch for every (size, k, seed) cell: Part I is
    # shared across the fused k axis per deployment, and per-cell
    # results stay bit-identical to the per-point batch loop.
    udgs = [random_udg(n, density=10.0, seed=seed + n) for n in sizes]
    timing: dict = {}
    grid = solve_kmds_udg_grid(udgs, seeds, k_values, timing=timing)
    for udg, n, per_graph in zip(udgs, sizes, grid):
        for k, solutions in zip(k_values, per_graph):
            # The graph is fixed, so the LP bound is seed-invariant
            # and amortizes over the replica axis.
            opt = best_known_optimum(udg, k, convention="open",
                                     exact_node_limit=0)  # LP bound
            ratio_acc = [approximation_ratio(len(ds), opt)
                         for ds in solutions]
            perdisk_acc = [
                leaders_per_disk(udg.points, sorted(ds.members),
                                 disk_radius=0.5, grid_step=0.5)["mean"]
                for ds in solutions
            ]
            mean_ratio = sum(ratio_acc) / len(ratio_acc)
            mean_perdisk = sum(perdisk_acc) / len(perdisk_acc)
            ratios_by_n.setdefault(k, {})[n] = mean_ratio
            mean_per_disk_by_k.setdefault(k, []).append(mean_perdisk)
            rows.append((n, k, round(mean_ratio, 2), round(mean_perdisk, 2)))

    # O(1) in n: ratio at the largest n no more than 1.5x the smallest n.
    flat = all(
        series[max(series)] <= 1.5 * series[min(series)] + 0.25
        for series in ratios_by_n.values()
    )
    # Bounded constant: every measured ratio modest (vs LP lower bound).
    bounded = all(
        r <= 12.0 for series in ratios_by_n.values() for r in series.values()
    )
    # O(k) per disk: leaders-per-disk for k grows at most ~linearly.
    k_lo, k_hi = min(k_values), max(k_values)
    perdisk_lo = sum(mean_per_disk_by_k[k_lo]) / len(mean_per_disk_by_k[k_lo])
    perdisk_hi = sum(mean_per_disk_by_k[k_hi]) / len(mean_per_disk_by_k[k_hi])
    linear_in_k = perdisk_hi <= (k_hi / k_lo) * perdisk_lo * 2.0 + 1.0

    return ExperimentReport(
        experiment_id="e6",
        title="Algorithm 3 approximation ratio (Theorem 5.7)",
        claim=("Expected O(1) approximation of minimum k-fold dominating "
               "set; O(k) leaders per disk of radius 1/2 (Lemma 5.6)."),
        headers=["n", "k", "mean |ALG|/LP-OPT", "mean leaders per disk"],
        rows=rows,
        checks={
            "ratio stays flat as n grows (O(1), not O(f(n)))": flat,
            "every ratio below a modest constant": bounded,
            "leaders per disk scale at most linearly in k": linear_in_k,
        },
        notes=("Denominator is the LP lower bound, so ratios are upper "
               f"bounds on the true approximation factor; density 10, "
               f"{len(seeds)} algorithm-seed replicas per cell, one "
               "grid dispatch."),
        timing=timing,
    )
