"""E10 — the time/approximation trade-off against the lower bound of [13].

The paper positions Theorem 4.5 against Kuhn-Moscibroda-Wattenhofer's
locality lower bound: in O(t) rounds no algorithm beats
``Omega(Delta^{1/t} / t)``.  This experiment traces the achieved
(rounds, ratio) curve of the pipeline over t on a fixed graph, alongside
the theorem's upper-bound curve and the lower-bound shape, showing the
trade-off closing as t grows.
"""

from __future__ import annotations

from repro.analysis.ratio import approximation_ratio, best_known_optimum
from repro.core.fractional import theorem_45_ratio_bound
from repro.core.general import solve_kmds_general
from repro.experiments.base import ExperimentReport, check_scale
from repro.graphs.generators import gnp_graph
from repro.graphs.properties import feasible_coverage, max_degree


def run(*, scale: str = "quick", seed: int = 0) -> ExperimentReport:
    check_scale(scale)
    if scale == "quick":
        n, p, k = 120, 0.08, 2
        t_values = (1, 2, 3, 4, 6)
        n_seeds = 3
    else:
        n, p, k = 300, 0.05, 2
        t_values = (1, 2, 3, 4, 6, 8, 10)
        n_seeds = 8

    g = gnp_graph(n, p, seed=seed)
    delta = max_degree(g)
    coverage = feasible_coverage(g, k)
    opt = best_known_optimum(g, coverage, convention="closed",
                             exact_node_limit=0)

    rows = []
    ratios = {}
    for t in t_values:
        sizes = []
        for s in range(n_seeds):
            res = solve_kmds_general(g, coverage=coverage, t=t,
                                     seed=seed + s)
            sizes.append(res.size)
        mean_size = sum(sizes) / len(sizes)
        ratio = approximation_ratio(mean_size, opt)
        ratios[t] = ratio
        lower_shape = (delta + 1.0) ** (1.0 / t) / t
        rows.append((t, 2 * t * t, round(mean_size, 1), round(ratio, 2),
                     round(theorem_45_ratio_bound(t, delta), 1),
                     round(lower_shape, 2)))

    t_lo, t_hi = min(t_values), max(t_values)
    improves = ratios[t_hi] <= ratios[t_lo] + 0.1
    within_upper = all(
        ratios[t] <= theorem_45_ratio_bound(t, delta) + 1e-9
        for t in t_values
    )

    return ExperimentReport(
        experiment_id="e10",
        title="Time vs approximation trade-off (vs the [13] lower bound)",
        claim=("More rounds (larger t) buy a better ratio; the achieved "
               "curve sits between the Omega(Delta^{1/t}/t) lower-bound "
               "shape and the Theorem 4.5 upper bound."),
        headers=["t", "rounds (2t^2)", "mean |DS|", "ratio vs LP",
                 "thm 4.5 bound", "Delta^{1/t}/t (LB shape)"],
        rows=rows,
        checks={
            "ratio at largest t no worse than at t=1": improves,
            "measured ratio always within the Theorem 4.5 bound":
                within_upper,
        },
        notes=(f"G({n},{p}), Delta={delta}, k={k}; ratio denominators are "
               "the LP lower bound; the lower-bound column is a shape, not "
               "an instance-specific bound."),
    )
