"""E9 — the paper's motivation (Section 1): k-fold redundancy survives
dominator failures.

Builds k-fold dominating sets of the same sensor deployment for
k in {1, 3, 5}, kills a sweep of random dominator fractions, and measures
how many client nodes lose all live dominators.  The claim behind the
whole paper: higher k buys dramatically better survival at proportionally
modest size cost.

The dominating sets replicate over algorithm seeds in one batched pass
per k (``solve_kmds_udg_batch``); each replica's set gets its own
failure trials and the survival statistics average over replicas, so
the headline numbers do not hinge on a single clustering draw.
"""

from __future__ import annotations

from repro.analysis.faults import coverage_survival_curve
from repro.core.udg import solve_kmds_udg_batch
from repro.experiments.base import (ExperimentReport, check_scale,
                                    replication_seeds)
from repro.graphs.udg import random_udg


def run(*, scale: str = "quick", seed: int = 0,
        replicas: int | None = None) -> ExperimentReport:
    check_scale(scale)
    if scale == "quick":
        n = 400
        k_values = (1, 3, 5)
        fractions = (0.1, 0.3, 0.5)
        trials = 10
        n_seeds = 2
    else:
        n = 1200
        k_values = (1, 2, 3, 5)
        fractions = (0.05, 0.1, 0.2, 0.3, 0.4, 0.5)
        trials = 40
        n_seeds = 3
    seeds = replication_seeds(seed, replicas, n_seeds)

    udg = random_udg(n, density=12.0, seed=seed)
    rows = []
    uncovered_at_half = {}
    sizes = {}
    for k in k_values:
        solutions = solve_kmds_udg_batch(udg, seeds, k=k)
        sizes[k] = sum(len(ds) for ds in solutions) / len(solutions)
        # Per-replica survival curves, averaged cell-wise.
        curves = [coverage_survival_curve(udg, ds.members, fractions,
                                          trials=trials, seed=s)
                  for ds, s in zip(solutions, seeds)]
        for cell in zip(*curves):
            frac = cell[0]["kill_fraction"]
            mean = {key: sum(rec[key] for rec in cell) / len(cell)
                    for key in ("uncovered_fraction",
                                "mean_residual_coverage",
                                "all_covered_probability")}
            rows.append((k, round(sizes[k], 1), frac,
                         round(mean["uncovered_fraction"], 4),
                         round(mean["mean_residual_coverage"], 2),
                         round(mean["all_covered_probability"], 2)))
            if abs(frac - max(fractions)) < 1e-9:
                uncovered_at_half[k] = mean["uncovered_fraction"]

    ks = sorted(uncovered_at_half)
    monotone = all(
        uncovered_at_half[ks[i + 1]] <= uncovered_at_half[ks[i]] + 0.02
        for i in range(len(ks) - 1)
    )
    big_win = (uncovered_at_half[ks[-1]]
               <= 0.5 * uncovered_at_half[ks[0]] + 1e-9) \
        if uncovered_at_half[ks[0]] > 0 else True
    cost_linear = sizes[ks[-1]] <= ks[-1] * sizes[ks[0]] * 1.5 + 10

    return ExperimentReport(
        experiment_id="e9",
        title="Fault tolerance of k-fold dominating sets (Section 1)",
        claim=("Increasing k makes the clustering survive dominator "
               "failures: the fraction of client nodes losing all "
               "dominators drops sharply with k, at ~linear size cost."),
        headers=["k", "mean |DS|", "kill fraction", "uncovered fraction",
                 "mean residual coverage", "P(all covered)"],
        rows=rows,
        checks={
            "uncovered fraction decreases with k at the harshest kill rate":
                monotone,
            "largest k at least halves the k=1 uncovered fraction": big_win,
            "size cost grows at most ~linearly in k": cost_linear,
        },
        notes=(f"UDG n={n}, density 12; {trials} failure trials per cell, "
               f"averaged over {len(seeds)} batched clustering replicas."),
    )
