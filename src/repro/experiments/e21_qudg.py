"""E21 — quasi unit disk graphs ("no clear-cut disks", Section 1).

The paper hedges its UDG model: "in reality, signal propagation does
often not form clear-cut disks", and offers the general-graph algorithm
as the pessimistic fallback.  The quasi-UDG interpolates between the
two.  This experiment runs both algorithm families across the gray-zone
parameter alpha:

- Algorithm 3 stays *correct* on every QUDG — Part II's adoption loop
  repairs whatever Part I misses — but Part I's own guarantee
  (Lemma 5.1) is specific to clean disks: its coverage argument hands
  every node a leader within *distance* 1, which is only an *edge* when
  alpha = 1.  The measured Part-I validity degrades smoothly as the
  gray zone widens;
- the general-graph pipeline (Algorithms 1+2) is model-oblivious and
  valid throughout — the paper's own fallback ("the pessimistic
  counterpart"), at its O(t^2)-round price.
"""

from __future__ import annotations

from repro.core.general import solve_kmds_general
from repro.core.udg import part_one_leaders, solve_kmds_udg
from repro.core.verify import is_k_dominating_set
from repro.experiments.base import ExperimentReport, check_scale
from repro.graphs.properties import feasible_coverage
from repro.graphs.udg import QuasiUnitDiskGraph, random_udg


def run(*, scale: str = "quick", seed: int = 0) -> ExperimentReport:
    check_scale(scale)
    if scale == "quick":
        n, k, n_seeds = 200, 2, 2
        alphas = (1.0, 0.75, 0.5, 0.3)
    else:
        n, k, n_seeds = 500, 2, 4
        alphas = (1.0, 0.9, 0.75, 0.6, 0.5, 0.4, 0.3)

    rows = []
    alg3_always_valid = True
    pipeline_always_valid = True
    part1_valid_clean_disk = True
    part1_frac_by_alpha = {}
    for alpha in alphas:
        p1_valid = 0
        mean_alg3 = 0.0
        mean_pipe = 0.0
        for s in range(n_seeds):
            base = random_udg(n, density=12.0, seed=seed + 53 * s)
            qudg = QuasiUnitDiskGraph(base.points, alpha=alpha, p_gray=0.4,
                                      seed=seed + s)
            p1 = part_one_leaders(qudg, seed=seed + s)
            if is_k_dominating_set(qudg, p1.members, 1, convention="open"):
                p1_valid += 1
            ds = solve_kmds_udg(qudg, k=k, seed=seed + s)
            alg3_always_valid &= is_k_dominating_set(
                qudg, ds.members, k, convention="open")
            mean_alg3 += len(ds) / n_seeds

            cov = feasible_coverage(qudg.nx, k)
            pipe = solve_kmds_general(qudg.nx, coverage=cov, t=3,
                                      seed=seed + s)
            pipeline_always_valid &= is_k_dominating_set(
                qudg.nx, pipe.members, cov, convention="closed")
            mean_pipe += pipe.size / n_seeds
        if alpha == 1.0:
            part1_valid_clean_disk &= p1_valid == n_seeds
        part1_frac_by_alpha[alpha] = p1_valid / n_seeds
        rows.append((alpha, p1_valid / n_seeds, round(mean_alg3, 1),
                     round(mean_pipe, 1)))

    # Degradation is monotone-ish: the cleanest model is at least as good
    # as the dirtiest.
    part1_degrades = (part1_frac_by_alpha[max(alphas)]
                      >= part1_frac_by_alpha[min(alphas)])

    return ExperimentReport(
        experiment_id="e21",
        title="Quasi unit disk graphs: no clear-cut disks (Section 1)",
        claim=("Algorithm 3 stays correct on quasi-UDGs (Part II repairs "
               "Part I); Part I's own Lemma 5.1 guarantee is specific to "
               "clean disks (alpha = 1); the general-graph pipeline is "
               "model-oblivious throughout."),
        headers=["alpha", "part-1 valid fraction", "mean |Alg 3|",
                 "mean |pipeline|"],
        rows=rows,
        checks={
            "Algorithm 3 output valid on every QUDG": alg3_always_valid,
            "general pipeline valid on every QUDG": pipeline_always_valid,
            "Part I alone valid on clean disks (alpha = 1)":
                part1_valid_clean_disk,
            "Part I validity does not improve as the gray zone widens":
                part1_degrades,
        },
        notes=(f"n={n}, density 12, gray-zone edge probability 0.4, "
               f"{n_seeds} seeds per alpha."),
    )
