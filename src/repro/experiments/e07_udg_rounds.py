"""E7 — Theorem 5.7 (time): Algorithm 3 runs in O(log log n) rounds.

Part I uses exactly ``ceil(log_{3/2}(log2 n))`` doubling rounds (2
communication rounds each); Part II adds a handful of adoption iterations
(constant in expectation).  This experiment measures both across four
decades of n (direct mode) and cross-checks the simulator's round count in
message mode on the smaller sizes.
"""

from __future__ import annotations

import math

from repro.core.udg import part_one_round_count, solve_kmds_udg
from repro.experiments.base import ExperimentReport, check_scale
from repro.graphs.udg import random_udg


def run(*, scale: str = "quick", seed: int = 0) -> ExperimentReport:
    check_scale(scale)
    if scale == "quick":
        sizes = (100, 1000, 10_000)
        message_sizes = (100,)
        k = 2
    else:
        sizes = (100, 1000, 10_000, 100_000)
        message_sizes = (100, 1000)
        k = 3

    rows = []
    schedule_matches = True
    part2_small = True
    for n in sizes:
        udg = random_udg(n, density=10.0, seed=seed + n)
        ds = solve_kmds_udg(udg, k=k, seed=seed)
        expected_p1 = part_one_round_count(n)
        measured_p1 = len(ds.details["theta_per_round"])
        schedule_matches &= measured_p1 == expected_p1
        iters = ds.details["part2_iterations"]
        part2_small &= iters <= 10
        rows.append((n, measured_p1, expected_p1, iters, ds.stats.rounds,
                     round(math.log2(max(2, math.log2(n))), 2)))

    msg_matches = True
    for n in message_sizes:
        udg = random_udg(n, density=10.0, seed=seed + n)
        d_direct = solve_kmds_udg(udg, k=k, mode="direct", seed=seed)
        d_msg = solve_kmds_udg(udg, k=k, mode="message", seed=seed)
        msg_matches &= d_direct.members == d_msg.members

    # log log growth: rounds for the largest n at most ~2x the smallest.
    small, large = rows[0][4], rows[-1][4]
    loglog_growth = large <= 2.5 * small + 6

    return ExperimentReport(
        experiment_id="e7",
        title="Algorithm 3 round complexity (Theorem 5.7)",
        claim=("O(log log n) rounds total: Part I uses "
               "ceil(log_{3/2} log2 n) doubling rounds, Part II a constant "
               "number of adoption iterations."),
        headers=["n", "part-1 rounds", "ceil(log_1.5 log2 n)",
                 "part-2 iters", "total sim rounds", "log2 log2 n"],
        rows=rows,
        checks={
            "Part I round count matches the formula exactly": schedule_matches,
            "Part II converges within 10 iterations": part2_small,
            "total rounds grow like log log n (factor <= 2.5 across sweep)":
                loglog_growth,
            "message mode reproduces direct mode exactly": msg_matches,
        },
        notes="1000x growth in n adds only ~1-2 doubling rounds.",
    )
