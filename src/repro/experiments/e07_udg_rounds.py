"""E7 — Theorem 5.7 (time): Algorithm 3 runs in O(log log n) rounds.

Part I uses exactly ``ceil(log_{3/2}(log2 n))`` doubling rounds (2
communication rounds each); Part II adds a handful of adoption iterations
(constant in expectation).  This experiment measures both across four
decades of n (direct mode) and cross-checks the simulator's round count in
message mode on the smaller sizes.

Round statistics replicate over algorithm seeds through the
grid-batched direct backend (one ``solve_kmds_udg_grid`` dispatch over
every size at once; the dispatch breakdown lands in the report's
``timing`` field): the Part I schedule must match the formula in
*every* replica, and the Part II iteration bound is checked on the
worst replica, not a lucky one.
"""

from __future__ import annotations

import math

from repro.core.udg import (part_one_round_count, solve_kmds_udg,
                            solve_kmds_udg_grid)
from repro.experiments.base import (ExperimentReport, check_scale,
                                    replication_seeds)
from repro.graphs.udg import random_udg


def run(*, scale: str = "quick", seed: int = 0,
        replicas: int | None = None) -> ExperimentReport:
    check_scale(scale)
    if scale == "quick":
        sizes = (100, 1000, 10_000)
        message_sizes = (100,)
        k = 2
        n_seeds = 3
    else:
        sizes = (100, 1000, 10_000, 100_000)
        message_sizes = (100, 1000)
        k = 3
        n_seeds = 5
    seeds = replication_seeds(seed, replicas, n_seeds)

    rows = []
    schedule_matches = True
    part2_small = True
    # One grid dispatch over the whole size sweep (per-size deployments
    # group into their own stacked size classes; per-cell results stay
    # bit-identical to per-size batch calls).
    udgs = [random_udg(n, density=10.0, seed=seed + n) for n in sizes]
    timing: dict = {}
    grid = solve_kmds_udg_grid(udgs, seeds, (k,), timing=timing)
    for n, per_graph in zip(sizes, grid):
        solutions = per_graph[0]
        expected_p1 = part_one_round_count(n)
        measured_p1 = {len(ds.details["theta_per_round"])
                       for ds in solutions}
        schedule_matches &= measured_p1 == {expected_p1}
        worst_iters = max(ds.details["part2_iterations"] for ds in solutions)
        part2_small &= worst_iters <= 10
        worst_rounds = max(ds.stats.rounds for ds in solutions)
        rows.append((n, min(measured_p1), expected_p1, worst_iters,
                     worst_rounds,
                     round(math.log2(max(2, math.log2(n))), 2)))

    msg_matches = True
    for n in message_sizes:
        udg = random_udg(n, density=10.0, seed=seed + n)
        d_direct = solve_kmds_udg(udg, k=k, mode="direct", seed=seed)
        d_msg = solve_kmds_udg(udg, k=k, mode="message", seed=seed)
        msg_matches &= d_direct.members == d_msg.members

    # log log growth: rounds for the largest n at most ~2x the smallest.
    small, large = rows[0][4], rows[-1][4]
    loglog_growth = large <= 2.5 * small + 6

    return ExperimentReport(
        experiment_id="e7",
        title="Algorithm 3 round complexity (Theorem 5.7)",
        claim=("O(log log n) rounds total: Part I uses "
               "ceil(log_{3/2} log2 n) doubling rounds, Part II a constant "
               "number of adoption iterations."),
        headers=["n", "part-1 rounds", "ceil(log_1.5 log2 n)",
                 "max part-2 iters", "max total sim rounds", "log2 log2 n"],
        rows=rows,
        checks={
            "Part I round count matches the formula in every replica":
                schedule_matches,
            "Part II converges within 10 iterations in every replica":
                part2_small,
            "total rounds grow like log log n (factor <= 2.5 across sweep)":
                loglog_growth,
            "message mode reproduces direct mode exactly": msg_matches,
        },
        notes=("1000x growth in n adds only ~1-2 doubling rounds; "
               f"{len(seeds)} batched seed replicas per size, one grid "
               "dispatch."),
        timing=timing,
    )
