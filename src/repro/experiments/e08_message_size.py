"""E8 — Section 3 / Theorem 5.7: every message is O(log n) bits.

Runs all three protocols in message-passing mode and reads the largest
single message from the simulator's bit accounting, checking it stays
within a constant multiple of log2 n.  (The identifier fields of
Algorithm 3 are the widest: drawn from [1, n^4], they cost ~4 log2 n
bits, exactly the "constant number of node identifiers" budget.)
"""

from __future__ import annotations

import math

from repro.core.fractional import fractional_kmds
from repro.core.rounding import randomized_rounding
from repro.core.udg import solve_kmds_udg
from repro.experiments.base import ExperimentReport, check_scale
from repro.graphs.generators import gnp_graph
from repro.graphs.properties import feasible_coverage
from repro.graphs.udg import random_udg


def run(*, scale: str = "quick", seed: int = 0) -> ExperimentReport:
    check_scale(scale)
    sizes = (50, 200) if scale == "quick" else (50, 200, 800)

    rows = []
    all_logarithmic = True
    for n in sizes:
        log_n = math.log2(n + 1)
        g = gnp_graph(n, min(1.0, 8.0 / n), seed=seed)
        coverage = feasible_coverage(g, 2)

        frac = fractional_kmds(g, coverage=coverage, t=2, mode="message",
                               seed=seed)
        ds = randomized_rounding(g, frac.x, coverage=coverage,
                                 mode="message", seed=seed)
        udg = random_udg(n, density=10.0, seed=seed)
        udg_ds = solve_kmds_udg(udg, k=2, mode="message", seed=seed)

        for label, stats in (("algorithm 1", frac.stats),
                             ("algorithm 2", ds.stats),
                             ("algorithm 3", udg_ds.stats)):
            per_log = stats.max_message_bits / log_n
            all_logarithmic &= per_log <= 16.0
            rows.append((label, n, stats.max_message_bits,
                         round(per_log, 2), stats.messages_sent))

    return ExperimentReport(
        experiment_id="e8",
        title="Message size is O(log n) bits (Section 3)",
        claim=("All three algorithms use messages of O(log n) bits — a "
               "constant number of node identifiers per message."),
        headers=["protocol", "n", "max message bits", "bits / log2 n",
                 "total messages"],
        rows=rows,
        checks={
            "largest message stays within 16 * log2(n) bits across sizes":
                all_logarithmic,
        },
        notes=("Bit accounting per repro.simulation.messages: ids cost "
               "ceil(log2 n^4), fixed-point values 4*ceil(log2 n), flags "
               "1 bit, plus a sender-id header."),
    )
