"""E14 — the weighted extension (Section 4.1 remark).

"It would also be possible to extend our algorithm to also solve the
weighted version of the k-MDS problem."  We validate the extension we
built: the cost-effectiveness generalization of Algorithm 1 plus
cheapest-patch rounding, against the weighted LP optimum, weighted
greedy, and (on small instances) the weighted exact optimum.
"""

from __future__ import annotations


import numpy as np

from repro.core.verify import is_k_dominating_set
from repro.experiments.base import ExperimentReport, check_scale
from repro.graphs.generators import graph_suite
from repro.graphs.properties import feasible_coverage, max_degree
from repro.weighted import (
    solve_weighted_kmds,
    weighted_greedy_kmds,
    weighted_lp_optimum,
)
from repro.weighted.fractional import (
    weighted_fractional_kmds,
    weighted_objective,
)


def run(*, scale: str = "quick", seed: int = 0) -> ExperimentReport:
    check_scale(scale)
    suite_scale = "small" if scale == "quick" else "medium"
    k_values = (1, 2) if scale == "quick" else (1, 2, 3)
    weight_spread = 10.0

    rows = []
    all_valid = True
    frac_within_bound = True
    pipeline_vs_greedy = []
    for name, g in graph_suite(suite_scale, seed=seed):
        rng = np.random.default_rng(seed)
        weights = {v: float(rng.uniform(1.0, weight_spread)) for v in g.nodes}
        delta = max_degree(g)
        for k in k_values:
            cov = feasible_coverage(g, k)
            lp = weighted_lp_optimum(g, weights, cov, convention="closed")
            frac = weighted_fractional_kmds(g, weights, coverage=cov, t=3)
            frac_cost = weighted_objective(frac.x, weights)
            ds = solve_weighted_kmds(g, weights, coverage=cov, t=3,
                                     seed=seed)
            all_valid &= is_k_dominating_set(g, ds.members, cov,
                                             convention="closed")
            greedy = weighted_greedy_kmds(g, weights, cov,
                                          convention="closed")
            # Empirical analogue of Theorem 4.5 for the weighted variant:
            # give the bound an extra factor for the weight spread the
            # effectiveness sweep must cover.
            bound = 3 * ((delta + 1) ** (2 / 3) + (delta + 1) ** (1 / 3)) \
                * weight_spread
            frac_within_bound &= frac_cost <= bound * lp.objective + 1e-9
            pipeline_vs_greedy.append(
                ds.details["cost"] / max(1e-9, greedy.details["cost"]))
            rows.append((name, k, round(lp.objective, 1),
                         round(frac_cost, 1),
                         round(ds.details["cost"], 1),
                         round(greedy.details["cost"], 1),
                         round(frac_cost / max(lp.objective, 1e-9), 2)))

    mean_vs_greedy = sum(pipeline_vs_greedy) / len(pipeline_vs_greedy)

    return ExperimentReport(
        experiment_id="e14",
        title="Weighted k-MDS extension (Section 4.1 remark)",
        claim=("The cost-effectiveness generalization of Algorithms 1+2 "
               "solves weighted k-MDS: valid outputs whose cost tracks the "
               "weighted LP optimum."),
        headers=["graph", "k", "LP cost", "frac cost", "pipeline cost",
                 "greedy cost", "frac/LP"],
        rows=rows,
        checks={
            "weighted pipeline always outputs a valid k-fold DS": all_valid,
            "fractional cost within the (spread-adjusted) Thm 4.5 bound":
                frac_within_bound,
            "pipeline cost within 4x of weighted greedy on average":
                mean_vs_greedy <= 4.0,
        },
        notes=(f"weights ~ U(1, {weight_spread:.0f}); mean pipeline/greedy "
               f"cost ratio {mean_vs_greedy:.2f}."),
    )
