"""E19 — Algorithm 3 on non-uniform deployments.

The Section 5 analysis is *per-disk*: Lemma 5.5 bounds the expected
leaders in every disk of radius 1/2 independently of how density varies
across the field.  This experiment stresses that claim on deployments
uniform placement cannot represent — clustered hot spots, a thin
corridor, and an obstacle-perforated field — checking validity, the
LP-relative ratio, and the adversarial (targeted) failure mode on each.
"""

from __future__ import annotations

from repro.analysis.faults import dominator_failure_experiment
from repro.analysis.ratio import approximation_ratio, best_known_optimum
from repro.core.udg import solve_kmds_udg
from repro.core.verify import is_k_dominating_set
from repro.experiments.base import ExperimentReport, check_scale
from repro.graphs.deployments import clustered_udg, corridor_udg, perforated_udg
from repro.graphs.udg import random_udg


def run(*, scale: str = "quick", seed: int = 0) -> ExperimentReport:
    check_scale(scale)
    if scale == "quick":
        n, k, trials = 250, 2, 10
    else:
        n, k, trials = 800, 3, 30

    fields = [
        ("uniform", random_udg(n, density=10.0, seed=seed)),
        ("clustered", clustered_udg(n, clusters=max(4, n // 60),
                                    spread=0.8, seed=seed)),
        ("corridor", corridor_udg(n, width=2.0, seed=seed)),
        ("perforated", perforated_udg(n, holes=5, hole_radius=1.5,
                                      seed=seed)),
    ]

    rows = []
    all_valid = True
    ratios_bounded = True
    targeted_worse_or_equal = True
    for name, udg in fields:
        ds = solve_kmds_udg(udg, k=k, seed=seed)
        valid = is_k_dominating_set(udg, ds.members, k, convention="open")
        all_valid &= valid
        opt = best_known_optimum(udg, k, convention="open",
                                 exact_node_limit=0)
        ratio = approximation_ratio(len(ds), opt)
        ratios_bounded &= ratio <= 15.0
        rnd = dominator_failure_experiment(udg, ds.members, 0.3,
                                           trials=trials, strategy="random",
                                           seed=seed)
        adv = dominator_failure_experiment(udg, ds.members, 0.3,
                                           trials=trials,
                                           strategy="targeted", seed=seed)
        targeted_worse_or_equal &= (
            adv["uncovered_fraction"] >= rnd["uncovered_fraction"] - 0.02)
        rows.append((name, len(ds), round(ratio, 2),
                     round(rnd["uncovered_fraction"], 4),
                     round(adv["uncovered_fraction"], 4),
                     "yes" if valid else "NO"))

    return ExperimentReport(
        experiment_id="e19",
        title="Non-uniform deployments (per-disk guarantee stress test)",
        claim=("Algorithm 3's validity and constant-factor quality are "
               "per-disk properties: they hold on clustered, corridor, "
               "and perforated fields, not just uniform ones."),
        headers=["deployment", "|DS|", "ratio vs LP",
                 "uncovered @30% random", "uncovered @30% targeted",
                 "valid"],
        rows=rows,
        checks={
            "valid k-fold dominating set on every deployment": all_valid,
            "LP-relative ratio bounded on every deployment": ratios_bounded,
            "targeted failures at least as damaging as random":
                targeted_worse_or_equal,
        },
        notes=(f"n={n}, k={k}; the targeted adversary kills the highest-"
               "client-load dominators first."),
    )
