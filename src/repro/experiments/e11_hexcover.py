"""E11 — Figure 1 / Lemma 5.3: the hexagonal-lattice covering geometry.

Reproduces the paper's only figure computationally: (a) the disk D_i of
radius 3*theta/2 touches exactly 19 lattice disks C_i of radius theta/2;
(b) the number alpha(i) of lattice disks covering a disk of radius 1/2
satisfies alpha(i) < eta / (4 theta_i^2) with eta = 16 pi / (3 sqrt 3);
(c) the lattice disks really cover the target disk.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentReport, check_scale
from repro.graphs.hexcover import (
    alpha_bound,
    covering_disk_count,
    disks_touching,
    hex_cover_centers,
    verify_cover,
)


def run(*, scale: str = "quick", seed: int = 0) -> ExperimentReport:
    check_scale(scale)
    thetas = ((0.5, 0.25, 0.125, 0.0625) if scale == "quick"
              else (0.5, 0.25, 0.125, 0.0625, 0.03125, 0.015625))
    # Lemma 5.3's inequality rests on Kershner's asymptotic covering
    # density, which kicks in once theta is small (the constant eta leaves
    # a factor-2 slack that absorbs the (1/2 + theta)^2 boundary term for
    # theta <= ~0.2).  Algorithm 3 uses the bound for the early rounds
    # where theta is tiny, so we check it in that regime.
    bound_regime = 0.2

    rows = []
    all_below_bound = True
    all_cover = True
    all_19 = True
    for theta in thetas:
        count = covering_disk_count(0.5, theta / 2.0)
        bound = alpha_bound(theta)
        centers = hex_cover_centers(0.5, theta / 2.0)
        covered = verify_cover(0.5, theta / 2.0, centers,
                               resolution=60 if scale == "quick" else 120)
        touching = disks_touching(theta)
        if theta <= bound_regime:
            all_below_bound &= count < bound
        all_cover &= covered
        all_19 &= touching == 19
        rows.append((theta, count, round(bound, 1), touching,
                     "yes" if covered else "NO"))

    return ExperimentReport(
        experiment_id="e11",
        title="Hexagonal covering geometry (Figure 1, Lemma 5.3)",
        claim=("alpha(i) < eta/(4 theta_i^2) lattice disks of radius "
               "theta_i/2 cover a disk of radius 1/2; D_i touches exactly "
               "19 lattice disks."),
        headers=["theta", "alpha (measured)", "eta/(4 theta^2)",
                 "disks touching D_i", "covers target"],
        rows=rows,
        checks={
            "alpha(i) strictly below Lemma 5.3's bound for theta <= 0.2":
                all_below_bound,
            "the lattice disks cover the target disk": all_cover,
            "D_i touches exactly 19 disks (Figure 1)": all_19,
        },
    )
