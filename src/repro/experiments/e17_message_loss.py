"""E17 — robustness to message loss (the motivation's second bullet).

Section 1: "the shared wireless medium is inherently less stable than
wired media.  This results in more packet losses".  The paper's
algorithms assume reliable links; this experiment measures what actually
happens when they don't get them: we run Algorithm 3 in message mode
under i.i.d. message loss and measure how the output degrades — the
fraction of nodes left under-covered vs the loss rate, for k in {1, 3} —
showing that the k-fold redundancy also buys robustness *during*
construction, not just after it.
"""

from __future__ import annotations

from repro.core.udg import UDGNode, theta_schedule
from repro.core.verify import coverage_deficit
from repro.experiments.base import ExperimentReport, check_scale
from repro.graphs.udg import random_udg
from repro.simulation.faults import MessageLossInjector
from repro.simulation.network import SynchronousNetwork
from repro.simulation.runner import run_protocol


def _run_with_loss(udg, k: int, loss: float, seed: int, *,
                   reference_protocols: bool = False):
    """One lossy Algorithm 3 run; ``reference_protocols=True`` drives the
    per-node generator loop instead of the columnar stepping plane (the
    bit-identity oracle the experiment tests compare against)."""
    n = udg.n
    procs = [UDGNode(v, k, n, "random", n + 1) for v in range(n)]
    net = SynchronousNetwork(udg, procs, seed=seed)
    injector = MessageLossInjector(loss, seed=seed + 1)
    run_protocol(net, injectors=[injector],
                 max_rounds=2 * len(theta_schedule(n)) + 3 * (n + 1) + 8,
                 reference_protocols=reference_protocols)
    return {p.node_id for p in procs if p.leader}


def run(*, scale: str = "quick", seed: int = 0) -> ExperimentReport:
    check_scale(scale)
    if scale == "quick":
        n = 120
        loss_rates = (0.0, 0.05, 0.15)
        k_values = (1, 3)
        n_seeds = 2
    else:
        n = 250
        loss_rates = (0.0, 0.02, 0.05, 0.1, 0.2)
        k_values = (1, 3)
        n_seeds = 4

    rows = []
    zero_loss_perfect = True
    deficit_by = {}
    for k in k_values:
        for loss in loss_rates:
            deficient_frac = 0.0
            mean_size = 0.0
            for s in range(n_seeds):
                udg = random_udg(n, density=10.0, seed=seed + 31 * s)
                members = _run_with_loss(udg, k, loss, seed + s)
                deficit = coverage_deficit(udg, members, k,
                                           convention="open")
                deficient = sum(1 for d in deficit.values() if d > 0)
                deficient_frac += deficient / n / n_seeds
                mean_size += len(members) / n_seeds
            if loss == 0.0:
                zero_loss_perfect &= deficient_frac == 0.0
            deficit_by[(k, loss)] = deficient_frac
            rows.append((k, loss, round(mean_size, 1),
                         round(100 * deficient_frac, 2)))

    max_loss = max(loss_rates)
    graceful = all(
        deficit_by[(k, max_loss)] <= 0.5 for k in k_values
    )

    return ExperimentReport(
        experiment_id="e17",
        title="Protocol robustness under message loss (Section 1 motivation)",
        claim=("Algorithm 3 degrades gracefully when the wireless medium "
               "drops messages: with reliable links the output is perfect; "
               "under loss, only a bounded fraction of nodes end "
               "under-covered."),
        headers=["k", "loss rate", "mean |DS|", "% nodes under-covered"],
        rows=rows,
        checks={
            "zero loss reproduces a perfect k-fold dominating set":
                zero_loss_perfect,
            "under-coverage stays bounded at the highest loss rate":
                graceful,
        },
        notes=(f"UDG n={n}, density 10, {n_seeds} seeds per cell; loss is "
               "i.i.d. per message.  The paper assumes reliable links; "
               "this quantifies the assumption's weight."),
    )
