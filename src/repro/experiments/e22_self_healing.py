"""E22 — self-healing maintenance under crash churn (Section 1's premise).

The paper motivates k-fold dominating sets with continuously *operating*
networks: "Hierarchical structures ... are prone to fail unless they
provide enough fault-tolerance or redundancy."  E9 measured the damage
of a one-shot failure burst; this experiment closes the loop with the
:mod:`repro.dynamics` subsystem — a scripted adversary kills a fraction
of the current dominators, spread over many epochs, and a repair policy
keeps the clustering alive.  Three claims:

1. **Local repair suffices**: the Part II adoption rule applied in the
   deficient nodes' 2-hop balls (:class:`LocalPatchRepair`) restores
   full k-coverage every epoch;
2. **Local beats recompute**: it sends far fewer messages and touches
   far fewer nodes than re-running Algorithm 3 from scratch — even with
   the recompute's message bill deliberately undercounted;
3. **Redundancy headroom**: while a repair is pending, k = 3 keeps every
   client at least 1-covered, which k = 1 cannot.

Deterministic per seed (asserted by re-running the headline cell).
"""

from __future__ import annotations

from repro.dynamics import (
    LazyRepair,
    LocalPatchRepair,
    RandomCrashes,
    RecomputeRepair,
    Scenario,
    crash_scenario,
    run_scenario,
)
from repro.experiments.base import ExperimentReport, check_scale


def _headroom_scenario(reference: Scenario, k: int) -> Scenario:
    """Same deployment and the same absolute per-epoch kill rate as the
    k=3 reference, with a smaller maintained k: rows compare equal
    damage against different redundancy (scaling kills by each k's own
    dominator count would hand k=1 a far weaker adversary)."""
    rate = reference.streams[0].per_epoch
    seed = reference.seed
    scenario = Scenario(reference.initial, k=k, epochs=reference.epochs,
                        seed=seed, name=reference.name)
    scenario.streams = [RandomCrashes(
        rate, target="dominators",
        seed=None if seed is None else seed + 1)]
    return scenario


def run(*, scale: str = "quick", seed: int = 0) -> ExperimentReport:
    check_scale(scale)
    if scale == "quick":
        n, epochs = 150, 15
    else:
        n, epochs = 500, 50
    kill_fraction = 0.2
    k_values = (1, 2, 3)

    reference = crash_scenario(n, k=3, epochs=epochs,
                               kill_fraction=kill_fraction,
                               target="dominators", seed=seed)

    def _run_cell(k, policy):
        scenario = (crash_scenario(n, k=3, epochs=epochs,
                                   kill_fraction=kill_fraction,
                                   target="dominators", seed=seed)
                    if k == 3 else _headroom_scenario(reference, k))
        return run_scenario(scenario, policy)

    rows = []
    results = {}
    for k in k_values:
        policies = ([LocalPatchRepair(), RecomputeRepair(), LazyRepair()]
                    if k == 3 else [LocalPatchRepair()])
        for policy in policies:
            res = _run_cell(k, policy)
            results[(k, policy.name)] = res
            s = res.summary
            rows.append((
                k, policy.name,
                round(100 * s["availability_mean"], 2),
                round(100 * s["fully_covered_fraction"], 1),
                s["uncovered_epochs"],
                s["messages_total"],
                round(s["touched_per_repair"], 1),
                s["drift_total"],
            ))

    local3 = results[(3, "local")].summary
    recompute3 = results[(3, "recompute")].summary
    lazy3 = results[(3, "lazy")].summary

    # Determinism: the headline cell re-run bit-for-bit.
    rerun = _run_cell(3, LocalPatchRepair())
    deterministic = (rerun.timeline.to_dicts()
                     == results[(3, "local")].timeline.to_dicts())

    checks = {
        "local patch restores full k-coverage every epoch (k=3)":
            results[(3, "local")].always_covered,
        "recompute baseline also restores full coverage (sanity)":
            results[(3, "recompute")].always_covered,
        "local patch sends measurably fewer messages than recompute":
            local3["messages_total"] * 4 <= recompute3["messages_total"],
        "local patch touches fewer nodes per repair than recompute":
            local3["touched_per_repair"] < recompute3["touched_per_repair"],
        "local patch churns the dominator set less than recompute":
            local3["drift_total"] <= recompute3["drift_total"],
        "k=3 headroom: no client ever drops to zero live dominators":
            local3["uncovered_epochs"] == 0,
        "k=1 offers no headroom: some client loses all coverage":
            results[(1, "local")].summary["uncovered_epochs"] > 0,
        "lazy repair trades availability for fewer repairs":
            lazy3["repairs"] <= local3["repairs"],
        "same seed reproduces the identical epoch timeline":
            deterministic,
    }

    return ExperimentReport(
        experiment_id="e22",
        title="Self-healing maintenance under dominator churn",
        claim=("A maintained k-fold dominating set survives continuous "
               "crash-stop churn: the Part II adoption rule applied "
               "locally in the damage's 2-hop ball restores full "
               "k-coverage every epoch at a tiny fraction of a full "
               "recompute's traffic and footprint, while k-fold "
               "redundancy keeps every client covered in the meantime."),
        headers=["k", "policy", "mean avail %", "% epochs healed",
                 "uncovered epochs", "messages", "touched/repair",
                 "drift"],
        rows=rows,
        checks=checks,
        notes=(f"UDG n={n}, density 10; the adversary kills "
               f"{int(100 * kill_fraction)}% of the k=3 dominator count "
               f"spread over {epochs} epochs, sampling from the *current* "
               "dominators; the same absolute kill rate is applied at "
               "every k, so rows compare equal damage against different "
               "redundancy (seeded, deterministic).  'mean avail %' is "
               "pre-repair k-coverage availability; 'uncovered epochs' "
               "counts epochs where some client had zero live dominators "
               "before repair.  Recompute message counts are a "
               "conservative undercount (see repro.dynamics.repair)."),
    )
