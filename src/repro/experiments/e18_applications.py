"""E18 — the introduction's application claims, end-to-end.

Section 1 motivates the whole paper with three application-level claims:
virtual backbones, routing, and resource (energy) efficiency.  This
experiment validates them on top of the library's own clusterings:

1. the k-fold dominating set extends to a *connected* backbone with a
   modest number of connectors;
2. routing through the backbone has small constant stretch and full
   delivery;
3. under head attrition, data-collection delivery improves monotonically
   with k — at sub-linear extra energy;
4. spatial multiplexing: a distance-2 TDMA schedule over the heads needs
   a number of slots driven by local head density, so the per-slot reuse
   (heads transmitting in parallel) grows with the field.
"""

from __future__ import annotations

from repro.apps.backbone import build_backbone, is_connected_backbone
from repro.apps.datacollection import run_data_collection
from repro.apps.routing import routing_stretch
from repro.apps.scheduling import schedule_report
from repro.core.udg import solve_kmds_udg
from repro.experiments.base import ExperimentReport, check_scale
from repro.graphs.udg import random_udg


def run(*, scale: str = "quick", seed: int = 0) -> ExperimentReport:
    check_scale(scale)
    if scale == "quick":
        n, pairs, epochs, death = 200, 60, 30, 0.05
        k_values = (1, 3)
    else:
        n, pairs, epochs, death = 600, 200, 60, 0.05
        k_values = (1, 2, 3, 5)

    udg = random_udg(n, density=12.0, seed=seed)
    rows = []
    all_connected = True
    stretch_small = True
    multiplexing = True
    delivery = {}
    for k in k_values:
        heads = solve_kmds_udg(udg, k=k, seed=seed).members
        bb = build_backbone(udg, heads)
        all_connected &= is_connected_backbone(udg, bb.members)
        stretch = routing_stretch(udg, bb.members, pairs=pairs, seed=seed)
        stretch_small &= (stretch["delivered_fraction"] == 1.0
                          and stretch["mean_stretch"] <= 3.0)
        coll = run_data_collection(udg, heads, epochs=epochs,
                                   head_death_rate=death, seed=seed)
        delivery[k] = coll.delivered_fraction
        sched = schedule_report(udg, heads)
        multiplexing &= sched["reuse"] >= 2.0
        rows.append((k, len(heads), len(bb.connectors),
                     round(stretch["mean_stretch"], 2),
                     round(stretch["max_stretch"], 2),
                     round(coll.delivered_fraction, 3),
                     sched["slots"], round(sched["reuse"], 1)))

    ks = sorted(delivery)
    redundancy_pays = all(
        delivery[ks[i + 1]] >= delivery[ks[i]] - 0.01
        for i in range(len(ks) - 1)
    )

    return ExperimentReport(
        experiment_id="e18",
        title="Application claims: backbone, routing, data collection "
              "(Section 1)",
        claim=("k-fold dominating sets extend to connected backbones with "
               "small routing stretch, and higher k sustains data "
               "collection through head failures."),
        headers=["k", "heads", "connectors", "mean stretch", "max stretch",
                 "delivered fraction", "TDMA slots", "reuse"],
        rows=rows,
        checks={
            "backbone connected (per component) for every k": all_connected,
            "backbone routing: full delivery at mean stretch <= 3":
                stretch_small,
            "delivery under attrition non-decreasing in k": redundancy_pays,
            "spatial multiplexing: >= 2 heads reuse each TDMA slot":
                multiplexing,
        },
        notes=(f"UDG n={n}, density 12; {epochs} epochs at "
               f"{death:.0%} head death per epoch."),
    )
