"""Shared experiment-report structure."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence

from repro.analysis.reporting import format_markdown_table, format_table
from repro.errors import ReproError

SCALES = ("quick", "full")


class ScaleError(ReproError):
    """An experiment was asked to run at an unknown scale."""


def check_scale(scale: str) -> None:
    if scale not in SCALES:
        raise ScaleError(f"unknown scale {scale!r}; expected one of {SCALES}")


def replication_seeds(seed: int, replicas: int | None,
                      default: int) -> List[int]:
    """The algorithm-seed list for one experiment cell.

    Experiments that replicate over seeds pass the resulting list to a
    batched solver (``solve_kmds_udg_batch`` / ``execute_batch``) so
    the whole replication axis runs as one kernel pass.  ``replicas``
    is the user override (``repro experiment --replicas N``); ``None``
    keeps the experiment's scale default.  Seeds are validated up
    front, consecutive from ``seed``.
    """
    from repro.engine import validate_seed

    count = default if replicas is None else int(replicas)
    if count < 1:
        raise ScaleError(f"replicas must be >= 1, got {count}")
    base = validate_seed(seed)
    if base is None:
        base = 0
    return [base + r for r in range(count)]


@dataclass
class ExperimentReport:
    """The outcome of one experiment run.

    Attributes
    ----------
    experiment_id / title / claim:
        Identification and the paper claim being validated.
    headers / rows:
        The regenerated table.
    checks:
        Named boolean assertions on the paper's claims (all should be
        True on a successful reproduction).
    notes:
        Free-form commentary (e.g. which OPT estimate was used).
    timing:
        Optional dispatch breakdown from the grid-batched backend (the
        dict :func:`repro.engine.execute_grid` fills through its
        ``timing`` parameter: which path ran, how many graphs took the
        stacked dispatch vs the per-point fallback, and the seconds
        spent in each).  Empty for experiments that do not run grids.
    """

    experiment_id: str
    title: str
    claim: str
    headers: List[str]
    rows: List[Sequence[Any]]
    checks: Dict[str, bool] = field(default_factory=dict)
    notes: str = ""
    timing: Dict[str, Any] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        """Whether every claim check succeeded."""
        return all(self.checks.values())

    def failed_checks(self) -> List[str]:
        return [name for name, ok in self.checks.items() if not ok]

    def render(self) -> str:
        """Human-readable report (ASCII table + check list)."""
        lines = [
            f"== {self.experiment_id.upper()}: {self.title} ==",
            f"Claim: {self.claim}",
            "",
            format_table(self.headers, self.rows),
            "",
        ]
        for name, ok in self.checks.items():
            lines.append(f"  [{'PASS' if ok else 'FAIL'}] {name}")
        if self.notes:
            lines.append("")
            lines.append(f"Notes: {self.notes}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (CI artifacts, archival)."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "claim": self.claim,
            "headers": list(self.headers),
            "rows": [list(row) for row in self.rows],
            "checks": dict(self.checks),
            "passed": self.passed,
            "notes": self.notes,
            "timing": dict(self.timing),
        }

    def render_markdown(self) -> str:
        """Markdown fragment for EXPERIMENTS.md."""
        lines = [
            f"### {self.experiment_id.upper()} — {self.title}",
            "",
            f"*Claim:* {self.claim}",
            "",
            format_markdown_table(self.headers, self.rows),
            "",
        ]
        for name, ok in self.checks.items():
            lines.append(f"- {'✅' if ok else '❌'} {name}")
        if self.notes:
            lines.append("")
            lines.append(f"*Notes:* {self.notes}")
        return "\n".join(lines)
