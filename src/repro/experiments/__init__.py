"""Experiment implementations E1-E23 (see DESIGN.md section 3).

The paper is a theory paper — its "results" are theorems.  Each experiment
module empirically validates one claim and regenerates one table of
EXPERIMENTS.md.  E1-E13 cover the paper's theorems and figure; E14-E21
cover the extensions the paper sketches (weighted version, unknown
Delta, asynchronous execution), the Section 1 application claims, and
robustness studies the motivation calls for (message loss, non-uniform
deployments, ranging error, quasi-UDG radios); E22 runs the
:mod:`repro.dynamics` maintenance loop under continuous churn and E23
executes its repair protocol on the real message transport under loss.  The same
functions back the ``benchmarks/`` suite and the ``repro`` CLI, so every
reported number is reproducible from either.

Usage::

    from repro.experiments import run_experiment, EXPERIMENTS

    report = run_experiment("e1", scale="quick", seed=0)
    print(report.render())
"""

from repro.experiments.base import ExperimentReport
from repro.experiments import (
    e01_fractional_ratio,
    e02_round_complexity,
    e03_rounding,
    e04_end_to_end,
    e05_udg_correctness,
    e06_udg_ratio,
    e07_udg_rounds,
    e08_message_size,
    e09_fault_tolerance,
    e10_tradeoff,
    e11_hexcover,
    e12_vs_jrs,
    e13_active_decay,
    e14_weighted,
    e15_local_delta,
    e16_asynchrony,
    e17_message_loss,
    e18_applications,
    e19_deployments,
    e20_noisy_sensing,
    e21_qudg,
    e22_self_healing,
    e23_repair_under_loss,
)

#: Registry: experiment id -> (title, run callable).
EXPERIMENTS = {
    "e1": e01_fractional_ratio.run,
    "e2": e02_round_complexity.run,
    "e3": e03_rounding.run,
    "e4": e04_end_to_end.run,
    "e5": e05_udg_correctness.run,
    "e6": e06_udg_ratio.run,
    "e7": e07_udg_rounds.run,
    "e8": e08_message_size.run,
    "e9": e09_fault_tolerance.run,
    "e10": e10_tradeoff.run,
    "e11": e11_hexcover.run,
    "e12": e12_vs_jrs.run,
    "e13": e13_active_decay.run,
    "e14": e14_weighted.run,
    "e15": e15_local_delta.run,
    "e16": e16_asynchrony.run,
    "e17": e17_message_loss.run,
    "e18": e18_applications.run,
    "e19": e19_deployments.run,
    "e20": e20_noisy_sensing.run,
    "e21": e21_qudg.run,
    "e22": e22_self_healing.run,
    "e23": e23_repair_under_loss.run,
}


def run_experiment(experiment_id: str, *, scale: str = "quick",
                   seed: int = 0,
                   replicas: int | None = None) -> ExperimentReport:
    """Run one registered experiment by id (``"e1"`` .. ``"e23"``).

    ``replicas`` overrides the seed-replication count of experiments
    that batch over algorithm seeds (those whose ``run`` accepts a
    ``replicas`` keyword — e.g. E6/E7/E9, which route it through the
    replica-batched direct backend).  Experiments without a replication
    axis ignore it.
    """
    key = experiment_id.lower()
    if key not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}"
        )
    fn = EXPERIMENTS[key]
    kwargs = {"scale": scale, "seed": seed}
    if replicas is not None:
        import inspect

        if "replicas" in inspect.signature(fn).parameters:
            kwargs["replicas"] = replicas
    report = fn(**kwargs)
    # Stamp which kernel providers served the run — timings are not
    # comparable across providers, so reports carry their provenance.
    from repro.engine.dispatch import provider_status

    report.timing.setdefault("kernels", provider_status())
    return report


__all__ = ["ExperimentReport", "EXPERIMENTS", "run_experiment"]
