"""E2 — Theorem 4.5 (time): Algorithm 1 takes exactly ``2 t^2``
communication rounds.

Runs Algorithm 1 in real message-passing mode and compares the simulator's
round count with the theorem ("every iteration of the inner loop can be
computed in 2 rounds and the number of iterations is t^2").  Also checks
that the measured message count matches the analytic schedule (every node
broadcasts twice per inner iteration).
"""

from __future__ import annotations

from repro.core.fractional import fractional_kmds
from repro.experiments.base import ExperimentReport, check_scale
from repro.graphs.generators import gnp_graph, grid_graph
from repro.graphs.properties import feasible_coverage


def run(*, scale: str = "quick", seed: int = 0) -> ExperimentReport:
    check_scale(scale)
    t_values = (1, 2, 3, 4) if scale == "quick" else (1, 2, 3, 4, 5, 6, 8)
    graphs = [("gnp", gnp_graph(50, 0.1, seed=seed)),
              ("grid", grid_graph(7, 7))]

    rows = []
    exact_rounds = True
    msgs_match = True
    for name, g in graphs:
        m2 = 2 * g.number_of_edges()
        coverage = feasible_coverage(g, 2)
        for t in t_values:
            sol = fractional_kmds(g, coverage=coverage, t=t, mode="message",
                                  compute_duals=False, seed=seed)
            expected_rounds = 2 * t * t
            expected_msgs = 2 * t * t * m2
            exact_rounds &= sol.stats.rounds == expected_rounds
            msgs_match &= sol.stats.messages_sent == expected_msgs
            rows.append((name, t, sol.stats.rounds, expected_rounds,
                         sol.stats.messages_sent, expected_msgs))

    return ExperimentReport(
        experiment_id="e2",
        title="Algorithm 1 round complexity (Theorem 4.5)",
        claim="Algorithm 1 completes in exactly 2*t^2 communication rounds.",
        headers=["graph", "t", "rounds", "2t^2", "messages",
                 "expected msgs"],
        rows=rows,
        checks={
            "measured rounds equal 2t^2 for every t": exact_rounds,
            "measured messages equal the broadcast schedule": msgs_match,
        },
        notes=("compute_duals=False; carrying the dual z adds exactly one "
               "extra round."),
    )
