"""E20 — imperfect distance sensing (the Section 3 assumption, relaxed).

The paper assumes, following [7], that "nodes can sense the distance
between themselves and their neighbors" exactly.  Real ranging is noisy.
This experiment runs Algorithm 3 with symmetric multiplicative sensing
error ``U(1-sigma, 1+sigma)`` per link and measures:

- whether the final output is still a valid k-fold dominating set (it
  is: Part II's adoption loop patches whatever Part I's perturbed
  elections miss);
- whether Part I alone still dominates (Lemma 5.1 is robust in practice
  because the doubling schedule ends at theta = 1/2, leaving a factor-2
  margin to the communication radius);
- the size inflation caused by the noise.
"""

from __future__ import annotations

from repro.core.udg import part_one_leaders, solve_kmds_udg
from repro.core.verify import is_k_dominating_set
from repro.experiments.base import ExperimentReport, check_scale
from repro.graphs.udg import NoisySensingUDG, random_udg


def run(*, scale: str = "quick", seed: int = 0) -> ExperimentReport:
    check_scale(scale)
    if scale == "quick":
        n, k, n_seeds = 250, 2, 2
        sigmas = (0.0, 0.1, 0.3)
    else:
        n, k, n_seeds = 800, 3, 5
        sigmas = (0.0, 0.05, 0.1, 0.2, 0.3, 0.45)

    rows = []
    final_always_valid = True
    part1_valid_frac_by_sigma = {}
    sizes_by_sigma = {}
    for sigma in sigmas:
        part1_valid = 0
        mean_size = 0.0
        mean_p1 = 0.0
        for s in range(n_seeds):
            base = random_udg(n, density=10.0, seed=seed + 97 * s)
            udg = NoisySensingUDG(base.points, sigma=sigma,
                                  noise_seed=seed + s)
            p1 = part_one_leaders(udg, seed=seed + s)
            if is_k_dominating_set(udg, p1.members, 1, convention="open"):
                part1_valid += 1
            ds = solve_kmds_udg(udg, k=k, seed=seed + s)
            final_always_valid &= is_k_dominating_set(
                udg, ds.members, k, convention="open")
            mean_size += len(ds) / n_seeds
            mean_p1 += len(p1.members) / n_seeds
        part1_valid_frac_by_sigma[sigma] = part1_valid / n_seeds
        sizes_by_sigma[sigma] = mean_size
        rows.append((sigma, round(mean_p1, 1), part1_valid / n_seeds,
                     round(mean_size, 1)))

    baseline = sizes_by_sigma[0.0]
    worst = max(sizes_by_sigma.values())
    inflation_bounded = worst <= 1.5 * baseline + 5

    return ExperimentReport(
        experiment_id="e20",
        title="Imperfect distance sensing (Section 3 assumption relaxed)",
        claim=("Algorithm 3 tolerates multiplicative ranging error: the "
               "final k-fold dominating set stays valid at every noise "
               "level, with bounded size inflation."),
        headers=["sigma", "mean part-1 leaders", "part-1 valid fraction",
                 "mean final |DS|"],
        rows=rows,
        checks={
            "final output valid at every noise level": final_always_valid,
            "noise-free sensing keeps Part I a dominating set":
                part1_valid_frac_by_sigma[0.0] == 1.0,
            "size inflation bounded (<= 1.5x noise-free)": inflation_bounded,
        },
        notes=(f"n={n}, k={k}, {n_seeds} seeds per sigma; noise is a "
               "symmetric per-link multiplicative factor shared by both "
               "endpoints."),
    )
