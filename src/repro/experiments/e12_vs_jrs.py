"""E12 — comparison with the prior distributed k-MDS algorithm
(Jia-Rajaraman-Suel [9], the only previous general-graph upper bound the
paper cites).

Compares the paper's pipeline (2t^2 + O(1) rounds, fixed a priori) against
the LRG-style baseline (O(log n log Delta) rounds, data-dependent) on the
shared graph suite: solution sizes and round counts.  The paper's selling
point is the *fixed, graph-independent* round budget at comparable
quality.
"""

from __future__ import annotations

from repro.baselines.jrs import jrs_kmds
from repro.core.general import recommended_t, solve_kmds_general
from repro.core.verify import is_k_dominating_set
from repro.experiments.base import ExperimentReport, check_scale
from repro.graphs.generators import graph_suite
from repro.graphs.properties import feasible_coverage


def run(*, scale: str = "quick", seed: int = 0) -> ExperimentReport:
    check_scale(scale)
    suite_scale = "small" if scale == "quick" else "medium"
    k_values = (1, 2) if scale == "quick" else (1, 2, 3)
    n_seeds = 3 if scale == "quick" else 8

    rows = []
    both_valid = True
    size_ratios = []
    for name, g in graph_suite(suite_scale, seed=seed):
        t = recommended_t(g)
        for k in k_values:
            coverage = feasible_coverage(g, k)
            ours_sizes, jrs_sizes, jrs_rounds = [], [], []
            our_rounds = 0
            for s in range(n_seeds):
                ours = solve_kmds_general(g, coverage=coverage, t=t,
                                          seed=seed + s)
                both_valid &= is_k_dominating_set(
                    g, ours.members, coverage, convention="closed")
                jrs = jrs_kmds(g, coverage, convention="closed",
                               seed=seed + s)
                both_valid &= is_k_dominating_set(
                    g, jrs.members, coverage, convention="closed")
                ours_sizes.append(ours.size)
                jrs_sizes.append(len(jrs))
                jrs_rounds.append(jrs.stats.rounds)
                our_rounds = ours.stats.rounds
            mean_ours = sum(ours_sizes) / len(ours_sizes)
            mean_jrs = sum(jrs_sizes) / len(jrs_sizes)
            size_ratios.append(mean_ours / max(1.0, mean_jrs))
            rows.append((name, k, t, round(mean_ours, 1), our_rounds,
                         round(mean_jrs, 1),
                         round(sum(jrs_rounds) / len(jrs_rounds), 1)))

    mean_ratio = sum(size_ratios) / len(size_ratios)

    return ExperimentReport(
        experiment_id="e12",
        title="Pipeline vs Jia-Rajaraman-Suel LRG (related work [9])",
        claim=("Comparable solution quality to the prior distributed "
               "algorithm, with a fixed graph-independent round budget."),
        headers=["graph", "k", "t", "|ours| (mean)", "our rounds",
                 "|JRS| (mean)", "JRS rounds (mean)"],
        rows=rows,
        checks={
            "both algorithms always produce valid k-fold dominating sets":
                both_valid,
            "mean size within 2.5x of JRS across the suite":
                mean_ratio <= 2.5,
        },
        notes=(f"t = recommended_t(graph) ~ log2(Delta); mean size ratio "
               f"ours/JRS = {mean_ratio:.2f}; JRS rounds charge "
               "5 per LRG phase."),
    )
