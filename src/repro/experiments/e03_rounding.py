"""E3 — Theorem 4.6: randomized rounding blows the fractional objective up
by at most ``ln(Delta+1) + O(1)`` in expectation, always yields a feasible
integral solution, and takes a constant number of rounds.

Replicated over seeds; includes the REQ-policy ablation from DESIGN.md.
"""

from __future__ import annotations

import math

from repro.core.fractional import fractional_kmds
from repro.core.rounding import REQUEST_POLICIES, randomized_rounding
from repro.core.verify import is_k_dominating_set
from repro.experiments.base import ExperimentReport, check_scale
from repro.graphs.generators import graph_suite
from repro.graphs.properties import feasible_coverage, max_degree


def run(*, scale: str = "quick", seed: int = 0) -> ExperimentReport:
    check_scale(scale)
    suite_scale = "small" if scale == "quick" else "medium"
    k_values = (1, 3) if scale == "quick" else (1, 2, 4)
    n_seeds = 5 if scale == "quick" else 20

    rows = []
    all_feasible = True
    all_constant_rounds = True
    blowup_ok = True
    for name, g in graph_suite(suite_scale, seed=seed):
        delta = max_degree(g)
        log_term = math.log(delta + 1.0)
        for k in k_values:
            coverage = feasible_coverage(g, k)
            frac = fractional_kmds(g, coverage=coverage, t=3,
                                   compute_duals=False)
            for policy in REQUEST_POLICIES:
                sizes = []
                for s in range(n_seeds):
                    ds = randomized_rounding(g, frac.x, coverage=coverage,
                                             policy=policy, seed=seed + s)
                    all_feasible &= is_k_dominating_set(
                        g, ds.members, coverage, convention="closed")
                    all_constant_rounds &= ds.stats.rounds <= 2
                    sizes.append(len(ds))
                mean_size = sum(sizes) / len(sizes)
                blowup = mean_size / frac.objective if frac.objective else 1.0
                # Theorem 4.6's expectation bound, with additive slack for
                # the O(1) term and finite-sample noise.
                bound = log_term + 3.0
                blowup_ok &= blowup <= bound
                rows.append((name, k, policy, round(frac.objective, 2),
                             round(mean_size, 1), round(blowup, 3),
                             round(log_term, 3)))

    return ExperimentReport(
        experiment_id="e3",
        title="Randomized rounding blow-up (Theorem 4.6)",
        claim=("Algorithm 2 rounds a rho-approximate fractional solution "
               "to an integral one of expected ratio rho*ln(Delta+1)+O(1), "
               "in constant time."),
        headers=["graph", "k", "policy", "frac obj", "mean |DS|",
                 "blow-up", "ln(Delta+1)"],
        rows=rows,
        checks={
            "every rounded solution is a feasible k-fold dominating set":
                all_feasible,
            "rounding always completes in <= 2 rounds": all_constant_rounds,
            "mean blow-up within ln(Delta+1) + 3": blowup_ok,
        },
        notes=(f"{n_seeds} seeds per cell; blow-up = mean integral size / "
               "fractional objective; policies are the DESIGN.md ablation."),
    )
