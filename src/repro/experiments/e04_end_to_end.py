"""E4 — end-to-end general-graph pipeline vs baselines.

The composed guarantee (Theorems 4.5 + 4.6): Algorithm 1 + Algorithm 2
yields an ``O(t Delta^{2/t} log Delta)`` expected approximation.  This
experiment compares the pipeline with the centralized greedy (the
quality yardstick), the degree heuristic, and the exact optimum (or LP
bound on larger instances), under the closed convention the LP uses.

Also reports the DESIGN.md convention ablation: the same pipeline output
evaluated as an open-convention solution (always valid, since closed
implies open for uniform k).
"""

from __future__ import annotations

from repro.analysis.ratio import approximation_ratio, best_known_optimum
from repro.baselines.greedy import greedy_kmds
from repro.baselines.heuristics import degree_heuristic_kmds
from repro.core.general import solve_kmds_general
from repro.core.verify import is_k_dominating_set
from repro.experiments.base import ExperimentReport, check_scale
from repro.graphs.generators import graph_suite
from repro.graphs.properties import feasible_coverage


def run(*, scale: str = "quick", seed: int = 0) -> ExperimentReport:
    check_scale(scale)
    suite_scale = "tiny" if scale == "quick" else "small"
    k_values = (1, 2) if scale == "quick" else (1, 2, 3, 4)
    # Past ~40 nodes the exact solver's budget is better spent on the LP
    # bound (it is a valid OPT lower bound, and ratios stay conservative).
    exact_limit = 40

    rows = []
    all_valid = True
    beats_degree = 0
    cells = 0
    ratio_vs_greedy = []
    for name, g in graph_suite(suite_scale, seed=seed):
        for k in k_values:
            coverage = feasible_coverage(g, k)
            pipe = solve_kmds_general(g, coverage=coverage, t=3, seed=seed)
            all_valid &= is_k_dominating_set(
                g, pipe.members, coverage, convention="closed")
            greedy = greedy_kmds(g, coverage, convention="closed")
            degree = degree_heuristic_kmds(g, coverage, convention="closed")
            opt = best_known_optimum(g, coverage, convention="closed",
                                     exact_node_limit=exact_limit)
            cells += 1
            if pipe.size <= len(degree):
                beats_degree += 1
            ratio_vs_greedy.append(pipe.size / max(1, len(greedy)))
            rows.append((
                name, k,
                pipe.size, len(greedy), len(degree),
                round(opt.value, 1), opt.kind,
                round(approximation_ratio(pipe.size, opt), 2),
                round(approximation_ratio(len(greedy), opt), 2),
            ))

    mean_vs_greedy = sum(ratio_vs_greedy) / len(ratio_vs_greedy)

    return ExperimentReport(
        experiment_id="e4",
        title="End-to-end k-MDS vs baselines (general graphs)",
        claim=("The distributed pipeline's solution is a valid k-fold "
               "dominating set whose size is a small factor above the "
               "centralized greedy and the optimum."),
        headers=["graph", "k", "|pipeline|", "|greedy|", "|degree|",
                 "OPT", "OPT kind", "pipe/OPT", "greedy/OPT"],
        rows=rows,
        checks={
            "pipeline output always a valid (closed) k-fold DS": all_valid,
            "pipeline within 3x of centralized greedy on average":
                mean_vs_greedy <= 3.0,
        },
        notes=(f"t=3; pipeline beat or matched the degree heuristic in "
               f"{beats_degree}/{cells} cells; mean pipeline/greedy size "
               f"ratio {mean_vs_greedy:.2f}."),
    )
