"""E5 — Lemma 5.1 + Part II correctness: Algorithm 3 always outputs a
valid k-fold dominating set (Section 1's open convention), across
deployment densities, network sizes, and k.

Also validates the intermediate claim of Lemma 5.1 itself: the Part I
leaders alone form a plain (1-fold) dominating set.
"""

from __future__ import annotations

from repro.core.udg import part_one_leaders, solve_kmds_udg
from repro.core.verify import is_k_dominating_set
from repro.experiments.base import ExperimentReport, check_scale
from repro.graphs.udg import random_udg


def run(*, scale: str = "quick", seed: int = 0) -> ExperimentReport:
    check_scale(scale)
    if scale == "quick":
        sizes = (150, 500)
        densities = (6.0, 14.0)
        k_values = (1, 3)
    else:
        sizes = (150, 500, 1500, 4000)
        densities = (4.0, 8.0, 16.0, 30.0)
        k_values = (1, 2, 3, 5)

    rows = []
    all_valid = True
    part1_valid = True
    for n in sizes:
        for density in densities:
            udg = random_udg(n, density=density, seed=seed + n)
            p1 = part_one_leaders(udg, seed=seed)
            part1_valid &= is_k_dominating_set(udg, p1.members, 1,
                                               convention="open")
            for k in k_values:
                ds = solve_kmds_udg(udg, k=k, seed=seed)
                valid = is_k_dominating_set(udg, ds.members, k,
                                            convention="open")
                all_valid &= valid
                rows.append((n, density, k, len(ds),
                             ds.details["part1_leaders"],
                             ds.details["part2_iterations"],
                             "yes" if valid else "NO"))

    return ExperimentReport(
        experiment_id="e5",
        title="Algorithm 3 correctness on unit disk graphs (Lemma 5.1)",
        claim=("Part I's leaders dominate every node; Part II extends them "
               "to a valid k-fold dominating set for every k."),
        headers=["n", "density", "k", "|DS|", "part-1 leaders",
                 "part-2 iters", "valid"],
        rows=rows,
        checks={
            "Part I alone always a valid dominating set (Lemma 5.1)":
                part1_valid,
            "full output always a valid k-fold dominating set": all_valid,
        },
        notes="density = expected nodes per unit-disk area.",
    )
