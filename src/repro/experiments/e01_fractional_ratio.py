"""E1 — Theorem 4.5 (approximation): Algorithm 1's fractional solution is
within ``t((Delta+1)^{2/t} + (Delta+1)^{1/t})`` of the LP optimum.

For every graph in the suite and every t, solves the fractional k-MDS with
Algorithm 1, computes the exact LP optimum of (PP) with HiGHS, and checks
the measured ratio against the theorem's bound.
"""

from __future__ import annotations

from repro.baselines.lp_opt import lp_optimum
from repro.core.fractional import fractional_kmds, theorem_45_ratio_bound
from repro.experiments.base import ExperimentReport, check_scale
from repro.graphs.generators import graph_suite
from repro.graphs.properties import feasible_coverage, max_degree


def run(*, scale: str = "quick", seed: int = 0) -> ExperimentReport:
    check_scale(scale)
    suite_scale = "small" if scale == "quick" else "medium"
    t_values = (1, 2, 3, 4) if scale == "quick" else (1, 2, 3, 4, 5, 6)
    k_values = (1, 3) if scale == "quick" else (1, 2, 3, 5)

    rows = []
    checks = {}
    all_within = True
    for name, g in graph_suite(suite_scale, seed=seed):
        delta = max_degree(g)
        for k in k_values:
            coverage = feasible_coverage(g, k)
            opt = lp_optimum(g, coverage, convention="closed").objective
            for t in t_values:
                sol = fractional_kmds(g, coverage=coverage, t=t,
                                      compute_duals=False)
                ratio = sol.objective / opt if opt > 0 else 1.0
                bound = theorem_45_ratio_bound(t, delta)
                within = ratio <= bound + 1e-9
                all_within &= within
                rows.append((name, k, t, round(sol.objective, 2),
                             round(opt, 2), round(ratio, 3), round(bound, 1),
                             "yes" if within else "NO"))

    checks["every measured ratio within the Theorem 4.5 bound"] = all_within

    # The trade-off direction: averaged over instances, the largest t
    # should yield a (weakly) better ratio than t = 1.
    by_instance = {}
    for name, k, t, _, _, ratio, _, _ in rows:
        by_instance.setdefault((name, k), {})[t] = ratio
    t_lo, t_hi = min(t_values), max(t_values)
    mean_lo = sum(r[t_lo] for r in by_instance.values()) / len(by_instance)
    mean_hi = sum(r[t_hi] for r in by_instance.values()) / len(by_instance)
    checks["mean ratio at largest t beats mean ratio at t=1"] = \
        mean_hi <= mean_lo + 1e-9

    return ExperimentReport(
        experiment_id="e1",
        title="Fractional approximation ratio vs t (Theorem 4.5)",
        claim=("Algorithm 1 computes a (PP)-feasible fractional solution "
               "within t((Delta+1)^{2/t} + (Delta+1)^{1/t}) of the LP "
               "optimum, in O(t^2) rounds."),
        headers=["graph", "k", "t", "frac obj", "LP opt", "ratio",
                 "thm 4.5 bound", "within"],
        rows=rows,
        checks=checks,
        notes="Ratios are measured against the exact LP optimum (HiGHS).",
    )
