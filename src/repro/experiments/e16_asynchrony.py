"""E16 — asynchronous execution via the alpha synchronizer (Section 3 /
Awerbuch [2]).

"At the cost of higher message complexity, every synchronous message
passing algorithm can be turned into an asynchronous algorithm with the
same time complexity."  Every algorithm is an engine round program, so
running it asynchronously is just ``mode="async"`` on the public entry
point.  We do that for Algorithms 1, 2 and 3 on event-driven networks
with random link delays and measure exactly that trade-off:

- the computed solutions are identical to the synchronous runs (same
  seeds);
- message complexity grows by the ack + safety control overhead
  (``RunStats.control_messages``);
- virtual completion time (``RunStats.virtual_time``) scales linearly
  with the synchronous round count (same time complexity, dilated by the
  mean delay).

Algorithm 1 is additionally run under the beta synchronizer
(``mode="async-beta"``), whose spanning-tree converge-cast trades latency
for fewer control messages.
"""

from __future__ import annotations

from repro.core.fractional import fractional_kmds
from repro.core.rounding import randomized_rounding
from repro.core.udg import solve_kmds_udg
from repro.experiments.base import ExperimentReport, check_scale
from repro.graphs.generators import gnp_graph
from repro.graphs.properties import feasible_coverage
from repro.graphs.udg import random_udg
from repro.simulation.asynchrony import exponential_delays


def run(*, scale: str = "quick", seed: int = 0) -> ExperimentReport:
    check_scale(scale)
    sizes = (40, 80) if scale == "quick" else (40, 80, 160)
    mean_delay = 1.0
    delay = exponential_delays(mean_delay)

    rows = []
    identical = True
    overhead_bounded = True
    time_linear = True

    def record(label, n, ref_stats, astats, same, *, overhead_cap):
        nonlocal identical, overhead_bounded, time_linear
        identical &= same
        total = astats.messages_sent + astats.control_messages
        overhead = total / max(1, ref_stats.messages_sent)
        overhead_bounded &= overhead <= overhead_cap
        time_per_round = astats.virtual_time / max(1, ref_stats.rounds)
        time_linear &= time_per_round <= 30 * mean_delay
        rows.append((label, n, ref_stats.rounds, astats.messages_sent,
                     astats.control_messages, round(overhead, 2),
                     round(time_per_round, 1)))

    for n in sizes:
        # --- Algorithm 1 (alpha and beta synchronizers) ------------------
        g = gnp_graph(n, min(1.0, 6.0 / n), seed=seed)
        cov = feasible_coverage(g, 2)
        ref = fractional_kmds(g, coverage=cov, t=2, mode="message",
                              compute_duals=False, seed=seed)
        sol = fractional_kmds(g, coverage=cov, t=2, mode="async",
                              compute_duals=False, seed=seed, delay=delay)
        same = all(abs(sol.x[v] - ref.x[v]) < 1e-12 for v in g.nodes)
        record("algorithm 1 (alpha)", n, ref.stats, sol.stats, same,
               overhead_cap=4.0)

        beta = fractional_kmds(g, coverage=cov, t=2, mode="async-beta",
                               compute_duals=False, seed=seed, delay=delay)
        same = all(abs(beta.x[v] - ref.x[v]) < 1e-12 for v in g.nodes)
        record("algorithm 1 (beta)", n, ref.stats, beta.stats, same,
               overhead_cap=4.0)

        # --- Algorithm 2 -------------------------------------------------
        ref2 = randomized_rounding(g, ref.x, coverage=cov, mode="message",
                                   seed=seed)
        sol2 = randomized_rounding(g, ref.x, coverage=cov, mode="async",
                                   seed=seed, delay=delay)
        record("algorithm 2 (alpha)", n, ref2.stats, sol2.stats,
               sol2.members == ref2.members, overhead_cap=30.0)

        # --- Algorithm 3 -------------------------------------------------
        udg = random_udg(n, density=9.0, seed=seed + n)
        ref3 = solve_kmds_udg(udg, k=2, mode="message", seed=seed)
        sol3 = solve_kmds_udg(udg, k=2, mode="async", seed=seed, delay=delay)
        record("algorithm 3 (alpha)", n, ref3.stats, sol3.stats,
               sol3.members == ref3.members, overhead_cap=30.0)

    return ExperimentReport(
        experiment_id="e16",
        title="Asynchronous execution under the alpha synchronizer ([2])",
        claim=("Synchronous protocols run unchanged on an asynchronous "
               "network: identical outputs, bounded control-message "
               "overhead, completion time linear in the round count."),
        headers=["protocol", "n", "sync rounds", "payload msgs",
                 "control msgs", "total/sync msgs", "vtime per round"],
        rows=rows,
        checks={
            "asynchronous outputs identical to synchronous": identical,
            "message overhead bounded (acks + safety)": overhead_bounded,
            "virtual time per round bounded (same time complexity)":
                time_linear,
        },
        notes=(f"exponential link delays, mean {mean_delay}; Algorithms 2 "
               "and 3 have higher overhead ratios because safety "
               "announcements are dense while their payload traffic is "
               "sparse."),
    )
