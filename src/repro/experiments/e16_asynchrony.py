"""E16 — asynchronous execution via the alpha synchronizer (Section 3 /
Awerbuch [2]).

"At the cost of higher message complexity, every synchronous message
passing algorithm can be turned into an asynchronous algorithm with the
same time complexity."  We run Algorithms 1 and 3 under the alpha
synchronizer on an event-driven network with random link delays and
measure exactly that trade-off:

- the computed solutions are identical to the synchronous runs (same
  seeds);
- message complexity grows by the ack + safety control overhead;
- virtual completion time scales linearly with the synchronous round
  count (same time complexity, dilated by the mean delay).
"""

from __future__ import annotations

from repro.core.fractional import FractionalNode, fractional_kmds
from repro.core.udg import UDGNode, solve_kmds_udg
from repro.experiments.base import ExperimentReport, check_scale
from repro.graphs.generators import gnp_graph
from repro.graphs.properties import feasible_coverage, max_degree
from repro.graphs.udg import random_udg
from repro.simulation.asynchrony import exponential_delays, run_protocol_async
from repro.simulation.network import SynchronousNetwork


def run(*, scale: str = "quick", seed: int = 0) -> ExperimentReport:
    check_scale(scale)
    sizes = (40, 80) if scale == "quick" else (40, 80, 160)
    mean_delay = 1.0

    rows = []
    identical = True
    overhead_bounded = True
    time_linear = True
    for n in sizes:
        # --- Algorithm 1 -------------------------------------------------
        g = gnp_graph(n, min(1.0, 6.0 / n), seed=seed)
        cov = feasible_coverage(g, 2)
        delta = max_degree(g)
        t = 2
        procs = [FractionalNode(v, cov[v], delta, t, False) for v in g.nodes]
        net = SynchronousNetwork(g, procs, seed=seed)
        astats = run_protocol_async(
            net, delay=exponential_delays(mean_delay), delay_seed=seed)
        x_async = {p.node_id: p.x for p in procs}
        ref = fractional_kmds(g, coverage=cov, t=t, mode="message",
                              compute_duals=False, seed=seed)
        identical &= all(abs(x_async[v] - ref.x[v]) < 1e-12 for v in g.nodes)
        overhead = astats.total_messages / max(1, ref.stats.messages_sent)
        overhead_bounded &= overhead <= 4.0
        time_per_round = astats.virtual_time / max(1, ref.stats.rounds)
        time_linear &= time_per_round <= 30 * mean_delay
        rows.append(("algorithm 1", n, ref.stats.rounds,
                     astats.payload_messages, astats.control_messages,
                     round(overhead, 2), round(time_per_round, 1)))

        # --- Algorithm 3 -------------------------------------------------
        udg = random_udg(n, density=9.0, seed=seed + n)
        procs = [UDGNode(v, 2, n, "random", n + 1) for v in range(n)]
        net = SynchronousNetwork(udg, procs, seed=seed)
        astats = run_protocol_async(
            net, delay=exponential_delays(mean_delay), delay_seed=seed)
        leaders_async = {p.node_id for p in procs if p.leader}
        ref3 = solve_kmds_udg(udg, k=2, mode="message", seed=seed)
        identical &= leaders_async == ref3.members
        overhead = astats.total_messages / max(1, ref3.stats.messages_sent)
        overhead_bounded &= overhead <= 30.0  # sparse payload, dense safety
        time_per_round = astats.virtual_time / max(1, ref3.stats.rounds)
        time_linear &= time_per_round <= 30 * mean_delay
        rows.append(("algorithm 3", n, ref3.stats.rounds,
                     astats.payload_messages, astats.control_messages,
                     round(overhead, 2), round(time_per_round, 1)))

    return ExperimentReport(
        experiment_id="e16",
        title="Asynchronous execution under the alpha synchronizer ([2])",
        claim=("Synchronous protocols run unchanged on an asynchronous "
               "network: identical outputs, bounded control-message "
               "overhead, completion time linear in the round count."),
        headers=["protocol", "n", "sync rounds", "payload msgs",
                 "control msgs", "total/sync msgs", "vtime per round"],
        rows=rows,
        checks={
            "asynchronous outputs identical to synchronous": identical,
            "message overhead bounded (acks + safety)": overhead_bounded,
            "virtual time per round bounded (same time complexity)":
                time_linear,
        },
        notes=(f"exponential link delays, mean {mean_delay}; Algorithm 3's "
               "overhead ratio is higher because safety announcements are "
               "dense while its payload traffic is sparse."),
    )
