"""Dependency-free SVG rendering of deployments and experiment series.

Visual inspection is the fastest sanity check for geometric clustering:
are the dominators spread, is every client inside some dominator's disk,
how does the active set shrink per round?  This module renders:

- :func:`render_deployment_svg` — a sensor deployment with its radio
  edges, dominators highlighted, and optional coverage disks;
- :func:`render_series_svg` — a simple polyline chart (e.g. active nodes
  per round, survival curves).

Pure string generation — no plotting dependencies — so it runs anywhere
the library runs; output opens in any browser.
"""

from __future__ import annotations

import html
from typing import Dict, Iterable, Optional, Sequence

from repro.errors import GraphError
from repro.graphs.udg import UnitDiskGraph

_STYLE = {
    "background": "#ffffff",
    "edge": "#d0d7de",
    "node": "#57606a",
    "dominator": "#cf222e",
    "coverage": "#cf222e",
    "axis": "#57606a",
    "series": ("#0969da", "#cf222e", "#1a7f37", "#9a6700", "#8250df"),
}


def _svg_header(width: float, height: float, title: str) -> list:
    return [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0f}" '
        f'height="{height:.0f}" viewBox="0 0 {width:.0f} {height:.0f}">',
        f"<title>{html.escape(title)}</title>",
        f'<rect width="100%" height="100%" fill="{_STYLE["background"]}"/>',
    ]


def render_deployment_svg(udg: UnitDiskGraph,
                          dominators: Optional[Iterable[int]] = None, *,
                          show_edges: bool = True,
                          show_coverage: bool = False,
                          scale: float = 60.0,
                          title: str = "sensor deployment") -> str:
    """Render a unit disk graph (optionally with a dominating set).

    Parameters
    ----------
    udg:
        The deployment to draw.
    dominators:
        Node indices to highlight (drawn larger, in red).
    show_edges:
        Draw the radio links.
    show_coverage:
        Draw each dominator's communication disk (radius = UDG radius).
    scale:
        Pixels per distance unit.
    title:
        SVG title element.
    """
    if scale <= 0:
        raise GraphError(f"scale must be positive, got {scale}")
    pts = udg.points
    dom = set(dominators) if dominators is not None else set()
    unknown = dom - set(range(udg.n))
    if unknown:
        raise GraphError(
            f"dominators contain unknown node(s), e.g. {next(iter(unknown))}"
        )

    pad = udg.radius if show_coverage else 0.3
    if len(pts):
        min_x, min_y = pts.min(axis=0) - pad
        max_x, max_y = pts.max(axis=0) + pad
    else:
        min_x = min_y = 0.0
        max_x = max_y = 1.0
    width = (max_x - min_x) * scale
    height = (max_y - min_y) * scale

    def sx(x: float) -> float:
        return (x - min_x) * scale

    def sy(y: float) -> float:
        return height - (y - min_y) * scale  # flip: SVG y grows downward

    parts = _svg_header(width, height, title)
    if show_edges:
        parts.append(f'<g stroke="{_STYLE["edge"]}" stroke-width="1">')
        for u, v in udg.nx.edges:
            parts.append(
                f'<line x1="{sx(pts[u][0]):.1f}" y1="{sy(pts[u][1]):.1f}" '
                f'x2="{sx(pts[v][0]):.1f}" y2="{sy(pts[v][1]):.1f}"/>')
        parts.append("</g>")
    if show_coverage and dom:
        parts.append(
            f'<g fill="{_STYLE["coverage"]}" fill-opacity="0.06" '
            f'stroke="{_STYLE["coverage"]}" stroke-opacity="0.25">')
        for v in sorted(dom):
            parts.append(
                f'<circle cx="{sx(pts[v][0]):.1f}" cy="{sy(pts[v][1]):.1f}" '
                f'r="{udg.radius * scale:.1f}"/>')
        parts.append("</g>")
    parts.append(f'<g fill="{_STYLE["node"]}">')
    for v in range(udg.n):
        if v not in dom:
            parts.append(
                f'<circle cx="{sx(pts[v][0]):.1f}" cy="{sy(pts[v][1]):.1f}" '
                'r="2.5"/>')
    parts.append("</g>")
    parts.append(f'<g fill="{_STYLE["dominator"]}">')
    for v in sorted(dom):
        parts.append(
            f'<circle cx="{sx(pts[v][0]):.1f}" cy="{sy(pts[v][1]):.1f}" '
            'r="4.5"/>')
    parts.append("</g>")
    parts.append("</svg>")
    return "\n".join(parts)


def render_series_svg(series: Dict[str, Sequence[float]], *,
                      width: float = 640.0, height: float = 360.0,
                      x_label: str = "", y_label: str = "",
                      title: str = "series") -> str:
    """Render named numeric series as polylines with a legend.

    Parameters
    ----------
    series:
        Mapping label -> y-values (x is the index 0..len-1).
    width / height:
        Canvas size in pixels.
    x_label / y_label / title:
        Annotations.
    """
    if not series:
        raise GraphError("at least one series is required")
    for label, ys in series.items():
        if len(ys) == 0:
            raise GraphError(f"series {label!r} is empty")

    margin = 50.0
    plot_w = width - 2 * margin
    plot_h = height - 2 * margin
    max_len = max(len(ys) for ys in series.values())
    y_min = min(min(ys) for ys in series.values())
    y_max = max(max(ys) for ys in series.values())
    if y_max == y_min:
        y_max = y_min + 1.0

    def px(i: int) -> float:
        return margin + (i / max(1, max_len - 1)) * plot_w

    def py(y: float) -> float:
        return margin + (1.0 - (y - y_min) / (y_max - y_min)) * plot_h

    parts = _svg_header(width, height, title)
    # Axes.
    parts.append(
        f'<g stroke="{_STYLE["axis"]}" stroke-width="1">'
        f'<line x1="{margin}" y1="{height - margin}" x2="{width - margin}" '
        f'y2="{height - margin}"/>'
        f'<line x1="{margin}" y1="{margin}" x2="{margin}" '
        f'y2="{height - margin}"/></g>')
    parts.append(
        f'<text x="{width / 2:.0f}" y="{height - 10:.0f}" '
        f'text-anchor="middle" font-size="12" fill="{_STYLE["axis"]}">'
        f'{html.escape(x_label)}</text>')
    parts.append(
        f'<text x="14" y="{height / 2:.0f}" text-anchor="middle" '
        f'font-size="12" fill="{_STYLE["axis"]}" '
        f'transform="rotate(-90 14 {height / 2:.0f})">'
        f'{html.escape(y_label)}</text>')
    parts.append(
        f'<text x="{margin}" y="{margin - 10:.0f}" font-size="10" '
        f'fill="{_STYLE["axis"]}">{y_max:g}</text>')
    parts.append(
        f'<text x="{margin}" y="{height - margin + 14:.0f}" font-size="10" '
        f'fill="{_STYLE["axis"]}">{y_min:g}</text>')

    for idx, (label, ys) in enumerate(series.items()):
        color = _STYLE["series"][idx % len(_STYLE["series"])]
        points = " ".join(f"{px(i):.1f},{py(y):.1f}"
                          for i, y in enumerate(ys))
        parts.append(
            f'<polyline fill="none" stroke="{color}" stroke-width="2" '
            f'points="{points}"/>')
        ly = margin + 16 * idx
        parts.append(
            f'<line x1="{width - margin - 120:.0f}" y1="{ly:.0f}" '
            f'x2="{width - margin - 100:.0f}" y2="{ly:.0f}" '
            f'stroke="{color}" stroke-width="2"/>')
        parts.append(
            f'<text x="{width - margin - 94:.0f}" y="{ly + 4:.0f}" '
            f'font-size="11" fill="{_STYLE["axis"]}">'
            f'{html.escape(str(label))}</text>')
    parts.append("</svg>")
    return "\n".join(parts)
