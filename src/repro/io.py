"""Persistence: save and load deployments, clusterings, and results.

Long-running experiments want reproducible artifacts: the exact
deployment a clustering was computed for, the dominating set itself, and
the accounting that came with it.  Everything serializes to plain JSON —
human-diffable, dependency-free, stable across library versions (a
``format`` tag is checked on load).
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, Union

from repro.errors import GraphError
from repro.graphs.udg import UnitDiskGraph
from repro.types import DominatingSet, RunStats

FORMAT_UDG = "repro/udg/v1"
FORMAT_DS = "repro/dominating-set/v1"

PathLike = Union[str, pathlib.Path]


def udg_to_dict(udg: UnitDiskGraph) -> Dict:
    """JSON-ready representation of a unit disk graph (points + radius —
    the edges are recomputed on load, which also re-validates them)."""
    return {
        "format": FORMAT_UDG,
        "radius": udg.radius,
        "points": [[float(x), float(y)] for x, y in udg.points],
    }


def udg_from_dict(data: Dict) -> UnitDiskGraph:
    """Inverse of :func:`udg_to_dict`."""
    if data.get("format") != FORMAT_UDG:
        raise GraphError(
            f"not a serialized UnitDiskGraph (format={data.get('format')!r})"
        )
    return UnitDiskGraph(data["points"], radius=float(data["radius"]))


def save_udg(udg: UnitDiskGraph, path: PathLike) -> None:
    """Write a deployment to a JSON file."""
    pathlib.Path(path).write_text(json.dumps(udg_to_dict(udg)))


def load_udg(path: PathLike) -> UnitDiskGraph:
    """Read a deployment from a JSON file."""
    return udg_from_dict(json.loads(pathlib.Path(path).read_text()))


def _stats_to_dict(stats: RunStats) -> Dict:
    return {
        "rounds": stats.rounds,
        "messages_sent": stats.messages_sent,
        "bits_sent": stats.bits_sent,
        "max_message_bits": stats.max_message_bits,
    }


def _stats_from_dict(data: Dict) -> RunStats:
    return RunStats(
        rounds=int(data.get("rounds", 0)),
        messages_sent=int(data.get("messages_sent", 0)),
        bits_sent=int(data.get("bits_sent", 0)),
        max_message_bits=int(data.get("max_message_bits", 0)),
    )


def dominating_set_to_dict(ds: DominatingSet) -> Dict:
    """JSON-ready representation of a dominating set and its accounting.

    Node ids must be JSON-serializable (ints/strings — true for every
    graph this library generates); ``details`` entries that do not
    serialize are dropped with their keys preserved under
    ``"details_skipped"``.
    """
    details = {}
    skipped = []
    for key, value in ds.details.items():
        try:
            json.dumps(value)
            details[key] = value
        except (TypeError, ValueError):
            skipped.append(key)
    out = {
        "format": FORMAT_DS,
        "members": sorted(ds.members, key=repr),
        "stats": _stats_to_dict(ds.stats),
        "details": details,
    }
    if skipped:
        out["details_skipped"] = skipped
    return out


def dominating_set_from_dict(data: Dict) -> DominatingSet:
    """Inverse of :func:`dominating_set_to_dict`."""
    if data.get("format") != FORMAT_DS:
        raise GraphError(
            f"not a serialized DominatingSet (format={data.get('format')!r})"
        )
    return DominatingSet(
        members=set(data["members"]),
        stats=_stats_from_dict(data.get("stats", {})),
        details=dict(data.get("details", {})),
    )


def save_dominating_set(ds: DominatingSet, path: PathLike) -> None:
    """Write a dominating set to a JSON file."""
    pathlib.Path(path).write_text(json.dumps(dominating_set_to_dict(ds)))


def load_dominating_set(path: PathLike) -> DominatingSet:
    """Read a dominating set from a JSON file."""
    return dominating_set_from_dict(json.loads(pathlib.Path(path).read_text()))
