"""End-to-end k-MDS for general graphs: Algorithm 1 then Algorithm 2.

This is the paper's headline general-graph result: in ``O(t^2)`` rounds and
with ``O(log n)``-bit messages, compute a k-fold dominating set whose
expected size is ``O(t * Delta^{2/t} * log Delta)`` times optimal
(Theorem 4.5 composed with Theorem 4.6).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.fractional import fractional_kmds, theorem_45_ratio_bound
from repro.core.rounding import randomized_rounding
from repro.graphs.properties import as_nx, max_degree
from repro.types import CoverageMap, DominatingSet, FractionalSolution, RunStats


@dataclass
class KMDSResult:
    """Result of the general-graph pipeline.

    Carries the final dominating set, the intermediate fractional solution,
    and combined round/message accounting.
    """

    dominating_set: DominatingSet
    fractional: FractionalSolution
    stats: RunStats = field(default_factory=RunStats)

    @property
    def members(self) -> set:
        return self.dominating_set.members

    @property
    def size(self) -> int:
        return len(self.dominating_set.members)


def expected_overall_ratio_bound(t: int, delta: int) -> float:
    """The composed guarantee: Theorem 4.5's fractional ratio times
    Theorem 4.6's rounding blow-up ``ln(Delta+1)`` (plus O(1), omitted)."""
    return theorem_45_ratio_bound(t, delta) * math.log(delta + 1.0 + 1e-12)


def solve_kmds_general(graph, k: int = 1, *,
                       coverage: CoverageMap | None = None,
                       t: int = 3,
                       mode: str = "direct",
                       rounding_policy: str = "random",
                       compute_duals: bool = False,
                       seed: int | None = None) -> KMDSResult:
    """Compute a k-fold dominating set of a general graph (Sections 4.1-4.2).

    Parameters
    ----------
    graph:
        The network graph.
    k / coverage:
        Uniform or per-node coverage requirements (closed-neighborhood
        convention, as in the LP (PP)).
    t:
        Trade-off parameter; ``t = O(log Delta)`` gives the classic
        ``O(log Delta)``-ish fractional quality in ``O(log^2 Delta)`` rounds
        (see the Remark after Theorem 4.5).
    mode:
        ``"direct"`` (fast central simulation) or ``"message"`` (run on the
        synchronous message-passing simulator, with full accounting).
    rounding_policy:
        REQ target policy of Algorithm 2.
    compute_duals:
        Carry the dual bookkeeping through Algorithm 1 (analysis only).
    seed:
        Root seed for the rounding randomness (Algorithm 1 is
        deterministic).

    Returns
    -------
    KMDSResult
        The integral solution, the fractional intermediate, and combined
        accounting (Algorithm 1 rounds + Algorithm 2 rounds).
    """
    g = as_nx(graph)
    frac = fractional_kmds(g, k, coverage=coverage, t=t, mode=mode,
                           compute_duals=compute_duals, seed=seed)
    ds = randomized_rounding(g, frac.x, k, coverage=coverage,
                             policy=rounding_policy, mode=mode, seed=seed)
    stats = RunStats()
    stats.absorb(frac.stats)
    stats.absorb(ds.stats)
    ds.details["fractional_objective"] = frac.objective
    ds.details["t"] = t
    return KMDSResult(dominating_set=ds, fractional=frac, stats=stats)


def recommended_t(graph) -> int:
    """The Remark's suggestion ``t = O(log Delta)``: returns
    ``max(1, ceil(log2(Delta + 2)))`` for the given graph."""
    delta = max_degree(graph)
    return max(1, math.ceil(math.log2(delta + 2)))
