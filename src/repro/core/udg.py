"""Algorithm 3 — fault-tolerant clustering in unit disk graphs (Section 5).

Part I (the Gao-et-al.-style sparsification): ``log_xi(log n)`` rounds
(``xi = 3/2``) of local leader election.  Every active node draws a fresh
random identifier from ``[1, n^4]`` each round, elects the highest
identifier among active nodes within the current sensing radius ``theta``
(possibly itself), and stays active iff somebody elected it.  ``theta``
doubles every round, ending at 1/2, so the surviving "leaders" form a
plain dominating set of expected O(1) density per unit disk (Lemma 5.5).

Part II: leaders repeatedly *adopt* deficient neighbors — non-leader nodes
with fewer than ``k`` leaders in their closed neighborhood — promoting up
to ``k`` of them per iteration, until nobody is deficient.  The result is a
k-fold dominating set (Section 1's open-neighborhood convention: members of
the set are exempt) of expected size O(OPT) (Theorem 5.7).

Interpretive notes (documented in DESIGN.md):

- The paper's analysis uses ``theta_i = 2^{i-1} / (log n)^{1/log xi}``
  (which makes the final radius exactly 1/2); Algorithm 3's line 3 carries
  an extra factor 1/2 that would end at radius 1/4.  We follow the
  analysis.
- Line 18's ``U(v) := {u in N_v | c(v) < k}`` is read as
  ``{u in N_v | c(u) < k}`` with already-promoted nodes excluded, the only
  reading consistent with the proofs of Lemmas 5.6 / Theorem 5.7 (selected
  nodes must be deficient, and promotion of a deficient node must make
  progress).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Set

import numpy as np

from repro.engine import (Instrumentation, RoundProgram, execute,
                          execute_batch, validate_seed)
from repro.engine import kernels
from repro.engine.artifacts import graph_artifacts
from repro.errors import GeometryError, GraphError
from repro.graphs.udg import UnitDiskGraph
from repro.simulation.messages import Message
from repro.simulation.node import NodeProcess
from repro.simulation.rng import spawn_node_rngs
from repro.simulation.vecrng import node_stream_pool, replica_node_streams
from repro.types import DominatingSet, NodeId, RunStats

#: The paper's base xi = 3/2 for the doubling schedule.
XI = 1.5

SELECTION_POLICIES = ("random", "by-id")


def part_one_round_count(n: int) -> int:
    """Number of Part I rounds, ``ceil(log_xi(log2 n))`` (at least 1)."""
    if n <= 2:
        return 1
    return max(1, math.ceil(math.log(math.log2(n), XI)))


def theta_schedule(n: int) -> List[float]:
    """The sensing radii for Part I's ``R = part_one_round_count(n)``
    rounds: a doubling schedule anchored to end at exactly 1/2,
    ``theta_i = 0.5 * 2^{i-R}``.

    The paper's analysis uses ``theta_i = 2^{i-1} / (log2 n)^{1/log2 xi}``
    with a *real-valued* round count ``log_xi log n``, which ends at
    exactly 1/2.  With the integer ceiling the raw formula can end
    anywhere in [1/2, 1), which breaks the coverage argument of Lemma 5.1
    (a passive node is covered within ``2 * theta_R``, which must not
    exceed the communication radius 1).  Anchoring the doubling at
    ``theta_R = 1/2`` preserves both the doubling structure the induction
    needs and the final radius the coverage proof needs; ``theta_1``
    matches the paper's value up to the rounding of R.
    """
    rounds = part_one_round_count(n)
    return [0.5 * 2.0 ** (i - rounds) for i in range(1, rounds + 1)]


def _id_space(n: int) -> int:
    """Size of the random-identifier space, the paper's ``n^4``."""
    return max(2, n) ** 4


#: numpy's integer sampler is bounded by int64; cap the *sampled* space
#: there (collisions stay astronomically unlikely — the cap exceeds n^2
#: for any n below two billion) while message-size accounting still
#: charges the paper's full n^4 space.
_MAX_SAMPLED_ID = 2 ** 62


def _draw_id(rng, space: int) -> int:
    """Draw one random identifier from [1, space] (int64-safe)."""
    return int(rng.integers(1, min(space, _MAX_SAMPLED_ID) + 1))


def _pick(rng: np.random.Generator, candidates: List[NodeId], need: int,
          policy: str) -> List[NodeId]:
    """Select ``need`` adoption targets from ``candidates`` (sorted)."""
    if need >= len(candidates):
        return list(candidates)
    if policy == "random":
        idx = rng.choice(len(candidates), size=need, replace=False)
        return [candidates[i] for i in sorted(idx.tolist())]
    if policy == "by-id":
        return candidates[:need]
    raise GraphError(
        f"unknown selection policy {policy!r}; expected one of {SELECTION_POLICIES}"
    )


def _as_udg(graph) -> UnitDiskGraph:
    if isinstance(graph, UnitDiskGraph):
        return graph
    raise GeometryError(
        "the UDG algorithm requires a UnitDiskGraph (node coordinates and "
        "distance sensing); build one with repro.graphs.random_udg or "
        "udg_from_points"
    )


# ======================================================================
# Direct mode — per-node reference implementation
#
# Kept verbatim-faithful to the paper's per-node formulation: it is the
# bit-exactness oracle the vectorized kernel path below is pinned
# against (``execute(..., reference_direct=True)`` and the
# kernel-vs-reference suite in tests/test_mode_equivalence.py).
# ======================================================================

def _part_one_direct(udg: UnitDiskGraph, rngs, details: dict) -> Set[int]:
    n = udg.n
    active: Set[int] = set(range(n))
    schedule = theta_schedule(n)
    id_hi = _id_space(n)
    details["theta_per_round"] = list(schedule)
    details["active_per_round"] = [n]

    for theta in schedule:
        ids = {v: _draw_id(rngs[v], id_hi) for v in sorted(active)}
        elected: Set[int] = set()
        for v in active:
            best = v
            best_key = (ids[v], v)
            for w in udg.neighbors_within(v, theta):
                if w in active:
                    key = (ids[w], w)
                    if key > best_key:
                        best_key = key
                        best = w
            elected.add(best)
        active &= elected
        details["active_per_round"].append(len(active))
    return active


def _part_two_direct(udg: UnitDiskGraph, leaders: Set[int], k: int,
                     rngs, policy: str, details: dict) -> Set[int]:
    n = udg.n
    adj = [sorted(udg.nx.neighbors(v)) for v in range(n)]
    coverage = [0] * n
    leader_flag = [False] * n
    for v in leaders:
        leader_flag[v] = True
    for v in leaders:
        coverage[v] += 1
        for w in adj[v]:
            coverage[w] += 1

    # The deficient frontier, maintained incrementally across promotions:
    # each while-iteration costs O(frontier ball), not O(n).  Only nodes
    # in a promoted node's closed neighborhood can change deficiency.
    deficient: Set[int] = {u for u in range(n)
                           if not leader_flag[u] and coverage[u] < k}

    iterations = 0
    adopted_total = 0
    while deficient:
        iterations += 1
        picks: Set[int] = set()
        # Leaders with at least one deficient closed neighbor are exactly
        # the closed-ball leaders of the frontier; leaders outside it had
        # empty candidate lists (no picks, no RNG draws), so skipping
        # them is consumption- and output-identical.
        active_leaders = sorted({w for u in deficient
                                 for w in [u] + adj[u] if leader_flag[w]})
        for v in active_leaders:
            candidates = [u for u in [v] + adj[v] if u in deficient]
            picks.update(_pick(rngs[v], candidates, k, policy))
        if not picks:
            # No deficient node has a leader neighbor -- impossible after
            # Part I (Lemma 5.1) on a true UDG, but guard against livelock
            # on degenerate inputs by promoting the deficient nodes
            # themselves.
            picks = set(deficient)
        for u in picks:
            if not leader_flag[u]:
                leader_flag[u] = True
                adopted_total += 1
                coverage[u] += 1
                deficient.discard(u)  # members are exempt (open conv.)
                for w in adj[u]:
                    coverage[w] += 1
                    if w in deficient and coverage[w] >= k:
                        deficient.discard(w)

    details["part2_iterations"] = iterations
    details["part2_adopted"] = adopted_total
    return {v for v in range(n) if leader_flag[v]}


# ======================================================================
# Direct mode — vectorized kernel implementation
#
# Same algorithm on the CSR kernel layer (repro.engine.kernels): the
# election is two scatter-max passes over the flattened distance CSR,
# adoption coverage is one matvec plus scatter-add frontier updates.
# Per-node RNG draws happen in exactly the reference order, so members,
# details, and RunStats are bit-identical to the functions above.
# ======================================================================

def _part_one_kernel(udg: UnitDiskGraph, pool, details: dict) -> Set[int]:
    n = udg.n
    schedule = theta_schedule(n)
    id_hi = min(_id_space(n), _MAX_SAMPLED_ID)
    details["theta_per_round"] = list(schedule)
    details["active_per_round"] = [n]

    _, src, nbr, dist = kernels.udg_distance_csr(udg)
    active = np.ones(n, dtype=bool)
    ids = np.zeros(n, dtype=np.int64)
    for theta in schedule:
        # One identifier per active node from the node's own stream
        # (lane == node id here); the batched draw consumes each stream
        # exactly as the reference's ascending per-node loop does.
        lanes = np.nonzero(active)[0]
        ids[lanes] = pool.draw_ints(lanes, id_hi)
        active = kernels.elect_round(src, nbr, dist <= theta, active, ids)
        details["active_per_round"].append(int(active.sum()))
    return set(np.nonzero(active)[0].tolist())


def _part_two_kernel(art, leaders: Set[int], k: int, pool, policy: str,
                     details: dict) -> Set[int]:
    n = art.n
    leader = np.zeros(n, dtype=bool)
    if leaders:
        leader[sorted(leaders)] = True
    coverage = kernels.member_counts(art, indicator=leader,
                                     convention="closed")
    deficient = (~leader) & (coverage < k)
    closed = art.closed_nbrs

    iterations = 0
    adopted_total = 0
    while deficient.any():
        iterations += 1
        frontier = np.nonzero(deficient)[0]
        # Leaders adjacent to the frontier (closed balls are symmetric:
        # a leader sees a deficient candidate iff it sits in one of the
        # frontier's closed balls) — everyone else has no candidates.
        ball = np.unique(np.concatenate([closed[u] for u in frontier]))
        actors = ball[leader[ball]]
        picks = np.zeros(n, dtype=bool)
        for v in actors.tolist():
            cand = closed[v][deficient[closed[v]]]
            if cand.size <= k:
                picks[cand] = True
            else:
                picks[_pick(pool.generator(v), cand.tolist(), k,
                            policy)] = True
        if not picks.any():
            # Degenerate-input livelock guard (see reference).
            picks = deficient.copy()
        newly = np.nonzero(picks & ~leader)[0]
        leader[newly] = True
        adopted_total += int(newly.size)
        touched = kernels.scatter_cover(coverage, art, newly)
        deficient[touched] = (~leader[touched]) & (coverage[touched] < k)

    details["part2_iterations"] = iterations
    details["part2_adopted"] = adopted_total
    return set(np.nonzero(leader)[0].tolist())


# ======================================================================
# Direct mode — replica-batched kernel implementation
#
# The same two kernel phases generalized so a lane is a (replica, node)
# pair: one identifier draw and one election reduction advance the
# whole Monte Carlo sweep, and adoption coverage is one (R, n) mat-mat.
# Each replica's RNG streams and update order are exactly the
# single-replica kernel's, so per-replica results are bit-identical to
# the sequential per-seed loop (pinned by test_mode_equivalence.py).
# ======================================================================

def _part_one_kernel_batch(udg: UnitDiskGraph, streams,
                           details_list: List[dict]) -> np.ndarray:
    n = udg.n
    R = len(details_list)
    schedule = theta_schedule(n)
    id_hi = min(_id_space(n), _MAX_SAMPLED_ID)
    for details in details_list:
        details["theta_per_round"] = list(schedule)
        details["active_per_round"] = [n]

    indptr, src, nbr, dist = kernels.udg_distance_csr(udg)
    active = np.ones((R, n), dtype=bool)
    ids = np.zeros((R, n), dtype=np.int64)
    flat_ids = ids.reshape(-1)
    for theta in schedule:
        within = dist <= theta
        # A node's identifier this round can only be *read* if it has a
        # within-neighbor to compare against (own election) or is some
        # other node's within-candidate.  Every other draw must still
        # happen — stream positions are part of the bit-exactness
        # contract — but its value is provably unread, so the draw
        # skips materializing it (vecrng's ``need`` mask).  In the
        # early doubling rounds that is almost every lane.
        within_csr = kernels.compress_within(indptr, nbr, within)
        need_node = within_csr[0] > 0
        need_node |= np.bincount(within_csr[2], minlength=n).astype(bool)
        # One identifier per active (replica, node) stream; ascending
        # flat-lane order consumes each stream exactly as the replica's
        # own single-run batched draw would.  Drawing straight into the
        # persistent ids plane (``out=``) skips an extract/scatter pair
        # per round; lanes outside mask & need end up stale or
        # unspecified — provably unread this round, and refreshed
        # before any round that does read them.
        streams.draw_ints_masked(active.reshape(-1), id_hi,
                                 need=np.tile(need_node, R), out=flat_ids)
        active = kernels.elect_round_batch(indptr, src, nbr, within,
                                           active, ids,
                                           within_csr=within_csr)
        counts = active.sum(axis=1)
        for r, details in enumerate(details_list):
            details["active_per_round"].append(int(counts[r]))
    return active


def _part_two_kernel_batch(art, leader: np.ndarray, k: int, streams,
                           policy: str, details_list: List[dict]) -> None:
    """Adopt into ``leader`` (an (R, n) boolean plane, mutated in
    place) until no replica has a deficient node."""
    R, n = leader.shape
    coverage = kernels.member_counts_batch(art, indicators=leader,
                                           convention="closed")
    deficient = (~leader) & (coverage < k)
    closed = art.closed_nbrs

    iterations = np.zeros(R, dtype=np.int64)
    adopted = np.zeros(R, dtype=np.int64)
    adj = art.closed_adjacency()
    ai, ax = adj.indptr, adj.indices
    live = np.nonzero(deficient.any(axis=1))[0]
    while live.size:
        iterations[live] += 1
        # A leader acts iff some deficient node sits in its closed ball
        # (= it sits in a frontier ball, by ball symmetry).  Deficient
        # nodes are few, so expanding *their* closed balls over the CSR
        # touches O(sum deg(deficient)) pairs — far less than a dense
        # mat-mat over every live replica — and each (deficient d,
        # ball member u) pair serves three reads: u's candidate count,
        # u's actor status, and (when u adopts wholesale) d's pick.
        rj, dd = np.nonzero(deficient[live])
        deg = (ai[dd + 1] - ai[dd]).astype(np.int64)
        ends = np.cumsum(deg)
        ee = np.repeat(ai[dd] - (ends - deg), deg) \
            + np.arange(int(ends[-1]) if ends.size else 0)
        rep_pair = np.repeat(rj, deg)
        flat = rep_pair * n + ax[ee]
        cnt = np.bincount(flat, minlength=live.size * n) \
            .reshape(live.size, n)
        actor = leader[live] & (cnt > 0)
        # Actors with at most k candidates adopt them all: one boolean
        # scatter over the expansion pairs replaces the per-actor loop
        # (the overwhelmingly common case).
        small = actor & (cnt <= k)
        picks = np.zeros((live.size, n), dtype=bool)
        hit = small.reshape(-1)[flat]
        picks[rep_pair[hit], np.repeat(dd, deg)[hit]] = True
        # Actors with more than k candidates sample with their own
        # (replica, node) stream — the only remaining per-actor work.
        for j, v in zip(*(w.tolist() for w in np.nonzero(actor & (cnt > k)))):
            r = int(live[j])
            cand = closed[v][deficient[r, closed[v]]]
            picks[j, _pick(streams.generator(streams.flat_lane(r, v)),
                           cand.tolist(), k, policy)] = True
        # Degenerate-input livelock guard (see reference).
        empty = ~picks.any(axis=1)
        if empty.any():
            picks[empty] = deficient[live[empty]]
        nr, nv = np.nonzero(picks & ~leader[live])
        reps = live[nr]
        leader[reps, nv] = True
        adopted[live] += np.bincount(nr, minlength=live.size)
        rr, touched = kernels.scatter_cover_batch(coverage, art, reps, nv)
        deficient[rr, touched] = (~leader[rr, touched]) \
            & (coverage[rr, touched] < k)
        live = live[deficient[live].any(axis=1)]

    for r, details in enumerate(details_list):
        details["part2_iterations"] = int(iterations[r])
        details["part2_adopted"] = int(adopted[r])


# ======================================================================
# Message-passing mode
# ======================================================================

@dataclass(frozen=True)
class ElectionMsg(Message):
    """Part I line 6: ``send (a(v), ID_i(v))`` within the sensing radius."""
    ident: int = 0
    SCHEMA = (("ident", "id"),)


@dataclass(frozen=True)
class ElectMsg(Message):
    """Part I line 9: the election token M."""
    SCHEMA = ()


@dataclass(frozen=True)
class LeaderStatusMsg(Message):
    """Part II: broadcast of the sender's leader flag."""
    leader: bool = False
    SCHEMA = (("leader", "flag"),)


@dataclass(frozen=True)
class DeficitMsg(Message):
    """Part II: broadcast of the sender's deficiency flag."""
    deficient: bool = False
    SCHEMA = (("deficient", "flag"),)


@dataclass(frozen=True)
class AdoptMsg(Message):
    """Part II line 21: ``inform u_i to set leader(u_i) := true``."""
    SCHEMA = ()


class UDGNode(NodeProcess):
    """Per-node process implementing Algorithm 3 (Parts I and II)."""

    def __init__(self, node_id: int, k: int, n: int, policy: str,
                 part2_sync_iterations: int):
        super().__init__(node_id)
        self.k = k
        self.n = n
        self.policy = policy
        self.part2_sync_iterations = part2_sync_iterations
        self.leader = False

    def run(self, ctx) -> Iterator[None]:
        me = self.node_id
        schedule = theta_schedule(self.n)
        id_hi = _id_space(self.n)
        active = True

        # ----- Part I: doubling-radius leader election ------------------
        # Every round costs exactly two yields for every node (active or
        # passive) so the whole network stays in lockstep.
        for theta in schedule:
            if active:
                my_id = _draw_id(ctx.rng, id_hi)
                ctx.send_within(theta, ElectionMsg(ident=my_id))
            inbox = yield
            elected_self = False
            if active:
                best, best_key = me, (my_id, me)
                for src, msg in inbox:
                    if isinstance(msg, ElectionMsg):
                        key = (msg.ident, src)
                        if key > best_key:
                            best_key = key
                            best = src
                elected_self = best == me
                if not elected_self:
                    ctx.send(best, ElectMsg())
            inbox = yield
            if active:
                got_token = any(isinstance(m, ElectMsg) for _, m in inbox)
                if not (got_token or elected_self):
                    active = False
        self.leader = active

        # ----- Part II: leaders adopt deficient neighbors ----------------
        leader_of: Dict[int, bool] = {}
        deficient_of: Dict[int, bool] = {}

        ctx.broadcast(LeaderStatusMsg(leader=self.leader))
        inbox = yield
        for src, msg in inbox:
            if isinstance(msg, LeaderStatusMsg):
                leader_of[src] = msg.leader
        coverage = (1 if self.leader else 0) + sum(
            1 for w in ctx.neighbors if leader_of.get(w, False))
        my_deficient = (not self.leader) and coverage < self.k
        ctx.broadcast(DeficitMsg(deficient=my_deficient))
        inbox = yield
        for src, msg in inbox:
            if isinstance(msg, DeficitMsg):
                deficient_of[src] = msg.deficient

        for _ in range(self.part2_sync_iterations):
            done = ((self.leader and not my_deficient
                     and not any(deficient_of.get(w, False)
                                 for w in ctx.neighbors))
                    or (not self.leader and not my_deficient))
            if done:
                return
            # (a) adoption round — only leaders select.
            if self.leader:
                candidates = sorted(
                    ([me] if my_deficient else [])
                    + [w for w in ctx.neighbors if deficient_of.get(w, False)]
                )
                for u in _pick(ctx.rng, candidates, self.k, self.policy):
                    if u == me:
                        my_deficient = False
                    else:
                        ctx.send(u, AdoptMsg())
            inbox = yield
            if not self.leader and any(isinstance(m, AdoptMsg)
                                       for _, m in inbox):
                self.leader = True
                my_deficient = False
            # (b) leader-status refresh.
            ctx.broadcast(LeaderStatusMsg(leader=self.leader))
            inbox = yield
            for src, msg in inbox:
                if isinstance(msg, LeaderStatusMsg):
                    leader_of[src] = msg.leader
            coverage = (1 if self.leader else 0) + sum(
                1 for w in ctx.neighbors if leader_of.get(w, False))
            my_deficient = (not self.leader) and coverage < self.k
            # (c) deficiency refresh.
            ctx.broadcast(DeficitMsg(deficient=my_deficient))
            inbox = yield
            for src, msg in inbox:
                if isinstance(msg, DeficitMsg):
                    deficient_of[src] = msg.deficient


# ======================================================================
# The round program
# ======================================================================

class UDGProgram(RoundProgram):
    """Algorithm 3 as an engine-executable round program."""

    def __init__(self, udg: UnitDiskGraph, k: int, policy: str,
                 seed: int | None):
        super().__init__(graph_artifacts(udg))
        self.udg = udg
        # Message-passing backends need the wrapper (distance sensing for
        # Part I's send_within), not the plain graph.
        self.network_graph = udg
        self.k = k
        self.policy = policy
        self.seed = seed

    def max_rounds(self) -> int:
        n = self.udg.n
        return 2 * len(theta_schedule(n)) + 3 * (n + 1) + 8

    def direct(self, instr: Instrumentation) -> DominatingSet:
        udg, k, policy = self.udg, self.k, self.policy
        if not kernels.supports_kernel_election(udg):
            # A UDG subclass with bespoke sensing semantics: stay on the
            # per-node reference path (correctness over speed).
            return self.direct_reference(instr)
        details: dict = {"mode": "direct", "k": k}
        pool = node_stream_pool(
            range(udg.n), self.seed,
            bounded_ranges=(min(_id_space(udg.n), _MAX_SAMPLED_ID) - 1,))

        leaders = _part_one_kernel(udg, pool, details)
        details["part1_leaders"] = len(leaders)
        members = _part_two_kernel(self.artifacts, leaders, k, pool,
                                   policy, details)

        instr.charge_rounds(2 * len(details["theta_per_round"])
                            + 2 + 3 * details["part2_iterations"])
        return DominatingSet(members=members, stats=instr.stats,
                             details=details)

    def supports_direct_batch(self) -> bool:
        # The batched path runs on the distance CSR; exotic sensing
        # subclasses must take the sequential reference fallback.
        return kernels.supports_kernel_election(self.udg)

    def direct_batch(self, instrs, seeds) -> List[DominatingSet]:
        """Replica-batched :meth:`direct`: the whole seed sweep in one
        kernel pass per phase (lane = (replica, node)).  Bit-identical
        per replica to the sequential per-seed loop."""
        udg, k, policy = self.udg, self.k, self.policy
        n = udg.n
        details_list: List[dict] = [{"mode": "direct", "k": k}
                                    for _ in seeds]
        streams = replica_node_streams(
            range(n), seeds,
            bounded_ranges=(min(_id_space(n), _MAX_SAMPLED_ID) - 1,))

        active = _part_one_kernel_batch(udg, streams, details_list)
        leader = active.copy()
        for r, details in enumerate(details_list):
            details["part1_leaders"] = int(active[r].sum())
        _part_two_kernel_batch(self.artifacts, leader, k, streams, policy,
                               details_list)

        results = []
        for r, (instr, details) in enumerate(zip(instrs, details_list)):
            instr.charge_rounds(2 * len(details["theta_per_round"])
                                + 2 + 3 * details["part2_iterations"])
            results.append(DominatingSet(
                members=set(np.nonzero(leader[r])[0].tolist()),
                stats=instr.stats, details=details))
        return results

    def direct_reference(self, instr: Instrumentation) -> DominatingSet:
        """The per-node reference implementation (bit-exactness oracle
        for the kernel path; select with
        ``execute(..., reference_direct=True)``)."""
        udg, k, policy = self.udg, self.k, self.policy
        details: dict = {"mode": "direct", "k": k}
        rngs = spawn_node_rngs(range(udg.n), self.seed)

        leaders = _part_one_direct(udg, rngs, details)
        details["part1_leaders"] = len(leaders)
        members = _part_two_direct(udg, set(leaders), k, rngs, policy,
                                   details)

        instr.charge_rounds(2 * len(details["theta_per_round"])
                            + 2 + 3 * details["part2_iterations"])
        return DominatingSet(members=members, stats=instr.stats,
                             details=details)

    def processes(self) -> List[UDGNode]:
        n = self.udg.n
        # Upper bound on Part II iterations: each iteration removes at
        # least k deficient nodes from any nonempty U(v), so deg+1 over k
        # suffices; use n as a safe global bound.
        sync_iters = n + 1
        return [UDGNode(v, self.k, n, self.policy, sync_iters)
                for v in range(n)]

    def collect(self, processes: Sequence[UDGNode],
                stats: RunStats) -> DominatingSet:
        members = {p.node_id for p in processes if p.leader}
        return DominatingSet(members=members, stats=stats,
                             details={"mode": "message", "k": self.k})


# ======================================================================
# Public entry points
# ======================================================================

def part_one_leaders(graph, *, seed: int | None = None) -> DominatingSet:
    """Run only Part I of Algorithm 3 — the O(1)-approximate plain
    dominating set (the Gao-Guibas-Hershberger-Zhang-Zhu "discrete mobile
    centers" step).  Exposed for the E13 dynamics experiment and as the
    k = 1 comparison baseline."""
    udg = _as_udg(graph)
    details: dict = {"mode": "direct"}
    if udg.n == 0:
        return DominatingSet(members=set(), details=details)
    if kernels.supports_kernel_election(udg):
        pool = node_stream_pool(
            range(udg.n), seed,
            bounded_ranges=(min(_id_space(udg.n), _MAX_SAMPLED_ID) - 1,))
        leaders = _part_one_kernel(udg, pool, details)
    else:
        rngs = spawn_node_rngs(range(udg.n), seed)
        leaders = _part_one_direct(udg, rngs, details)
    stats = RunStats()
    stats.rounds = 2 * len(details["theta_per_round"])
    return DominatingSet(members=set(leaders), stats=stats, details=details)


def solve_kmds_udg(graph, k: int = 1, *,
                   mode: str = "direct",
                   selection_policy: str = "random",
                   seed: int | None = None,
                   delay=None,
                   delay_seed: int | None = None) -> DominatingSet:
    """Run Algorithm 3: a k-fold dominating set of a unit disk graph in
    ``O(log log n)`` rounds with ``O(log n)``-bit messages, O(1)-approximate
    in expectation (Theorem 5.7).

    Parameters
    ----------
    graph:
        A :class:`~repro.graphs.udg.UnitDiskGraph`.
    k:
        Fault-tolerance parameter (open-neighborhood convention: every node
        outside the returned set has at least ``k`` neighbors inside it;
        always satisfiable since deficient nodes are promoted into the set).
    mode:
        An engine backend: ``"direct"`` (fast central simulation),
        ``"message"`` (full message-passing simulation with accounting),
        or ``"async"`` / ``"async-beta"`` (synchronizers over random link
        delays).
    selection_policy:
        How leaders pick adoption targets in Part II: ``"random"`` or
        ``"by-id"``.
    seed:
        Root seed for all node randomness; every backend consumes the
        per-node streams identically, so results match for equal seeds.
    """
    if k < 1:
        raise GraphError(f"k must be at least 1, got {k}")
    if selection_policy not in SELECTION_POLICIES:
        raise GraphError(
            f"unknown selection policy {selection_policy!r}; "
            f"expected one of {SELECTION_POLICIES}"
        )
    seed = validate_seed(seed)
    udg = _as_udg(graph)
    if udg.n == 0:
        from repro.engine.backends import resolve_backend

        resolve_backend(mode)
        return DominatingSet(members=set(), details={"mode": mode, "k": k})
    program = UDGProgram(udg, k, selection_policy, seed)
    result = execute(program, mode, seed=seed, delay=delay,
                     delay_seed=delay_seed)
    result.details["mode"] = mode
    return result


def solve_kmds_udg_batch(graph, seeds: Sequence, k: int = 1, *,
                         mode: str = "direct",
                         selection_policy: str = "random"
                         ) -> List[DominatingSet]:
    """Run Algorithm 3 once per seed — the replica-batched counterpart
    of a ``[solve_kmds_udg(..., seed=s) for s in seeds]`` sweep.

    On the ``direct`` backend the whole sweep executes as one
    replica-batched kernel pass (per-replica results bit-identical to
    the sequential loop); other modes, exotic sensing subclasses, and
    ``None`` seeds fall back to exactly that loop.  The E-series seed
    replication and ``repro experiment --replicas`` route through here.
    """
    if k < 1:
        raise GraphError(f"k must be at least 1, got {k}")
    if selection_policy not in SELECTION_POLICIES:
        raise GraphError(
            f"unknown selection policy {selection_policy!r}; "
            f"expected one of {SELECTION_POLICIES}"
        )
    seed_list = [validate_seed(s) for s in seeds]
    udg = _as_udg(graph)
    if udg.n == 0:
        from repro.engine.backends import resolve_backend

        resolve_backend(mode)
        return [DominatingSet(members=set(), details={"mode": mode, "k": k})
                for _ in seed_list]
    first = seed_list[0] if seed_list else None
    program = UDGProgram(udg, k, selection_policy, first)
    results = execute_batch(program, seed_list, mode)
    for result in results:
        result.details["mode"] = mode
    return results
